//! # ComDML — Communication-Efficient Training Workload Balancing for
//! # Decentralized Multi-Agent Learning
//!
//! This is the facade crate of a from-scratch Rust reproduction of the
//! ICDCS 2024 paper *"Communication-Efficient Training Workload Balancing for
//! Decentralized Multi-Agent Learning"* (ComDML, arXiv:2405.00839).
//!
//! ComDML balances training workload in a server-less, peer-to-peer learning
//! system: slower agents offload a suffix of the model to faster agents using
//! local-loss split training, and a decentralized pairing scheduler picks both
//! the partner and the split point by jointly considering computation and
//! communication capacities.
//!
//! The facade re-exports every sub-crate:
//!
//! * [`tensor`] — dense tensors and SGD.
//! * [`nn`] — layers, losses, sequential models and local-loss split training.
//! * [`data`] — synthetic datasets and Dirichlet non-I.I.D. partitioning.
//! * [`cost`] — analytic ResNet-56/110 cost models and split profiles.
//! * [`simnet`] — heterogeneous agents, links, topologies, the
//!   discrete-event driver (`SimDriver` / `SimEvent`) every simulation runs
//!   on, and the elastic fleet driver (`FleetDriver`): Poisson/trace
//!   arrivals, session-lifetime departures, membership as a process.
//! * [`collective`] — AllReduce, gossip and quantization.
//! * [`core`] — the ComDML scheduler, estimator and the event-driven round
//!   engine (`EventRound`): synchronous, semi-synchronous and asynchronous
//!   aggregation with FedBuff-style staleness-weighted learning progress,
//!   mid-round failure re-pairing, per-agent carry-over, coarse
//!   closed-form event granularity for fleet scale, and `FleetSim` driving
//!   whole multi-round runs over a churning fleet.
//! * [`baselines`] — FedAvg, Gossip Learning, BrainTorrent, AllReduce DML —
//!   all executing on the same shared simulated clock.
//! * [`exp`] — declarative scenario specs (`ScenarioSpec`/`SweepSpec`) and
//!   the parallel `SweepRunner` regenerating the paper's Table II/III grids
//!   (`exp_sweep`, `paper_tables`) with byte-deterministic reports.
//! * [`obs`] — dependency-free observability: `COMDML_LOG` leveled
//!   logging, the process-wide metrics registry, phase spans and the
//!   `COMDML_TRACE` JSONL trace sink (zero-overhead when disabled).
//! * [`privacy`] — differential privacy, patch shuffling, distance correlation.
//! * [`net`] — threaded `std::net` peer-to-peer transport for the protocol.
//!
//! Rounds are simulated by scheduling typed events (batch produced, transfer
//! complete, suffix return, agent done, aggregate start/done,
//! fail/join/leave) against one clock, which is what lets a 10,000-agent
//! fleet simulate 100 rounds in seconds (`cargo run --release --bin
//! scalability_10k`) and lets helpers fail mid-transfer with the orphaned
//! work re-paired onto idle agents.
//!
//! # Quickstart
//!
//! ```
//! use comdml::core::{ComDml, ComDmlConfig};
//! use comdml::simnet::WorldConfig;
//!
//! # fn main() {
//! let world = WorldConfig::heterogeneous(10, 42).build();
//! let report = ComDml::new(ComDmlConfig::default()).run(&world, 0.80);
//! assert!(report.total_time_s > 0.0);
//! # }
//! ```
//!
//! Part of the `comdml-rs` workspace — the crate map in the repository
//! README shows how this crate fits the whole.

pub use comdml_baselines as baselines;
pub use comdml_collective as collective;
pub use comdml_core as core;
pub use comdml_cost as cost;
pub use comdml_data as data;
pub use comdml_exp as exp;
pub use comdml_net as net;
pub use comdml_nn as nn;
pub use comdml_obs as obs;
pub use comdml_privacy as privacy;
pub use comdml_simnet as simnet;
pub use comdml_tensor as tensor;
