//! Integration tests of the elastic fleet driver, the coarse event
//! granularity, and the staleness-aware learning accounting:
//!
//! * `FleetSim` is deterministic per seed under Poisson churn and never
//!   orphans carry-over state (property tests over seeds/rates);
//! * coarse-granularity rounds reproduce fine-granularity rounds to 1e-9
//!   when no disruptions fire, across all three aggregation modes and
//!   multi-round carry-over;
//! * the staleness-weighted `rounds_factor` is monotone in staleness and
//!   separates the aggregation modes.

use std::collections::HashMap;

use comdml::collective::AllReduceAlgorithm;
use comdml::core::{
    staleness_weight, AggregationMode, ComDml, ComDmlConfig, EventGranularity, EventRound,
    FleetSim, PairingScheduler, TrainingTimeEstimator,
};
use comdml::cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml::simnet::{AgentId, ArrivalProcess, FleetConfig, SessionLifetime, WorldConfig};
use proptest::prelude::*;

fn fleet(k: usize, seed: u64, rate: f64, mean_session: f64) -> FleetConfig {
    FleetConfig::new(k, seed)
        .arrivals(ArrivalProcess::Poisson { rate_per_s: rate })
        .lifetime(SessionLifetime::Exponential { mean_s: mean_session })
        .samples_per_agent(500)
}

fn config(mode: AggregationMode, granularity: EventGranularity) -> ComDmlConfig {
    ComDmlConfig {
        churn: None,
        candidate_offloads: Some(vec![8, 16, 24, 32, 40, 48]),
        aggregation: mode,
        granularity,
        ..ComDmlConfig::default()
    }
}

#[test]
fn coarse_matches_fine_without_disruptions() {
    // All three aggregation modes, several rounds with carry-over: every
    // per-round quantity must agree to 1e-9 relative.
    for mode in [
        AggregationMode::Synchronous,
        AggregationMode::SemiSynchronous { quorum: 0.7, staleness_s: f64::MAX },
        AggregationMode::Asynchronous,
    ] {
        let world = WorldConfig::heterogeneous(24, 9).total_samples(24 * 2000).build();
        let mut fine = ComDml::new(config(mode, EventGranularity::Fine));
        let mut coarse = ComDml::new(config(mode, EventGranularity::Coarse));
        let mut wf = world.clone();
        let mut wc = world.clone();
        for r in 0..6 {
            let of = fine.run_round(&mut wf, r);
            let oc = coarse.run_round(&mut wc, r);
            let tol = 1e-9 * of.round_s().max(1.0);
            assert!(
                (of.round_s() - oc.round_s()).abs() <= tol,
                "round {r} {mode:?}: {} vs {}",
                of.round_s(),
                oc.round_s()
            );
            assert_eq!(of.num_offloads, oc.num_offloads);
            let rf = fine.last_report().unwrap();
            let rc = coarse.last_report().unwrap();
            assert_eq!(rf.cohort, rc.cohort, "round {r} {mode:?}");
            for (i, (a, b)) in rf.spill_s.iter().zip(rc.spill_s.iter()).enumerate() {
                assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "spill {i}: {a} vs {b}");
            }
            for (a, b) in of.agent_stats.iter().zip(oc.agent_stats.iter()) {
                assert_eq!(a.id, b.id);
                assert!((a.train_s - b.train_s).abs() <= 1e-9 * a.train_s.max(1.0));
                assert!((a.comm_s - b.comm_s).abs() <= 1e-9 * a.comm_s.max(1.0));
                assert!((a.finish_s - b.finish_s).abs() <= 1e-9 * a.finish_s.max(1.0));
            }
            // Coarse must actually be coarse: far fewer events.
            assert!(
                rc.events_processed < rf.events_processed / 2,
                "coarse {} vs fine {} events",
                rc.events_processed,
                rf.events_processed
            );
        }
    }
}

#[test]
fn coarse_pairs_with_disruptions_fall_back_to_fine() {
    // A disrupted pair must behave identically under both granularities:
    // the coarse engine falls back to per-batch events exactly where the
    // disruption can strike.
    let spec = ModelSpec::resnet56();
    let profile = SplitProfile::new(&spec, 100);
    let cal = CostCalibration::default();
    let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
    let world = WorldConfig::heterogeneous(12, 3).total_samples(12 * 3000).build();
    let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
    let pairings = PairingScheduler::new().pair(&world, &ids, &est);
    let victim = pairings.iter().find_map(|p| p.fast).expect("some pair offloads");
    let disruptions = vec![comdml::core::Disruption::Fail { agent: victim, at_s: 5.0 }];
    let run = |g: EventGranularity| {
        EventRound::new(&world, &pairings, &est, &cal, AllReduceAlgorithm::HalvingDoubling)
            .granularity(g)
            .disruptions(disruptions.clone())
            .run()
    };
    let fine = run(EventGranularity::Fine);
    let coarse = run(EventGranularity::Coarse);
    assert_eq!(fine.repairs, coarse.repairs);
    assert_eq!(fine.local_fallbacks, coarse.local_fallbacks);
    let tol = 1e-9 * fine.round_end_s.max(1.0);
    assert!(
        (fine.round_end_s - coarse.round_end_s).abs() <= tol,
        "{} vs {}",
        fine.round_end_s,
        coarse.round_end_s
    );
}

#[test]
fn semi_sync_staleness_separates_modes() {
    // The three aggregation modes must report diverging rounds factors on
    // the same heterogeneous world: sync is fully fresh; semi-sync and
    // async discount stale updates.
    let world = WorldConfig::heterogeneous(20, 5).total_samples(20 * 2000).build();
    let factor = |mode| {
        let mut engine = ComDml::new(config(mode, EventGranularity::Coarse));
        let mut w = world.clone();
        for r in 0..5 {
            engine.run_round(&mut w, r);
        }
        comdml::core::RoundEngine::rounds_factor(&engine)
    };
    let sync = factor(AggregationMode::Synchronous);
    let semi = factor(AggregationMode::SemiSynchronous { quorum: 0.5, staleness_s: f64::MAX });
    assert!((sync - 1.0).abs() < 1e-12, "synchronous rounds are fully fresh, got {sync}");
    assert!(semi < 1.0, "a 50% quorum must strand stragglers, got {semi}");
    assert!(semi > 0.0);
}

#[test]
fn rounds_factor_is_monotone_in_staleness_decay() {
    // Same run, harsher discount => lower realized rounds factor.
    let world = WorldConfig::heterogeneous(20, 7).total_samples(20 * 2000).build();
    let factor_with_decay = |decay: f64| {
        let mut cfg = config(
            AggregationMode::SemiSynchronous { quorum: 0.5, staleness_s: f64::MAX },
            EventGranularity::Coarse,
        );
        cfg.staleness_decay = decay;
        let mut engine = ComDml::new(cfg);
        let mut w = world.clone();
        for r in 0..5 {
            engine.run_round(&mut w, r);
        }
        comdml::core::RoundEngine::rounds_factor(&engine)
    };
    let factors: Vec<f64> =
        [0.0, 0.25, 0.5, 1.0, 2.0].iter().map(|&d| factor_with_decay(d)).collect();
    for pair in factors.windows(2) {
        assert!(
            pair[1] <= pair[0] + 1e-12,
            "rounds factor must fall as the discount hardens: {factors:?}"
        );
    }
    assert!(
        factors[0] > factors[4],
        "a strictly harsher discount must bite somewhere: {factors:?}"
    );
}

#[test]
fn semi_sync_run_needs_more_rounds_than_sync() {
    // End-to-end: stale updates advance the learning curve less, so the
    // adaptive run() takes more wall rounds to the same target.
    let world = WorldConfig::heterogeneous(16, 11).total_samples(16 * 1500).build();
    let rounds = |mode| {
        ComDml::new(ComDmlConfig { churn: None, aggregation: mode, ..ComDmlConfig::default() })
            .run(&world, 0.80)
            .rounds
    };
    let sync = rounds(AggregationMode::Synchronous);
    let semi = rounds(AggregationMode::SemiSynchronous { quorum: 0.5, staleness_s: f64::MAX });
    assert!(semi > sync, "stale updates must cost wall rounds: {semi} vs {sync}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Two same-seed fleet simulations under churn replay identically:
    /// round durations, membership counts, efficiency, event counts.
    #[test]
    fn fleet_sim_is_deterministic_per_seed(
        seed in 0u64..1000,
        k in 8usize..24,
        rate in 0.001f64..0.05,
        mean_session in 500f64..20_000.0,
    ) {
        let run = || {
            let mut sim = FleetSim::new(
                fleet(k, seed, rate, mean_session),
                config(
                    AggregationMode::SemiSynchronous { quorum: 0.75, staleness_s: f64::MAX },
                    EventGranularity::Coarse,
                ),
            );
            let mut log: Vec<(u64, usize, usize, u64, u64)> = Vec::new();
            for _ in 0..8 {
                let s = sim.step();
                log.push((
                    s.round_s.to_bits(),
                    s.participants,
                    s.joins + s.leaves,
                    s.efficiency.to_bits(),
                    s.events_processed,
                ));
            }
            (log, sim.fleet().arrivals_total(), sim.fleet().departures_total())
        };
        prop_assert_eq!(run(), run());
    }

    /// Carry-over state never names a departed (or never-active) agent,
    /// whatever the churn process does.
    #[test]
    fn fleet_sim_never_orphans_carry_over(
        seed in 0u64..1000,
        k in 8usize..24,
        rate in 0.001f64..0.08,
        mean_session in 200f64..5_000.0,
        quorum in 0.3f64..1.0,
    ) {
        let mut sim = FleetSim::new(
            fleet(k, seed, rate, mean_session),
            config(
                AggregationMode::SemiSynchronous { quorum, staleness_s: f64::MAX },
                EventGranularity::Coarse,
            ),
        );
        for _ in 0..10 {
            sim.step();
            let carry: &HashMap<AgentId, f64> = sim.carry_over();
            for (&id, &head_start) in carry {
                prop_assert!(sim.fleet().is_active(id), "orphaned carry-over for {id}");
                prop_assert!(head_start > 0.0 && head_start.is_finite());
            }
        }
    }

    /// The staleness weight is monotone in staleness for any positive decay
    /// (satellite requirement, property form).
    #[test]
    fn staleness_weight_monotone(decay in 0.01f64..4.0, s1 in 0.0f64..100.0, ds in 0.001f64..100.0) {
        let w1 = staleness_weight(s1, decay);
        let w2 = staleness_weight(s1 + ds, decay);
        prop_assert!(w2 < w1, "w({}) = {w1} vs w({}) = {w2}", s1, s1 + ds);
        prop_assert!((0.0..=1.0).contains(&w1) && w2 > 0.0);
    }
}
