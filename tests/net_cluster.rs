//! Integration tests of the TCP transport against the rest of the stack:
//! real models aggregated over real sockets must match the in-memory
//! collective, and the pairing protocol must carry scheduler decisions.

use comdml::collective::naive_allreduce;
use comdml::net::{pairing_handshake, spawn_ring, FramedStream, Message, PairOutcome};
use comdml::nn::models;
use comdml::tensor::ParamVec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::{TcpListener, TcpStream};

#[test]
fn tcp_allreduce_matches_in_memory_allreduce_on_real_models() {
    let k = 4;
    // Four differently initialized real models.
    let params: Vec<Vec<f32>> = (0..k)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(i as u64);
            let model = models::mlp(&[6, 12, 3], &mut rng);
            ParamVec::flatten(&model.parameters()).values().to_vec()
        })
        .collect();

    let mut expected = params.clone();
    naive_allreduce(&mut expected).unwrap();

    let cluster = spawn_ring(k).unwrap();
    let handles: Vec<_> = cluster
        .into_iter()
        .map(|mut node| {
            let mine = params[node.rank()].clone();
            std::thread::spawn(move || (node.rank(), node.allreduce(mine).unwrap()))
        })
        .collect();
    for h in handles {
        let (rank, got) = h.join().unwrap();
        for (a, b) in got.iter().zip(expected[0].iter()) {
            assert!((a - b).abs() < 1e-4, "rank {rank} diverged: {a} vs {b}");
        }
    }
}

#[test]
fn pairing_protocol_carries_scheduler_decision() {
    // The slow side computes a split decision (as the scheduler would) and
    // transmits it; the fast side sees the exact offload.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let offload_decided = 37u32;

    let fast = std::thread::spawn(move || {
        let (sock, _) = listener.accept().unwrap();
        let mut s = FramedStream::new(sock);
        let msg = s.expect("PairRequest").unwrap();
        let Message::PairRequest { slow_id, offload } = msg else { unreachable!() };
        assert_eq!((slow_id, offload), (0, 37));
        s.send(&Message::PairAccept { fast_id: 1 }).unwrap();
        offload
    });

    let mut s = FramedStream::new(TcpStream::connect(addr).unwrap());
    let outcome = pairing_handshake(&mut s, 0, offload_decided).unwrap();
    assert_eq!(outcome, PairOutcome::Accepted { fast_id: 1 });
    assert_eq!(fast.join().unwrap(), offload_decided);
}

#[test]
fn repeated_rounds_reuse_the_ring() {
    // Three consecutive "rounds" of aggregation over the same connections —
    // the steady-state of Algorithm 1's loop.
    let k = 3;
    let cluster = spawn_ring(k).unwrap();
    let handles: Vec<_> = cluster
        .into_iter()
        .map(|mut node| {
            std::thread::spawn(move || {
                let mut v = vec![(node.rank() + 1) as f32; 5];
                for _ in 0..3 {
                    v = node.allreduce(v).unwrap();
                }
                v
            })
        })
        .collect();
    for h in handles {
        let v = h.join().unwrap();
        // Mean of 1,2,3 is 2; repeated averaging of identical vectors stays 2.
        for x in v {
            assert!((x - 2.0).abs() < 1e-5);
        }
    }
}

#[test]
fn activation_stream_then_suffix_return_round_trip() {
    // The §III-B data flow: slow sends activations for a whole round, fast
    // returns the trained suffix parameters.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let fast = std::thread::spawn(move || {
        let (sock, _) = listener.accept().unwrap();
        let mut s = FramedStream::new(sock);
        let mut sum = 0.0f32;
        loop {
            match s.recv().unwrap() {
                Message::Activations { data, .. } => sum += data.iter().sum::<f32>(),
                Message::Done => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        s.send(&Message::SuffixParams { data: vec![sum] }).unwrap();
    });

    let mut s = FramedStream::new(TcpStream::connect(addr).unwrap());
    let mut expected = 0.0f32;
    for b in 0..4u32 {
        let batch = vec![b as f32; 16];
        expected += batch.iter().sum::<f32>();
        s.send(&Message::Activations { batch_idx: b, data: batch, labels: vec![0; 16] }).unwrap();
    }
    s.send(&Message::Done).unwrap();
    let Message::SuffixParams { data } = s.expect("SuffixParams").unwrap() else { unreachable!() };
    assert_eq!(data, vec![expected]);
    fast.join().unwrap();
}
