//! Integration tests of the real gradient-descent path: split training,
//! aggregation and the privacy hooks, across nn, core, data, collective,
//! tensor and privacy.

use comdml::core::{RealFleetConfig, RealSplitFleet};
use comdml::privacy::{distance_correlation, LaplaceMechanism, PatchShuffler};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn split_fleet_reaches_high_accuracy() {
    let mut fleet = RealSplitFleet::new(RealFleetConfig { seed: 3, ..RealFleetConfig::default() });
    let report = fleet.run(10);
    assert!(
        report.final_accuracy() > 0.9,
        "miniature task should be mastered, got {}",
        report.final_accuracy()
    );
    // Theorem 1's shape: both loss sequences trend down.
    assert!(report.slow_losses.last().unwrap() < &(report.slow_losses[0] * 0.5));
    assert!(report.fast_losses.last().unwrap() < &(report.fast_losses[0] * 0.5));
}

#[test]
fn offload_depth_does_not_wreck_accuracy() {
    // The paper's claim: workload balancing preserves model accuracy.
    let mut accs = Vec::new();
    for offload in [0usize, 2, 4] {
        let mut fleet =
            RealSplitFleet::new(RealFleetConfig { offload, seed: 5, ..RealFleetConfig::default() });
        accs.push(fleet.run(8).final_accuracy());
    }
    let min = accs.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = accs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    assert!(max - min < 0.15, "accuracy should be stable across offload depths: {accs:?}");
}

#[test]
fn dp_hook_costs_accuracy_but_still_trains() {
    let mut protected = RealSplitFleet::new(RealFleetConfig { seed: 7, ..Default::default() });
    let mech = LaplaceMechanism::new(0.5, 0.08);
    let mut rng = StdRng::seed_from_u64(1);
    protected.set_param_hook(Box::new(move |p| mech.privatize(p, &mut rng)));
    let noisy = protected.run(6).final_accuracy();

    let mut plain = RealSplitFleet::new(RealFleetConfig { seed: 7, ..Default::default() });
    let clean = plain.run(6).final_accuracy();

    assert!(noisy > 0.4, "DP-protected fleet should still learn, got {noisy}");
    assert!(noisy <= clean + 0.05, "noise should not help: {noisy} vs {clean}");
}

#[test]
fn patch_shuffle_hook_keeps_training_viable() {
    let mut fleet = RealSplitFleet::new(RealFleetConfig { seed: 9, ..Default::default() });
    let shuffler = PatchShuffler::new(2);
    let mut rng = StdRng::seed_from_u64(2);
    fleet.set_input_hook(Box::new(move |x| {
        shuffler.shuffle(x, &mut rng).unwrap_or_else(|| x.clone())
    }));
    let acc = fleet.run(6).final_accuracy();
    assert!(acc > 0.5, "patch shuffling preserves local features, got {acc}");
}

#[test]
fn activation_noise_reduces_leakage() {
    let mut plain = RealSplitFleet::new(RealFleetConfig { seed: 13, ..Default::default() });
    plain.run(3);
    let (x, z) = plain.leakage_probe(96).expect("split agents exist");
    let open_dcor = distance_correlation(&x, &z).unwrap();

    let mut protected = RealSplitFleet::new(RealFleetConfig {
        seed: 13,
        activation_noise_std: 1.5,
        ..Default::default()
    });
    protected.run(3);
    let (x2, z2) = protected.leakage_probe(96).expect("split agents exist");
    let mut rng = StdRng::seed_from_u64(3);
    let observed = z2.add(&comdml::tensor::Tensor::randn(z2.shape(), 1.5, &mut rng)).unwrap();
    let protected_dcor = distance_correlation(&x2, &observed).unwrap();
    assert!(
        protected_dcor < open_dcor - 0.1,
        "noise at the cut should cut leakage: {protected_dcor} vs {open_dcor}"
    );
}

#[test]
fn non_iid_converges_slower_but_converges() {
    let mut iid =
        RealSplitFleet::new(RealFleetConfig { seed: 21, iid: true, ..Default::default() });
    let mut non = RealSplitFleet::new(RealFleetConfig {
        seed: 21,
        iid: false,
        alpha: 0.2,
        ..Default::default()
    });
    let acc_iid = iid.run(6).final_accuracy();
    let acc_non = non.run(6).final_accuracy();
    assert!(acc_non > 0.4, "non-IID fleet must still learn, got {acc_non}");
    assert!(acc_iid >= acc_non - 0.1, "IID should not be clearly worse");
}
