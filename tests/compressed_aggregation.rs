//! Compressed-aggregation extensions end to end (§IV-B: "other existing
//! aggregation techniques (e.g., quantized gradients) can also be
//! integrated"): int8-quantized and top-k-sparsified model releases must
//! still let the real fleet converge.

use comdml::collective::{Int8Quantizer, TopKSparsifier};
use comdml::core::{RealFleetConfig, RealSplitFleet};

#[test]
fn int8_quantized_aggregation_preserves_accuracy() {
    let mut plain = RealSplitFleet::new(RealFleetConfig { seed: 31, ..Default::default() });
    let clean = plain.run(6).final_accuracy();

    let mut quantized = RealSplitFleet::new(RealFleetConfig { seed: 31, ..Default::default() });
    quantized.set_param_hook(Box::new(|params| {
        // Simulate the 4x-smaller wire format: round-trip through int8.
        let q = Int8Quantizer::fit(params);
        let restored = q.dequantize(&q.quantize(params));
        params.copy_from_slice(&restored);
    }));
    let quant = quantized.run(6).final_accuracy();

    assert!(quant > 0.7, "quantized fleet must still learn, got {quant}");
    assert!(
        (clean - quant).abs() < 0.15,
        "int8 aggregation should be nearly lossless: {clean} vs {quant}"
    );
}

#[test]
fn topk_sparsified_aggregation_still_learns() {
    let mut sparse = RealSplitFleet::new(RealFleetConfig { seed: 33, ..Default::default() });
    sparse.set_param_hook(Box::new(|params| {
        // Keep the 25% largest-magnitude weights per release.
        let sp = TopKSparsifier::with_fraction(0.25, params.len());
        let restored = sp.sparsify(params).densify();
        params.copy_from_slice(&restored);
    }));
    let acc = sparse.run(8).final_accuracy();
    assert!(acc > 0.5, "75% sparsification should degrade gracefully, got {acc}");
}

#[test]
fn extreme_sparsification_finally_breaks_training() {
    // Sanity check that the hook actually bites: keeping 0.1% of weights
    // must visibly hurt within the same budget.
    let mut plain = RealSplitFleet::new(RealFleetConfig { seed: 35, ..Default::default() });
    let clean = plain.run(5).final_accuracy();

    let mut crushed = RealSplitFleet::new(RealFleetConfig { seed: 35, ..Default::default() });
    crushed.set_param_hook(Box::new(|params| {
        let sp = TopKSparsifier::with_fraction(0.001, params.len());
        let restored = sp.sparsify(params).densify();
        params.copy_from_slice(&restored);
    }));
    let broken = crushed.run(5).final_accuracy();
    assert!(broken < clean - 0.1, "0.1% sparsity should clearly hurt: {broken} vs {clean}");
}
