//! Cross-crate property tests: scheduler/round invariants on randomly
//! generated worlds.

use comdml::core::{simulate_round, PairingScheduler, TrainingTimeEstimator};
use comdml::cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml::simnet::{AgentId, Topology, WorldConfig};
use proptest::prelude::*;

fn fixtures() -> (ModelSpec, SplitProfile, CostCalibration) {
    let spec = ModelSpec::resnet20(); // smaller profile keeps cases fast
    let profile = SplitProfile::new(&spec, 100);
    (spec, profile, CostCalibration::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pairing is always a valid matching: every participant exactly
    /// once, helpers distinct from slow agents, offloads within profile
    /// range, and only across usable links.
    #[test]
    fn pairing_is_a_valid_matching(
        k in 2usize..24,
        seed in 0u64..10_000,
        p in 0.0f64..1.0,
    ) {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(k, seed)
            .topology(Topology::random(p))
            .build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let pairings = PairingScheduler::new().pair(&world, &ids, &est);

        let mut seen = Vec::new();
        for pairing in &pairings {
            prop_assert!(!seen.contains(&pairing.slow));
            seen.push(pairing.slow);
            if let Some(f) = pairing.fast {
                prop_assert!(f != pairing.slow);
                prop_assert!(!seen.contains(&f));
                seen.push(f);
                prop_assert!(pairing.offload > 0);
                prop_assert!(pairing.offload < spec.num_weighted_layers());
                prop_assert!(world.link_mbps(pairing.slow, f) > 0.0, "paired over dead link");
            } else {
                prop_assert_eq!(pairing.offload, 0);
            }
            prop_assert!(pairing.est_time_s.is_finite() && pairing.est_time_s >= 0.0);
        }
        seen.sort();
        let mut expected = ids.clone();
        expected.sort();
        prop_assert_eq!(seen, expected);
    }

    /// Pairing never makes the estimated makespan worse than solo training.
    #[test]
    fn pairing_never_hurts_estimated_makespan(k in 2usize..20, seed in 0u64..10_000) {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(k, seed).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let pairings = PairingScheduler::new().pair(&world, &ids, &est);
        let paired_makespan = pairings.iter().map(|p| p.est_time_s).fold(0.0, f64::max);
        let solo_makespan = ids
            .iter()
            .map(|&id| est.solo_time_s(world.agent(id)))
            .fold(0.0, f64::max);
        prop_assert!(paired_makespan <= solo_makespan + 1e-9);
    }

    /// Round simulation conserves accounting: every agent finishes within
    /// the compute phase, and times are non-negative and finite.
    #[test]
    fn round_accounting_is_consistent(k in 2usize..16, seed in 0u64..10_000) {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(k, seed).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let pairings = PairingScheduler::new().pair(&world, &ids, &est);
        let outcome = simulate_round(
            &world,
            &pairings,
            &est,
            &cal,
            comdml::collective::AllReduceAlgorithm::HalvingDoubling,
        );
        prop_assert_eq!(outcome.agent_stats.len(), k);
        for s in &outcome.agent_stats {
            prop_assert!(s.train_s >= 0.0 && s.train_s.is_finite());
            prop_assert!(s.comm_s >= 0.0 && s.comm_s.is_finite());
            prop_assert!(s.idle_s >= 0.0 && s.idle_s.is_finite());
            prop_assert!(s.finish_s <= outcome.compute_s + 1e-9);
            // Busy + idle + comm covers the whole compute phase.
            let covered = s.train_s + s.idle_s + s.comm_s;
            prop_assert!(covered >= outcome.compute_s - 1e-6,
                "agent {:?} unaccounted time: {covered} vs {}", s.id, outcome.compute_s);
        }
        prop_assert!(outcome.allreduce_s >= 0.0);
    }

    /// The estimator's chosen time never exceeds the solo time (it can
    /// always fall back to offload zero).
    #[test]
    fn estimator_decision_bounded_by_solo(
        cpus_slow in 0.1f64..4.0,
        cpus_fast in 0.1f64..4.0,
        link in 1.0f64..100.0,
        samples in 500usize..20_000,
    ) {
        use comdml::simnet::{AgentProfile, AgentState};
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let slow = AgentState::new(AgentId(0), AgentProfile::new(cpus_slow, link), samples, 100);
        let fast = AgentState::new(AgentId(1), AgentProfile::new(cpus_fast, link), samples, 100);
        let solo = est.solo_time_s(&slow);
        let d = est.estimate(&slow, &fast, est.solo_time_s(&fast), link);
        prop_assert!(d.est_time_s <= solo + 1e-9);
        prop_assert!(d.est_time_s.is_finite());
    }
}
