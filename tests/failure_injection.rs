//! Failure injection: the decentralized design's resilience claims.
//! "It even adapts to extreme scenarios with poor links, allowing
//! independent training if needed" (§V-B.5) — verified by degrading worlds
//! mid-run.

use comdml::core::{ComDml, ComDmlConfig, PairingScheduler, TrainingTimeEstimator};
use comdml::cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml::simnet::{AgentId, AgentProfile, WorldConfig};

fn no_churn() -> ComDmlConfig {
    ComDmlConfig { churn: None, ..ComDmlConfig::default() }
}

#[test]
fn helper_link_death_forces_independent_training() {
    let mut world = WorldConfig::heterogeneous(10, 1).total_samples(50_000).build();
    let mut comdml = ComDml::new(no_churn());

    let before = comdml.run_round(&mut world, 0);
    assert!(before.num_offloads > 0, "healthy world should offload");

    // Every link dies.
    for a in world.agents_mut().iter_mut() {
        a.profile = AgentProfile::disconnected(a.profile.cpus);
    }
    let after = comdml.run_round(&mut world, 1);
    assert_eq!(after.num_offloads, 0, "no links, no offloading");
    assert_eq!(after.allreduce_s, 0.0, "no links, no aggregation");
    assert!(after.round_s().is_finite());
    // The round regresses to the straggler's solo time.
    assert!(after.compute_s > before.compute_s);
}

#[test]
fn single_agent_failure_does_not_stall_the_round() {
    let mut world = WorldConfig::heterogeneous(10, 2).total_samples(50_000).build();
    let mut comdml = ComDml::new(no_churn());

    // Kill the fastest agent's connectivity (a likely helper).
    let fastest = world
        .agents()
        .iter()
        .max_by(|a, b| a.profile.cpus.partial_cmp(&b.profile.cpus).unwrap())
        .map(|a| a.id)
        .unwrap();
    world.agents_mut()[fastest.0].profile =
        AgentProfile::disconnected(world.agent(fastest).profile.cpus);

    let outcome = comdml.run_round(&mut world, 0);
    assert!(outcome.round_s().is_finite());
    // The dead agent appears, trains alone, and is excluded from AllReduce.
    let dead_stats = outcome
        .agent_stats
        .iter()
        .find(|s| s.id == fastest)
        .expect("failed agent still trains locally");
    assert_eq!(dead_stats.comm_s, 0.0);
}

#[test]
fn scheduler_never_pairs_across_dead_links() {
    let spec = ModelSpec::resnet56();
    let profile = SplitProfile::new(&spec, 100);
    let cal = CostCalibration::default();
    let est = TrainingTimeEstimator::new(&spec, &profile, &cal);

    for seed in 0..10u64 {
        let mut world = WorldConfig::heterogeneous(12, seed).build();
        // Randomly kill a third of the agents' links.
        for i in 0..4 {
            let idx = (seed as usize + i * 3) % 12;
            let cpus = world.agents()[idx].profile.cpus;
            world.agents_mut()[idx].profile = AgentProfile::disconnected(cpus);
        }
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        for p in PairingScheduler::new().pair(&world, &ids, &est) {
            if let Some(f) = p.fast {
                assert!(
                    world.link_mbps(p.slow, f) > 0.0,
                    "seed {seed}: paired {} with {} over a dead link",
                    p.slow,
                    f
                );
            }
        }
    }
}

#[test]
fn run_survives_progressive_degradation() {
    // Links degrade round over round until nothing is left; the run must
    // complete with finite totals throughout.
    let mut world = WorldConfig::heterogeneous(8, 5).total_samples(40_000).build();
    let mut comdml = ComDml::new(no_churn());
    let mut total = 0.0;
    for r in 0..12 {
        if r % 3 == 2 {
            // Kill one more agent's link each time.
            let idx = r / 3;
            if idx < 8 {
                let cpus = world.agents()[idx].profile.cpus;
                world.agents_mut()[idx].profile = AgentProfile::disconnected(cpus);
            }
        }
        let outcome = comdml.run_round(&mut world, r);
        assert!(outcome.round_s().is_finite(), "round {r} must stay finite");
        total += outcome.round_s();
    }
    assert!(total.is_finite() && total > 0.0);
}

#[test]
fn empty_partitions_do_not_crash_real_training() {
    use comdml::core::{RealFleetConfig, RealSplitFleet};
    // Extreme Dirichlet skew can hand an agent (almost) no samples.
    let mut fleet = RealSplitFleet::new(RealFleetConfig {
        iid: false,
        alpha: 0.05,
        num_agents: 8,
        ..RealFleetConfig::default()
    });
    let report = fleet.run(2);
    assert_eq!(report.round_accuracies.len(), 2);
    assert!(report.round_accuracies.iter().all(|a| a.is_finite()));
}
