//! Integration tests of the discrete-event round engine: determinism,
//! exact equivalence of the synchronous wrapper with the legacy closed-form
//! simulation, failure-driven re-pairing, and the three aggregation modes
//! selectable from `ComDmlConfig`.

use comdml::collective::{AllReduceAlgorithm, CollectiveCost};
use comdml::core::{
    simulate_round, AggregationMode, ComDml, ComDmlConfig, Disruption, EventRound, PairRoundSim,
    Pairing, PairingScheduler, TrainingTimeEstimator,
};
use comdml::cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml::simnet::{Adjacency, AgentId, AgentProfile, AgentState, World, WorldConfig};

fn fixtures() -> (ModelSpec, SplitProfile, CostCalibration) {
    let spec = ModelSpec::resnet56();
    let profile = SplitProfile::new(&spec, 100);
    (spec, profile, CostCalibration::default())
}

/// Reference stats per agent: (id, train, comm, idle, finish).
type RefStats = Vec<(AgentId, f64, f64, f64, f64)>;

/// The pre-refactor closed-form round simulation, kept verbatim as the
/// reference the event engine must reproduce.
fn closed_form_round(
    world: &World,
    pairings: &[Pairing],
    estimator: &TrainingTimeEstimator<'_>,
    cal: &CostCalibration,
    algorithm: AllReduceAlgorithm,
) -> (RefStats, f64, f64) {
    let mut stats: RefStats = Vec::new();
    let mut compute_s = 0.0f64;
    for p in pairings {
        let slow = world.agent(p.slow);
        match p.fast {
            Some(fast_id) if p.offload > 0 => {
                let fast = world.agent(fast_id);
                let entry = estimator.profile().entry(p.offload).expect("profiled");
                let p_i = estimator.batches_per_s(slow);
                let p_j = estimator.batches_per_s(fast);
                let link = world.link_mbps(p.slow, fast_id);
                let sim = PairRoundSim {
                    n_slow_batches: slow.num_batches(),
                    n_fast_batches: fast.num_batches(),
                    slow_batch_s: entry.t_slow_rel / p_i,
                    fast_own_batch_s: 1.0 / p_j,
                    fast_guest_batch_s: entry.t_fast_rel / p_j,
                    transfer_s: cal.transfer_time_s(entry.nu_bytes_per_batch, link),
                    suffix_return_s: cal.transfer_time_s(entry.suffix_param_bytes, link),
                };
                let t = sim.run();
                compute_s = compute_s.max(t.pair_done_s);
                stats.push((p.slow, t.slow_busy_s, 0.0, 0.0, t.pair_done_s));
                stats.push((fast_id, t.fast_busy_s, t.comm_s, 0.0, t.pair_done_s));
            }
            _ => {
                let solo = estimator.solo_time_s(slow);
                compute_s = compute_s.max(solo);
                stats.push((p.slow, solo, 0.0, 0.0, solo));
            }
        }
    }
    for s in &mut stats {
        s.3 = (compute_s - s.1 - s.2).max(0.0);
    }
    let connected: Vec<AgentId> =
        stats.iter().map(|s| s.0).filter(|&id| world.agent(id).profile.is_connected()).collect();
    let allreduce_s = if connected.len() > 1 {
        let min_link = connected
            .iter()
            .map(|&id| world.agent(id).profile.link_mbps)
            .fold(f64::INFINITY, f64::min);
        CollectiveCost::new(algorithm, connected.len(), estimator.profile().model_bytes())
            .time_s(cal.bytes_per_s(min_link), cal.link_latency_s)
    } else {
        0.0
    };
    (stats, compute_s, allreduce_s)
}

#[test]
fn synchronous_wrapper_matches_closed_form_within_1e9() {
    let (spec, profile, cal) = fixtures();
    let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
    for seed in 0..12u64 {
        let world = WorldConfig::heterogeneous(14, seed).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let pairings = PairingScheduler::new().pair(&world, &ids, &est);
        let outcome =
            simulate_round(&world, &pairings, &est, &cal, AllReduceAlgorithm::HalvingDoubling);
        let (ref_stats, ref_compute, ref_allreduce) =
            closed_form_round(&world, &pairings, &est, &cal, AllReduceAlgorithm::HalvingDoubling);

        assert!(
            (outcome.compute_s - ref_compute).abs() < 1e-9,
            "seed {seed}: compute {} vs {}",
            outcome.compute_s,
            ref_compute
        );
        assert!((outcome.allreduce_s - ref_allreduce).abs() < 1e-9, "seed {seed}");
        assert_eq!(outcome.agent_stats.len(), ref_stats.len(), "seed {seed}");
        for (got, want) in outcome.agent_stats.iter().zip(ref_stats.iter()) {
            assert_eq!(got.id, want.0, "seed {seed}: stat order");
            assert!((got.train_s - want.1).abs() < 1e-9, "seed {seed}: train {got:?}");
            assert!((got.comm_s - want.2).abs() < 1e-9, "seed {seed}: comm {got:?}");
            assert!((got.idle_s - want.3).abs() < 1e-9, "seed {seed}: idle {got:?}");
            assert!((got.finish_s - want.4).abs() < 1e-9, "seed {seed}: finish {got:?}");
        }
    }
}

#[test]
fn event_rounds_are_deterministic_under_identical_seeds() {
    // Event ordering is tie-broken by insertion order, so two identical
    // configurations must replay bit-for-bit — including under disruptions
    // and non-synchronous aggregation.
    let run = |mode| {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(16, 99).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let pairings = PairingScheduler::new().pair(&world, &ids, &est);
        let disruptions = vec![
            Disruption::Fail { agent: ids[3], at_s: 50.0 },
            Disruption::Join { agent: ids[5], at_s: 10.0 },
        ];
        EventRound::new(&world, &pairings, &est, &cal, AllReduceAlgorithm::Ring)
            .mode(mode)
            .disruptions(disruptions)
            .run()
    };
    for mode in [
        AggregationMode::Synchronous,
        AggregationMode::SemiSynchronous { quorum: 0.6, staleness_s: 1e6 },
        AggregationMode::Asynchronous,
    ] {
        let a = run(mode);
        let b = run(mode);
        assert_eq!(a, b, "identical runs must be identical under {mode:?}");
    }
}

/// A world with one 0.2-CPU straggler, one 4-CPU helper and three 2-CPU
/// bystanders (fast enough to finish early, eligible as replacements).
fn failure_world() -> World {
    let agents = vec![
        AgentState::new(AgentId(0), AgentProfile::new(0.2, 100.0), 5000, 100),
        AgentState::new(AgentId(1), AgentProfile::new(4.0, 100.0), 5000, 100),
        AgentState::new(AgentId(2), AgentProfile::new(2.0, 100.0), 2000, 100),
        AgentState::new(AgentId(3), AgentProfile::new(2.0, 100.0), 2000, 100),
        AgentState::new(AgentId(4), AgentProfile::new(2.0, 100.0), 2000, 100),
    ];
    let k = agents.len();
    let matrix: Vec<Vec<bool>> = (0..k).map(|i| (0..k).map(|j| i != j).collect()).collect();
    World::from_parts(agents, Adjacency::from_matrix(matrix), 7)
}

#[test]
fn helper_failure_triggers_repair_onto_idle_agent() {
    let (spec, profile, cal) = fixtures();
    let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
    let world = failure_world();
    let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
    let pairings = PairingScheduler::new().pair(&world, &ids, &est);
    let pair = pairings.iter().find(|p| p.fast.is_some()).expect("straggler pairs");
    assert_eq!(pair.slow, AgentId(0));
    let helper = pair.fast.unwrap();

    let healthy = EventRound::new(&world, &pairings, &est, &cal, AllReduceAlgorithm::Ring).run();
    // Kill the helper midway through the joint task.
    let fail_at = healthy.outcome.compute_s * 0.5;
    let report = EventRound::new(&world, &pairings, &est, &cal, AllReduceAlgorithm::Ring)
        .disruptions(vec![Disruption::Fail { agent: helper, at_s: fail_at }])
        .run();

    assert_eq!(report.repairs, 1, "an idle bystander must take over: {report:?}");
    assert_eq!(report.local_fallbacks, 0);
    // The drafted bystander appears in two pairings (its own and the one it
    // rescued) but must be reported exactly once.
    let mut ids: Vec<_> = report.outcome.agent_stats.iter().map(|s| s.id).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), report.outcome.agent_stats.len(), "duplicate agent stats");
    // The round still completes, later than the healthy run but far sooner
    // than the straggler training alone from scratch.
    assert!(report.outcome.compute_s >= healthy.outcome.compute_s - 1e-9);
    assert!(report.outcome.compute_s.is_finite());
    let solo = est.solo_time_s(world.agent(AgentId(0)));
    assert!(
        report.outcome.compute_s < solo,
        "re-paired round {} must still beat the solo straggler {solo}",
        report.outcome.compute_s
    );
}

#[test]
fn helper_failure_without_replacement_falls_back_to_local_training() {
    let (spec, profile, cal) = fixtures();
    let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
    // Only the straggler and its helper exist: nobody can take over.
    let agents = vec![
        AgentState::new(AgentId(0), AgentProfile::new(0.2, 100.0), 5000, 100),
        AgentState::new(AgentId(1), AgentProfile::new(4.0, 100.0), 5000, 100),
    ];
    let world = World::from_parts(
        agents,
        Adjacency::from_matrix(vec![vec![false, true], vec![true, false]]),
        3,
    );
    let pairings = PairingScheduler::new().pair(&world, &[AgentId(0), AgentId(1)], &est);
    assert!(pairings[0].fast.is_some());
    let healthy = EventRound::new(&world, &pairings, &est, &cal, AllReduceAlgorithm::Ring).run();
    let report = EventRound::new(&world, &pairings, &est, &cal, AllReduceAlgorithm::Ring)
        .disruptions(vec![Disruption::Fail {
            agent: AgentId(1),
            at_s: healthy.outcome.compute_s * 0.25,
        }])
        .run();
    assert_eq!(report.repairs, 0);
    assert_eq!(report.local_fallbacks, 1, "{report:?}");
    assert!(report.outcome.compute_s > healthy.outcome.compute_s);
}

#[test]
fn mid_round_joiner_can_host_a_repair() {
    let (spec, profile, cal) = fixtures();
    let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
    // Straggler + helper, plus a third agent that only joins mid-round.
    let agents = vec![
        AgentState::new(AgentId(0), AgentProfile::new(0.2, 100.0), 5000, 100),
        AgentState::new(AgentId(1), AgentProfile::new(4.0, 100.0), 5000, 100),
        AgentState::new(AgentId(2), AgentProfile::new(4.0, 100.0), 2000, 100),
    ];
    let k = agents.len();
    let matrix: Vec<Vec<bool>> = (0..k).map(|i| (0..k).map(|j| i != j).collect()).collect();
    let world = World::from_parts(agents, Adjacency::from_matrix(matrix), 5);
    // Only agents 0 and 1 participate this round; agent 2 is offline.
    let pairings = PairingScheduler::new().pair(&world, &[AgentId(0), AgentId(1)], &est);
    assert_eq!(pairings[0].fast, Some(AgentId(1)));
    let healthy = EventRound::new(&world, &pairings, &est, &cal, AllReduceAlgorithm::Ring).run();
    let fail_at = healthy.outcome.compute_s * 0.5;
    let report = EventRound::new(&world, &pairings, &est, &cal, AllReduceAlgorithm::Ring)
        .disruptions(vec![
            Disruption::Join { agent: AgentId(2), at_s: fail_at * 0.5 },
            Disruption::Fail { agent: AgentId(1), at_s: fail_at },
        ])
        .run();
    assert_eq!(report.repairs, 1, "the joiner must be drafted: {report:?}");
}

#[test]
fn synchronous_mode_from_config_matches_simulate_round() {
    let world = WorldConfig::heterogeneous(12, 21).build();
    let mut engine = ComDml::new(ComDmlConfig {
        churn: None,
        aggregation: AggregationMode::Synchronous,
        ..ComDmlConfig::default()
    });
    let mut w = world.clone();
    let outcome = engine.run_round(&mut w, 0);
    let report = engine.last_report().expect("event report recorded");
    assert_eq!(report.outcome, outcome);
    assert!(report.spill_s.iter().all(|&s| s == 0.0), "a barrier leaves no spill");
    assert_eq!(report.repairs, 0);
}

#[test]
fn semi_synchronous_mode_from_config_skips_stragglers() {
    let world = WorldConfig::heterogeneous(20, 22).build();
    let sync_round = ComDml::new(ComDmlConfig { churn: None, ..ComDmlConfig::default() })
        .run_round(&mut world.clone(), 0);

    let mut engine = ComDml::new(ComDmlConfig {
        churn: None,
        aggregation: AggregationMode::SemiSynchronous { quorum: 0.5, staleness_s: 1e9 },
        ..ComDmlConfig::default()
    });
    let mut w = world.clone();
    let outcome = engine.run_round(&mut w, 0);
    let report = engine.last_report().unwrap().clone();

    assert!(
        outcome.round_s() <= sync_round.round_s() + 1e-9,
        "a 50% quorum cannot be slower than the barrier: {} vs {}",
        outcome.round_s(),
        sync_round.round_s()
    );
    assert!(report.cohort.len() < 20, "someone must miss the quorum cohort: {:?}", report.cohort);
    assert!(
        report.spill_s.iter().any(|&s| s > 0.0),
        "stragglers must carry work into the next round"
    );
    // The carry-over is consumed by the next round.
    let second = engine.run_round(&mut w, 1);
    assert!(second.round_s().is_finite() && second.round_s() > 0.0);
}

#[test]
fn asynchronous_mode_from_config_advances_at_mean_pace() {
    let world = WorldConfig::heterogeneous(20, 23).build();
    let sync_round = ComDml::new(ComDmlConfig { churn: None, ..ComDmlConfig::default() })
        .run_round(&mut world.clone(), 0);

    let mut engine = ComDml::new(ComDmlConfig {
        churn: None,
        aggregation: AggregationMode::Asynchronous,
        ..ComDmlConfig::default()
    });
    let mut w = world.clone();
    let outcome = engine.run_round(&mut w, 0);
    let report = engine.last_report().unwrap();
    assert!(
        outcome.compute_s < sync_round.compute_s,
        "mean completion {} must undercut the barrier {}",
        outcome.compute_s,
        sync_round.compute_s
    );
    assert!(report.spill_s.iter().any(|&s| s > 0.0), "the straggler's tail spills over");

    // Multi-round: async total time stays at or below the barrier total.
    let mut sync_engine = ComDml::new(ComDmlConfig { churn: None, ..ComDmlConfig::default() });
    let mut async_engine = ComDml::new(ComDmlConfig {
        churn: None,
        aggregation: AggregationMode::Asynchronous,
        ..ComDmlConfig::default()
    });
    let mut w_sync = world.clone();
    let mut w_async = world.clone();
    let mut total_sync = 0.0;
    let mut total_async = 0.0;
    for r in 0..5 {
        total_sync += sync_engine.run_round(&mut w_sync, r).round_s();
        total_async += async_engine.run_round(&mut w_async, r).round_s();
    }
    assert!(
        total_async <= total_sync + 1e-9,
        "async pipeline {total_async} must not exceed the barrier {total_sync}"
    );
}
