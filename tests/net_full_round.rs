//! A complete ComDML round over real TCP with real gradient descent —
//! the whole §III-B/§IV-B data path end to end:
//!
//! 1. profile exchange and pairing handshake,
//! 2. the slow agent trains its prefix + auxiliary head while streaming
//!    detached activations (and labels) to the fast agent,
//! 3. the fast agent trains the offloaded suffix on the incoming stream
//!    (in parallel with its own local model),
//! 4. the suffix parameters come back, the slow agent reunites its model,
//! 5. both agents average their full models.
//!
//! Assertions: both sides' losses fall, the reunited model beats chance,
//! and both agents finish with identical parameters.

use comdml::data::{DatasetSpec, SyntheticImageDataset};
use comdml::net::{pairing_handshake, FramedStream, Message, PairOutcome};
use comdml::nn::{accuracy, models, AuxHead, CrossEntropyLoss, Sequential, Trainer};
use comdml::tensor::{ParamVec, SgdMomentum, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::{TcpListener, TcpStream};

const OFFLOAD: usize = 3;
const ROUNDS: usize = 4;
const BATCHES_PER_ROUND: usize = 8;
const BATCH: usize = 24;

fn build_model(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    models::tiny_cnn(1, 4, &mut rng)
}

fn flatten(params: &[Tensor]) -> Vec<f32> {
    ParamVec::flatten(params).values().to_vec()
}

/// The slow agent: prefix + aux head locally, suffix remote.
fn slow_agent(addr: std::net::SocketAddr) -> (Vec<f32>, f32, Vec<f32>) {
    let mut stream = FramedStream::new(TcpStream::connect(addr).unwrap());

    // Pairing handshake carries the scheduler's decision.
    let outcome = pairing_handshake(&mut stream, 0, OFFLOAD as u32).unwrap();
    assert_eq!(outcome, PairOutcome::Accepted { fast_id: 1 });

    let model = build_model(42);
    let n_layers = model.len();
    let (mut prefix, suffix) = model.split_at(n_layers - OFFLOAD).unwrap();
    // The suffix's *shapes* stay known so the returned parameters can be
    // reassembled; the fast agent trains the actual values.
    let suffix_shapes: Vec<Vec<usize>> =
        suffix.parameters().iter().map(|p| p.shape().to_vec()).collect();

    let mut rng = StdRng::seed_from_u64(7);
    let mut aux: Option<AuxHead> = None;
    let mut opt = SgdMomentum::new(0.05, 0.9);
    let data = SyntheticImageDataset::generate(&DatasetSpec::miniature(), 3);

    let mut slow_losses = Vec::new();
    let mut final_suffix: Vec<f32> = Vec::new();
    for round in 0..ROUNDS {
        let mut round_loss = 0.0f32;
        for b in 0..BATCHES_PER_ROUND {
            let idx: Vec<usize> = (0..BATCH)
                .map(|i| (round * BATCHES_PER_ROUND * BATCH + b * BATCH + i) % data.len())
                .collect();
            let (x, y) = data.batch(&idx);
            // Local-loss training of the prefix.
            let z = prefix.forward(&x).unwrap();
            if aux.is_none() {
                aux = Some(AuxHead::for_activation(z.shape(), 4, &mut rng).unwrap());
            }
            let head = aux.as_mut().unwrap();
            let logits = head.forward(&z).unwrap();
            let (loss, grad) = CrossEntropyLoss::evaluate(&logits, &y).unwrap();
            round_loss += loss;
            let gz = head.backward(&grad).unwrap();
            prefix.backward(&gz).unwrap();
            let mut params = prefix.parameters();
            params.extend(head.parameters());
            let mut grads = prefix.gradients();
            grads.extend(head.gradients());
            opt.step(&mut params, &grads).unwrap();
            let n = prefix.num_param_tensors();
            prefix.set_parameters(&params[..n]).unwrap();
            head.set_parameters(&params[n..]).unwrap();

            // Stream the *detached* activation across the cut.
            stream
                .send(&Message::Activations {
                    batch_idx: b as u32,
                    data: z.data().to_vec(),
                    labels: y.iter().map(|&v| v as u32).collect(),
                })
                .unwrap();
        }
        slow_losses.push(round_loss / BATCHES_PER_ROUND as f32);
        stream.send(&Message::Done).unwrap();

        // Suffix parameters come home; reunite the model and aggregate.
        let Message::SuffixParams { data } = stream.expect("SuffixParams").unwrap() else {
            unreachable!("expect checked")
        };
        let suffix_params =
            ParamVec::from_parts(data, suffix_shapes.clone()).unwrap().unflatten().unwrap();
        let mut full = flatten(&prefix.parameters());
        full.extend(flatten(&suffix_params));

        // 2-agent aggregation: exchange full models, average.
        stream.send(&Message::ModelChunk { step: round as u32, data: full.clone() }).unwrap();
        let Message::ModelChunk { data: theirs, .. } = stream.expect("ModelChunk").unwrap() else {
            unreachable!("expect checked")
        };
        let averaged: Vec<f32> =
            full.iter().zip(theirs.iter()).map(|(a, b)| 0.5 * (a + b)).collect();
        // Write the averaged prefix back; keep the averaged suffix as the
        // current global suffix (the fast agent syncs it identically).
        let n_prefix: usize = prefix.parameters().iter().map(Tensor::len).sum();
        final_suffix = averaged[n_prefix..].to_vec();
        let shapes: Vec<Vec<usize>> =
            prefix.parameters().iter().map(|p| p.shape().to_vec()).collect();
        let new_prefix = ParamVec::from_parts(averaged[..n_prefix].to_vec(), shapes)
            .unwrap()
            .unflatten()
            .unwrap();
        prefix.set_parameters(&new_prefix).unwrap();
    }

    assert!(
        slow_losses.last().unwrap() < &slow_losses[0],
        "slow-side loss must fall: {slow_losses:?}"
    );

    // Return the reunited model for the final cross-check.
    let mut full = flatten(&prefix.parameters());
    full.extend(final_suffix);
    (full, *slow_losses.last().unwrap(), flatten(&prefix.parameters()))
}

/// The fast agent: own model + the guest suffix.
fn fast_agent(listener: TcpListener) -> (Vec<f32>, f32) {
    let (sock, _) = listener.accept().unwrap();
    let mut stream = FramedStream::new(sock);

    // Accept the pairing.
    let Message::PairRequest { offload, .. } = stream.expect("PairRequest").unwrap() else {
        unreachable!("expect checked")
    };
    assert_eq!(offload as usize, OFFLOAD);
    stream.send(&Message::PairAccept { fast_id: 1 }).unwrap();

    // The guest suffix: same architecture, same init seed as the slow side.
    let model = build_model(42);
    let n_layers = model.len();
    let (prefix, mut suffix) = model.split_at(n_layers - OFFLOAD).unwrap();
    let n_prefix_scalars: usize = prefix.parameters().iter().map(Tensor::len).sum();

    // The fast agent's own local model and data (trained in parallel).
    let mut own = Trainer::new(build_model(42), 0.05, 0.9);
    let own_data = SyntheticImageDataset::generate(&DatasetSpec::miniature(), 11);

    let mut opt = SgdMomentum::new(0.05, 0.9);
    let mut fast_losses = Vec::new();
    for _round in 0..ROUNDS {
        let mut round_loss = 0.0f32;
        let mut batches = 0usize;
        loop {
            match stream.recv().unwrap() {
                Message::Activations { data, labels, .. } => {
                    let batch = labels.len();
                    let feat = data.len() / batch;
                    // Reconstruct the spatial activation shape [b, c, h, w]
                    // from the known cut (tiny_cnn cut: [b, 16, 4, 4]).
                    let z = Tensor::from_vec(data, &[batch, 16, feat / 16 / 4, 4]).unwrap();
                    let y: Vec<usize> = labels.iter().map(|&v| v as usize).collect();
                    let out = suffix.forward(&z).unwrap();
                    let (loss, grad) = CrossEntropyLoss::evaluate(&out, &y).unwrap();
                    round_loss += loss;
                    batches += 1;
                    suffix.backward(&grad).unwrap();
                    let mut params = suffix.parameters();
                    let grads = suffix.gradients();
                    opt.step(&mut params, &grads).unwrap();
                    suffix.set_parameters(&params).unwrap();

                    // Interleave one batch of own training, as §III-B's
                    // "simultaneously, each faster agent also performs the
                    // model training using its local dataset".
                    let idx: Vec<usize> =
                        (0..BATCH).map(|i| (batches * BATCH + i) % own_data.len()).collect();
                    let (ox, oy) = own_data.batch(&idx);
                    own.step(&ox, &oy).unwrap();
                }
                Message::Done => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        fast_losses.push(round_loss / batches.max(1) as f32);

        // Ship the trained suffix home.
        stream.send(&Message::SuffixParams { data: flatten(&suffix.parameters()) }).unwrap();

        // Aggregation exchange (the fast agent contributes its own model).
        let own_full = flatten(&own.model().parameters());
        let Message::ModelChunk { data: theirs, step } = stream.expect("ModelChunk").unwrap()
        else {
            unreachable!("expect checked")
        };
        stream.send(&Message::ModelChunk { step, data: own_full.clone() }).unwrap();
        let averaged: Vec<f32> =
            own_full.iter().zip(theirs.iter()).map(|(a, b)| 0.5 * (a + b)).collect();
        let shapes: Vec<Vec<usize>> =
            own.model().parameters().iter().map(|p| p.shape().to_vec()).collect();
        let new_own = ParamVec::from_parts(averaged.clone(), shapes).unwrap().unflatten().unwrap();
        own.model_mut().set_parameters(&new_own).unwrap();
        // Keep the guest suffix in sync with the aggregated global model.
        let suffix_shapes: Vec<Vec<usize>> =
            suffix.parameters().iter().map(|p| p.shape().to_vec()).collect();
        let new_suffix = ParamVec::from_parts(averaged[n_prefix_scalars..].to_vec(), suffix_shapes)
            .unwrap()
            .unflatten()
            .unwrap();
        suffix.set_parameters(&new_suffix).unwrap();
    }

    assert!(
        fast_losses.last().unwrap() < &fast_losses[0],
        "fast-side loss must fall: {fast_losses:?}"
    );
    (flatten(&own.model().parameters()), *fast_losses.last().unwrap())
}

#[test]
fn full_comdml_round_over_tcp() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let fast = std::thread::spawn(move || fast_agent(listener));
    let slow = std::thread::spawn(move || slow_agent(addr));

    let (slow_model, slow_loss, _prefix) = slow.join().unwrap();
    let (fast_model, fast_loss) = fast.join().unwrap();
    assert!(slow_loss.is_finite() && fast_loss.is_finite());

    // After the final aggregation both agents hold the same global model.
    assert_eq!(slow_model.len(), fast_model.len());
    for (a, b) in slow_model.iter().zip(fast_model.iter()) {
        assert!((a - b).abs() < 1e-4, "models diverged: {a} vs {b}");
    }

    // And the reunited model must beat chance on held-out data.
    let mut eval = build_model(42);
    let shapes: Vec<Vec<usize>> = eval.parameters().iter().map(|p| p.shape().to_vec()).collect();
    let params = ParamVec::from_parts(slow_model, shapes).unwrap().unflatten().unwrap();
    eval.set_parameters(&params).unwrap();
    let eval_data = SyntheticImageDataset::generate(&DatasetSpec::miniature(), 99);
    let idx: Vec<usize> = (0..128).collect();
    let (x, y) = eval_data.batch(&idx);
    let acc = accuracy(&mut eval, &x, &y).unwrap();
    assert!(acc > 0.45, "4-class accuracy should beat chance clearly, got {acc}");
}
