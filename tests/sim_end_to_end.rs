//! End-to-end simulation tests spanning core, baselines, simnet and cost:
//! the paper's headline claims must hold as *invariants* of the system.

use comdml::baselines::{AllReduceDml, BaselineConfig, BrainTorrent, FedAvg, GossipLearning};
use comdml::core::{
    time_to_accuracy, ChurnPolicy, ComDml, ComDmlConfig, LearningCurve, RoundEngine,
};
use comdml::simnet::{Topology, WorldConfig};

fn no_churn_base() -> BaselineConfig {
    BaselineConfig { churn: None, ..BaselineConfig::default() }
}

fn no_churn_comdml() -> ComDmlConfig {
    ComDmlConfig { churn: None, ..ComDmlConfig::default() }
}

#[test]
fn comdml_beats_every_synchronous_baseline_on_heterogeneous_worlds() {
    let curve = LearningCurve::cifar10(true);
    for seed in [1u64, 7, 42] {
        let world = WorldConfig::heterogeneous(10, seed).total_samples(50_000).build();
        let mut comdml = ComDml::new(no_churn_comdml());
        let t_comdml = time_to_accuracy(&mut comdml, &world, &curve, 0.85);

        let baselines: Vec<Box<dyn RoundEngine>> = vec![
            Box::new(FedAvg::new(no_churn_base())),
            Box::new(AllReduceDml::new(no_churn_base())),
            Box::new(BrainTorrent::new(no_churn_base())),
        ];
        for mut b in baselines {
            let t = time_to_accuracy(b.as_mut(), &world, &curve, 0.85);
            assert!(
                t_comdml.total_time_s < t.total_time_s,
                "seed {seed}: ComDML ({:.0}s) should beat {} ({:.0}s)",
                t_comdml.total_time_s,
                t.method,
                t.total_time_s
            );
        }
    }
}

#[test]
fn comdml_beats_gossip_on_average() {
    // Gossip's barrier-free rounds can approach ComDML on unlucky link
    // assignments; across seeds ComDML must win clearly.
    let curve = LearningCurve::cifar10(true);
    let (mut total_comdml, mut total_gossip) = (0.0, 0.0);
    for seed in [1u64, 7, 42, 99, 123] {
        let world = WorldConfig::heterogeneous(10, seed).total_samples(50_000).build();
        let mut comdml = ComDml::new(no_churn_comdml());
        let mut gossip = GossipLearning::new(no_churn_base());
        total_comdml += time_to_accuracy(&mut comdml, &world, &curve, 0.85).total_time_s;
        total_gossip += time_to_accuracy(&mut gossip, &world, &curve, 0.85).total_time_s;
    }
    assert!(
        total_comdml < 0.9 * total_gossip,
        "ComDML ({total_comdml:.0}s) should beat gossip ({total_gossip:.0}s) by >10% on average"
    );
}

#[test]
fn comdml_reduction_vs_fedavg_is_large() {
    // Paper Table II: ~70% on IID CIFAR-10. Our reproduction lands between
    // ~35% (straggler stuck on a 10 Mbps link, where communication — not the
    // scheduler — binds) and ~55% (decent links). Require a >30% mean, which
    // no baseline achieves.
    let curve = LearningCurve::cifar10(true);
    let mut reductions = Vec::new();
    for seed in [1u64, 7, 42, 99] {
        let world = WorldConfig::heterogeneous(10, seed).total_samples(50_000).build();
        let mut comdml = ComDml::new(no_churn_comdml());
        let mut fedavg = FedAvg::new(no_churn_base());
        let a = time_to_accuracy(&mut comdml, &world, &curve, 0.90).total_time_s;
        let b = time_to_accuracy(&mut fedavg, &world, &curve, 0.90).total_time_s;
        reductions.push(1.0 - a / b);
    }
    let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(mean > 0.30, "mean reduction {mean:.2} should exceed 30%: {reductions:?}");
}

#[test]
fn homogeneous_world_gains_little_from_balancing() {
    // When every agent is identical there are no stragglers to fix.
    let mut world = WorldConfig::heterogeneous(10, 3).build();
    for a in world.agents_mut().iter_mut() {
        a.profile = comdml::simnet::AgentProfile::new(1.0, 50.0);
        a.num_samples = 5_000;
    }
    let curve = LearningCurve::cifar10(true);
    let mut comdml = ComDml::new(no_churn_comdml());
    let mut allreduce = AllReduceDml::new(no_churn_base());
    let a = time_to_accuracy(&mut comdml, &world, &curve, 0.85).total_time_s;
    let b = time_to_accuracy(&mut allreduce, &world, &curve, 0.85).total_time_s;
    assert!(
        (a - b).abs() / b < 0.05,
        "homogeneous fleets should tie: ComDML {a:.0}s vs AllReduce {b:.0}s"
    );
}

#[test]
fn churn_does_not_break_comdml() {
    let world = WorldConfig::heterogeneous(20, 11).total_samples(100_000).build();
    let mut comdml = ComDml::new(ComDmlConfig {
        churn: Some(ChurnPolicy { interval: 3, fraction: 0.5 }),
        ..ComDmlConfig::default()
    });
    let report = comdml.run(&world, 0.85);
    assert!(report.total_time_s.is_finite() && report.total_time_s > 0.0);
    assert!(report.mean_offloads > 0.0, "scheduler keeps pairing through churn");
}

#[test]
fn sparse_topologies_degrade_gracefully() {
    let curve = LearningCurve::cifar10(true);
    let mut last = 0.0;
    for p in [1.0, 0.2, 0.02] {
        let world = WorldConfig::heterogeneous(30, 5)
            .total_samples(150_000)
            .topology(Topology::random(p))
            .build();
        let mut comdml = ComDml::new(no_churn_comdml());
        let t = time_to_accuracy(&mut comdml, &world, &curve, 0.85).total_time_s;
        assert!(t.is_finite() && t > 0.0, "p={p} must still train");
        assert!(
            t >= last * 0.95,
            "sparser graphs should not get meaningfully faster: p={p}, {t:.0} vs {last:.0}"
        );
        last = t;
    }
}

#[test]
fn disconnected_world_trains_independently() {
    // p = 0: no links at all. Everybody trains alone; no offloads, no
    // aggregation — and nothing hangs or divides by zero.
    let world = WorldConfig::heterogeneous(8, 9).topology(Topology::random(0.0)).build();
    let mut comdml = ComDml::new(no_churn_comdml());
    let mut w = world.clone();
    let outcome = comdml.run_round(&mut w, 0);
    assert_eq!(outcome.num_offloads, 0);
    assert!(outcome.round_s().is_finite());
}

#[test]
fn resnet110_takes_longer_than_resnet56() {
    let world = WorldConfig::heterogeneous(10, 13).build();
    let curve56 = LearningCurve::cifar10(true);
    let curve110 = curve56.deeper();
    let mut c56 = ComDml::new(no_churn_comdml());
    let mut c110 = ComDml::new(ComDmlConfig {
        model: comdml::cost::ModelSpec::resnet110(),
        curve: curve110,
        churn: None,
        ..ComDmlConfig::default()
    });
    let t56 = time_to_accuracy(&mut c56, &world, &curve56, 0.80).total_time_s;
    let t110 = time_to_accuracy(&mut c110, &world, &curve110, 0.80).total_time_s;
    assert!(t110 > 1.5 * t56, "the deeper model should cost clearly more: {t110:.0} vs {t56:.0}");
}

#[test]
fn gossip_trades_cheap_rounds_for_more_rounds() {
    let world = WorldConfig::heterogeneous(10, 17).build();
    let curve = LearningCurve::cifar10(true);
    let mut gossip = GossipLearning::new(no_churn_base());
    let mut fedavg = FedAvg::new(no_churn_base());
    let g = time_to_accuracy(&mut gossip, &world, &curve, 0.85);
    let f = time_to_accuracy(&mut fedavg, &world, &curve, 0.85);
    assert!(g.rounds > f.rounds, "gossip needs more rounds");
    assert!(g.mean_round_s < f.mean_round_s, "gossip rounds are cheaper");
}
