//! A dynamic 20-agent fleet: resource profiles churn mid-training and the
//! decentralized scheduler re-pairs agents on the fly (§IV-A's motivation
//! for *dynamic* pairing).
//!
//! ```sh
//! cargo run --example heterogeneous_fleet
//! ```

use comdml::core::{ChurnPolicy, ComDml, ComDmlConfig};
use comdml::simnet::WorldConfig;

fn main() {
    let mut world = WorldConfig::heterogeneous(20, 7).total_samples(100_000).build();
    let mut comdml = ComDml::new(ComDmlConfig {
        churn: Some(ChurnPolicy { interval: 5, fraction: 0.3 }),
        ..ComDmlConfig::default()
    });

    println!("round | time (s) | offloading pairs | straggler idle share");
    for r in 0..15 {
        let outcome = comdml.run_round(&mut world, r);
        let idle_share = outcome.total_idle_s()
            / (outcome.compute_s * outcome.agent_stats.len() as f64).max(1e-9);
        println!(
            "{:>5} | {:>8.1} | {:>16} | {:>19.1}%{}",
            r,
            outcome.round_s(),
            outcome.num_offloads,
            idle_share * 100.0,
            if r > 0 && r % 5 == 0 { "   <- profiles churned" } else { "" }
        );
    }

    println!(
        "\nThe scheduler re-pairs after every churn event; round times stay \
         balanced instead of degrading with stale pairings."
    );
}
