//! Real local-loss split training end to end: four agents, two of them
//! offloading three layers, training a real CNN with real gradients on the
//! miniature synthetic dataset, aggregating with a real AllReduce.
//!
//! ```sh
//! cargo run --example real_split_training
//! ```

use comdml::core::{RealFleetConfig, RealSplitFleet};

fn main() {
    let mut fleet = RealSplitFleet::new(RealFleetConfig {
        num_agents: 4,
        offload: 3,
        iid: true,
        ..RealFleetConfig::default()
    });
    println!("training {} agents (odd ranks offload 3 layers)…\n", fleet.num_agents());
    let report = fleet.run(10);

    println!("round | slow-side loss | fast-side loss | global accuracy");
    for (r, acc) in report.round_accuracies.iter().enumerate() {
        println!(
            "{:>5} | {:>14.4} | {:>14.4} | {:>14.1}%",
            r + 1,
            report.slow_losses[r],
            report.fast_losses[r],
            acc * 100.0
        );
    }
    println!(
        "\nboth sides converge (Theorem 1) and the aggregated global model \
         reaches {:.1}% accuracy",
        report.final_accuracy() * 100.0
    );
}
