//! A real TCP cluster of five peers on localhost: profile broadcast
//! around the ring, a pairing handshake, and a genuine ring AllReduce over
//! sockets, one OS thread per peer.
//!
//! ```sh
//! cargo run --example p2p_cluster
//! ```

use comdml::net::{spawn_ring, Message};

fn main() {
    let k = 5;
    let cluster = spawn_ring(k).expect("localhost cluster");
    println!("spawned a ring of {k} peers\n");

    // Every node broadcasts its profile one hop and reports what it heard,
    // then contributes rank-dependent parameters to a ring AllReduce.
    let handles: Vec<_> = cluster
        .into_iter()
        .map(|mut node| {
            std::thread::spawn(move || {
                let rank = node.rank();
                let profile = Message::Profile {
                    agent_id: rank as u32,
                    batches_per_s: 1.0 + rank as f64,
                    solo_time_s: 100.0 / (1.0 + rank as f64),
                };
                node.send_next(&profile).expect("send profile");
                let heard = node.recv_prev().expect("recv profile");
                if let Message::Profile { agent_id, solo_time_s, .. } = heard {
                    println!(
                        "peer {rank}: neighbour agent#{agent_id} reports solo time {solo_time_s:.1}s"
                    );
                }

                // Model aggregation: the element-wise mean must appear at
                // every peer.
                let params = vec![rank as f32 * 10.0; 4];
                let avg = node.allreduce(params).expect("allreduce");
                (rank, avg)
            })
        })
        .collect();

    println!();
    for h in handles {
        let (rank, avg) = h.join().expect("peer task");
        println!("peer {rank}: aggregated model = {avg:?} (expected mean 20.0)");
        assert!((avg[0] - 20.0).abs() < 1e-5);
    }
    println!("\nall peers converged to the same aggregated model — no server involved");
}
