//! Beyond CNNs: scheduling a BERT-class transformer (§V-A claims ComDML
//! "can effectively support various models, from MLPs and CNNs to large
//! language models (LLMs) like BERT"). Encoder layers are homogeneous, so
//! the split point search reduces to balancing layer counts against the
//! constant [seq, hidden] activation payload.
//!
//! ```sh
//! cargo run --example bert_offload
//! ```

use comdml::core::{PairingScheduler, TrainingTimeEstimator};
use comdml::cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml::simnet::{Adjacency, AgentId, AgentProfile, AgentState, World};

fn main() {
    let spec = ModelSpec::bert_base(128, 2);
    println!(
        "model: {} ({} encoder blocks + classifier, {:.1} M params, {:.1} GFLOPs/sample fwd)\n",
        spec.name(),
        spec.num_weighted_layers() - 1,
        spec.num_params() as f64 / 1e6,
        spec.fwd_flops_per_sample() / 1e9
    );

    let profile = SplitProfile::new(&spec, 8); // batch 8 sequences
    let cal = CostCalibration::default();
    let est = TrainingTimeEstimator::new(&spec, &profile, &cal);

    println!("split profile (activations crossing the cut are [128, 768] token states):");
    for m in [1usize, 4, 8, 12] {
        let e = profile.entry(m).unwrap();
        println!(
            "  offload {m:>2} layers: slow share {:>5.1}%  fast share {:>5.1}%  ν = {:.2} MB/batch",
            e.t_slow_rel * 100.0,
            e.t_fast_rel * 100.0,
            e.nu_bytes_per_batch as f64 / 1e6
        );
    }

    // A mobile-class slow agent and a workstation-class helper.
    let agents = vec![
        AgentState::new(AgentId(0), AgentProfile::new(0.2, 100.0), 2_000, 8),
        AgentState::new(AgentId(1), AgentProfile::new(4.0, 100.0), 2_000, 8),
    ];
    let adj = Adjacency::from_matrix(vec![vec![false, true], vec![true, false]]);
    let world = World::from_parts(agents, adj, 0);
    let pairings = PairingScheduler::new().pair(&world, &[AgentId(0), AgentId(1)], &est);

    println!("\nscheduler decision for (0.2 CPU ↔ 4 CPU, 100 Mbps):");
    for p in &pairings {
        match p.fast {
            Some(f) => println!(
                "  {} offloads {} encoder blocks to {} — est {:.1}s vs solo {:.1}s",
                p.slow,
                p.offload,
                f,
                p.est_time_s,
                est.solo_time_s(world.agent(p.slow))
            ),
            None => println!("  {} trains alone ({:.1}s)", p.slow, p.est_time_s),
        }
    }
    println!(
        "\nThe same Algorithm-1 machinery schedules transformers unchanged: only \
         the cost model differs."
    );
}
