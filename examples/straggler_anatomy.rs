//! Fig. 1's anatomy: how workload balancing turns one agent's idle time
//! into useful work on the straggler's task.
//!
//! ```sh
//! cargo run --example straggler_anatomy
//! ```

use comdml::collective::AllReduceAlgorithm;
use comdml::core::{simulate_round, Pairing, TrainingTimeEstimator};
use comdml::cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml::simnet::{Adjacency, AgentId, AgentProfile, AgentState, World};

fn print_outcome(title: &str, outcome: &comdml::core::RoundOutcome, world: &World) {
    println!("{title}");
    for s in &outcome.agent_stats {
        let cpus = world.agent(s.id).profile.cpus;
        println!(
            "  {} ({:>4} cpus): train {:>7.1}s  comm {:>6.1}s  idle {:>7.1}s",
            s.id, cpus, s.train_s, s.comm_s, s.idle_s
        );
    }
    println!(
        "  round time {:.1}s (compute {:.1}s + allreduce {:.1}s)\n",
        outcome.round_s(),
        outcome.compute_s,
        outcome.allreduce_s
    );
}

fn main() {
    // Agent 1 is 8x slower than agent 2 (Fig. 1's setup).
    let agents = vec![
        AgentState::new(AgentId(0), AgentProfile::new(0.25, 50.0), 25_000, 100),
        AgentState::new(AgentId(1), AgentProfile::new(2.0, 50.0), 25_000, 100),
    ];
    let adj = Adjacency::from_matrix(vec![vec![false, true], vec![true, false]]);
    let world = World::from_parts(agents, adj, 0);

    let spec = ModelSpec::resnet56();
    let profile = SplitProfile::new(&spec, 100);
    let cal = CostCalibration::default();
    let est = TrainingTimeEstimator::new(&spec, &profile, &cal);

    // Without balancing: both train the full model alone.
    let solo = vec![
        Pairing { slow: AgentId(0), fast: None, offload: 0, est_time_s: 0.0 },
        Pairing { slow: AgentId(1), fast: None, offload: 0, est_time_s: 0.0 },
    ];
    let before = simulate_round(&world, &solo, &est, &cal, AllReduceAlgorithm::HalvingDoubling);
    print_outcome("WITHOUT workload balancing:", &before, &world);

    // With balancing: the scheduler picks the split.
    let ids = [AgentId(0), AgentId(1)];
    let pairings = comdml::core::PairingScheduler::new().pair(&world, &ids, &est);
    let offload = pairings.iter().find_map(|p| p.fast.map(|_| p.offload)).unwrap_or(0);
    let after = simulate_round(&world, &pairings, &est, &cal, AllReduceAlgorithm::HalvingDoubling);
    print_outcome(
        &format!("WITH workload balancing (offloading {offload} layers):"),
        &after,
        &world,
    );

    println!("training-time reduction: {:.0}%", (1.0 - after.round_s() / before.round_s()) * 100.0);

    println!("\ntimeline without balancing:");
    print!("{}", before.render_timeline(60));
    println!("\ntimeline with balancing:");
    print!("{}", after.render_timeline(60));
}
