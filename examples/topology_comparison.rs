//! ComDML across network topologies (§V-B.5): full mesh, ring, and random
//! graphs of decreasing connectivity. The scheduler adapts — agents without
//! useful links simply train independently.
//!
//! ```sh
//! cargo run --example topology_comparison
//! ```

use comdml::core::{ComDml, ComDmlConfig};
use comdml::simnet::{Topology, WorldConfig};

fn main() {
    let k = 50;
    println!("ComDML on 50 agents, IID CIFAR-10 to 80%, per topology:\n");
    println!(
        "{:<22} {:>10} {:>12} {:>18}",
        "topology", "time (s)", "s / round", "offloads / round"
    );
    for (name, topo) in [
        ("full mesh", Topology::Full),
        ("random p=0.5", Topology::random(0.5)),
        ("random p=0.2", Topology::random(0.2)),
        ("random p=0.05", Topology::random(0.05)),
        ("ring", Topology::Ring),
    ] {
        let world =
            WorldConfig::heterogeneous(k, 42).total_samples(5_000 * k).topology(topo).build();
        let mut comdml = ComDml::new(ComDmlConfig { churn: None, ..ComDmlConfig::default() });
        let report = comdml.run(&world, 0.80);
        println!(
            "{:<22} {:>10.0} {:>12.1} {:>18.1}",
            name, report.total_time_s, report.mean_round_s, report.mean_offloads
        );
    }
    println!(
        "\nSparser graphs leave fewer pairing options (fewer offloads per \
         round) and training degrades gracefully toward independent training."
    );
}
