//! Quickstart: build a heterogeneous world, run ComDML to a target
//! accuracy, and inspect what the scheduler decided.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use comdml::core::{ComDml, ComDmlConfig, PairingScheduler, TrainingTimeEstimator};
use comdml::cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml::simnet::WorldConfig;

fn main() {
    // Ten agents with the paper's CPU/link profile mix, sharing CIFAR-10.
    let world = WorldConfig::heterogeneous(10, 42).total_samples(50_000).build();
    println!("world: {:?}\n", world.summary());

    // What does one round's pairing look like?
    let spec = ModelSpec::resnet56();
    let profile = SplitProfile::new(&spec, 100);
    let cal = CostCalibration::default();
    let estimator = TrainingTimeEstimator::new(&spec, &profile, &cal);
    let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
    let pairings = PairingScheduler::new().pair(&world, &ids, &estimator);
    println!("round-0 pairing decisions (slowest agents pick first):");
    for p in &pairings {
        let a = world.agent(p.slow);
        match p.fast {
            Some(fast) => println!(
                "  {} ({:>4} cpus) -> offloads {:>2} layers to {} (est {:>6.1}s, solo {:>6.1}s)",
                p.slow,
                a.profile.cpus,
                p.offload,
                fast,
                p.est_time_s,
                estimator.solo_time_s(a),
            ),
            None => println!(
                "  {} ({:>4} cpus) trains alone ({:>6.1}s)",
                p.slow, a.profile.cpus, p.est_time_s
            ),
        }
    }

    // Run the whole training to 80% accuracy.
    let mut comdml = ComDml::new(ComDmlConfig::default());
    let report = comdml.run(&world, 0.80);
    println!(
        "\nComDML reached 80% in {} rounds, {:.0} simulated seconds \
         ({:.1}s/round, {:.1} offloading pairs/round)",
        report.rounds, report.total_time_s, report.mean_round_s, report.mean_offloads
    );
}
