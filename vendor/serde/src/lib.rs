//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its report and config
//! types but never actually drives a serializer (reports are written as CSV
//! by `comdml-bench`). This crate therefore provides the two traits as
//! markers plus inert derive macros, which is enough for every call site to
//! compile offline. Swapping in the real serde later requires no source
//! changes outside the manifests.

/// Marker for types that would be serializable with the real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable with the real serde.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
