//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements the subset of the `rand` 0.8 API the workspace uses:
//! [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64), the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`seq::SliceRandom`], and
//! [`distributions::Uniform`]. Streams are deterministic under a fixed seed,
//! which is all the simulation needs; no cryptographic claims are made.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform sampling over a caller-supplied range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Samples uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + v as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width 64-bit range: every raw draw is in range.
                    let v = rng.next_u64() as u128 % span;
                    return (lo as i128 + v as i128) as $t;
                }
                let v = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let u = <$t as Standard>::from_rng(rng);
                lo + u * (hi - lo)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let u = <$t as Standard>::from_rng(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value over the type's full domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** with SplitMix64 seeding.
    ///
    /// Deterministic, fast, and statistically solid for simulation purposes;
    /// not cryptographically secure (the real `StdRng` is ChaCha-based, but
    /// nothing in this workspace relies on that).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::Rng;

    /// Random operations over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Explicit distributions.
pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A distribution over `T` samplable with any RNG.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Creates the distribution.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Self { low, high }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.low, self.high)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            let w: f32 = rng.gen();
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-5.0f32..5.0);
            assert!((-5.0..5.0).contains(&f));
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn full_u64_range_is_accepted() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(0u64..u64::MAX);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }
}
