//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, `prop::collection::vec`, the [`proptest!`] macro (running a
//! fixed number of deterministic seeded cases), and the `prop_assert*`
//! macros. Unlike the real proptest there is no shrinking and no persisted
//! failure regression files — failures report the raw assertion, which is
//! deterministic because case generation is seeded per test.

use rand::rngs::StdRng;
use std::ops::{Range, RangeInclusive};

/// Run-time configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws from
    /// the produced strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// Length specification for [`vec()`]: exact or ranged.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi_exclusive: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self { lo: r.start, hi_exclusive: r.end }
            }
        }

        /// Strategy producing vectors of `element` draws.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates `Vec<S::Value>` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running a fixed number of deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cases ($cfg).cases; $($rest)* }
    };
    (@cases $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: u32 = $cases;
                // Seed differs per test name so sibling tests explore
                // different corners, but reruns are identical.
                let __seed = {
                    let name = stringify!($name);
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in name.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x0000_0100_0000_01b3);
                    }
                    h
                };
                for __case in 0..__cases as u64 {
                    let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::
                        seed_from_u64(__seed ^ __case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    let ($($pat,)+) =
                        ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cases 256u32; $($rest)* }
    };
}

/// Runtime support for the [`proptest!`] macro expansion; not public API.
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds and tuples/maps compose.
        #[test]
        fn ranges_and_maps(n in 1usize..10, f in -2.0f32..2.0) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn flat_map_chains(
            (len, v) in (1usize..8).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0.0f64..1.0, n))
            })
        ) {
            prop_assert_eq!(v.len(), len);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn vec_with_ranged_size(v in prop::collection::vec(0usize..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }
}
