//! Offline stand-in for the `rand_distr` crate.
//!
//! Implements the two distributions the workspace uses — [`Normal`]
//! (Box–Muller) and [`Dirichlet`] (normalized Marsaglia–Tsang gamma draws) —
//! against the vendored `rand` crate's [`Distribution`] trait.

pub use rand::distributions::Distribution;
use rand::{Rng, RngCore};
use std::fmt;

/// Parameter errors from distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// A scale/concentration parameter was non-positive or non-finite.
    BadParameter,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// Normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadParameter`] when `std_dev` is negative or either
    /// parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error::BadParameter);
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(1e-300);
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        self.mean + self.std_dev * r * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Samples `Gamma(alpha, 1)` via Marsaglia–Tsang, with the `alpha < 1`
/// boosting trick.
fn sample_gamma<R: RngCore + ?Sized>(alpha: f64, rng: &mut R) -> f64 {
    if alpha < 1.0 {
        let u: f64 = rng.gen::<f64>().max(1e-300);
        return sample_gamma(alpha + 1.0, rng) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    let normal = Normal { mean: 0.0, std_dev: 1.0 };
    loop {
        let x = normal.sample(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(1e-300);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Symmetric Dirichlet distribution over `k` categories.
#[derive(Debug, Clone, PartialEq)]
pub struct Dirichlet {
    alpha: Vec<f64>,
}

impl Dirichlet {
    /// Symmetric `Dirichlet(alpha)` over `size` categories.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadParameter`] when `alpha` is not positive-finite
    /// or `size < 2`.
    pub fn new_with_size(alpha: f64, size: usize) -> Result<Self, Error> {
        if alpha <= 0.0 || !alpha.is_finite() || size < 2 {
            return Err(Error::BadParameter);
        }
        Ok(Self { alpha: vec![alpha; size] })
    }

    /// General (possibly asymmetric) concentration vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadParameter`] on any non-positive entry or fewer
    /// than two categories.
    pub fn new(alpha: &[f64]) -> Result<Self, Error> {
        if alpha.len() < 2 || alpha.iter().any(|&a| a <= 0.0 || !a.is_finite()) {
            return Err(Error::BadParameter);
        }
        Ok(Self { alpha: alpha.to_vec() })
    }
}

impl Distribution<Vec<f64>> for Dirichlet {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut draws: Vec<f64> =
            self.alpha.iter().map(|&a| sample_gamma(a, rng).max(1e-300)).collect();
        let sum: f64 = draws.iter().sum();
        for d in &mut draws {
            *d /= sum;
        }
        draws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = Normal::new(3.0, 2.0).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Dirichlet::new_with_size(0.5, 7).unwrap();
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert_eq!(v.len(), 7);
            let s: f64 = v.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(v.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn bad_parameters_are_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Dirichlet::new_with_size(0.0, 5).is_err());
        assert!(Dirichlet::new_with_size(0.5, 1).is_err());
    }
}
