//! Inert `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The offline `serde` stand-in only needs the derives to parse; no impls
//! are generated because nothing in the workspace invokes a serializer.

use proc_macro::TokenStream;

/// Expands to nothing: the stand-in `Serialize` trait is a pure marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing: the stand-in `Deserialize` trait is a pure marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
