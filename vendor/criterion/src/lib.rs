//! Offline stand-in for the `criterion` crate.
//!
//! Runs each benchmark a small fixed number of iterations and prints the
//! mean wall-clock time — enough for `cargo bench` to compile, run, and
//! give rough numbers without the crates.io dependency. The statistical
//! machinery (outlier rejection, HTML reports) is intentionally absent.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-exported for `std::hint::black_box` semantics.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup.
    SmallInput,
    /// Large per-iteration setup.
    LargeInput,
    /// One setup per batch.
    PerIteration,
}

/// Throughput annotation (accepted, reported as-is).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measures closures handed to `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    iters: u32,
    mean: Option<Duration>,
}

impl Bencher {
    fn new() -> Self {
        Self { iters: 10, mean: None }
    }

    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up, then the timed iterations.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.iters);
    }

    /// Times `routine` with a fresh `setup` product per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = Some(total / self.iters);
    }
}

fn report(id: &str, mean: Option<Duration>) {
    match mean {
        Some(m) => println!("bench {id:<50} {m:>12.3?}/iter"),
        None => println!("bench {id:<50} (no measurement)"),
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(id, b.mean);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.mean);
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.mean);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
