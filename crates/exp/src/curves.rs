//! Trajectory-level aggregation: figure-ready convergence curves.
//!
//! Every sweep job records its realized per-round accuracy trajectory
//! ([`JobResult::accuracy_trajectory`]); this module turns each
//! (scenario, method) cell's seed replications into a [`CurveAggregate`] —
//! per-round mean / p10 / p90 accuracy bands — exactly the shape of the
//! source paper's convergence figures (accuracy-vs-round curves per
//! method, one panel per condition).
//!
//! # Grid alignment
//!
//! Seeds of one cell stop at different rounds (jobs stop early the round
//! they reach the target), so trajectories are aligned on the scenario's
//! **shared round grid**: the longest realized trajectory across all of
//! the scenario's cells. An early-stopped seed is *padded* past its stop
//! round by holding its final, target-crossing value — the curve stays
//! flat where the job stopped learning because it was done. Every grid
//! point records how many seeds realized it ([`CurvePoint::realized`]),
//! and each aggregate carries the padded fraction
//! ([`CurveAggregate::extrapolated_frac`]) so figures can flag the
//! synthetic tail. Budget-exhausted jobs are never padded: they define the
//! grid.
//!
//! # Artifacts
//!
//! [`SweepReport::write_curves_to`] emits, per sweep:
//!
//! * `BENCH_curves_<sweep>.json` — one object per cell with `mean`, `p10`,
//!   `p90` and `realized` arrays over the grid (deterministic bytes, like
//!   every report artifact);
//! * `curves_<sweep>.csv` — the same data in long format (one row per
//!   cell × round), ready for any external plotting tool;
//! * `curves_<sweep>_<scenario>.svg` — a dependency-free plot per
//!   scenario: one mean line plus a translucent p10–p90 band per method,
//!   axes, ticks and a legend, written directly as SVG markup.

use std::path::{Path, PathBuf};

use comdml_bench::{Report, Value};

use crate::report::{curve_summary, percentile, scenario_grid};
use crate::{JobResult, Method, SweepReport};

/// One round of a cell's aggregated accuracy band.
#[derive(Debug, Clone, PartialEq)]
pub struct CurvePoint {
    /// 1-based round on the scenario's shared grid.
    pub round: usize,
    /// Mean accuracy across seeds.
    pub mean: f64,
    /// 10th-percentile accuracy across seeds (nearest rank).
    pub p10: f64,
    /// 90th-percentile accuracy across seeds (nearest rank).
    pub p90: f64,
    /// Seeds whose trajectory realized this round (the rest are padded at
    /// their target-crossing value).
    pub realized: usize,
}

/// Per-round mean/p10/p90 accuracy bands of one (scenario, method) cell,
/// aligned on the scenario's shared round grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveAggregate {
    /// Scenario name.
    pub scenario: String,
    /// Method aggregated.
    pub method: Method,
    /// Seeds aggregated.
    pub seeds: usize,
    /// One aggregated point per grid round.
    pub points: Vec<CurvePoint>,
    /// Median rounds-to-target across seeds (realized where the
    /// trajectory got there, extrapolated otherwise — the same per-job
    /// quantity the scalar cells aggregate).
    pub rounds_to_target_p50: f64,
    /// Fraction of the cell's grid points (seeds × grid rounds) that are
    /// padding rather than realized trajectory.
    pub extrapolated_frac: f64,
}

impl CurveAggregate {
    /// Aggregates one cell's seed replications on a `grid`-round axis.
    /// `jobs` must all share one (scenario, method) coordinate and `grid`
    /// must be at least every job's `rounds_run` (the scenario grid is).
    fn from_cell(jobs: &[JobResult], grid: usize) -> Self {
        assert!(!jobs.is_empty(), "a cell aggregates at least one seed");
        let seeds = jobs.len();
        let mut points = Vec::with_capacity(grid);
        for round in 1..=grid {
            // A trajectory shorter than the grid holds its final value:
            // the job stopped the round it crossed the target.
            let mut values: Vec<f64> = jobs
                .iter()
                .map(|j| {
                    let t = &j.accuracy_trajectory;
                    t.get(round - 1).or_else(|| t.last()).copied().unwrap_or(0.0)
                })
                .collect();
            let realized = jobs.iter().filter(|j| j.rounds_run >= round).count();
            let mean = values.iter().sum::<f64>() / seeds as f64;
            values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            points.push(CurvePoint {
                round,
                mean,
                p10: percentile(&values, 0.10),
                p90: percentile(&values, 0.90),
                realized,
            });
        }
        // Shared with SweepCell's scalar columns, so the two agree by
        // construction.
        let (rounds_to_target_p50, extrapolated_frac) = curve_summary(jobs, grid);
        Self {
            scenario: jobs[0].scenario.clone(),
            method: jobs[0].method,
            seeds,
            points,
            rounds_to_target_p50,
            extrapolated_frac,
        }
    }

    /// Grid length (rounds on the x axis).
    pub fn rounds(&self) -> usize {
        self.points.len()
    }

    fn to_value(&self) -> Value {
        let arr = |f: fn(&CurvePoint) -> f64| {
            Value::Arr(self.points.iter().map(|p| Value::Num(f(p))).collect())
        };
        Value::Obj(vec![
            ("scenario".into(), Value::Str(self.scenario.clone())),
            ("method".into(), Value::Str(self.method.token().into())),
            ("seeds".into(), Value::Num(self.seeds as f64)),
            ("rounds".into(), Value::Num(self.rounds() as f64)),
            ("rounds_to_target_p50".into(), Value::Num(self.rounds_to_target_p50)),
            ("extrapolated_frac".into(), Value::Num(self.extrapolated_frac)),
            ("mean".into(), arr(|p| p.mean)),
            ("p10".into(), arr(|p| p.p10)),
            ("p90".into(), arr(|p| p.p90)),
            (
                "realized".into(),
                Value::Arr(self.points.iter().map(|p| Value::Num(p.realized as f64)).collect()),
            ),
        ])
    }
}

impl SweepReport {
    /// Aggregates every cell's trajectories into per-round accuracy bands,
    /// in cell order (scenario-major, then method).
    pub fn curves(&self) -> Vec<CurveAggregate> {
        let seeds = if self.cells.is_empty() { 0 } else { self.jobs.len() / self.cells.len() };
        let mut out = Vec::with_capacity(self.cells.len());
        for (si, _) in self.scenarios.iter().enumerate() {
            let block = si * self.methods.len() * seeds;
            let scenario_jobs = &self.jobs[block..block + self.methods.len() * seeds];
            let grid = scenario_grid(scenario_jobs);
            for mi in 0..self.methods.len() {
                let start = mi * seeds;
                out.push(CurveAggregate::from_cell(&scenario_jobs[start..start + seeds], grid));
            }
        }
        out
    }

    /// The deterministic curve artifact, `BENCH_curves_<name>.json`.
    pub fn curves_value(&self) -> Value {
        self.curves_value_of(&self.curves())
    }

    fn curves_value_of(&self, curves: &[CurveAggregate]) -> Value {
        Value::Obj(vec![
            ("sweep".into(), Value::Str(self.name.clone())),
            (
                "scenarios".into(),
                Value::Arr(self.scenarios.iter().map(|s| Value::Str(s.clone())).collect()),
            ),
            (
                "methods".into(),
                Value::Arr(self.methods.iter().map(|m| Value::Str(m.token().into())).collect()),
            ),
            ("curves".into(), Value::Arr(curves.iter().map(CurveAggregate::to_value).collect())),
        ])
    }

    /// The long-format CSV companion: one row per cell × round.
    pub fn curves_csv(&self) -> Report {
        self.curves_csv_of(&self.curves())
    }

    fn curves_csv_of(&self, curves: &[CurveAggregate]) -> Report {
        let mut report = Report::new(
            &format!("curves_{}", self.name),
            &["scenario", "method", "round", "mean", "p10", "p90", "realized", "seeds"],
        );
        for c in curves {
            for p in &c.points {
                report.row(&[
                    c.scenario.clone(),
                    c.method.token().to_string(),
                    p.round.to_string(),
                    format!("{:.6}", p.mean),
                    format!("{:.6}", p.p10),
                    format!("{:.6}", p.p90),
                    p.realized.to_string(),
                    c.seeds.to_string(),
                ]);
            }
        }
        report
    }

    /// Writes the curve artifacts under `dir`: `BENCH_curves_<name>.json`,
    /// `curves_<name>.csv` and one `curves_<name>_<scenario>.svg` per
    /// scenario (scenario names are sanitized for the file system in the
    /// SVG file name only; the JSON/CSV carry them verbatim). Returns
    /// `(json, csv, svgs)` paths. The aggregation runs once and feeds all
    /// three artifact families.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_curves_to(
        &self,
        dir: impl AsRef<Path>,
    ) -> std::io::Result<(PathBuf, PathBuf, Vec<PathBuf>)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let curves = self.curves();
        let json_path = dir.join(format!("BENCH_curves_{}.json", self.name));
        std::fs::write(&json_path, self.curves_value_of(&curves).render())?;
        let csv_path = self.curves_csv_of(&curves).write_to(dir)?;
        let mut svg_paths = Vec::with_capacity(self.scenarios.len());
        for scenario in &self.scenarios {
            let panel: Vec<&CurveAggregate> =
                curves.iter().filter(|c| &c.scenario == scenario).collect();
            let path = dir.join(format!("curves_{}_{}.svg", self.name, file_component(scenario)));
            std::fs::write(&path, scenario_svg(&self.name, scenario, &panel))?;
            svg_paths.push(path);
        }
        Ok((json_path, csv_path, svg_paths))
    }
}

/// Makes a name safe as a single file-name component: anything that could
/// escape the output directory or upset a file system (path separators,
/// dots-only names, control characters) becomes `_`. Spec validation only
/// requires scenario names to be non-empty, so this is the last line of
/// defence before `fs::write`.
fn file_component(name: &str) -> String {
    let safe: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '_' })
        .collect();
    if safe.chars().all(|c| c == '.') {
        "_".repeat(safe.len().max(1))
    } else {
        safe
    }
}

/// Fixed, colorblind-friendly method palette (cycled past 8 methods).
fn method_color(index: usize) -> &'static str {
    const PALETTE: [&str; 8] =
        ["#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#f0e442", "#7f7f7f"];
    PALETTE[index % PALETTE.len()]
}

/// Renders one scenario panel as self-contained SVG: per method a
/// translucent p10–p90 band plus the mean polyline, with axes, ticks and a
/// legend. No external dependency, deterministic bytes.
fn scenario_svg(sweep: &str, scenario: &str, curves: &[&CurveAggregate]) -> String {
    const W: f64 = 760.0;
    const H: f64 = 440.0;
    const LEFT: f64 = 64.0;
    const RIGHT: f64 = 190.0; // legend gutter
    const TOP: f64 = 48.0;
    const BOTTOM: f64 = 56.0;
    let plot_w = W - LEFT - RIGHT;
    let plot_h = H - TOP - BOTTOM;
    let grid = curves.iter().map(|c| c.rounds()).max().unwrap_or(1).max(1);
    let y_max = curves
        .iter()
        .flat_map(|c| c.points.iter().map(|p| p.p90))
        .fold(0.1f64, f64::max)
        .mul_add(10.0, 0.999)
        .floor()
        / 10.0; // next 0.1 above the tallest band, deterministic
    let x = |round: usize| {
        if grid <= 1 {
            LEFT + plot_w / 2.0
        } else {
            LEFT + (round - 1) as f64 / (grid - 1) as f64 * plot_w
        }
    };
    let y = |acc: f64| TOP + (1.0 - (acc / y_max).clamp(0.0, 1.0)) * plot_h;
    let mut s = String::new();
    s.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\">\n"
    ));
    s.push_str(&format!(
        "  <rect width=\"{W}\" height=\"{H}\" fill=\"white\"/>\n  <text x=\"{LEFT}\" y=\"28\" \
         font-size=\"15\" font-weight=\"bold\">{} \u{b7} {}</text>\n  <text x=\"{LEFT}\" \
         y=\"44\" font-size=\"11\" fill=\"#555\">accuracy per round \u{2014} mean line, \
         p10\u{2013}p90 band</text>\n",
        escape_xml(sweep),
        escape_xml(scenario),
    ));
    // Axes.
    s.push_str(&format!(
        "  <line x1=\"{LEFT}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#333\"/>\n  \
         <line x1=\"{LEFT}\" y1=\"{TOP}\" x2=\"{LEFT}\" y2=\"{:.1}\" stroke=\"#333\"/>\n",
        TOP + plot_h,
        LEFT + plot_w,
        TOP + plot_h,
        TOP + plot_h,
    ));
    // Y ticks: five even divisions of [0, y_max].
    for i in 0..=5 {
        let acc = y_max * i as f64 / 5.0;
        let yy = y(acc);
        s.push_str(&format!(
            "  <line x1=\"{:.1}\" y1=\"{yy:.1}\" x2=\"{LEFT}\" y2=\"{yy:.1}\" \
             stroke=\"#333\"/>\n  <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" \
             text-anchor=\"end\">{acc:.2}</text>\n",
            LEFT - 5.0,
            LEFT - 8.0,
            yy + 4.0,
        ));
    }
    // X ticks: at most eight round labels, integer spacing.
    let step = (grid / 8).max(1);
    let mut round = 1;
    while round <= grid {
        let xx = x(round);
        s.push_str(&format!(
            "  <line x1=\"{xx:.1}\" y1=\"{:.1}\" x2=\"{xx:.1}\" y2=\"{:.1}\" \
             stroke=\"#333\"/>\n  <text x=\"{xx:.1}\" y=\"{:.1}\" font-size=\"11\" \
             text-anchor=\"middle\">{round}</text>\n",
            TOP + plot_h,
            TOP + plot_h + 5.0,
            TOP + plot_h + 18.0,
        ));
        round += step;
    }
    s.push_str(&format!(
        "  <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\">round</text>\n",
        LEFT + plot_w / 2.0,
        H - 16.0,
    ));
    s.push_str(&format!(
        "  <text x=\"16\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\" \
         transform=\"rotate(-90 16 {:.1})\">accuracy</text>\n",
        TOP + plot_h / 2.0,
        TOP + plot_h / 2.0,
    ));
    // Bands first (under every line), then means, then the legend.
    for (i, c) in curves.iter().enumerate() {
        let color = method_color(i);
        let mut band = String::new();
        for p in &c.points {
            band.push_str(&format!("{:.1},{:.1} ", x(p.round), y(p.p90)));
        }
        for p in c.points.iter().rev() {
            band.push_str(&format!("{:.1},{:.1} ", x(p.round), y(p.p10)));
        }
        s.push_str(&format!(
            "  <polygon points=\"{}\" fill=\"{color}\" fill-opacity=\"0.15\" stroke=\"none\"/>\n",
            band.trim_end(),
        ));
    }
    for (i, c) in curves.iter().enumerate() {
        let color = method_color(i);
        let line: Vec<String> =
            c.points.iter().map(|p| format!("{:.1},{:.1}", x(p.round), y(p.mean))).collect();
        s.push_str(&format!(
            "  <polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>\n",
            line.join(" "),
        ));
    }
    for (i, c) in curves.iter().enumerate() {
        let color = method_color(i);
        let ly = TOP + 14.0 + i as f64 * 20.0;
        let lx = LEFT + plot_w + 16.0;
        s.push_str(&format!(
            "  <line x1=\"{lx:.1}\" y1=\"{ly:.1}\" x2=\"{:.1}\" y2=\"{ly:.1}\" \
             stroke=\"{color}\" stroke-width=\"2\"/>\n  <text x=\"{:.1}\" y=\"{:.1}\" \
             font-size=\"11\">{} ({:.0}% extrap)</text>\n",
            lx + 22.0,
            lx + 28.0,
            ly + 4.0,
            escape_xml(c.method.display()),
            c.extrapolated_frac * 100.0,
        ));
    }
    s.push_str("</svg>\n");
    s
}

fn escape_xml(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{presets, SweepRunner};

    #[test]
    fn bands_align_on_the_scenario_grid_and_flag_padding() {
        let report = SweepRunner::new().progress(false).run(&presets::smoke()).unwrap();
        let curves = report.curves();
        assert_eq!(curves.len(), report.cells.len());
        for (curve, cell) in curves.iter().zip(&report.cells) {
            assert_eq!(curve.scenario, cell.scenario);
            assert_eq!(curve.method, cell.method);
            assert_eq!(curve.rounds_to_target_p50, cell.rounds_to_target_p50);
            assert_eq!(curve.extrapolated_frac, cell.extrapolated_frac);
            for p in &curve.points {
                assert!(p.p10 <= p.mean + 1e-12 && p.mean <= p.p90 + 1e-12);
                assert!(p.realized <= curve.seeds);
            }
        }
        // One scenario: every cell shares the same grid.
        let grids: Vec<usize> = curves.iter().map(CurveAggregate::rounds).collect();
        assert!(grids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn hostile_scenario_names_stay_inside_the_output_directory() {
        assert_eq!(file_component("agents50_sample20"), "agents50_sample20");
        assert_eq!(file_component("50/20"), "50_20");
        assert_eq!(file_component("../escape"), ".._escape");
        assert_eq!(file_component(".."), "__");
        assert_eq!(file_component("a b\\c"), "a_b_c");
    }

    #[test]
    fn svg_panels_are_self_contained() {
        let report = SweepRunner::new().progress(false).run(&presets::smoke()).unwrap();
        let curves = report.curves();
        let panel: Vec<&CurveAggregate> = curves.iter().collect();
        let svg = scenario_svg("smoke", "churny_dozen", &panel);
        assert!(svg.starts_with("<svg "));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("polyline"), "mean lines present");
        assert!(svg.contains("polygon"), "bands present");
        assert!(svg.matches("polyline").count() >= panel.len());
        // Deterministic bytes: rendering twice is identical.
        assert_eq!(svg, scenario_svg("smoke", "churny_dozen", &panel));
    }
}
