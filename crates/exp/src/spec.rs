//! The declarative scenario model.
//!
//! A [`ScenarioSpec`] names one experimental condition by composing
//! everything the stack exposes — world size and topology,
//! [`ArrivalProcess`]/[`SessionLifetime`] membership churn, profile churn,
//! aggregation mode, event granularity, participation sampling, and the
//! round/accuracy budget. A [`SweepSpec`] is a grid: scenarios × methods ×
//! a seed range, exactly the shape of the paper's Tables II/III.
//!
//! Specs are plain JSON (parsed with the dependency-free
//! [`comdml_bench::Value`] model) with builder-style programmatic
//! construction, and `parse` ∘ `render` round-trips exactly — the property
//! tests in `tests/sweep.rs` hold this for arbitrary specs.
//!
//! # Spec file format
//!
//! ```json
//! {
//!   "name": "smoke",
//!   "seeds": { "base": 1, "count": 5 },
//!   "methods": ["comdml", "gossip", "allreduce", "fedavg"],
//!   "scenarios": [
//!     {
//!       "name": "churny_er20",
//!       "agents": 24,
//!       "rounds": 30,
//!       "topology": { "kind": "random", "p": 0.2 },
//!       "arrivals": { "kind": "poisson", "rate_per_s": 0.005 },
//!       "lifetime": { "kind": "exponential", "mean_s": 4000 },
//!       "aggregation": { "kind": "semi_synchronous", "quorum": 0.8 },
//!       "sampling_rate": 0.5,
//!       "dataset": "cifar10",
//!       "iid": true,
//!       "target_accuracy": 0.8
//!     }
//!   ]
//! }
//! ```
//!
//! Every scenario field except `name` has a default (see
//! [`ScenarioSpec::new`]), so terse specs stay terse.

use comdml_bench::Value;
use comdml_core::{AggregationMode, ChurnPolicy, EventGranularity};
use comdml_simnet::{ArrivalProcess, JoinTopology, SessionLifetime, Topology};

/// The methods a sweep can run, by their paper-table identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// The paper's contribution: pairing + split training + AllReduce.
    ComDml,
    /// Server-coordinated federated averaging \[1\].
    FedAvg,
    /// Decentralized AllReduce DML \[34\].
    AllReduce,
    /// Rotating-aggregator peer-to-peer \[10\].
    BrainTorrent,
    /// Pairwise gossip averaging \[11\].
    Gossip,
    /// Heterogeneity-aware partial local work \[27\].
    FedProx,
    /// Drop the slowest 30% each round \[26\].
    DropStragglers,
    /// TiFL-style speed tiers \[5\].
    Tiered,
}

impl Method {
    /// Every method the harness can run, in table order.
    pub const ALL: [Method; 8] = [
        Method::ComDml,
        Method::Gossip,
        Method::BrainTorrent,
        Method::AllReduce,
        Method::FedAvg,
        Method::FedProx,
        Method::DropStragglers,
        Method::Tiered,
    ];

    /// The spec-file token (`"comdml"`, `"fedavg"`, …).
    pub fn token(&self) -> &'static str {
        match self {
            Method::ComDml => "comdml",
            Method::FedAvg => "fedavg",
            Method::AllReduce => "allreduce",
            Method::BrainTorrent => "braintorrent",
            Method::Gossip => "gossip",
            Method::FedProx => "fedprox",
            Method::DropStragglers => "drop_stragglers",
            Method::Tiered => "tiered",
        }
    }

    /// The display name used in the paper's tables.
    pub fn display(&self) -> &'static str {
        match self {
            Method::ComDml => "ComDML",
            Method::FedAvg => "FedAvg",
            Method::AllReduce => "AllReduce",
            Method::BrainTorrent => "BrainTorrent",
            Method::Gossip => "Gossip Learning",
            Method::FedProx => "FedProx",
            Method::DropStragglers => "Drop-30%",
            Method::Tiered => "TiFL (tiers)",
        }
    }

    /// Parses a spec-file token.
    ///
    /// # Errors
    ///
    /// Returns the unknown token.
    pub fn from_token(s: &str) -> Result<Self, String> {
        Method::ALL
            .into_iter()
            .find(|m| m.token() == s)
            .ok_or_else(|| format!("unknown method {s:?}"))
    }
}

/// The seeds of a sweep: `base, base+1, …, base+count-1`. Each seed is a
/// complete replication of the scenario grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedRange {
    /// First seed.
    pub base: u64,
    /// Number of consecutive seeds.
    pub count: usize,
}

impl SeedRange {
    /// The seeds in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.count as u64).map(move |i| self.base + i)
    }
}

/// One named experimental condition. See the module docs for the file
/// format; [`ScenarioSpec::new`] documents the defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (table row/column label).
    pub name: String,
    /// Initial fleet size.
    pub agents: usize,
    /// Local dataset size per agent.
    pub samples_per_agent: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Construction-time link topology.
    pub topology: Topology,
    /// How arrivals wire in (`None` = the policy matching `topology`).
    pub join_topology: Option<JoinTopology>,
    /// Membership arrivals.
    pub arrivals: ArrivalProcess,
    /// Session lifetimes (departures).
    pub lifetime: SessionLifetime,
    /// World-slot capacity (`None` = the fleet default of 4× agents).
    pub max_agents: Option<usize>,
    /// Reuse departed agents' world slots (default on: sweeps run long).
    pub recycle_slots: bool,
    /// Round aggregation trigger.
    pub aggregation: AggregationMode,
    /// Event engine granularity (default coarse — fleet-scale sweeps).
    pub granularity: EventGranularity,
    /// Per-round participation sampling rate (Table III uses 0.2).
    pub sampling_rate: f64,
    /// Profile churn policy (`None` = static profiles).
    pub churn: Option<ChurnPolicy>,
    /// Measured rounds per job.
    pub rounds: usize,
    /// Learning-curve dataset: `cifar10`, `cifar100` or `cinic10`.
    pub dataset: String,
    /// I.I.D. or Dirichlet-skewed data distribution (curve selection).
    pub iid: bool,
    /// Accuracy the time-to-accuracy projection targets.
    pub target_accuracy: f64,
}

impl ScenarioSpec {
    /// A scenario with the paper's defaults: 10 agents, full mesh, static
    /// membership and profiles, synchronous aggregation, coarse events, no
    /// sampling, 30 measured rounds, CIFAR-10 I.I.D. at 80% target.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            agents: 10,
            samples_per_agent: 500,
            batch_size: 100,
            topology: Topology::Full,
            join_topology: None,
            arrivals: ArrivalProcess::None,
            lifetime: SessionLifetime::Infinite,
            max_agents: None,
            recycle_slots: true,
            aggregation: AggregationMode::Synchronous,
            granularity: EventGranularity::Coarse,
            sampling_rate: 1.0,
            churn: None,
            rounds: 30,
            dataset: "cifar10".to_string(),
            iid: true,
            target_accuracy: 0.8,
        }
    }

    /// Sets the initial fleet size.
    pub fn agents(mut self, k: usize) -> Self {
        self.agents = k;
        self
    }

    /// Sets the topology.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Sets the arrival process.
    pub fn arrivals(mut self, a: ArrivalProcess) -> Self {
        self.arrivals = a;
        self
    }

    /// Sets the session-lifetime distribution.
    pub fn lifetime(mut self, l: SessionLifetime) -> Self {
        self.lifetime = l;
        self
    }

    /// Sets the aggregation mode.
    pub fn aggregation(mut self, m: AggregationMode) -> Self {
        self.aggregation = m;
        self
    }

    /// Sets the participation sampling rate.
    pub fn sampling_rate(mut self, r: f64) -> Self {
        self.sampling_rate = r;
        self
    }

    /// Sets the profile-churn policy.
    pub fn churn(mut self, c: ChurnPolicy) -> Self {
        self.churn = Some(c);
        self
    }

    /// Sets the measured round budget.
    pub fn rounds(mut self, r: usize) -> Self {
        self.rounds = r;
        self
    }

    /// Sets the learning-curve dataset and distribution.
    pub fn dataset(mut self, name: &str, iid: bool) -> Self {
        self.dataset = name.to_string();
        self.iid = iid;
        self
    }

    /// Sets the target accuracy.
    pub fn target(mut self, a: f64) -> Self {
        self.target_accuracy = a;
        self
    }

    /// Validates ranges that the execution layer assumes.
    ///
    /// # Errors
    ///
    /// Describes the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        let ctx = &self.name;
        if self.name.is_empty() {
            return Err("scenario name must not be empty".into());
        }
        if self.agents == 0 {
            return Err(format!("{ctx}: agents must be positive"));
        }
        if self.batch_size == 0 {
            return Err(format!("{ctx}: batch_size must be positive"));
        }
        if self.rounds == 0 {
            return Err(format!("{ctx}: rounds must be positive"));
        }
        if !(self.sampling_rate > 0.0 && self.sampling_rate <= 1.0) {
            return Err(format!("{ctx}: sampling_rate must be in (0, 1]"));
        }
        if !(self.target_accuracy > 0.0 && self.target_accuracy < 1.0) {
            return Err(format!("{ctx}: target_accuracy must be in (0, 1)"));
        }
        if !matches!(self.dataset.as_str(), "cifar10" | "cifar100" | "cinic10") {
            return Err(format!("{ctx}: unknown dataset {:?}", self.dataset));
        }
        if let AggregationMode::SemiSynchronous { quorum, .. } = self.aggregation {
            if !(quorum > 0.0 && quorum <= 1.0) {
                return Err(format!("{ctx}: semi-sync quorum must be in (0, 1]"));
            }
        }
        // Probabilities and distribution parameters the simulation layer
        // asserts on (a bad spec must fail here, not panic in a worker).
        if let Topology::Random { p } = self.topology {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{ctx}: topology p must be in [0, 1]"));
            }
        }
        if let Some(JoinTopology::ErdosRenyi { p }) = self.join_topology {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{ctx}: join_topology p must be in [0, 1]"));
            }
        }
        match &self.arrivals {
            ArrivalProcess::Poisson { rate_per_s } if rate_per_s.is_nan() || *rate_per_s < 0.0 => {
                return Err(format!("{ctx}: arrival rate must be non-negative"));
            }
            ArrivalProcess::Trace(times)
                if times.iter().any(|t| !t.is_finite() || *t < 0.0)
                    || times.windows(2).any(|w| w[0] > w[1]) =>
            {
                return Err(format!("{ctx}: trace times must be non-negative and ascending"));
            }
            _ => {}
        }
        // `is_positive` form rejects NaN alongside zero/negative values.
        let positive = |v: f64| v.is_finite() && v > 0.0;
        match self.lifetime {
            SessionLifetime::Exponential { mean_s } if !positive(mean_s) => {
                return Err(format!("{ctx}: lifetime mean_s must be positive"));
            }
            SessionLifetime::Weibull { scale_s, shape }
                if !positive(scale_s) || !positive(shape) =>
            {
                return Err(format!("{ctx}: weibull scale_s and shape must be positive"));
            }
            SessionLifetime::Fixed { duration_s } if !positive(duration_s) => {
                return Err(format!("{ctx}: lifetime duration_s must be positive"));
            }
            _ => {}
        }
        if let Some(churn) = self.churn {
            if !(0.0..=1.0).contains(&churn.fraction) {
                return Err(format!("{ctx}: churn fraction must be in [0, 1]"));
            }
        }
        Ok(())
    }
}

/// A full sweep: scenarios × methods × seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep name (output file stem).
    pub name: String,
    /// The seed range; every (scenario, method) cell runs once per seed.
    pub seeds: SeedRange,
    /// Methods to run, in table order.
    pub methods: Vec<Method>,
    /// Scenarios to run.
    pub scenarios: Vec<ScenarioSpec>,
}

impl SweepSpec {
    /// An empty sweep with 5 seeds from 1.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            seeds: SeedRange { base: 1, count: 5 },
            methods: Vec::new(),
            scenarios: Vec::new(),
        }
    }

    /// Sets the seed range.
    pub fn seeds(mut self, base: u64, count: usize) -> Self {
        self.seeds = SeedRange { base, count };
        self
    }

    /// Adds a method.
    pub fn method(mut self, m: Method) -> Self {
        self.methods.push(m);
        self
    }

    /// Adds a scenario.
    pub fn scenario(mut self, s: ScenarioSpec) -> Self {
        self.scenarios.push(s);
        self
    }

    /// Total jobs the sweep expands to.
    pub fn num_jobs(&self) -> usize {
        self.scenarios.len() * self.methods.len() * self.seeds.count
    }

    /// Validates the sweep and every scenario.
    ///
    /// # Errors
    ///
    /// Describes the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("sweep name must not be empty".into());
        }
        if self.seeds.count == 0 {
            return Err("seed count must be positive".into());
        }
        if self.methods.is_empty() {
            return Err("at least one method is required".into());
        }
        if self.scenarios.is_empty() {
            return Err("at least one scenario is required".into());
        }
        let mut names: Vec<&str> = self.scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err("scenario names must be unique".into());
        }
        let mut methods = self.methods.clone();
        methods.sort_unstable_by_key(Method::token);
        if methods.windows(2).any(|w| w[0] == w[1]) {
            return Err("methods must be unique".into());
        }
        for s in &self.scenarios {
            s.validate()?;
        }
        Ok(())
    }

    /// Parses a spec file.
    ///
    /// # Errors
    ///
    /// Describes the first syntax or validation problem.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Value::parse(text)?;
        let spec = Self::from_value(&v)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Renders the spec as a JSON document (the exact input format of
    /// [`SweepSpec::parse`]; round-trips losslessly).
    pub fn render(&self) -> String {
        self.to_value().render()
    }

    /// Builds the spec from a parsed JSON value.
    ///
    /// # Errors
    ///
    /// Describes the first missing or ill-typed field.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let name = req_str(v, "name")?;
        let seeds_v = v.get("seeds").ok_or("missing \"seeds\"")?;
        let seeds = SeedRange {
            base: seeds_v.get("base").and_then(Value::as_u64).ok_or("seeds.base must be a u64")?,
            count: seeds_v
                .get("count")
                .and_then(Value::as_usize)
                .ok_or("seeds.count must be a usize")?,
        };
        let methods = v
            .get("methods")
            .and_then(Value::as_array)
            .ok_or("missing \"methods\" array")?
            .iter()
            .map(|m| {
                m.as_str().ok_or("methods must be strings".to_string()).and_then(Method::from_token)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let scenarios = v
            .get("scenarios")
            .and_then(Value::as_array)
            .ok_or("missing \"scenarios\" array")?
            .iter()
            .map(scenario_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { name, seeds, methods, scenarios })
    }

    /// The JSON value form of the spec.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("name".into(), Value::Str(self.name.clone())),
            (
                "seeds".into(),
                Value::Obj(vec![
                    ("base".into(), Value::Num(self.seeds.base as f64)),
                    ("count".into(), Value::Num(self.seeds.count as f64)),
                ]),
            ),
            (
                "methods".into(),
                Value::Arr(self.methods.iter().map(|m| Value::Str(m.token().into())).collect()),
            ),
            (
                "scenarios".into(),
                Value::Arr(self.scenarios.iter().map(scenario_to_value).collect()),
            ),
        ])
    }
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn kind_of(v: &Value) -> Result<&str, String> {
    v.get("kind").and_then(Value::as_str).ok_or_else(|| "missing \"kind\"".to_string())
}

fn req_f64(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("{ctx}: missing number {key:?}"))
}

fn scenario_from_value(v: &Value) -> Result<ScenarioSpec, String> {
    let mut s = ScenarioSpec::new(&req_str(v, "name")?);
    if let Some(n) = v.get("agents") {
        s.agents = n.as_usize().ok_or("agents must be a usize")?;
    }
    if let Some(n) = v.get("samples_per_agent") {
        s.samples_per_agent = n.as_usize().ok_or("samples_per_agent must be a usize")?;
    }
    if let Some(n) = v.get("batch_size") {
        s.batch_size = n.as_usize().ok_or("batch_size must be a usize")?;
    }
    if let Some(t) = v.get("topology") {
        s.topology = match kind_of(t)? {
            "full" => Topology::Full,
            "ring" => Topology::Ring,
            "random" => Topology::Random { p: req_f64(t, "p", "topology")? },
            other => return Err(format!("unknown topology kind {other:?}")),
        };
    }
    if let Some(j) = v.get("join_topology") {
        s.join_topology = Some(match kind_of(j)? {
            "full_mesh" => JoinTopology::FullMesh,
            "erdos_renyi" => JoinTopology::ErdosRenyi { p: req_f64(j, "p", "join_topology")? },
            other => return Err(format!("unknown join_topology kind {other:?}")),
        });
    }
    if let Some(a) = v.get("arrivals") {
        s.arrivals = match kind_of(a)? {
            "none" => ArrivalProcess::None,
            "poisson" => {
                ArrivalProcess::Poisson { rate_per_s: req_f64(a, "rate_per_s", "arrivals")? }
            }
            "trace" => ArrivalProcess::Trace(
                a.get("times")
                    .and_then(Value::as_array)
                    .ok_or("arrivals.times must be an array")?
                    .iter()
                    .map(|t| t.as_f64().ok_or("arrival times must be numbers".to_string()))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            other => return Err(format!("unknown arrivals kind {other:?}")),
        };
    }
    if let Some(l) = v.get("lifetime") {
        s.lifetime = match kind_of(l)? {
            "infinite" => SessionLifetime::Infinite,
            "exponential" => {
                SessionLifetime::Exponential { mean_s: req_f64(l, "mean_s", "lifetime")? }
            }
            "weibull" => SessionLifetime::Weibull {
                scale_s: req_f64(l, "scale_s", "lifetime")?,
                shape: req_f64(l, "shape", "lifetime")?,
            },
            "fixed" => SessionLifetime::Fixed { duration_s: req_f64(l, "duration_s", "lifetime")? },
            other => return Err(format!("unknown lifetime kind {other:?}")),
        };
    }
    if let Some(n) = v.get("max_agents") {
        s.max_agents = Some(n.as_usize().ok_or("max_agents must be a usize")?);
    }
    if let Some(b) = v.get("recycle_slots") {
        s.recycle_slots = b.as_bool().ok_or("recycle_slots must be a bool")?;
    }
    if let Some(m) = v.get("aggregation") {
        s.aggregation = match kind_of(m)? {
            "synchronous" => AggregationMode::Synchronous,
            "semi_synchronous" => AggregationMode::SemiSynchronous {
                quorum: req_f64(m, "quorum", "aggregation")?,
                // Absent = no staleness bound, the common configuration
                // (infinity is not representable in JSON).
                staleness_s: m.get("staleness_s").and_then(Value::as_f64).unwrap_or(f64::MAX),
            },
            "asynchronous" => AggregationMode::Asynchronous,
            other => return Err(format!("unknown aggregation kind {other:?}")),
        };
    }
    if let Some(g) = v.get("granularity") {
        s.granularity = match g.as_str() {
            Some("fine") => EventGranularity::Fine,
            Some("coarse") => EventGranularity::Coarse,
            other => return Err(format!("unknown granularity {other:?}")),
        };
    }
    if let Some(r) = v.get("sampling_rate") {
        s.sampling_rate = r.as_f64().ok_or("sampling_rate must be a number")?;
    }
    if let Some(c) = v.get("churn") {
        s.churn = Some(ChurnPolicy {
            interval: c.get("interval").and_then(Value::as_usize).ok_or("churn.interval")?,
            fraction: req_f64(c, "fraction", "churn")?,
        });
    }
    if let Some(r) = v.get("rounds") {
        s.rounds = r.as_usize().ok_or("rounds must be a usize")?;
    }
    if let Some(d) = v.get("dataset") {
        s.dataset = d.as_str().ok_or("dataset must be a string")?.to_string();
    }
    if let Some(i) = v.get("iid") {
        s.iid = i.as_bool().ok_or("iid must be a bool")?;
    }
    if let Some(t) = v.get("target_accuracy") {
        s.target_accuracy = t.as_f64().ok_or("target_accuracy must be a number")?;
    }
    Ok(s)
}

fn scenario_to_value(s: &ScenarioSpec) -> Value {
    let mut fields: Vec<(String, Value)> = vec![
        ("name".into(), Value::Str(s.name.clone())),
        ("agents".into(), Value::Num(s.agents as f64)),
        ("samples_per_agent".into(), Value::Num(s.samples_per_agent as f64)),
        ("batch_size".into(), Value::Num(s.batch_size as f64)),
    ];
    fields.push((
        "topology".into(),
        match s.topology {
            Topology::Full => Value::Obj(vec![("kind".into(), Value::Str("full".into()))]),
            Topology::Ring => Value::Obj(vec![("kind".into(), Value::Str("ring".into()))]),
            Topology::Random { p } => Value::Obj(vec![
                ("kind".into(), Value::Str("random".into())),
                ("p".into(), Value::Num(p)),
            ]),
        },
    ));
    if let Some(j) = s.join_topology {
        fields.push((
            "join_topology".into(),
            match j {
                JoinTopology::FullMesh => {
                    Value::Obj(vec![("kind".into(), Value::Str("full_mesh".into()))])
                }
                JoinTopology::ErdosRenyi { p } => Value::Obj(vec![
                    ("kind".into(), Value::Str("erdos_renyi".into())),
                    ("p".into(), Value::Num(p)),
                ]),
            },
        ));
    }
    fields.push((
        "arrivals".into(),
        match &s.arrivals {
            ArrivalProcess::None => Value::Obj(vec![("kind".into(), Value::Str("none".into()))]),
            ArrivalProcess::Poisson { rate_per_s } => Value::Obj(vec![
                ("kind".into(), Value::Str("poisson".into())),
                ("rate_per_s".into(), Value::Num(*rate_per_s)),
            ]),
            ArrivalProcess::Trace(times) => Value::Obj(vec![
                ("kind".into(), Value::Str("trace".into())),
                ("times".into(), Value::Arr(times.iter().map(|&t| Value::Num(t)).collect())),
            ]),
        },
    ));
    fields.push((
        "lifetime".into(),
        match s.lifetime {
            SessionLifetime::Infinite => {
                Value::Obj(vec![("kind".into(), Value::Str("infinite".into()))])
            }
            SessionLifetime::Exponential { mean_s } => Value::Obj(vec![
                ("kind".into(), Value::Str("exponential".into())),
                ("mean_s".into(), Value::Num(mean_s)),
            ]),
            SessionLifetime::Weibull { scale_s, shape } => Value::Obj(vec![
                ("kind".into(), Value::Str("weibull".into())),
                ("scale_s".into(), Value::Num(scale_s)),
                ("shape".into(), Value::Num(shape)),
            ]),
            SessionLifetime::Fixed { duration_s } => Value::Obj(vec![
                ("kind".into(), Value::Str("fixed".into())),
                ("duration_s".into(), Value::Num(duration_s)),
            ]),
        },
    ));
    if let Some(m) = s.max_agents {
        fields.push(("max_agents".into(), Value::Num(m as f64)));
    }
    fields.push(("recycle_slots".into(), Value::Bool(s.recycle_slots)));
    fields.push((
        "aggregation".into(),
        match s.aggregation {
            AggregationMode::Synchronous => {
                Value::Obj(vec![("kind".into(), Value::Str("synchronous".into()))])
            }
            AggregationMode::SemiSynchronous { quorum, staleness_s } => {
                let mut f = vec![
                    ("kind".into(), Value::Str("semi_synchronous".into())),
                    ("quorum".into(), Value::Num(quorum)),
                ];
                if staleness_s.is_finite() && staleness_s != f64::MAX {
                    f.push(("staleness_s".into(), Value::Num(staleness_s)));
                }
                Value::Obj(f)
            }
            AggregationMode::Asynchronous => {
                Value::Obj(vec![("kind".into(), Value::Str("asynchronous".into()))])
            }
        },
    ));
    fields.push((
        "granularity".into(),
        Value::Str(match s.granularity {
            EventGranularity::Fine => "fine".into(),
            EventGranularity::Coarse => "coarse".into(),
        }),
    ));
    fields.push(("sampling_rate".into(), Value::Num(s.sampling_rate)));
    if let Some(c) = s.churn {
        fields.push((
            "churn".into(),
            Value::Obj(vec![
                ("interval".into(), Value::Num(c.interval as f64)),
                ("fraction".into(), Value::Num(c.fraction)),
            ]),
        ));
    }
    fields.push(("rounds".into(), Value::Num(s.rounds as f64)));
    fields.push(("dataset".into(), Value::Str(s.dataset.clone())));
    fields.push(("iid".into(), Value::Bool(s.iid)));
    fields.push(("target_accuracy".into(), Value::Num(s.target_accuracy)));
    Value::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_spec() -> SweepSpec {
        SweepSpec::new("demo")
            .seeds(7, 3)
            .method(Method::ComDml)
            .method(Method::FedAvg)
            .scenario(ScenarioSpec::new("static"))
            .scenario(
                ScenarioSpec::new("churny")
                    .agents(24)
                    .topology(Topology::random(0.2))
                    .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.01 })
                    .lifetime(SessionLifetime::Weibull { scale_s: 900.0, shape: 0.7 })
                    .aggregation(AggregationMode::SemiSynchronous {
                        quorum: 0.8,
                        staleness_s: f64::MAX,
                    })
                    .sampling_rate(0.2)
                    .churn(ChurnPolicy { interval: 10, fraction: 0.2 })
                    .rounds(12)
                    .dataset("cifar100", false)
                    .target(0.6),
            )
    }

    #[test]
    fn spec_round_trips_through_text() {
        let spec = full_spec();
        let text = spec.render();
        let back = SweepSpec::parse(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.render(), text, "render is deterministic");
    }

    #[test]
    fn terse_specs_fill_defaults() {
        let text = r#"{
            "name": "t",
            "seeds": {"base": 1, "count": 2},
            "methods": ["comdml"],
            "scenarios": [{"name": "s"}]
        }"#;
        let spec = SweepSpec::parse(text).unwrap();
        assert_eq!(spec.scenarios[0], ScenarioSpec::new("s"));
        assert_eq!(spec.num_jobs(), 2);
    }

    #[test]
    fn trace_arrivals_round_trip() {
        let spec = SweepSpec::new("t").seeds(1, 1).method(Method::Gossip).scenario(
            ScenarioSpec::new("traced")
                .arrivals(ArrivalProcess::Trace(vec![5.0, 10.5, 400.0]))
                .lifetime(SessionLifetime::Fixed { duration_s: 60.0 }),
        );
        assert_eq!(SweepSpec::parse(&spec.render()).unwrap(), spec);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(SweepSpec::new("x").validate().is_err(), "no methods/scenarios");
        let dup = SweepSpec::new("x")
            .method(Method::ComDml)
            .scenario(ScenarioSpec::new("a"))
            .scenario(ScenarioSpec::new("a"));
        assert!(dup.validate().unwrap_err().contains("unique"));
        let bad_rate = SweepSpec::new("x")
            .method(Method::ComDml)
            .scenario(ScenarioSpec::new("a").sampling_rate(0.0));
        assert!(bad_rate.validate().is_err());
        let bad_dataset = SweepSpec::new("x")
            .method(Method::ComDml)
            .scenario(ScenarioSpec::new("a").dataset("mnist", true));
        assert!(bad_dataset.validate().is_err());
    }

    #[test]
    fn validation_rejects_out_of_range_distribution_parameters() {
        let wrap = |s: ScenarioSpec| SweepSpec::new("x").method(Method::ComDml).scenario(s);
        // A struct-literal Random { p } bypasses Topology::random's assert,
        // so validate() must catch it before a worker thread panics.
        let bad_p = wrap(ScenarioSpec::new("a").topology(Topology::Random { p: 1.5 }));
        assert!(bad_p.validate().unwrap_err().contains("topology p"));
        let mut s = ScenarioSpec::new("a");
        s.join_topology = Some(JoinTopology::ErdosRenyi { p: -0.1 });
        assert!(wrap(s).validate().unwrap_err().contains("join_topology"));
        let bad_life =
            wrap(ScenarioSpec::new("a").lifetime(SessionLifetime::Exponential { mean_s: 0.0 }));
        assert!(bad_life.validate().unwrap_err().contains("mean_s"));
        let bad_trace =
            wrap(ScenarioSpec::new("a").arrivals(ArrivalProcess::Trace(vec![5.0, 1.0])));
        assert!(bad_trace.validate().unwrap_err().contains("ascending"));
        let bad_churn =
            wrap(ScenarioSpec::new("a").churn(ChurnPolicy { interval: 5, fraction: 1.5 }));
        assert!(bad_churn.validate().unwrap_err().contains("churn"));
        let bad_rate =
            wrap(ScenarioSpec::new("a").arrivals(ArrivalProcess::Poisson { rate_per_s: f64::NAN }));
        assert!(bad_rate.validate().unwrap_err().contains("arrival rate"));
    }

    #[test]
    fn unknown_fields_and_tokens_error() {
        assert!(Method::from_token("sgd").is_err());
        let bad = r#"{"name":"t","seeds":{"base":1,"count":1},"methods":["comdml"],
                      "scenarios":[{"name":"s","topology":{"kind":"torus"}}]}"#;
        assert!(SweepSpec::parse(bad).unwrap_err().contains("torus"));
    }

    #[test]
    fn method_tokens_are_bijective() {
        for m in Method::ALL {
            assert_eq!(Method::from_token(m.token()).unwrap(), m);
        }
    }

    #[test]
    fn semi_sync_staleness_defaults_to_unbounded() {
        let text = r#"{"name":"t","seeds":{"base":1,"count":1},"methods":["comdml"],
            "scenarios":[{"name":"s","aggregation":{"kind":"semi_synchronous","quorum":0.5}}]}"#;
        let spec = SweepSpec::parse(text).unwrap();
        assert_eq!(
            spec.scenarios[0].aggregation,
            AggregationMode::SemiSynchronous { quorum: 0.5, staleness_s: f64::MAX }
        );
    }
}
