//! The declarative scenario model.
//!
//! A [`ScenarioSpec`] names one experimental condition by composing
//! everything the stack exposes — world size and topology,
//! [`ArrivalProcess`]/[`SessionLifetime`] membership churn, profile churn,
//! aggregation mode, event granularity, participation sampling, and the
//! round/accuracy budget. A [`SweepSpec`] is a grid: scenarios × methods ×
//! a seed range, exactly the shape of the paper's Tables II/III.
//!
//! Specs are plain JSON (parsed with the dependency-free
//! [`comdml_bench::Value`] model) with builder-style programmatic
//! construction, and `parse` ∘ `render` round-trips exactly — the property
//! tests in `tests/sweep.rs` hold this for arbitrary specs.
//!
//! # Spec file format
//!
//! ```json
//! {
//!   "name": "smoke",
//!   "seeds": { "base": 1, "count": 5 },
//!   "methods": ["comdml", "gossip", "allreduce", "fedavg"],
//!   "scenarios": [
//!     {
//!       "name": "churny_er20",
//!       "agents": 24,
//!       "rounds": 30,
//!       "topology": { "kind": "random", "p": 0.2 },
//!       "arrivals": { "kind": "poisson", "rate_per_s": 0.005 },
//!       "lifetime": { "kind": "exponential", "mean_s": 4000 },
//!       "aggregation": { "kind": "semi_synchronous", "quorum": 0.8 },
//!       "sampling_rate": 0.5,
//!       "dataset": "cifar10",
//!       "noniid_mix": 0.4,
//!       "churn_dip": 0.25,
//!       "target_accuracy": 0.8,
//!       "method_params": { "fedprox_min_work": 0.3, "tiers": 4 }
//!     }
//!   ]
//! }
//! ```
//!
//! Every scenario field except `name` has a default (see
//! [`ScenarioSpec::new`]), so terse specs stay terse. The accuracy model is
//! *round-driven*: `dataset`/`iid` pick a calibrated learning curve
//! (overridable with an explicit `curve: {a_max, tau}`, or blended between
//! the I.I.D. and non-I.I.D. endpoints with `noniid_mix`), each simulated
//! round advances it by its realized staleness-weighted efficiency, and
//! `churn_dip` charges effective rounds for mid-round departures. Jobs stop
//! the round the trajectory reaches `target_accuracy`.

use comdml_bench::Value;
use comdml_core::{AggregationMode, ChurnPolicy, EventGranularity, LearningCurve};
use comdml_simnet::{
    ArrivalProcess, ByzantineConfig, DistributionConfig, DiurnalCycle, JoinTopology,
    PartitionSchedule, SessionLifetime, Topology,
};

/// The methods a sweep can run, by their paper-table identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// The paper's contribution: pairing + split training + AllReduce.
    ComDml,
    /// Server-coordinated federated averaging \[1\].
    FedAvg,
    /// Decentralized AllReduce DML \[34\].
    AllReduce,
    /// Rotating-aggregator peer-to-peer \[10\].
    BrainTorrent,
    /// Pairwise gossip averaging \[11\].
    Gossip,
    /// Heterogeneity-aware partial local work \[27\].
    FedProx,
    /// Drop the slowest 30% each round \[26\].
    DropStragglers,
    /// TiFL-style speed tiers \[5\].
    Tiered,
    /// Classic server-based split learning \[2\] — the per-batch round-trip
    /// design ComDML's local-loss training replaces.
    SplitLearning,
}

impl Method {
    /// Every method the harness can run, in table order.
    pub const ALL: [Method; 9] = [
        Method::ComDml,
        Method::Gossip,
        Method::BrainTorrent,
        Method::AllReduce,
        Method::FedAvg,
        Method::FedProx,
        Method::DropStragglers,
        Method::Tiered,
        Method::SplitLearning,
    ];

    /// The spec-file token (`"comdml"`, `"fedavg"`, …).
    pub fn token(&self) -> &'static str {
        match self {
            Method::ComDml => "comdml",
            Method::FedAvg => "fedavg",
            Method::AllReduce => "allreduce",
            Method::BrainTorrent => "braintorrent",
            Method::Gossip => "gossip",
            Method::FedProx => "fedprox",
            Method::DropStragglers => "drop_stragglers",
            Method::Tiered => "tiered",
            Method::SplitLearning => "split_learning",
        }
    }

    /// The display name used in the paper's tables.
    pub fn display(&self) -> &'static str {
        match self {
            Method::ComDml => "ComDML",
            Method::FedAvg => "FedAvg",
            Method::AllReduce => "AllReduce",
            Method::BrainTorrent => "BrainTorrent",
            Method::Gossip => "Gossip Learning",
            Method::FedProx => "FedProx",
            Method::DropStragglers => "Drop-30%",
            Method::Tiered => "TiFL (tiers)",
            Method::SplitLearning => "Split Learning",
        }
    }

    /// Parses a spec-file token.
    ///
    /// # Errors
    ///
    /// Returns the unknown token.
    pub fn from_token(s: &str) -> Result<Self, String> {
        Method::ALL
            .into_iter()
            .find(|m| m.token() == s)
            .ok_or_else(|| format!("unknown method {s:?}"))
    }
}

/// The seeds of a sweep: `base, base+1, …, base+count-1`. Each seed is a
/// complete replication of the scenario grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedRange {
    /// First seed.
    pub base: u64,
    /// Number of consecutive seeds.
    pub count: usize,
}

impl SeedRange {
    /// The seeds in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.count as u64).map(move |i| self.base + i)
    }
}

/// Per-method parameter overrides a scenario can carry instead of the
/// harness's historical fixed constants. The defaults are exactly those
/// constants, so a spec that says nothing runs exactly what it always ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodParams {
    /// FedProx γ-inexactness floor: the minimum fraction of a local epoch a
    /// straggler performs (μ-controlled partial work; default 0.5).
    pub fedprox_min_work: f64,
    /// Straggler-dropping threshold: the slowest fraction ignored each
    /// round (default 0.3, the reference system's ~30%).
    pub drop_fraction: f64,
    /// TiFL speed-tier count (default 5).
    pub tiers: usize,
    /// ComDML's FedBuff staleness-discount exponent (default 0.5).
    pub staleness_decay: f64,
    /// Classic split learning: layers kept on the agent side (default 19).
    pub sl_agent_layers: usize,
    /// Classic split learning: server capacity in CPU units (default 8).
    pub sl_server_cpus: f64,
}

impl Default for MethodParams {
    fn default() -> Self {
        Self {
            fedprox_min_work: 0.5,
            drop_fraction: 0.3,
            tiers: 5,
            staleness_decay: 0.5,
            sl_agent_layers: 19,
            sl_server_cpus: 8.0,
        }
    }
}

/// One named experimental condition. See the module docs for the file
/// format; [`ScenarioSpec::new`] documents the defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (table row/column label).
    pub name: String,
    /// Initial fleet size.
    pub agents: usize,
    /// Local dataset size per agent.
    pub samples_per_agent: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Construction-time link topology.
    pub topology: Topology,
    /// How arrivals wire in (`None` = the policy matching `topology`).
    pub join_topology: Option<JoinTopology>,
    /// Membership arrivals.
    pub arrivals: ArrivalProcess,
    /// Session lifetimes (departures).
    pub lifetime: SessionLifetime,
    /// World-slot capacity (`None` = the fleet default of 4× agents).
    pub max_agents: Option<usize>,
    /// Reuse departed agents' world slots (default on: sweeps run long).
    pub recycle_slots: bool,
    /// Round aggregation trigger.
    pub aggregation: AggregationMode,
    /// Event engine granularity (default coarse — fleet-scale sweeps).
    pub granularity: EventGranularity,
    /// Per-round participation sampling rate (Table III uses 0.2).
    pub sampling_rate: f64,
    /// Pair-batch threads for the event engine (default 1 = inline).
    /// Results are bit-for-bit identical for any value; raise it for
    /// large worlds where per-pair preparation dominates the round.
    pub threads: usize,
    /// Profile churn policy (`None` = static profiles).
    pub churn: Option<ChurnPolicy>,
    /// Measured rounds per job.
    pub rounds: usize,
    /// Learning-curve dataset: `cifar10`, `cifar100` or `cinic10`.
    pub dataset: String,
    /// I.I.D. or Dirichlet-skewed data distribution (curve selection).
    pub iid: bool,
    /// Accuracy the round-driven learning model targets (jobs stop early
    /// the round the realized trajectory reaches it).
    pub target_accuracy: f64,
    /// Explicit learning-curve override (`None` = the dataset/`iid`
    /// calibration, possibly blended by `noniid_mix`).
    pub curve: Option<LearningCurve>,
    /// Non-I.I.D. mix in `[0, 1]`: blends the dataset's I.I.D. (0) and
    /// Dirichlet-0.5 (1) curves for skews between the calibrated
    /// endpoints. `None` = pure `iid` selection.
    pub noniid_mix: Option<f64>,
    /// Churn-coupled accuracy: effective rounds forfeited per mid-round
    /// departure (default 0 = membership churn costs time, not accuracy).
    pub churn_dip: f64,
    /// Per-method parameter overrides.
    pub method_params: MethodParams,
    /// CPU-speed distribution override (`None` = the paper's 5-point grid).
    /// Applies to the initial world and to every later arrival.
    pub cpu_dist: Option<DistributionConfig>,
    /// Link-bandwidth distribution override (`None` = the paper's grid).
    pub link_dist: Option<DistributionConfig>,
    /// Session-lifetime distribution override in seconds (`None` = the
    /// `lifetime` policy). Wins over `lifetime` for every duration draw.
    pub lifetime_dist: Option<DistributionConfig>,
    /// Diurnal time-varying bandwidth (`None` = stationary links).
    pub diurnal: Option<DiurnalCycle>,
    /// Rotating correlated regional outages (`None` = never partitioned).
    pub partition: Option<PartitionSchedule>,
    /// Byzantine agents misreporting speed to the pairing broadcast
    /// (`None` = everyone honest).
    pub byzantine: Option<ByzantineConfig>,
}

impl ScenarioSpec {
    /// A scenario with the paper's defaults: 10 agents, full mesh, static
    /// membership and profiles, synchronous aggregation, coarse events, no
    /// sampling, 30 measured rounds, CIFAR-10 I.I.D. at 80% target.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            agents: 10,
            samples_per_agent: 500,
            batch_size: 100,
            topology: Topology::Full,
            join_topology: None,
            arrivals: ArrivalProcess::None,
            lifetime: SessionLifetime::Infinite,
            max_agents: None,
            recycle_slots: true,
            aggregation: AggregationMode::Synchronous,
            granularity: EventGranularity::Coarse,
            sampling_rate: 1.0,
            threads: 1,
            churn: None,
            rounds: 30,
            dataset: "cifar10".to_string(),
            iid: true,
            target_accuracy: 0.8,
            curve: None,
            noniid_mix: None,
            churn_dip: 0.0,
            method_params: MethodParams::default(),
            cpu_dist: None,
            link_dist: None,
            lifetime_dist: None,
            diurnal: None,
            partition: None,
            byzantine: None,
        }
    }

    /// Sets the initial fleet size.
    pub fn agents(mut self, k: usize) -> Self {
        self.agents = k;
        self
    }

    /// Sets the topology.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Sets the arrival process.
    pub fn arrivals(mut self, a: ArrivalProcess) -> Self {
        self.arrivals = a;
        self
    }

    /// Sets the session-lifetime distribution.
    pub fn lifetime(mut self, l: SessionLifetime) -> Self {
        self.lifetime = l;
        self
    }

    /// Sets the aggregation mode.
    pub fn aggregation(mut self, m: AggregationMode) -> Self {
        self.aggregation = m;
        self
    }

    /// Sets the participation sampling rate.
    pub fn sampling_rate(mut self, r: f64) -> Self {
        self.sampling_rate = r;
        self
    }

    /// Sets the event-engine pair-batch thread count.
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Sets the profile-churn policy.
    pub fn churn(mut self, c: ChurnPolicy) -> Self {
        self.churn = Some(c);
        self
    }

    /// Sets the measured round budget.
    pub fn rounds(mut self, r: usize) -> Self {
        self.rounds = r;
        self
    }

    /// Sets the learning-curve dataset and distribution.
    pub fn dataset(mut self, name: &str, iid: bool) -> Self {
        self.dataset = name.to_string();
        self.iid = iid;
        self
    }

    /// Sets the target accuracy.
    pub fn target(mut self, a: f64) -> Self {
        self.target_accuracy = a;
        self
    }

    /// Overrides the learning curve (wins over `dataset`/`iid`/mix).
    pub fn curve(mut self, c: LearningCurve) -> Self {
        self.curve = Some(c);
        self
    }

    /// Sets the non-I.I.D. curve mix fraction.
    pub fn noniid_mix(mut self, frac: f64) -> Self {
        self.noniid_mix = Some(frac);
        self
    }

    /// Sets the churn-coupled accuracy dip per mid-round departure.
    pub fn churn_dip(mut self, dip: f64) -> Self {
        self.churn_dip = dip;
        self
    }

    /// Sets the per-method parameter overrides.
    pub fn method_params(mut self, p: MethodParams) -> Self {
        self.method_params = p;
        self
    }

    /// Overrides the CPU-speed distribution.
    pub fn cpu_dist(mut self, d: DistributionConfig) -> Self {
        self.cpu_dist = Some(d);
        self
    }

    /// Overrides the link-bandwidth distribution.
    pub fn link_dist(mut self, d: DistributionConfig) -> Self {
        self.link_dist = Some(d);
        self
    }

    /// Overrides the session-lifetime distribution (seconds).
    pub fn lifetime_dist(mut self, d: DistributionConfig) -> Self {
        self.lifetime_dist = Some(d);
        self
    }

    /// Enables diurnal time-varying bandwidth.
    pub fn diurnal(mut self, d: DiurnalCycle) -> Self {
        self.diurnal = Some(d);
        self
    }

    /// Enables rotating correlated regional outages.
    pub fn partition(mut self, p: PartitionSchedule) -> Self {
        self.partition = Some(p);
        self
    }

    /// Enables Byzantine speed misreports.
    pub fn byzantine(mut self, b: ByzantineConfig) -> Self {
        self.byzantine = Some(b);
        self
    }

    /// The learning curve this scenario's round-driven model advances:
    /// the explicit override if present, otherwise the dataset calibration
    /// — blended between the I.I.D. and non-I.I.D. endpoints when
    /// `noniid_mix` is set, the pure `iid` selection otherwise.
    ///
    /// # Panics
    ///
    /// Panics on an unknown dataset or an out-of-range mix; call
    /// [`ScenarioSpec::validate`] first.
    pub fn learning_curve(&self) -> LearningCurve {
        if let Some(c) = self.curve {
            return c;
        }
        if let Some(mix) = self.noniid_mix {
            return LearningCurve::for_dataset(&self.dataset, true)
                .blend(LearningCurve::for_dataset(&self.dataset, false), mix);
        }
        LearningCurve::for_dataset(&self.dataset, self.iid)
    }

    /// Validates ranges that the execution layer assumes.
    ///
    /// # Errors
    ///
    /// Describes the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        let ctx = &self.name;
        if self.name.is_empty() {
            return Err("scenario name must not be empty".into());
        }
        if self.agents == 0 {
            return Err(format!("{ctx}: agents must be positive"));
        }
        if self.batch_size == 0 {
            return Err(format!("{ctx}: batch_size must be positive"));
        }
        if self.rounds == 0 {
            return Err(format!("{ctx}: rounds must be positive"));
        }
        if !(self.sampling_rate > 0.0 && self.sampling_rate <= 1.0) {
            return Err(format!("{ctx}: sampling_rate must be in (0, 1]"));
        }
        if self.threads == 0 {
            return Err(format!("{ctx}: threads must be positive"));
        }
        if !(self.target_accuracy > 0.0 && self.target_accuracy < 1.0) {
            return Err(format!("{ctx}: target_accuracy must be in (0, 1)"));
        }
        if !matches!(self.dataset.as_str(), "cifar10" | "cifar100" | "cinic10") {
            return Err(format!("{ctx}: unknown dataset {:?}", self.dataset));
        }
        if let Some(c) = self.curve {
            if !(c.a_max > 0.0 && c.a_max <= 1.0 && c.tau > 0.0) {
                return Err(format!("{ctx}: curve needs a_max in (0, 1] and tau > 0"));
            }
        }
        if let Some(mix) = self.noniid_mix {
            if !(0.0..=1.0).contains(&mix) {
                return Err(format!("{ctx}: noniid_mix must be in [0, 1]"));
            }
        }
        if !(self.churn_dip.is_finite() && self.churn_dip >= 0.0) {
            return Err(format!("{ctx}: churn_dip must be finite and >= 0"));
        }
        // A target at or above the resolved curve's asymptote could never
        // be reached; fail here instead of panicking in a worker thread.
        if self.target_accuracy >= self.learning_curve().a_max {
            return Err(format!(
                "{ctx}: target_accuracy {} is unreachable (curve asymptote {})",
                self.target_accuracy,
                self.learning_curve().a_max
            ));
        }
        let p = &self.method_params;
        if !(p.fedprox_min_work > 0.0 && p.fedprox_min_work <= 1.0) {
            return Err(format!("{ctx}: fedprox_min_work must be in (0, 1]"));
        }
        if !(0.0..1.0).contains(&p.drop_fraction) {
            return Err(format!("{ctx}: drop_fraction must be in [0, 1)"));
        }
        if p.tiers == 0 {
            return Err(format!("{ctx}: tiers must be positive"));
        }
        if !(p.staleness_decay.is_finite() && p.staleness_decay >= 0.0) {
            return Err(format!("{ctx}: staleness_decay must be finite and >= 0"));
        }
        if !(1..56).contains(&p.sl_agent_layers) {
            return Err(format!("{ctx}: sl_agent_layers must be in 1..56 (ResNet-56)"));
        }
        if !(p.sl_server_cpus.is_finite() && p.sl_server_cpus > 0.0) {
            return Err(format!("{ctx}: sl_server_cpus must be positive"));
        }
        if let AggregationMode::SemiSynchronous { quorum, .. } = self.aggregation {
            if !(quorum > 0.0 && quorum <= 1.0) {
                return Err(format!("{ctx}: semi-sync quorum must be in (0, 1]"));
            }
        }
        // Probabilities and distribution parameters the simulation layer
        // asserts on (a bad spec must fail here, not panic in a worker).
        if let Topology::Random { p } = self.topology {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{ctx}: topology p must be in [0, 1]"));
            }
        }
        if let Some(JoinTopology::ErdosRenyi { p }) = self.join_topology {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{ctx}: join_topology p must be in [0, 1]"));
            }
        }
        match &self.arrivals {
            ArrivalProcess::Poisson { rate_per_s } if rate_per_s.is_nan() || *rate_per_s < 0.0 => {
                return Err(format!("{ctx}: arrival rate must be non-negative"));
            }
            ArrivalProcess::Trace(times)
                if times.iter().any(|t| !t.is_finite() || *t < 0.0)
                    || times.windows(2).any(|w| w[0] > w[1]) =>
            {
                return Err(format!("{ctx}: trace times must be non-negative and ascending"));
            }
            _ => {}
        }
        // `is_positive` form rejects NaN alongside zero/negative values.
        let positive = |v: f64| v.is_finite() && v > 0.0;
        match self.lifetime {
            SessionLifetime::Exponential { mean_s } if !positive(mean_s) => {
                return Err(format!("{ctx}: lifetime mean_s must be positive"));
            }
            SessionLifetime::Weibull { scale_s, shape }
                if !positive(scale_s) || !positive(shape) =>
            {
                return Err(format!("{ctx}: weibull scale_s and shape must be positive"));
            }
            SessionLifetime::Fixed { duration_s } if !positive(duration_s) => {
                return Err(format!("{ctx}: lifetime duration_s must be positive"));
            }
            _ => {}
        }
        if let Some(churn) = self.churn {
            if !(0.0..=1.0).contains(&churn.fraction) {
                return Err(format!("{ctx}: churn fraction must be in [0, 1]"));
            }
        }
        // Heterogeneity distributions and hostile-world knobs carry their
        // own parameter validation; surface it under this scenario's name.
        for (key, d) in [
            ("cpu_dist", &self.cpu_dist),
            ("link_dist", &self.link_dist),
            ("lifetime_dist", &self.lifetime_dist),
        ] {
            if let Some(d) = d {
                d.validate(&format!("{ctx}: {key}"))?;
            }
        }
        if let ArrivalProcess::Gaps(d) = &self.arrivals {
            d.validate(&format!("{ctx}: arrivals gap"))?;
        }
        if let Some(d) = self.diurnal {
            d.validate(&format!("{ctx}: diurnal"))?;
        }
        if let Some(p) = self.partition {
            p.validate(&format!("{ctx}: partition"))?;
        }
        if let Some(b) = self.byzantine {
            b.validate(&format!("{ctx}: byzantine"))?;
        }
        Ok(())
    }
}

/// A full sweep: scenarios × methods × seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep name (output file stem).
    pub name: String,
    /// The seed range; every (scenario, method) cell runs once per seed.
    pub seeds: SeedRange,
    /// Methods to run, in table order.
    pub methods: Vec<Method>,
    /// Scenarios to run.
    pub scenarios: Vec<ScenarioSpec>,
}

impl SweepSpec {
    /// An empty sweep with 5 seeds from 1.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            seeds: SeedRange { base: 1, count: 5 },
            methods: Vec::new(),
            scenarios: Vec::new(),
        }
    }

    /// Sets the seed range.
    pub fn seeds(mut self, base: u64, count: usize) -> Self {
        self.seeds = SeedRange { base, count };
        self
    }

    /// Adds a method.
    pub fn method(mut self, m: Method) -> Self {
        self.methods.push(m);
        self
    }

    /// Adds a scenario.
    pub fn scenario(mut self, s: ScenarioSpec) -> Self {
        self.scenarios.push(s);
        self
    }

    /// Total jobs the sweep expands to.
    pub fn num_jobs(&self) -> usize {
        self.scenarios.len() * self.methods.len() * self.seeds.count
    }

    /// Validates the sweep and every scenario.
    ///
    /// # Errors
    ///
    /// Describes the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("sweep name must not be empty".into());
        }
        if self.seeds.count == 0 {
            return Err("seed count must be positive".into());
        }
        if self.methods.is_empty() {
            return Err("at least one method is required".into());
        }
        if self.scenarios.is_empty() {
            return Err("at least one scenario is required".into());
        }
        let mut names: Vec<&str> = self.scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err("scenario names must be unique".into());
        }
        let mut methods = self.methods.clone();
        methods.sort_unstable_by_key(Method::token);
        if methods.windows(2).any(|w| w[0] == w[1]) {
            return Err("methods must be unique".into());
        }
        for s in &self.scenarios {
            s.validate()?;
        }
        Ok(())
    }

    /// Parses a spec file.
    ///
    /// # Errors
    ///
    /// Describes the first syntax or validation problem.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Value::parse(text)?;
        let spec = Self::from_value(&v)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Renders the spec as a JSON document (the exact input format of
    /// [`SweepSpec::parse`]; round-trips losslessly).
    pub fn render(&self) -> String {
        self.to_value().render()
    }

    /// Builds the spec from a parsed JSON value.
    ///
    /// # Errors
    ///
    /// Describes the first missing or ill-typed field.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let name = req_str(v, "name")?;
        let seeds_v = v.get("seeds").ok_or("missing \"seeds\"")?;
        let seeds = SeedRange {
            base: seeds_v.get("base").and_then(Value::as_u64).ok_or("seeds.base must be a u64")?,
            count: seeds_v
                .get("count")
                .and_then(Value::as_usize)
                .ok_or("seeds.count must be a usize")?,
        };
        let methods = v
            .get("methods")
            .and_then(Value::as_array)
            .ok_or("missing \"methods\" array")?
            .iter()
            .map(|m| {
                m.as_str().ok_or("methods must be strings".to_string()).and_then(Method::from_token)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let scenarios = v
            .get("scenarios")
            .and_then(Value::as_array)
            .ok_or("missing \"scenarios\" array")?
            .iter()
            .map(scenario_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { name, seeds, methods, scenarios })
    }

    /// The JSON value form of the spec.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("name".into(), Value::Str(self.name.clone())),
            (
                "seeds".into(),
                Value::Obj(vec![
                    ("base".into(), Value::Num(self.seeds.base as f64)),
                    ("count".into(), Value::Num(self.seeds.count as f64)),
                ]),
            ),
            (
                "methods".into(),
                Value::Arr(self.methods.iter().map(|m| Value::Str(m.token().into())).collect()),
            ),
            (
                "scenarios".into(),
                Value::Arr(self.scenarios.iter().map(scenario_to_value).collect()),
            ),
        ])
    }
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn kind_of(v: &Value) -> Result<&str, String> {
    v.get("kind").and_then(Value::as_str).ok_or_else(|| "missing \"kind\"".to_string())
}

fn req_f64(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("{ctx}: missing number {key:?}"))
}

fn dist_from_value(v: &Value, ctx: &str) -> Result<DistributionConfig, String> {
    Ok(match kind_of(v)? {
        "fixed" => DistributionConfig::Fixed { value: req_f64(v, "value", ctx)? },
        "uniform" => DistributionConfig::Uniform {
            min: req_f64(v, "min", ctx)?,
            max: req_f64(v, "max", ctx)?,
        },
        "normal" => DistributionConfig::Normal {
            mean: req_f64(v, "mean", ctx)?,
            std_dev: req_f64(v, "std_dev", ctx)?,
        },
        "lognormal" => DistributionConfig::LogNormal {
            mu: req_f64(v, "mu", ctx)?,
            sigma: req_f64(v, "sigma", ctx)?,
        },
        "trace" => DistributionConfig::Trace {
            values: v
                .get("values")
                .and_then(Value::as_array)
                .ok_or_else(|| format!("{ctx}: trace needs a \"values\" array"))?
                .iter()
                .map(|t| t.as_f64().ok_or_else(|| format!("{ctx}: trace values must be numbers")))
                .collect::<Result<Vec<_>, _>>()?,
        },
        other => return Err(format!("{ctx}: unknown distribution kind {other:?}")),
    })
}

fn dist_to_value(d: &DistributionConfig) -> Value {
    let kind = |k: &str| ("kind".to_string(), Value::Str(k.into()));
    match d {
        DistributionConfig::Fixed { value } => {
            Value::Obj(vec![kind("fixed"), ("value".into(), Value::Num(*value))])
        }
        DistributionConfig::Uniform { min, max } => Value::Obj(vec![
            kind("uniform"),
            ("min".into(), Value::Num(*min)),
            ("max".into(), Value::Num(*max)),
        ]),
        DistributionConfig::Normal { mean, std_dev } => Value::Obj(vec![
            kind("normal"),
            ("mean".into(), Value::Num(*mean)),
            ("std_dev".into(), Value::Num(*std_dev)),
        ]),
        DistributionConfig::LogNormal { mu, sigma } => Value::Obj(vec![
            kind("lognormal"),
            ("mu".into(), Value::Num(*mu)),
            ("sigma".into(), Value::Num(*sigma)),
        ]),
        DistributionConfig::Trace { values } => Value::Obj(vec![
            kind("trace"),
            ("values".into(), Value::Arr(values.iter().map(|&t| Value::Num(t)).collect())),
        ]),
    }
}

fn scenario_from_value(v: &Value) -> Result<ScenarioSpec, String> {
    let mut s = ScenarioSpec::new(&req_str(v, "name")?);
    if let Some(n) = v.get("agents") {
        s.agents = n.as_usize().ok_or("agents must be a usize")?;
    }
    if let Some(n) = v.get("samples_per_agent") {
        s.samples_per_agent = n.as_usize().ok_or("samples_per_agent must be a usize")?;
    }
    if let Some(n) = v.get("batch_size") {
        s.batch_size = n.as_usize().ok_or("batch_size must be a usize")?;
    }
    if let Some(t) = v.get("topology") {
        s.topology = match kind_of(t)? {
            "full" => Topology::Full,
            "ring" => Topology::Ring,
            "random" => Topology::Random { p: req_f64(t, "p", "topology")? },
            other => return Err(format!("unknown topology kind {other:?}")),
        };
    }
    if let Some(j) = v.get("join_topology") {
        s.join_topology = Some(match kind_of(j)? {
            "full_mesh" => JoinTopology::FullMesh,
            "erdos_renyi" => JoinTopology::ErdosRenyi { p: req_f64(j, "p", "join_topology")? },
            other => return Err(format!("unknown join_topology kind {other:?}")),
        });
    }
    if let Some(a) = v.get("arrivals") {
        s.arrivals = match kind_of(a)? {
            "none" => ArrivalProcess::None,
            "poisson" => {
                ArrivalProcess::Poisson { rate_per_s: req_f64(a, "rate_per_s", "arrivals")? }
            }
            "trace" => ArrivalProcess::Trace(
                a.get("times")
                    .and_then(Value::as_array)
                    .ok_or("arrivals.times must be an array")?
                    .iter()
                    .map(|t| t.as_f64().ok_or("arrival times must be numbers".to_string()))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            "gaps" => ArrivalProcess::Gaps(dist_from_value(
                a.get("gap").ok_or("arrivals.gap must be a distribution object")?,
                "arrivals.gap",
            )?),
            other => return Err(format!("unknown arrivals kind {other:?}")),
        };
    }
    if let Some(l) = v.get("lifetime") {
        s.lifetime = match kind_of(l)? {
            "infinite" => SessionLifetime::Infinite,
            "exponential" => {
                SessionLifetime::Exponential { mean_s: req_f64(l, "mean_s", "lifetime")? }
            }
            "weibull" => SessionLifetime::Weibull {
                scale_s: req_f64(l, "scale_s", "lifetime")?,
                shape: req_f64(l, "shape", "lifetime")?,
            },
            "fixed" => SessionLifetime::Fixed { duration_s: req_f64(l, "duration_s", "lifetime")? },
            other => return Err(format!("unknown lifetime kind {other:?}")),
        };
    }
    if let Some(n) = v.get("max_agents") {
        s.max_agents = Some(n.as_usize().ok_or("max_agents must be a usize")?);
    }
    if let Some(b) = v.get("recycle_slots") {
        s.recycle_slots = b.as_bool().ok_or("recycle_slots must be a bool")?;
    }
    if let Some(m) = v.get("aggregation") {
        s.aggregation = match kind_of(m)? {
            "synchronous" => AggregationMode::Synchronous,
            "semi_synchronous" => AggregationMode::SemiSynchronous {
                quorum: req_f64(m, "quorum", "aggregation")?,
                // Absent = no staleness bound, the common configuration
                // (infinity is not representable in JSON).
                staleness_s: m.get("staleness_s").and_then(Value::as_f64).unwrap_or(f64::MAX),
            },
            "asynchronous" => AggregationMode::Asynchronous,
            other => return Err(format!("unknown aggregation kind {other:?}")),
        };
    }
    if let Some(g) = v.get("granularity") {
        s.granularity = match g.as_str() {
            Some("fine") => EventGranularity::Fine,
            Some("coarse") => EventGranularity::Coarse,
            other => return Err(format!("unknown granularity {other:?}")),
        };
    }
    if let Some(r) = v.get("sampling_rate") {
        s.sampling_rate = r.as_f64().ok_or("sampling_rate must be a number")?;
    }
    if let Some(t) = v.get("threads") {
        s.threads = t.as_usize().ok_or("threads must be a positive integer")?;
    }
    if let Some(c) = v.get("churn") {
        s.churn = Some(ChurnPolicy {
            interval: c.get("interval").and_then(Value::as_usize).ok_or("churn.interval")?,
            fraction: req_f64(c, "fraction", "churn")?,
        });
    }
    if let Some(r) = v.get("rounds") {
        s.rounds = r.as_usize().ok_or("rounds must be a usize")?;
    }
    if let Some(d) = v.get("dataset") {
        s.dataset = d.as_str().ok_or("dataset must be a string")?.to_string();
    }
    if let Some(i) = v.get("iid") {
        s.iid = i.as_bool().ok_or("iid must be a bool")?;
    }
    if let Some(t) = v.get("target_accuracy") {
        s.target_accuracy = t.as_f64().ok_or("target_accuracy must be a number")?;
    }
    if let Some(c) = v.get("curve") {
        let a_max = req_f64(c, "a_max", "curve")?;
        let tau = req_f64(c, "tau", "curve")?;
        if !(a_max > 0.0 && a_max <= 1.0 && tau > 0.0) {
            return Err("curve needs a_max in (0, 1] and tau > 0".into());
        }
        s.curve = Some(LearningCurve::new(a_max, tau));
    }
    if let Some(m) = v.get("noniid_mix") {
        s.noniid_mix = Some(m.as_f64().ok_or("noniid_mix must be a number")?);
    }
    if let Some(d) = v.get("churn_dip") {
        s.churn_dip = d.as_f64().ok_or("churn_dip must be a number")?;
    }
    for (key, slot) in [
        ("cpu_dist", &mut s.cpu_dist as &mut Option<DistributionConfig>),
        ("link_dist", &mut s.link_dist),
        ("lifetime_dist", &mut s.lifetime_dist),
    ] {
        if let Some(d) = v.get(key) {
            *slot = Some(dist_from_value(d, key)?);
        }
    }
    if let Some(d) = v.get("diurnal") {
        s.diurnal = Some(DiurnalCycle {
            period_s: req_f64(d, "period_s", "diurnal")?,
            min_factor: req_f64(d, "min_factor", "diurnal")?,
        });
    }
    if let Some(p) = v.get("partition") {
        s.partition = Some(PartitionSchedule {
            groups: p.get("groups").and_then(Value::as_usize).ok_or("partition.groups")?,
            period_s: req_f64(p, "period_s", "partition")?,
            outage_s: req_f64(p, "outage_s", "partition")?,
        });
    }
    if let Some(b) = v.get("byzantine") {
        s.byzantine = Some(ByzantineConfig {
            fraction: req_f64(b, "fraction", "byzantine")?,
            speed_factor: req_f64(b, "speed_factor", "byzantine")?,
        });
    }
    if let Some(p) = v.get("method_params") {
        let mut mp = MethodParams::default();
        if let Some(x) = p.get("fedprox_min_work") {
            mp.fedprox_min_work = x.as_f64().ok_or("fedprox_min_work must be a number")?;
        }
        if let Some(x) = p.get("drop_fraction") {
            mp.drop_fraction = x.as_f64().ok_or("drop_fraction must be a number")?;
        }
        if let Some(x) = p.get("tiers") {
            mp.tiers = x.as_usize().ok_or("tiers must be a usize")?;
        }
        if let Some(x) = p.get("staleness_decay") {
            mp.staleness_decay = x.as_f64().ok_or("staleness_decay must be a number")?;
        }
        if let Some(x) = p.get("sl_agent_layers") {
            mp.sl_agent_layers = x.as_usize().ok_or("sl_agent_layers must be a usize")?;
        }
        if let Some(x) = p.get("sl_server_cpus") {
            mp.sl_server_cpus = x.as_f64().ok_or("sl_server_cpus must be a number")?;
        }
        s.method_params = mp;
    }
    Ok(s)
}

fn scenario_to_value(s: &ScenarioSpec) -> Value {
    let mut fields: Vec<(String, Value)> = vec![
        ("name".into(), Value::Str(s.name.clone())),
        ("agents".into(), Value::Num(s.agents as f64)),
        ("samples_per_agent".into(), Value::Num(s.samples_per_agent as f64)),
        ("batch_size".into(), Value::Num(s.batch_size as f64)),
    ];
    fields.push((
        "topology".into(),
        match s.topology {
            Topology::Full => Value::Obj(vec![("kind".into(), Value::Str("full".into()))]),
            Topology::Ring => Value::Obj(vec![("kind".into(), Value::Str("ring".into()))]),
            Topology::Random { p } => Value::Obj(vec![
                ("kind".into(), Value::Str("random".into())),
                ("p".into(), Value::Num(p)),
            ]),
        },
    ));
    if let Some(j) = s.join_topology {
        fields.push((
            "join_topology".into(),
            match j {
                JoinTopology::FullMesh => {
                    Value::Obj(vec![("kind".into(), Value::Str("full_mesh".into()))])
                }
                JoinTopology::ErdosRenyi { p } => Value::Obj(vec![
                    ("kind".into(), Value::Str("erdos_renyi".into())),
                    ("p".into(), Value::Num(p)),
                ]),
            },
        ));
    }
    fields.push((
        "arrivals".into(),
        match &s.arrivals {
            ArrivalProcess::None => Value::Obj(vec![("kind".into(), Value::Str("none".into()))]),
            ArrivalProcess::Poisson { rate_per_s } => Value::Obj(vec![
                ("kind".into(), Value::Str("poisson".into())),
                ("rate_per_s".into(), Value::Num(*rate_per_s)),
            ]),
            ArrivalProcess::Trace(times) => Value::Obj(vec![
                ("kind".into(), Value::Str("trace".into())),
                ("times".into(), Value::Arr(times.iter().map(|&t| Value::Num(t)).collect())),
            ]),
            ArrivalProcess::Gaps(d) => Value::Obj(vec![
                ("kind".into(), Value::Str("gaps".into())),
                ("gap".into(), dist_to_value(d)),
            ]),
        },
    ));
    fields.push((
        "lifetime".into(),
        match s.lifetime {
            SessionLifetime::Infinite => {
                Value::Obj(vec![("kind".into(), Value::Str("infinite".into()))])
            }
            SessionLifetime::Exponential { mean_s } => Value::Obj(vec![
                ("kind".into(), Value::Str("exponential".into())),
                ("mean_s".into(), Value::Num(mean_s)),
            ]),
            SessionLifetime::Weibull { scale_s, shape } => Value::Obj(vec![
                ("kind".into(), Value::Str("weibull".into())),
                ("scale_s".into(), Value::Num(scale_s)),
                ("shape".into(), Value::Num(shape)),
            ]),
            SessionLifetime::Fixed { duration_s } => Value::Obj(vec![
                ("kind".into(), Value::Str("fixed".into())),
                ("duration_s".into(), Value::Num(duration_s)),
            ]),
        },
    ));
    if let Some(m) = s.max_agents {
        fields.push(("max_agents".into(), Value::Num(m as f64)));
    }
    fields.push(("recycle_slots".into(), Value::Bool(s.recycle_slots)));
    fields.push((
        "aggregation".into(),
        match s.aggregation {
            AggregationMode::Synchronous => {
                Value::Obj(vec![("kind".into(), Value::Str("synchronous".into()))])
            }
            AggregationMode::SemiSynchronous { quorum, staleness_s } => {
                let mut f = vec![
                    ("kind".into(), Value::Str("semi_synchronous".into())),
                    ("quorum".into(), Value::Num(quorum)),
                ];
                if staleness_s.is_finite() && staleness_s != f64::MAX {
                    f.push(("staleness_s".into(), Value::Num(staleness_s)));
                }
                Value::Obj(f)
            }
            AggregationMode::Asynchronous => {
                Value::Obj(vec![("kind".into(), Value::Str("asynchronous".into()))])
            }
        },
    ));
    fields.push((
        "granularity".into(),
        Value::Str(match s.granularity {
            EventGranularity::Fine => "fine".into(),
            EventGranularity::Coarse => "coarse".into(),
        }),
    ));
    fields.push(("sampling_rate".into(), Value::Num(s.sampling_rate)));
    if s.threads != 1 {
        fields.push(("threads".into(), Value::Num(s.threads as f64)));
    }
    if let Some(c) = s.churn {
        fields.push((
            "churn".into(),
            Value::Obj(vec![
                ("interval".into(), Value::Num(c.interval as f64)),
                ("fraction".into(), Value::Num(c.fraction)),
            ]),
        ));
    }
    fields.push(("rounds".into(), Value::Num(s.rounds as f64)));
    fields.push(("dataset".into(), Value::Str(s.dataset.clone())));
    fields.push(("iid".into(), Value::Bool(s.iid)));
    fields.push(("target_accuracy".into(), Value::Num(s.target_accuracy)));
    if let Some(c) = s.curve {
        fields.push((
            "curve".into(),
            Value::Obj(vec![
                ("a_max".into(), Value::Num(c.a_max)),
                ("tau".into(), Value::Num(c.tau)),
            ]),
        ));
    }
    if let Some(m) = s.noniid_mix {
        fields.push(("noniid_mix".into(), Value::Num(m)));
    }
    if s.churn_dip != 0.0 {
        fields.push(("churn_dip".into(), Value::Num(s.churn_dip)));
    }
    for (key, d) in [
        ("cpu_dist", &s.cpu_dist),
        ("link_dist", &s.link_dist),
        ("lifetime_dist", &s.lifetime_dist),
    ] {
        if let Some(d) = d {
            fields.push((key.into(), dist_to_value(d)));
        }
    }
    if let Some(d) = s.diurnal {
        fields.push((
            "diurnal".into(),
            Value::Obj(vec![
                ("period_s".into(), Value::Num(d.period_s)),
                ("min_factor".into(), Value::Num(d.min_factor)),
            ]),
        ));
    }
    if let Some(p) = s.partition {
        fields.push((
            "partition".into(),
            Value::Obj(vec![
                ("groups".into(), Value::Num(p.groups as f64)),
                ("period_s".into(), Value::Num(p.period_s)),
                ("outage_s".into(), Value::Num(p.outage_s)),
            ]),
        ));
    }
    if let Some(b) = s.byzantine {
        fields.push((
            "byzantine".into(),
            Value::Obj(vec![
                ("fraction".into(), Value::Num(b.fraction)),
                ("speed_factor".into(), Value::Num(b.speed_factor)),
            ]),
        ));
    }
    if s.method_params != MethodParams::default() {
        let p = &s.method_params;
        fields.push((
            "method_params".into(),
            Value::Obj(vec![
                ("fedprox_min_work".into(), Value::Num(p.fedprox_min_work)),
                ("drop_fraction".into(), Value::Num(p.drop_fraction)),
                ("tiers".into(), Value::Num(p.tiers as f64)),
                ("staleness_decay".into(), Value::Num(p.staleness_decay)),
                ("sl_agent_layers".into(), Value::Num(p.sl_agent_layers as f64)),
                ("sl_server_cpus".into(), Value::Num(p.sl_server_cpus)),
            ]),
        ));
    }
    Value::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_spec() -> SweepSpec {
        SweepSpec::new("demo")
            .seeds(7, 3)
            .method(Method::ComDml)
            .method(Method::FedAvg)
            .scenario(ScenarioSpec::new("static"))
            .scenario(
                ScenarioSpec::new("churny")
                    .agents(24)
                    .topology(Topology::random(0.2))
                    .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.01 })
                    .lifetime(SessionLifetime::Weibull { scale_s: 900.0, shape: 0.7 })
                    .aggregation(AggregationMode::SemiSynchronous {
                        quorum: 0.8,
                        staleness_s: f64::MAX,
                    })
                    .sampling_rate(0.2)
                    .churn(ChurnPolicy { interval: 10, fraction: 0.2 })
                    .rounds(12)
                    .dataset("cifar100", false)
                    .target(0.6)
                    .noniid_mix(0.35)
                    .churn_dip(0.4)
                    .method_params(MethodParams {
                        fedprox_min_work: 0.25,
                        drop_fraction: 0.4,
                        tiers: 3,
                        staleness_decay: 0.75,
                        sl_agent_layers: 24,
                        sl_server_cpus: 12.5,
                    }),
            )
            .scenario(
                ScenarioSpec::new("custom_curve").curve(LearningCurve::new(0.82, 9.5)).target(0.7),
            )
    }

    #[test]
    fn spec_round_trips_through_text() {
        let spec = full_spec();
        let text = spec.render();
        let back = SweepSpec::parse(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.render(), text, "render is deterministic");
    }

    #[test]
    fn terse_specs_fill_defaults() {
        let text = r#"{
            "name": "t",
            "seeds": {"base": 1, "count": 2},
            "methods": ["comdml"],
            "scenarios": [{"name": "s"}]
        }"#;
        let spec = SweepSpec::parse(text).unwrap();
        assert_eq!(spec.scenarios[0], ScenarioSpec::new("s"));
        assert_eq!(spec.num_jobs(), 2);
    }

    #[test]
    fn trace_arrivals_round_trip() {
        let spec = SweepSpec::new("t").seeds(1, 1).method(Method::Gossip).scenario(
            ScenarioSpec::new("traced")
                .arrivals(ArrivalProcess::Trace(vec![5.0, 10.5, 400.0]))
                .lifetime(SessionLifetime::Fixed { duration_s: 60.0 }),
        );
        assert_eq!(SweepSpec::parse(&spec.render()).unwrap(), spec);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(SweepSpec::new("x").validate().is_err(), "no methods/scenarios");
        let dup = SweepSpec::new("x")
            .method(Method::ComDml)
            .scenario(ScenarioSpec::new("a"))
            .scenario(ScenarioSpec::new("a"));
        assert!(dup.validate().unwrap_err().contains("unique"));
        let bad_rate = SweepSpec::new("x")
            .method(Method::ComDml)
            .scenario(ScenarioSpec::new("a").sampling_rate(0.0));
        assert!(bad_rate.validate().is_err());
        let bad_dataset = SweepSpec::new("x")
            .method(Method::ComDml)
            .scenario(ScenarioSpec::new("a").dataset("mnist", true));
        assert!(bad_dataset.validate().is_err());
    }

    #[test]
    fn validation_rejects_out_of_range_distribution_parameters() {
        let wrap = |s: ScenarioSpec| SweepSpec::new("x").method(Method::ComDml).scenario(s);
        // A struct-literal Random { p } bypasses Topology::random's assert,
        // so validate() must catch it before a worker thread panics.
        let bad_p = wrap(ScenarioSpec::new("a").topology(Topology::Random { p: 1.5 }));
        assert!(bad_p.validate().unwrap_err().contains("topology p"));
        let mut s = ScenarioSpec::new("a");
        s.join_topology = Some(JoinTopology::ErdosRenyi { p: -0.1 });
        assert!(wrap(s).validate().unwrap_err().contains("join_topology"));
        let bad_life =
            wrap(ScenarioSpec::new("a").lifetime(SessionLifetime::Exponential { mean_s: 0.0 }));
        assert!(bad_life.validate().unwrap_err().contains("mean_s"));
        let bad_trace =
            wrap(ScenarioSpec::new("a").arrivals(ArrivalProcess::Trace(vec![5.0, 1.0])));
        assert!(bad_trace.validate().unwrap_err().contains("ascending"));
        let bad_churn =
            wrap(ScenarioSpec::new("a").churn(ChurnPolicy { interval: 5, fraction: 1.5 }));
        assert!(bad_churn.validate().unwrap_err().contains("churn"));
        let bad_rate =
            wrap(ScenarioSpec::new("a").arrivals(ArrivalProcess::Poisson { rate_per_s: f64::NAN }));
        assert!(bad_rate.validate().unwrap_err().contains("arrival rate"));
    }

    #[test]
    fn unknown_fields_and_tokens_error() {
        assert!(Method::from_token("sgd").is_err());
        let bad = r#"{"name":"t","seeds":{"base":1,"count":1},"methods":["comdml"],
                      "scenarios":[{"name":"s","topology":{"kind":"torus"}}]}"#;
        assert!(SweepSpec::parse(bad).unwrap_err().contains("torus"));
    }

    #[test]
    fn method_tokens_are_bijective() {
        assert_eq!(Method::ALL.len(), 9, "ComDML plus all eight baselines");
        for m in Method::ALL {
            assert_eq!(Method::from_token(m.token()).unwrap(), m);
        }
    }

    #[test]
    fn learning_curve_resolves_override_mix_and_selection() {
        let s = ScenarioSpec::new("a").dataset("cifar100", false);
        assert_eq!(s.learning_curve(), LearningCurve::cifar100(false));
        let mixed = ScenarioSpec::new("a").noniid_mix(0.5);
        let iid = LearningCurve::cifar10(true);
        let non = LearningCurve::cifar10(false);
        assert_eq!(mixed.learning_curve(), iid.blend(non, 0.5));
        // Endpoints match the pure selections exactly.
        assert_eq!(ScenarioSpec::new("a").noniid_mix(0.0).learning_curve(), iid);
        assert_eq!(ScenarioSpec::new("a").noniid_mix(1.0).learning_curve(), non);
        // An explicit curve wins over everything.
        let forced = ScenarioSpec::new("a").noniid_mix(0.5).curve(LearningCurve::new(0.7, 4.0));
        assert_eq!(forced.learning_curve(), LearningCurve::new(0.7, 4.0));
    }

    #[test]
    fn validation_rejects_bad_accuracy_model_knobs() {
        let wrap = |s: ScenarioSpec| SweepSpec::new("x").method(Method::ComDml).scenario(s);
        let bad_mix = wrap(ScenarioSpec::new("a").noniid_mix(1.5));
        assert!(bad_mix.validate().unwrap_err().contains("noniid_mix"));
        let bad_dip = wrap(ScenarioSpec::new("a").churn_dip(-0.5));
        assert!(bad_dip.validate().unwrap_err().contains("churn_dip"));
        // Target at/above the resolved asymptote must fail validation, not
        // panic in a worker.
        let unreachable = wrap(ScenarioSpec::new("a").curve(LearningCurve::new(0.6, 5.0)));
        assert!(unreachable.validate().unwrap_err().contains("unreachable"));
        let with_params =
            |p: MethodParams| wrap(ScenarioSpec::new("a").method_params(p)).validate().unwrap_err();
        let d = MethodParams::default();
        assert!(with_params(MethodParams { drop_fraction: 1.0, ..d }).contains("drop_fraction"));
        assert!(with_params(MethodParams { tiers: 0, ..d }).contains("tiers"));
        assert!(with_params(MethodParams { sl_agent_layers: 56, ..d }).contains("sl_agent_layers"));
        assert!(
            with_params(MethodParams { fedprox_min_work: 0.0, ..d }).contains("fedprox_min_work")
        );
    }

    #[test]
    fn curve_json_rejects_out_of_range_constants() {
        let bad = r#"{"name":"t","seeds":{"base":1,"count":1},"methods":["comdml"],
            "scenarios":[{"name":"s","curve":{"a_max":1.5,"tau":3.0}}]}"#;
        assert!(SweepSpec::parse(bad).unwrap_err().contains("curve"));
    }

    #[test]
    fn default_method_params_render_tersely() {
        let spec =
            SweepSpec::new("t").seeds(1, 1).method(Method::ComDml).scenario(ScenarioSpec::new("s"));
        let text = spec.render();
        assert!(!text.contains("method_params"), "defaults stay out of rendered specs");
        assert!(!text.contains("churn_dip"));
        assert!(!text.contains("noniid_mix"));
    }

    #[test]
    fn semi_sync_staleness_defaults_to_unbounded() {
        let text = r#"{"name":"t","seeds":{"base":1,"count":1},"methods":["comdml"],
            "scenarios":[{"name":"s","aggregation":{"kind":"semi_synchronous","quorum":0.5}}]}"#;
        let spec = SweepSpec::parse(text).unwrap();
        assert_eq!(
            spec.scenarios[0].aggregation,
            AggregationMode::SemiSynchronous { quorum: 0.5, staleness_s: f64::MAX }
        );
    }
}
