//! Regenerates the paper's Table II and Table III-style grids from one
//! command: every baseline × every scenario × a seed range, executed on
//! the parallel sweep engine, emitted as stdout tables plus
//! `BENCH_sweep_table{2,3}.json` and CSV under `target/experiments/`.
//!
//! ```sh
//! cargo run --release --bin paper_tables            # 5 seeds, all cores
//! cargo run --release --bin paper_tables -- --seeds 10 --threads 4
//! ```
//!
//! Before the full grids run, a determinism gate executes the smoke grid
//! once on one worker and once on all workers and asserts the two reports
//! are byte-identical — the sweep engine's core guarantee.

use std::process::ExitCode;
use std::time::Instant;

use comdml_exp::{presets, SweepRunner};

fn parse_args() -> Result<(usize, Option<usize>), String> {
    let mut seeds = 5usize;
    let mut threads = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--seeds" => {
                seeds = grab("--seeds")?.parse().map_err(|e| format!("bad --seeds: {e}"))?
            }
            "--threads" => {
                threads =
                    Some(grab("--threads")?.parse().map_err(|e| format!("bad --threads: {e}"))?)
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if seeds == 0 {
        return Err("--seeds must be positive".into());
    }
    Ok((seeds, threads))
}

fn main() -> ExitCode {
    let (seeds, threads) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("paper_tables: {e}");
            return ExitCode::FAILURE;
        }
    };
    let runner = |t: Option<usize>| {
        let mut r = SweepRunner::new().progress(true);
        if let Some(n) = t {
            r = r.threads(n);
        }
        r
    };

    // Determinism gate: the report must not depend on the worker count.
    let gate = presets::smoke();
    let single = runner(Some(1)).progress(false).run(&gate).expect("smoke sweep runs");
    let many = runner(threads).run(&gate).expect("smoke sweep runs");
    assert_eq!(
        single.to_value().render(),
        many.to_value().render(),
        "multi-threaded sweep must be byte-identical to single-threaded"
    );
    let workers = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    println!("determinism: ok (1 worker == {workers} workers, {} jobs)\n", gate.num_jobs());

    for preset in ["table2", "table3"] {
        let spec = presets::by_name(preset, seeds).expect("known preset");
        println!(
            "{}: {} scenarios x {} methods x {} seeds = {} jobs",
            spec.name,
            spec.scenarios.len(),
            spec.methods.len(),
            spec.seeds.count,
            spec.num_jobs()
        );
        let start = Instant::now();
        let report = runner(threads).run(&spec).expect("preset validates");
        println!("({} jobs in {:.2}s wall)\n", spec.num_jobs(), start.elapsed().as_secs_f64());
        print!("{}", report.render_table());
        match report.write_default() {
            Ok((json, csv)) => {
                println!("report written to {} and {}\n", json.display(), csv.display())
            }
            Err(e) => {
                eprintln!("paper_tables: write report: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
