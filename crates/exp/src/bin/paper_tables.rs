//! Regenerates the paper's Table II and Table III-style grids from one
//! command: every baseline × every scenario × a seed range, executed on
//! the parallel sweep engine, emitted as stdout tables plus
//! `BENCH_sweep_table{2,3}.json` and CSV under `target/experiments/`.
//!
//! ```sh
//! cargo run --release --bin paper_tables            # 5 seeds, all cores
//! cargo run --release --bin paper_tables -- --seeds 10 --workers 4
//! ```
//!
//! Before the full grids run, a determinism gate executes the smoke grid
//! once on one worker and once on all workers and asserts the two reports
//! are byte-identical — the sweep engine's core guarantee.

use std::process::ExitCode;
use std::time::Instant;

use comdml_exp::{cli, presets, SweepRunner};

fn run() -> Result<(), String> {
    let args = cli::parse_env(
        "paper_tables",
        "[flags]",
        &[cli::SEEDS, cli::WORKERS, cli::OUT_DIR, cli::LIST_PRESETS],
    )?;
    if args.has("list-presets") {
        print!("{}", cli::preset_listing());
        return Ok(());
    }
    if let Some(extra) = args.positionals().first() {
        return Err(format!("unexpected argument {extra}"));
    }
    let seeds = args.seeds()?.unwrap_or(5);
    let workers = args.workers()?;
    let runner = |w: Option<usize>| {
        let mut r = SweepRunner::new().progress(true);
        if let Some(n) = w {
            r = r.threads(n);
        }
        r
    };

    // Determinism gate: the report must not depend on the worker count.
    let gate = presets::smoke();
    let single = runner(Some(1)).progress(false).run(&gate).expect("smoke sweep runs");
    let many = runner(workers).run(&gate).expect("smoke sweep runs");
    assert_eq!(
        single.to_value().render(),
        many.to_value().render(),
        "multi-threaded sweep must be byte-identical to single-threaded"
    );
    let pool = workers
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    println!("determinism: ok (1 worker == {pool} workers, {} jobs)\n", gate.num_jobs());

    for preset in ["table2", "table3"] {
        let spec = presets::by_name(preset, seeds).expect("known preset");
        println!(
            "{}: {} scenarios x {} methods x {} seeds = {} jobs",
            spec.name,
            spec.scenarios.len(),
            spec.methods.len(),
            spec.seeds.count,
            spec.num_jobs()
        );
        let start = Instant::now();
        let report = runner(workers).run(&spec).expect("preset validates");
        println!("({} jobs in {:.2}s wall)\n", spec.num_jobs(), start.elapsed().as_secs_f64());
        print!("{}", report.render_table());
        let (json, csv) =
            report.write_to(args.out_dir()).map_err(|e| format!("write report: {e}"))?;
        println!("report written to {} and {}\n", json.display(), csv.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            comdml_obs::error!("paper_tables", "{e}");
            ExitCode::FAILURE
        }
    }
}
