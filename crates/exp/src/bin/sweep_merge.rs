//! Fuses sharded sweep partials back into the full report.
//!
//! ```sh
//! cargo run --release --bin exp_sweep -- @table3 --shard 0/2
//! cargo run --release --bin exp_sweep -- @table3 --shard 1/2
//! cargo run --release --bin sweep_merge -- \
//!   target/experiments/BENCH_part_table3_0of2.json \
//!   target/experiments/BENCH_part_table3_1of2.json
//! ```
//!
//! Takes one `BENCH_part_<sweep>_<i>of<n>.json` per shard (any order),
//! verifies they come from the same spec and cover the job matrix exactly
//! once, and writes the same `BENCH_sweep_*.json` + CSV + curve artifacts
//! a single-process `exp_sweep` run of the spec would have written —
//! byte-identical, so `diff` against an unsharded run is empty (CI does
//! exactly that).

use std::path::PathBuf;
use std::process::ExitCode;

use comdml_exp::{merge, PartialReport};

struct Args {
    parts: Vec<PathBuf>,
    out_dir: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut parts = Vec::new();
    let mut out_dir = PathBuf::from("target/experiments");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_dir = PathBuf::from(it.next().ok_or("--out needs a value")?),
            other if other.starts_with("--") => return Err(format!("unknown argument {other}")),
            other => parts.push(PathBuf::from(other)),
        }
    }
    if parts.is_empty() {
        return Err("usage: sweep_merge <BENCH_part_*.json>... [--out DIR]".into());
    }
    Ok(Args { parts, out_dir })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sweep_merge: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut partials = Vec::with_capacity(args.parts.len());
    for path in &args.parts {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sweep_merge: read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match PartialReport::parse(&text) {
            Ok(p) => partials.push(p),
            Err(e) => {
                eprintln!("sweep_merge: parse {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let report = match merge(&partials) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep_merge: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "merged {} shards of sweep {} ({} jobs)",
        partials.len(),
        report.name,
        report.jobs.len()
    );
    print!("{}", report.render_table());
    match report.write_to(&args.out_dir) {
        Ok((json, csv)) => println!("report written to {} and {}", json.display(), csv.display()),
        Err(e) => {
            eprintln!("sweep_merge: write report: {e}");
            return ExitCode::FAILURE;
        }
    }
    match report.write_curves_to(&args.out_dir) {
        Ok((json, csv, svgs)) => {
            println!(
                "curves written to {}, {} and {} scenario panel(s)",
                json.display(),
                csv.display(),
                svgs.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sweep_merge: write curves: {e}");
            ExitCode::FAILURE
        }
    }
}
