//! Fuses sharded sweep partials back into the full report.
//!
//! ```sh
//! cargo run --release --bin exp_sweep -- @table3 --shard 0/2
//! cargo run --release --bin exp_sweep -- @table3 --shard 1/2
//! cargo run --release --bin sweep_merge -- \
//!   target/experiments/BENCH_part_table3_0of2.json \
//!   target/experiments/BENCH_part_table3_1of2.json
//! ```
//!
//! Takes one `BENCH_part_<sweep>_<i>of<n>.json` per shard (any order),
//! verifies they come from the same spec and cover the job matrix exactly
//! once, and writes the same `BENCH_sweep_*.json` + CSV + curve artifacts
//! a single-process `exp_sweep` run of the spec would have written —
//! byte-identical, so `diff` against an unsharded run is empty (CI does
//! exactly that).

use std::process::ExitCode;

use comdml_exp::{cli, merge, PartialReport};

fn run() -> Result<(), String> {
    let args = cli::parse_env(
        "sweep_merge",
        "<BENCH_part_*.json>... [flags]",
        &[cli::OUT_DIR, cli::LIST_PRESETS],
    )?;
    if args.has("list-presets") {
        print!("{}", cli::preset_listing());
        return Ok(());
    }
    if args.positionals().is_empty() {
        return Err("missing partial-report files".into());
    }
    let mut partials = Vec::with_capacity(args.positionals().len());
    for path in args.positionals() {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        partials.push(PartialReport::parse(&text).map_err(|e| format!("parse {path}: {e}"))?);
    }
    let report = merge(&partials)?;
    println!(
        "merged {} shards of sweep {} ({} jobs)",
        partials.len(),
        report.name,
        report.jobs.len()
    );
    print!("{}", report.render_table());
    let (json, csv) = report.write_to(args.out_dir()).map_err(|e| format!("write report: {e}"))?;
    println!("report written to {} and {}", json.display(), csv.display());
    let (json, csv, svgs) =
        report.write_curves_to(args.out_dir()).map_err(|e| format!("write curves: {e}"))?;
    println!(
        "curves written to {}, {} and {} scenario panel(s)",
        json.display(),
        csv.display(),
        svgs.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            comdml_obs::error!("sweep_merge", "{e}");
            ExitCode::FAILURE
        }
    }
}
