//! The distributed sweep farm's command surface: one binary, five
//! subcommands, all speaking the shared `exp::cli` dialect.
//!
//! ```sh
//! # On the coordinating host:
//! cargo run --release --bin exp_farm -- coordinator --addr 0.0.0.0:7700
//!
//! # On every compute host (heterogeneous is fine — that's the point):
//! cargo run --release --bin exp_farm -- worker --addr coord:7700
//!
//! # From anywhere:
//! cargo run --release --bin exp_farm -- submit @table3 --addr coord:7700 --wait
//! cargo run --release --bin exp_farm -- status 1 --addr coord:7700
//! cargo run --release --bin exp_farm -- fetch 1 --addr coord:7700
//! ```
//!
//! `submit --wait` polls progress and, once the sweep completes, fetches
//! the report and writes the standard artifacts — byte-identical to a
//! single-process `exp_sweep` run of the same spec, whatever the worker
//! fleet did along the way.

use std::process::ExitCode;
use std::time::Duration;

use comdml_exp::cli::{self, FlagSpec};
use comdml_exp::{farm, FarmConfig, WorkerOptions};

const SLICE: FlagSpec = FlagSpec {
    name: "slice",
    aliases: &[],
    takes_value: true,
    help: "jobs per work slice (default: 4)",
};
const TIMEOUT_S: FlagSpec = FlagSpec {
    name: "timeout-s",
    aliases: &[],
    takes_value: true,
    help: "seconds of worker silence before a slice is requeued (default: 10)",
};
const NAME: FlagSpec = FlagSpec {
    name: "name",
    aliases: &[],
    takes_value: true,
    help: "worker name shown in the coordinator log (default: hostname-ish)",
};
const MAX_JOBS: FlagSpec = FlagSpec {
    name: "max-jobs",
    aliases: &[],
    takes_value: true,
    help: "die abruptly after N jobs (fault-injection aid)",
};
const WAIT: FlagSpec = FlagSpec {
    name: "wait",
    aliases: &[],
    takes_value: false,
    help: "poll until complete, then fetch and write artifacts",
};

const USAGE: &str = "coordinator|worker|submit|status|fetch [flags]
  coordinator [--addr A] [--slice N] [--timeout-s S] [--quiet]
  worker      [--addr A] [--workers N] [--name S] [--max-jobs N]
  submit      <spec.json | @preset> [--addr A] [--seeds N] [--wait] [--out-dir D] [--quiet]
  status      <sweep-id> [--addr A]
  fetch       <sweep-id> [--addr A] [--out-dir D]";

fn addr_of(args: &cli::ParsedArgs) -> String {
    args.value("addr").unwrap_or(farm::DEFAULT_ADDR).to_string()
}

fn write_artifacts(
    report: &comdml_exp::SweepReport,
    out_dir: &std::path::Path,
) -> Result<(), String> {
    print!("{}", report.render_table());
    let (json, csv) = report.write_to(out_dir).map_err(|e| format!("write report: {e}"))?;
    println!("report written to {} and {}", json.display(), csv.display());
    let (json, csv, svgs) =
        report.write_curves_to(out_dir).map_err(|e| format!("write curves: {e}"))?;
    println!(
        "curves written to {}, {} and {} scenario panel(s)",
        json.display(),
        csv.display(),
        svgs.len()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let mut argv = std::env::args().skip(1);
    let sub = argv.next().ok_or_else(|| format!("usage: exp_farm {USAGE}"))?;
    match sub.as_str() {
        "coordinator" => {
            let args = cli::parse(
                "exp_farm coordinator",
                "[flags]",
                &[cli::ADDR, SLICE, TIMEOUT_S, cli::QUIET],
                argv,
            )?;
            // The coordinator's event log is the whole point of running it
            // in a terminal: default to `info` unless the operator chose a
            // filter (COMDML_LOG) or asked for quiet.
            if !args.has("quiet") && std::env::var("COMDML_LOG").is_err() {
                comdml_obs::set_log_filter("info");
            }
            let mut cfg = FarmConfig { quiet: args.has("quiet"), ..FarmConfig::default() };
            if let Some(n) = args.parsed::<usize>("slice")? {
                cfg.slice_size = n.max(1);
            }
            if let Some(s) = args.parsed::<f64>("timeout-s")? {
                cfg.worker_timeout = Duration::from_secs_f64(s.max(0.1));
            }
            let coordinator =
                farm::Coordinator::bind(&addr_of(&args), cfg).map_err(|e| format!("bind: {e}"))?;
            println!("farm coordinator listening on {}", coordinator.local_addr());
            // Serve until the process is killed; sessions run on their
            // own threads.
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        "worker" => {
            let args = cli::parse(
                "exp_farm worker",
                "[flags]",
                &[cli::ADDR, cli::WORKERS, NAME, MAX_JOBS],
                argv,
            )?;
            let mut opts = WorkerOptions::default();
            if let Some(n) = args.workers()? {
                opts.threads = n;
            }
            if let Some(name) = args.value("name") {
                opts.name = name.to_string();
            }
            opts.max_jobs = args.parsed::<usize>("max-jobs")?;
            let summary = farm::run_worker(&addr_of(&args), &opts)?;
            println!(
                "worker {} finished: {} jobs over {} slices ({})",
                summary.worker_id,
                summary.jobs_run,
                summary.slices_run,
                if summary.clean_shutdown { "coordinator shutdown" } else { "job budget hit" }
            );
            Ok(())
        }
        "submit" => {
            let args = cli::parse(
                "exp_farm submit",
                "<spec.json | @preset> [flags]",
                &[cli::ADDR, cli::SEEDS, WAIT, cli::OUT_DIR, cli::QUIET, cli::LIST_PRESETS],
                argv,
            )?;
            if args.has("list-presets") {
                print!("{}", cli::preset_listing());
                return Ok(());
            }
            let spec =
                cli::resolve_spec(args.one_positional("spec (a file or @preset)")?, args.seeds()?)?;
            let addr = addr_of(&args);
            let (sweep_id, total) = farm::submit(&addr, &spec)?;
            println!("sweep {sweep_id} submitted: {total} jobs");
            if args.has("wait") {
                let report = farm::wait_and_fetch(
                    &addr,
                    sweep_id,
                    Duration::from_millis(250),
                    !args.has("quiet"),
                )?;
                write_artifacts(&report, &args.out_dir())?;
            }
            Ok(())
        }
        "status" => {
            let args = cli::parse("exp_farm status", "<sweep-id> [flags]", &[cli::ADDR], argv)?;
            let sweep_id: u64 = args
                .one_positional("sweep id")?
                .parse()
                .map_err(|e| format!("bad sweep id: {e}"))?;
            let s = farm::status(&addr_of(&args), sweep_id)?;
            let eta = if s.eta_s < 0.0 { "?".into() } else { format!("{:.0}s", s.eta_s) };
            println!(
                "sweep {}: {}/{} done, {} in flight, {} queued, {} requeued, {} workers, \
                 elapsed {:.1}s, eta {eta}{}",
                s.sweep_id,
                s.done,
                s.total,
                s.in_flight,
                s.queued,
                s.requeued,
                s.workers,
                s.elapsed_s,
                if s.complete { " — complete" } else { "" }
            );
            println!(
                "slices requeued {} (reaper timeouts {}), unknown frames skipped {}",
                s.requeued_slices, s.timed_out_slices, s.skipped_unknown
            );
            for w in &s.worker_rows {
                println!(
                    "  worker {} ({}): {} jobs / {} slices, {:.2} jobs/s, \
                     slice p50 {:.1}ms p90 {:.1}ms, skipped {}",
                    w.worker_id,
                    w.name,
                    w.jobs_done,
                    w.slices_done,
                    w.jobs_per_s,
                    w.slice_p50_ms,
                    w.slice_p90_ms,
                    w.skipped_unknown
                );
            }
            Ok(())
        }
        "fetch" => {
            let args = cli::parse(
                "exp_farm fetch",
                "<sweep-id> [flags]",
                &[cli::ADDR, cli::OUT_DIR],
                argv,
            )?;
            let sweep_id: u64 = args
                .one_positional("sweep id")?
                .parse()
                .map_err(|e| format!("bad sweep id: {e}"))?;
            match farm::fetch(&addr_of(&args), sweep_id)? {
                Some(report) => write_artifacts(&report, &args.out_dir()),
                None => Err(format!("sweep {sweep_id} is still running (try status)")),
            }
        }
        "--help" | "-h" => {
            println!("usage: exp_farm {USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other}\nusage: exp_farm {USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            comdml_obs::error!("exp_farm", "{e}");
            ExitCode::FAILURE
        }
    }
}
