//! Runs one sweep spec end to end: parse → job matrix → parallel execution
//! → paper-style table + `BENCH_sweep_*.json` + CSV + the figure-ready
//! curve artifacts (`BENCH_curves_*.json`, CSV, one SVG per scenario).
//!
//! ```sh
//! cargo run --release --bin exp_sweep -- ci/specs/smoke.json
//! cargo run --release --bin exp_sweep -- @table3 --seeds 5 --threads 8
//! cargo run --release --bin exp_sweep -- @table3 --shard 0/4   # one host
//! ```
//!
//! A `@name` argument resolves a built-in preset (`@table2`, `@table3`,
//! `@extended`, `@convergence`, `@smoke`) instead of reading a file;
//! `--print-spec` renders the resolved spec (useful for turning a preset
//! into an editable starting file). Jobs run round-driven: per-job realized
//! accuracy trajectories land in the `BENCH_sweep_*.json` artifact, and
//! jobs stop early once they reach the scenario's target accuracy.
//!
//! `--shard i/n` runs only the jobs of shard `i` of `n` and writes a
//! `BENCH_part_<sweep>_<i>of<n>.json` partial report instead of the full
//! artifacts; run every shard (anywhere — pure per-job seeding makes them
//! independent), then fuse them with `sweep_merge` into a report
//! byte-identical to the single-process run.

use std::path::PathBuf;
use std::process::ExitCode;

use comdml_exp::{presets, Shard, SweepRunner, SweepSpec};

struct Args {
    spec: String,
    threads: Option<usize>,
    seeds: Option<usize>,
    out_dir: PathBuf,
    quiet: bool,
    print_spec: bool,
    shard: Option<Shard>,
}

fn parse_args() -> Result<Args, String> {
    let mut spec: Option<String> = None;
    let mut threads = None;
    let mut seeds = None;
    let mut out_dir = PathBuf::from("target/experiments");
    let mut quiet = false;
    let mut print_spec = false;
    let mut shard = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--threads" => {
                threads =
                    Some(grab("--threads")?.parse().map_err(|e| format!("bad --threads: {e}"))?)
            }
            "--seeds" => {
                seeds = Some(grab("--seeds")?.parse().map_err(|e| format!("bad --seeds: {e}"))?)
            }
            "--out" => out_dir = PathBuf::from(grab("--out")?),
            "--quiet" => quiet = true,
            "--print-spec" => print_spec = true,
            "--shard" => shard = Some(Shard::parse(&grab("--shard")?)?),
            other if other.starts_with("--") => return Err(format!("unknown argument {other}")),
            other if spec.is_none() => spec = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    Ok(Args {
        spec: spec.ok_or("usage: exp_sweep <spec.json | @preset> [--seeds N] [--threads N] [--out DIR] [--shard I/N] [--quiet] [--print-spec]")?,
        threads,
        seeds,
        out_dir,
        quiet,
        print_spec,
        shard,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("exp_sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut spec = if let Some(preset) = args.spec.strip_prefix('@') {
        match presets::by_name(preset, args.seeds.unwrap_or(5)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("exp_sweep: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let text = match std::fs::read_to_string(&args.spec) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("exp_sweep: read {}: {e}", args.spec);
                return ExitCode::FAILURE;
            }
        };
        match SweepSpec::parse(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("exp_sweep: parse {}: {e}", args.spec);
                return ExitCode::FAILURE;
            }
        }
    };
    if let Some(n) = args.seeds {
        spec.seeds.count = n;
    }
    if args.print_spec {
        print!("{}", spec.render());
        return ExitCode::SUCCESS;
    }

    let mut runner = SweepRunner::new().progress(!args.quiet);
    if let Some(n) = args.threads {
        runner = runner.threads(n);
    }
    if let Some(shard) = args.shard {
        // One slice of the matrix: run it, persist the partial report and
        // stop — `sweep_merge` aggregates once every shard has run.
        println!("sweep {}: shard {shard} of the {}-job matrix", spec.name, spec.num_jobs());
        let partial = match runner.run_shard(&spec, shard) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("exp_sweep: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match partial.write_to(&args.out_dir) {
            Ok(path) => {
                println!(
                    "partial report ({} jobs) written to {}",
                    partial.jobs.len(),
                    path.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("exp_sweep: write partial report: {e}");
                ExitCode::FAILURE
            }
        };
    }
    println!(
        "sweep {}: {} scenarios x {} methods x {} seeds = {} jobs",
        spec.name,
        spec.scenarios.len(),
        spec.methods.len(),
        spec.seeds.count,
        spec.num_jobs()
    );
    let report = match runner.run(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("exp_sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render_table());
    match report.write_to(&args.out_dir) {
        Ok((json, csv)) => {
            println!("report written to {} and {}", json.display(), csv.display())
        }
        Err(e) => {
            eprintln!("exp_sweep: write report: {e}");
            return ExitCode::FAILURE;
        }
    }
    match report.write_curves_to(&args.out_dir) {
        Ok((json, csv, svgs)) => {
            println!(
                "curves written to {}, {} and {} scenario panel(s)",
                json.display(),
                csv.display(),
                svgs.len()
            )
        }
        Err(e) => {
            eprintln!("exp_sweep: write curves: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
