//! Runs one sweep spec end to end: parse → job matrix → parallel execution
//! → paper-style table + `BENCH_sweep_*.json` + CSV + the figure-ready
//! curve artifacts (`BENCH_curves_*.json`, CSV, one SVG per scenario).
//!
//! ```sh
//! cargo run --release --bin exp_sweep -- ci/specs/smoke.json
//! cargo run --release --bin exp_sweep -- @table3 --seeds 5 --workers 8
//! cargo run --release --bin exp_sweep -- @table3 --shard 0/4   # one host
//! ```
//!
//! A `@name` argument resolves a built-in preset (`@table2`, `@table3`,
//! `@extended`, `@convergence`, `@smoke`) instead of reading a file;
//! `--print-spec` renders the resolved spec (useful for turning a preset
//! into an editable starting file). Jobs run round-driven: per-job realized
//! accuracy trajectories land in the `BENCH_sweep_*.json` artifact, and
//! jobs stop early once they reach the scenario's target accuracy.
//!
//! `--shard i/n` runs only the jobs of shard `i` of `n` and writes a
//! `BENCH_part_<sweep>_<i>of<n>.json` partial report instead of the full
//! artifacts; run every shard (anywhere — pure per-job seeding makes them
//! independent), then fuse them with `sweep_merge` into a report
//! byte-identical to the single-process run. For heterogeneous hosts,
//! prefer the work-stealing `exp_farm` — static shards run at the pace of
//! the slowest host.

use std::process::ExitCode;

use comdml_exp::cli::{self, FlagSpec};
use comdml_exp::Shard;

const PRINT_SPEC: FlagSpec = FlagSpec {
    name: "print-spec",
    aliases: &[],
    takes_value: false,
    help: "render the resolved spec and exit",
};
const SHARD: FlagSpec = FlagSpec {
    name: "shard",
    aliases: &[],
    takes_value: true,
    help: "run only shard I/N and write a partial report",
};

fn run() -> Result<(), String> {
    let args = cli::parse_env(
        "exp_sweep",
        "<spec.json | @preset> [flags]",
        &[cli::SEEDS, cli::WORKERS, cli::OUT_DIR, cli::QUIET, cli::LIST_PRESETS, PRINT_SPEC, SHARD],
    )?;
    if args.has("list-presets") {
        print!("{}", cli::preset_listing());
        return Ok(());
    }
    let spec = cli::resolve_spec(args.one_positional("spec (a file or @preset)")?, args.seeds()?)?;
    if args.has("print-spec") {
        print!("{}", spec.render());
        return Ok(());
    }

    let runner = args.runner()?;
    if let Some(shard) = args.value("shard").map(Shard::parse).transpose()? {
        // One slice of the matrix: run it, persist the partial report and
        // stop — `sweep_merge` aggregates once every shard has run.
        println!("sweep {}: shard {shard} of the {}-job matrix", spec.name, spec.num_jobs());
        let partial = runner.run_shard(&spec, shard)?;
        let path = partial.write_to(args.out_dir()).map_err(|e| format!("write partial: {e}"))?;
        println!("partial report ({} jobs) written to {}", partial.jobs.len(), path.display());
        return Ok(());
    }

    println!(
        "sweep {}: {} scenarios x {} methods x {} seeds = {} jobs",
        spec.name,
        spec.scenarios.len(),
        spec.methods.len(),
        spec.seeds.count,
        spec.num_jobs()
    );
    let report = runner.run(&spec)?;
    print!("{}", report.render_table());
    let (json, csv) = report.write_to(args.out_dir()).map_err(|e| format!("write report: {e}"))?;
    println!("report written to {} and {}", json.display(), csv.display());
    let (json, csv, svgs) =
        report.write_curves_to(args.out_dir()).map_err(|e| format!("write curves: {e}"))?;
    println!(
        "curves written to {}, {} and {} scenario panel(s)",
        json.display(),
        csv.display(),
        svgs.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            comdml_obs::error!("exp_sweep", "{e}");
            ExitCode::FAILURE
        }
    }
}
