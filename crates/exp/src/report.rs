//! Sweep aggregation: per-cell statistics, paper-style tables, and the
//! deterministic `BENCH_sweep_*.json` / CSV artifacts.

use std::path::{Path, PathBuf};

use comdml_bench::{Report, Value};

use crate::{JobResult, Method, SweepSpec};

/// Statistics of one (scenario, method) cell over the sweep's seeds. Time
/// quantities are *simulated* seconds, so every field is deterministic and
/// the rendered report is byte-comparable across machines and worker
/// counts.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Scenario name.
    pub scenario: String,
    /// Method run.
    pub method: Method,
    /// Seeds aggregated.
    pub seeds: usize,
    /// Mean projected time-to-target-accuracy (simulated seconds).
    pub mean_time_s: f64,
    /// Median projected time-to-target.
    pub p50_time_s: f64,
    /// 95th-percentile projected time-to-target.
    pub p95_time_s: f64,
    /// Mean simulated seconds per measured round.
    pub mean_round_s: f64,
    /// Mean learning efficiency per round.
    pub mean_rounds_factor: f64,
    /// Mean rounds-to-target (realized where the trajectory got there,
    /// extrapolated otherwise).
    pub mean_rounds_to_target: f64,
    /// Median rounds-to-target across seeds — the curve-summary companion
    /// of the per-round bands in [`crate::CurveAggregate`].
    pub rounds_to_target_p50: f64,
    /// Fraction of this cell's grid points (seeds × the scenario's shared
    /// round grid) that are padding rather than realized trajectory —
    /// early-stopped seeds hold their target-crossing value for the rest of
    /// the grid. 0 means every plotted point was simulated.
    pub extrapolated_frac: f64,
    /// Mean realized accuracy at the end of the simulated rounds.
    pub mean_final_acc: f64,
    /// Seeds whose realized trajectory reached the target inside the round
    /// budget (their time-to-target is exact, not extrapolated).
    pub reached: usize,
    /// Mean time of the same scenario's FedAvg cell divided by this cell's
    /// mean time (>1 = faster than FedAvg); `None` when FedAvg is not in
    /// the sweep.
    pub speedup_vs_fedavg: Option<f64>,
    /// Events executed across all seeds.
    pub events_processed: u64,
    /// Largest peak membership any seed observed.
    pub peak_agents: usize,
}

/// Everything a sweep produced: the raw job results in deterministic order
/// plus the per-cell aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Sweep name (output file stem).
    pub name: String,
    /// Scenario names in spec order.
    pub scenarios: Vec<String>,
    /// Methods in spec order.
    pub methods: Vec<Method>,
    /// One result per job, scenario-major, then method, then seed.
    pub jobs: Vec<JobResult>,
    /// One cell per (scenario, method), same ordering.
    pub cells: Vec<SweepCell>,
}

/// Nearest-rank percentile of an ascending slice (shared with the
/// trajectory aggregation in [`crate::CurveAggregate`]).
pub(crate) fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// The shared round grid of one scenario's jobs: the longest realized
/// trajectory across every (method, seed) of the scenario, so all of the
/// scenario's cells align on the same x axis. Early-stopped jobs are
/// shorter than the grid; budget-exhausted jobs define it.
pub(crate) fn scenario_grid(jobs: &[JobResult]) -> usize {
    jobs.iter().map(|j| j.rounds_run).max().unwrap_or(0)
}

/// The curve-summary pair of one cell on a `grid`-round axis:
/// `(rounds_to_target_p50, extrapolated_frac)`. One definition shared by
/// the scalar [`SweepCell`] columns and [`crate::CurveAggregate`], so the
/// two can never drift apart.
pub(crate) fn curve_summary(jobs: &[JobResult], grid: usize) -> (f64, f64) {
    let mut rounds_tt: Vec<f64> = jobs.iter().map(|j| j.rounds_to_target as f64).collect();
    rounds_tt.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let padded: usize = jobs.iter().map(|j| grid - j.rounds_run).sum();
    (percentile(&rounds_tt, 0.50), padded as f64 / (jobs.len() * grid.max(1)).max(1) as f64)
}

impl SweepReport {
    /// Aggregates job results (in [`crate::SweepRunner::jobs`] order) into
    /// cells.
    pub fn assemble(spec: &SweepSpec, jobs: Vec<JobResult>) -> Self {
        assert_eq!(jobs.len(), spec.num_jobs(), "one result per job");
        let seeds = spec.seeds.count;
        let mut cells = Vec::with_capacity(spec.scenarios.len() * spec.methods.len());
        for (si, scenario) in spec.scenarios.iter().enumerate() {
            let block = si * spec.methods.len() * seeds;
            let grid = scenario_grid(&jobs[block..block + spec.methods.len() * seeds]);
            for (mi, &method) in spec.methods.iter().enumerate() {
                let start = (si * spec.methods.len() + mi) * seeds;
                let slice = &jobs[start..start + seeds];
                debug_assert!(slice
                    .iter()
                    .all(|j| j.method == method && j.scenario == scenario.name));
                let mut times: Vec<f64> = slice.iter().map(|j| j.time_to_target_s).collect();
                times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let (rounds_to_target_p50, extrapolated_frac) = curve_summary(slice, grid);
                let n = seeds as f64;
                cells.push(SweepCell {
                    scenario: scenario.name.clone(),
                    method,
                    seeds,
                    mean_time_s: times.iter().sum::<f64>() / n,
                    p50_time_s: percentile(&times, 0.50),
                    p95_time_s: percentile(&times, 0.95),
                    mean_round_s: slice.iter().map(|j| j.mean_round_s).sum::<f64>() / n,
                    mean_rounds_factor: slice.iter().map(|j| j.rounds_factor).sum::<f64>() / n,
                    mean_rounds_to_target: slice
                        .iter()
                        .map(|j| j.rounds_to_target as f64)
                        .sum::<f64>()
                        / n,
                    rounds_to_target_p50,
                    extrapolated_frac,
                    mean_final_acc: slice.iter().map(|j| j.final_accuracy).sum::<f64>() / n,
                    reached: slice.iter().filter(|j| j.reached_target).count(),
                    speedup_vs_fedavg: None, // filled below
                    events_processed: slice.iter().map(|j| j.events_processed).sum(),
                    peak_agents: slice.iter().map(|j| j.peak_agents).max().unwrap_or(0),
                });
            }
        }
        // Second pass: speedup vs the same scenario's FedAvg cell.
        let methods = spec.methods.clone();
        if let Some(fi) = methods.iter().position(|&m| m == Method::FedAvg) {
            for si in 0..spec.scenarios.len() {
                let fedavg_mean = cells[si * methods.len() + fi].mean_time_s;
                for mi in 0..methods.len() {
                    let cell = &mut cells[si * methods.len() + mi];
                    cell.speedup_vs_fedavg = Some(fedavg_mean / cell.mean_time_s.max(1e-12));
                }
            }
        }
        Self {
            name: spec.name.clone(),
            scenarios: spec.scenarios.iter().map(|s| s.name.clone()).collect(),
            methods,
            jobs,
            cells,
        }
    }

    /// The deterministic JSON artifact. Byte-identical for byte-identical
    /// sweeps — this is the document the cross-thread-count identity tests
    /// compare.
    pub fn to_value(&self) -> Value {
        let cell_v = |c: &SweepCell| {
            let mut f = vec![
                ("scenario".into(), Value::Str(c.scenario.clone())),
                ("method".into(), Value::Str(c.method.token().into())),
                ("seeds".into(), Value::Num(c.seeds as f64)),
                ("mean_time_s".into(), Value::Num(c.mean_time_s)),
                ("p50_time_s".into(), Value::Num(c.p50_time_s)),
                ("p95_time_s".into(), Value::Num(c.p95_time_s)),
                ("mean_round_s".into(), Value::Num(c.mean_round_s)),
                ("mean_rounds_factor".into(), Value::Num(c.mean_rounds_factor)),
                ("mean_rounds_to_target".into(), Value::Num(c.mean_rounds_to_target)),
                ("rounds_to_target_p50".into(), Value::Num(c.rounds_to_target_p50)),
                ("extrapolated_frac".into(), Value::Num(c.extrapolated_frac)),
                ("mean_final_acc".into(), Value::Num(c.mean_final_acc)),
                ("reached".into(), Value::Num(c.reached as f64)),
                ("events_processed".into(), Value::Num(c.events_processed as f64)),
                ("peak_agents".into(), Value::Num(c.peak_agents as f64)),
            ];
            if let Some(s) = c.speedup_vs_fedavg {
                f.push(("speedup_vs_fedavg".into(), Value::Num(s)));
            }
            Value::Obj(f)
        };
        Value::Obj(vec![
            ("sweep".into(), Value::Str(self.name.clone())),
            (
                "scenarios".into(),
                Value::Arr(self.scenarios.iter().map(|s| Value::Str(s.clone())).collect()),
            ),
            (
                "methods".into(),
                Value::Arr(self.methods.iter().map(|m| Value::Str(m.token().into())).collect()),
            ),
            ("cells".into(), Value::Arr(self.cells.iter().map(cell_v).collect())),
            ("jobs".into(), Value::Arr(self.jobs.iter().map(JobResult::to_value).collect())),
        ])
    }

    /// The per-cell CSV companion.
    pub fn to_csv(&self) -> Report {
        let mut report = Report::new(
            &format!("sweep_{}", self.name),
            &[
                "scenario",
                "method",
                "seeds",
                "mean_time_s",
                "p50_time_s",
                "p95_time_s",
                "mean_round_s",
                "mean_rounds_factor",
                "mean_rounds_to_target",
                "rounds_to_target_p50",
                "extrapolated_frac",
                "mean_final_acc",
                "reached",
                "speedup_vs_fedavg",
                "events_processed",
                "peak_agents",
            ],
        );
        for c in &self.cells {
            report.row(&[
                c.scenario.clone(),
                c.method.token().to_string(),
                c.seeds.to_string(),
                format!("{:.3}", c.mean_time_s),
                format!("{:.3}", c.p50_time_s),
                format!("{:.3}", c.p95_time_s),
                format!("{:.3}", c.mean_round_s),
                format!("{:.4}", c.mean_rounds_factor),
                format!("{:.1}", c.mean_rounds_to_target),
                format!("{:.1}", c.rounds_to_target_p50),
                format!("{:.4}", c.extrapolated_frac),
                format!("{:.4}", c.mean_final_acc),
                c.reached.to_string(),
                c.speedup_vs_fedavg.map(|s| format!("{s:.2}")).unwrap_or_default(),
                c.events_processed.to_string(),
                c.peak_agents.to_string(),
            ]);
        }
        report
    }

    /// Writes `BENCH_sweep_<name>.json` and `sweep_<name>.csv` under `dir`,
    /// returning both paths.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> std::io::Result<(PathBuf, PathBuf)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let json_path = dir.join(format!("BENCH_sweep_{}.json", self.name));
        std::fs::write(&json_path, self.to_value().render())?;
        let csv_path = self.to_csv().write_to(dir)?;
        Ok((json_path, csv_path))
    }

    /// Writes to the workspace default, `target/experiments/`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_default(&self) -> std::io::Result<(PathBuf, PathBuf)> {
        self.write_to(Path::new("target").join("experiments"))
    }

    /// Renders the paper-style table: one block per scenario, one row per
    /// method, time-to-target with spread and the speedup-vs-FedAvg column.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let fmt = |v: f64| comdml_bench::fmt_s(v);
        for scenario in &self.scenarios {
            out.push_str(&format!("── {scenario} ──\n"));
            out.push_str(&format!(
                "{:<16} {:>12} {:>12} {:>12} {:>8} {:>8} {:>7} {:>9} {:>10}\n",
                "method",
                "mean ttx (s)",
                "p50 (s)",
                "p95 (s)",
                "rounds",
                "r50 tgt",
                "extrap",
                "reached",
                "vs FedAvg"
            ));
            for c in self.cells.iter().filter(|c| &c.scenario == scenario) {
                out.push_str(&format!(
                    "{:<16} {:>12} {:>12} {:>12} {:>8.0} {:>8.0} {:>7} {:>9} {:>10}\n",
                    c.method.display(),
                    fmt(c.mean_time_s),
                    fmt(c.p50_time_s),
                    fmt(c.p95_time_s),
                    c.mean_rounds_to_target,
                    c.rounds_to_target_p50,
                    format!("{:.0}%", c.extrapolated_frac * 100.0),
                    format!("{}/{}", c.reached, c.seeds),
                    c.speedup_vs_fedavg.map(|s| format!("{s:.2}x")).unwrap_or_else(|| "-".into()),
                ));
            }
            out.push('\n');
        }
        out
    }
}
