//! The parallel sweep engine.
//!
//! [`SweepRunner`] expands a [`SweepSpec`] into its scenario × method ×
//! seed job matrix and burns through it on a `std::thread` worker pool:
//! the job list is a shared queue (an atomic cursor), and every idle
//! worker steals the next unclaimed job, so stragglers never serialize the
//! sweep. Each job is a *pure function* of its `(scenario, method, seed)`
//! coordinates — all randomness flows from the per-job seed through the
//! deterministic simulation stack — and results land in the job's own
//! pre-assigned slot, so the assembled [`SweepReport`] is byte-identical
//! whatever the worker count or completion order (proven by the property
//! tests in `tests/sweep.rs`).
//!
//! Per job, the harness owns the experiment policies: it drives membership
//! through [`FleetDriver`]/[`FleetSim`], applies profile churn between
//! rounds and participation sampling at the round boundary, and hands every
//! method the *same* participant set through
//! [`comdml_core::RoundEngine::round_time_for`] — which is what makes the
//! per-cell comparisons apples-to-apples.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use comdml_baselines::{
    AllReduceDml, BaselineConfig, BrainTorrent, DropStragglers, FedAvg, FedProx, GossipLearning,
    TierBased,
};
use comdml_bench::rounds_with_sampling;
use comdml_core::{ComDmlConfig, FleetSim, LearningCurve, RoundEngine};
use comdml_simnet::{FleetConfig, FleetDriver};

use crate::{Method, ScenarioSpec, SweepReport, SweepSpec};

/// One cell-replication of the sweep matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Index into the sweep's scenario list.
    pub scenario: usize,
    /// The method to run.
    pub method: Method,
    /// The world/fleet seed.
    pub seed: u64,
}

/// What one job measured. Every field is a deterministic function of the
/// job's coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Scenario name.
    pub scenario: String,
    /// Method run.
    pub method: Method,
    /// Seed used.
    pub seed: u64,
    /// Measured rounds executed.
    pub rounds_run: usize,
    /// Total simulated seconds over the measured rounds.
    pub sim_s: f64,
    /// Mean simulated seconds per round.
    pub mean_round_s: f64,
    /// Learning efficiency per round (ComDML: realized staleness-weighted
    /// efficiency; baselines: their analytic factor).
    pub rounds_factor: f64,
    /// Rounds the learning curve demands at this efficiency and sampling
    /// rate to hit the scenario's target accuracy.
    pub rounds_to_target: usize,
    /// Projected time to target accuracy: `mean_round_s · rounds_to_target`
    /// — the paper's Table II quantity.
    pub time_to_target_s: f64,
    /// Simulation events executed (0 for closed-form baselines).
    pub events_processed: u64,
    /// Peak concurrent fleet membership.
    pub peak_agents: usize,
    /// Arrivals activated during the measured rounds.
    pub arrivals: usize,
    /// Departures committed during the measured rounds.
    pub departures: usize,
}

impl ScenarioSpec {
    /// The fleet configuration of this scenario under `seed`.
    pub fn fleet_config(&self, seed: u64) -> FleetConfig {
        let mut cfg = FleetConfig::new(self.agents, seed)
            .samples_per_agent(self.samples_per_agent)
            .batch_size(self.batch_size)
            .topology(self.topology)
            .arrivals(self.arrivals.clone())
            .lifetime(self.lifetime)
            .recycle_slots(self.recycle_slots);
        if let Some(j) = self.join_topology {
            cfg = cfg.join_topology(j);
        }
        if let Some(m) = self.max_agents {
            cfg = cfg.max_agents(m);
        }
        cfg
    }

    /// The learning curve this scenario projects time-to-accuracy with.
    pub fn curve(&self) -> LearningCurve {
        LearningCurve::for_dataset(&self.dataset, self.iid)
    }

    /// The ComDML configuration of this scenario.
    pub fn comdml_config(&self) -> ComDmlConfig {
        ComDmlConfig {
            churn: self.churn,
            sampling_rate: self.sampling_rate,
            aggregation: self.aggregation,
            granularity: self.granularity,
            curve: self.curve(),
            batch_size: self.batch_size,
            ..ComDmlConfig::default()
        }
    }
}

/// Builds the baseline engine for a job. Policies (churn, sampling) are
/// stripped: the harness applies them and feeds explicit participant sets.
fn baseline_engine(method: Method, seed: u64, density: f64) -> Box<dyn RoundEngine> {
    let base = BaselineConfig { sampling_rate: 1.0, churn: None, ..BaselineConfig::default() };
    match method {
        Method::ComDml => unreachable!("ComDML runs through FleetSim"),
        Method::FedAvg => Box::new(FedAvg::new(base)),
        Method::AllReduce => Box::new(AllReduceDml::new(base)),
        Method::BrainTorrent => Box::new(BrainTorrent::new(base).with_seed(seed ^ 0x000b_7a10)),
        Method::Gossip => {
            Box::new(GossipLearning::new(base).with_topology_density(density.clamp(0.01, 1.0)))
        }
        Method::FedProx => Box::new(FedProx::new(base, 0.5)),
        Method::DropStragglers => Box::new(DropStragglers::new(base, 0.3)),
        Method::Tiered => Box::new(TierBased::new(base, 5)),
    }
}

/// Runs one job to completion. Pure in `(scenario, method, seed)`.
pub fn run_job(scenario: &ScenarioSpec, method: Method, seed: u64) -> JobResult {
    let (rounds_run, sim_s, rounds_factor, events, peak, arrivals, departures) =
        if method == Method::ComDml {
            let mut sim = FleetSim::new(scenario.fleet_config(seed), scenario.comdml_config());
            let r = sim.run(scenario.rounds);
            (
                r.rounds,
                r.total_sim_s,
                r.rounds_factor,
                r.events_processed,
                r.peak_agents,
                r.arrivals,
                r.departures,
            )
        } else {
            let mut driver: FleetDriver = scenario.fleet_config(seed).build();
            let density = driver.world().adjacency().density();
            let mut engine = baseline_engine(method, seed, density);
            let mut sim_s = 0.0f64;
            let mut horizon = 30.0f64;
            for r in 0..scenario.rounds {
                if let Some(churn) = scenario.churn {
                    if churn.interval > 0 && r > 0 && r % churn.interval == 0 {
                        driver.world_mut().churn_profiles(churn.fraction);
                    }
                }
                let plan = driver.begin_round(horizon);
                let empty_round = plan.participants.is_empty();
                let participants = if scenario.sampling_rate < 1.0 {
                    driver
                        .world_mut()
                        .sample_participants_among(&plan.participants, scenario.sampling_rate)
                } else {
                    plan.participants
                };
                let mut t = engine.round_time_for(driver.world(), r, &participants);
                if t <= 0.0 {
                    // An extinct round must still advance the fleet clock
                    // so pending arrivals can activate (same fast-forward
                    // rule as `FleetSim`).
                    t = driver.seconds_to_next_event().unwrap_or(0.0);
                }
                driver.end_round(t);
                sim_s += t;
                // An empty round's duration is a fast-forward jump, not a
                // round time; don't let it inflate the planning horizon
                // (`FleetSim` applies the same rule).
                horizon = if empty_round { 30.0 } else { (t * 2.0).max(1.0) };
            }
            (
                scenario.rounds,
                sim_s,
                engine.rounds_factor(),
                0,
                driver.peak_active(),
                driver.arrivals_total(),
                driver.departures_total(),
            )
        };
    let mean_round_s = sim_s / rounds_run.max(1) as f64;
    let rounds_to_target = rounds_with_sampling(
        &scenario.curve(),
        scenario.target_accuracy,
        rounds_factor.max(1e-6),
        scenario.sampling_rate,
    );
    JobResult {
        scenario: scenario.name.clone(),
        method,
        seed,
        rounds_run,
        sim_s,
        mean_round_s,
        rounds_factor,
        rounds_to_target,
        time_to_target_s: mean_round_s * rounds_to_target as f64,
        events_processed: events,
        peak_agents: peak,
        arrivals,
        departures,
    }
}

/// The parallel sweep executor. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
    progress: bool,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner using every available core, with progress reporting on.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { threads, progress: true }
    }

    /// Overrides the worker count (clamped to at least 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Enables or disables the stderr progress line.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Expands the spec's job matrix in report order (scenario-major, then
    /// method, then seed).
    pub fn jobs(spec: &SweepSpec) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(spec.num_jobs());
        for (si, _) in spec.scenarios.iter().enumerate() {
            for &method in &spec.methods {
                for seed in spec.seeds.iter() {
                    jobs.push(JobSpec { scenario: si, method, seed });
                }
            }
        }
        jobs
    }

    /// Runs the whole sweep and aggregates the report.
    ///
    /// # Errors
    ///
    /// Returns the spec's validation error, if any.
    pub fn run(&self, spec: &SweepSpec) -> Result<SweepReport, String> {
        spec.validate()?;
        let jobs = Self::jobs(spec);
        let total = jobs.len();
        let results: Vec<Mutex<Option<JobResult>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let workers = self.threads.min(total.max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // The shared queue: an idle worker steals the next
                    // unclaimed job index.
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let result = run_job(&spec.scenarios[job.scenario], job.method, job.seed);
                    *results[i].lock().expect("no poisoned result slot") = Some(result);
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if self.progress {
                        eprint!("\rsweep {}: {finished}/{total} jobs", spec.name);
                        if finished == total {
                            eprintln!();
                        }
                    }
                });
            }
        });
        let results: Vec<JobResult> = results
            .into_iter()
            .map(|m| m.into_inner().expect("no poisoned slot").expect("every job ran"))
            .collect();
        Ok(SweepReport::assemble(spec, results))
    }
}
