//! The parallel sweep engine.
//!
//! [`SweepRunner`] expands a [`SweepSpec`] into its scenario × method ×
//! seed job matrix and burns through it on a `std::thread` worker pool:
//! the job list is a shared queue (an atomic cursor), and every idle
//! worker steals the next unclaimed job, so stragglers never serialize the
//! sweep. Each job is a *pure function* of its `(scenario, method, seed)`
//! coordinates — all randomness flows from the per-job seed through the
//! deterministic simulation stack — and results land in the job's own
//! pre-assigned slot, so the assembled [`SweepReport`] is byte-identical
//! whatever the worker count or completion order (proven by the property
//! tests in `tests/sweep.rs`).
//!
//! Per job, the harness owns the experiment policies: it drives membership
//! through [`FleetDriver`]/[`FleetSim`], applies profile churn between
//! rounds and participation sampling at the round boundary, and hands every
//! method the *same* participant set through
//! [`comdml_core::RoundEngine::round_progress_for`] — which is what makes
//! the per-cell comparisons apples-to-apples.
//!
//! # Round-driven accuracy
//!
//! Time-to-target is no longer a post-hoc projection
//! (`mean_round_s × rounds_to_target`): every round's realized
//! effective-progress inputs ([`comdml_core::RoundProgress`] — duration,
//! staleness-weighted efficiency, participant set, disruptions) advance a
//! [`LearningModel`], and the job **stops early** the round the realized
//! trajectory reaches the scenario's target. Only when the round budget
//! runs out first is the remainder extrapolated at the realized mean pace
//! — which, for constant efficiency, full participation and no churn, is
//! *exactly* the old closed form (pinned to 1e-9 in `tests/learning.rs`).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use comdml_baselines::{
    AllReduceDml, BaselineConfig, BrainTorrent, ClassicSplitLearning, DropStragglers, FedAvg,
    FedProx, GossipLearning, TierBased,
};
use comdml_bench::Value;
use comdml_core::{ComDmlConfig, FleetSim, LearningModel, RoundEngine, RoundProgress};
use comdml_simnet::{FleetConfig, FleetDriver};

use crate::{Method, MethodParams, ScenarioSpec, SweepReport, SweepSpec};

/// One cell-replication of the sweep matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Index into the sweep's scenario list.
    pub scenario: usize,
    /// The method to run.
    pub method: Method,
    /// The world/fleet seed.
    pub seed: u64,
}

/// What one job measured. Every field is a deterministic function of the
/// job's coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Scenario name.
    pub scenario: String,
    /// Method run.
    pub method: Method,
    /// Seed used.
    pub seed: u64,
    /// Rounds actually simulated: the early-stop round when the realized
    /// trajectory reached the target, the scenario's budget otherwise.
    pub rounds_run: usize,
    /// Total simulated seconds over the simulated rounds.
    pub sim_s: f64,
    /// Mean simulated seconds per simulated round.
    pub mean_round_s: f64,
    /// Realized mean learning efficiency per round (ComDML: mean
    /// staleness-weighted efficiency; baselines: their analytic factor).
    pub rounds_factor: f64,
    /// Total rounds to the target: realized when the trajectory got there,
    /// extrapolated at the realized mean pace otherwise.
    pub rounds_to_target: usize,
    /// Time to target accuracy — the paper's Table II quantity. Read off
    /// the simulated clock when the trajectory reached the target;
    /// `sim_s + remaining_rounds × mean_round_s` otherwise.
    pub time_to_target_s: f64,
    /// Whether the realized trajectory reached the target inside the
    /// simulated round budget (i.e. `time_to_target_s` is exact, not
    /// extrapolated).
    pub reached_target: bool,
    /// Accuracy at the end of the simulated rounds.
    pub final_accuracy: f64,
    /// Realized accuracy after each simulated round.
    pub accuracy_trajectory: Vec<f64>,
    /// Simulation events executed (0 for closed-form baselines).
    pub events_processed: u64,
    /// Peak concurrent fleet membership.
    pub peak_agents: usize,
    /// Arrivals activated during the simulated rounds.
    pub arrivals: usize,
    /// Departures committed during the simulated rounds.
    pub departures: usize,
}

impl JobResult {
    /// The JSON value of one job row — the exact object embedded in the
    /// `jobs` array of `BENCH_sweep_*.json` *and* in sharded partial
    /// reports, so a merged report re-renders the same bytes.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("scenario".into(), Value::Str(self.scenario.clone())),
            ("method".into(), Value::Str(self.method.token().into())),
            ("seed".into(), Value::Num(self.seed as f64)),
            ("rounds_run".into(), Value::Num(self.rounds_run as f64)),
            ("sim_s".into(), Value::Num(self.sim_s)),
            ("mean_round_s".into(), Value::Num(self.mean_round_s)),
            ("rounds_factor".into(), Value::Num(self.rounds_factor)),
            ("rounds_to_target".into(), Value::Num(self.rounds_to_target as f64)),
            ("time_to_target_s".into(), Value::Num(self.time_to_target_s)),
            ("reached_target".into(), Value::Bool(self.reached_target)),
            ("final_accuracy".into(), Value::Num(self.final_accuracy)),
            (
                "trajectory".into(),
                Value::Arr(self.accuracy_trajectory.iter().map(|&a| Value::Num(a)).collect()),
            ),
            ("events_processed".into(), Value::Num(self.events_processed as f64)),
            ("peak_agents".into(), Value::Num(self.peak_agents as f64)),
            ("arrivals".into(), Value::Num(self.arrivals as f64)),
            ("departures".into(), Value::Num(self.departures as f64)),
        ])
    }

    /// Rebuilds a job row from its [`JobResult::to_value`] form. Numbers
    /// survive exactly: [`Value`] renders floats in Rust's shortest
    /// round-trip representation, so `from_value ∘ parse ∘ render ∘
    /// to_value` is the identity — the property the byte-identical shard
    /// merge rests on.
    ///
    /// # Errors
    ///
    /// Describes the first missing or ill-typed field.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let f = |key: &str| {
            v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("job missing number {key:?}"))
        };
        let n = |key: &str| {
            v.get(key)
                .and_then(Value::as_usize)
                .ok_or_else(|| format!("job missing integer {key:?}"))
        };
        Ok(Self {
            scenario: v
                .get("scenario")
                .and_then(Value::as_str)
                .ok_or("job missing \"scenario\"")?
                .to_string(),
            method: Method::from_token(
                v.get("method").and_then(Value::as_str).ok_or("job missing \"method\"")?,
            )?,
            seed: v.get("seed").and_then(Value::as_u64).ok_or("job missing \"seed\"")?,
            rounds_run: n("rounds_run")?,
            sim_s: f("sim_s")?,
            mean_round_s: f("mean_round_s")?,
            rounds_factor: f("rounds_factor")?,
            rounds_to_target: n("rounds_to_target")?,
            time_to_target_s: f("time_to_target_s")?,
            reached_target: v
                .get("reached_target")
                .and_then(Value::as_bool)
                .ok_or("job missing \"reached_target\"")?,
            final_accuracy: f("final_accuracy")?,
            accuracy_trajectory: v
                .get("trajectory")
                .and_then(Value::as_array)
                .ok_or("job missing \"trajectory\"")?
                .iter()
                .map(|a| a.as_f64().ok_or_else(|| "trajectory must be numbers".to_string()))
                .collect::<Result<Vec<_>, _>>()?,
            events_processed: v
                .get("events_processed")
                .and_then(Value::as_u64)
                .ok_or("job missing \"events_processed\"")?,
            peak_agents: n("peak_agents")?,
            arrivals: n("arrivals")?,
            departures: n("departures")?,
        })
    }
}

impl ScenarioSpec {
    /// The fleet configuration of this scenario under `seed`.
    pub fn fleet_config(&self, seed: u64) -> FleetConfig {
        let mut cfg = FleetConfig::new(self.agents, seed)
            .samples_per_agent(self.samples_per_agent)
            .batch_size(self.batch_size)
            .topology(self.topology)
            .arrivals(self.arrivals.clone())
            .lifetime(self.lifetime)
            .recycle_slots(self.recycle_slots);
        if let Some(j) = self.join_topology {
            cfg = cfg.join_topology(j);
        }
        if let Some(m) = self.max_agents {
            cfg = cfg.max_agents(m);
        }
        if let Some(d) = &self.cpu_dist {
            cfg = cfg.cpu_dist(d.clone());
        }
        if let Some(d) = &self.link_dist {
            cfg = cfg.link_dist(d.clone());
        }
        if let Some(d) = &self.lifetime_dist {
            cfg = cfg.lifetime_dist(d.clone());
        }
        cfg
    }

    /// The ComDML configuration of this scenario.
    pub fn comdml_config(&self) -> ComDmlConfig {
        ComDmlConfig {
            churn: self.churn,
            sampling_rate: self.sampling_rate,
            threads: self.threads,
            aggregation: self.aggregation,
            granularity: self.granularity,
            curve: self.learning_curve(),
            batch_size: self.batch_size,
            staleness_decay: self.method_params.staleness_decay,
            diurnal: self.diurnal,
            partition: self.partition,
            byzantine: self.byzantine,
            ..ComDmlConfig::default()
        }
    }

    /// The round-driven accuracy model of this scenario: its resolved
    /// learning curve, sampling penalty and churn coupling.
    pub fn learning_model(&self) -> LearningModel {
        LearningModel::new(self.learning_curve(), self.target_accuracy)
            .with_sampling_rate(self.sampling_rate)
            .with_churn_dip(self.churn_dip)
    }
}

/// Builds the baseline engine for a job, applying the scenario's per-method
/// parameter overrides. Policies (churn, sampling) are stripped: the
/// harness applies them and feeds explicit participant sets.
fn baseline_engine(
    method: Method,
    seed: u64,
    density: f64,
    params: &MethodParams,
) -> Box<dyn RoundEngine> {
    let base = BaselineConfig { sampling_rate: 1.0, churn: None, ..BaselineConfig::default() };
    match method {
        Method::ComDml => unreachable!("ComDML runs through FleetSim"),
        Method::FedAvg => Box::new(FedAvg::new(base)),
        Method::AllReduce => Box::new(AllReduceDml::new(base)),
        Method::BrainTorrent => Box::new(BrainTorrent::new(base).with_seed(seed ^ 0x000b_7a10)),
        Method::Gossip => {
            Box::new(GossipLearning::new(base).with_topology_density(density.clamp(0.01, 1.0)))
        }
        Method::FedProx => Box::new(FedProx::new(base, params.fedprox_min_work)),
        Method::DropStragglers => Box::new(DropStragglers::new(base, params.drop_fraction)),
        Method::Tiered => Box::new(TierBased::new(base, params.tiers)),
        Method::SplitLearning => {
            Box::new(ClassicSplitLearning::new(base, params.sl_agent_layers, params.sl_server_cpus))
        }
    }
}

/// Everything the per-method round loops feed the shared accounting.
struct RoundLoop {
    sim_s: f64,
    rounds_run: usize,
    trajectory: Vec<f64>,
    events: u64,
    peak: usize,
    arrivals: usize,
    departures: usize,
    rounds_factor: f64,
}

/// Drives a ComDML job round by round on the elastic fleet, stopping the
/// round the model reaches the target.
fn run_comdml(scenario: &ScenarioSpec, seed: u64, model: &mut LearningModel) -> RoundLoop {
    let mut sim = FleetSim::new(scenario.fleet_config(seed), scenario.comdml_config());
    let mut trajectory = Vec::new();
    while model.rounds_observed() < scenario.rounds {
        let summary = sim.step();
        trajectory.push(model.observe(&RoundProgress::from(&summary)));
        if model.reached() {
            break;
        }
    }
    let r = sim.report();
    RoundLoop {
        sim_s: r.total_sim_s,
        rounds_run: r.rounds,
        trajectory,
        events: r.events_processed,
        peak: r.peak_agents,
        arrivals: r.arrivals,
        departures: r.departures,
        rounds_factor: r.rounds_factor,
    }
}

/// Drives a baseline job: the harness owns membership, profile churn and
/// sampling, the engine prices each round and reports its progress inputs,
/// and the model decides when the job is done.
fn run_baseline(
    scenario: &ScenarioSpec,
    method: Method,
    seed: u64,
    model: &mut LearningModel,
) -> RoundLoop {
    let mut driver: FleetDriver = scenario.fleet_config(seed).build();
    let density = driver.world().adjacency().density();
    let mut engine = baseline_engine(method, seed, density, &scenario.method_params);
    let mut sim_s = 0.0f64;
    let mut horizon = 30.0f64;
    let mut trajectory = Vec::new();
    let mut rounds_run = 0usize;
    for r in 0..scenario.rounds {
        // Hostile-world shaping at each round start, exactly as `FleetSim`
        // does it: a pure function of the fleet clock, so baselines face
        // the same bandwidth troughs and outages ComDML does. (Byzantine
        // misreports target the pairing broadcast and have no baseline
        // analogue — the closed-form engines don't pair.)
        let now = driver.clock_s();
        if let Some(d) = scenario.diurnal {
            driver.world_mut().set_link_scale(d.factor_at(now));
        }
        if let Some(p) = scenario.partition {
            match p.cut_at(now) {
                Some(isolated) => driver.world_mut().set_partition(p.groups, isolated),
                None => driver.world_mut().clear_partition(),
            }
        }
        if let Some(churn) = scenario.churn {
            if churn.interval > 0 && r > 0 && r % churn.interval == 0 {
                driver.world_mut().churn_profiles(churn.fraction);
            }
        }
        let plan = driver.begin_round(horizon);
        let empty_round = plan.participants.is_empty();
        let participants = if scenario.sampling_rate < 1.0 {
            driver.world_mut().sample_participants_among(&plan.participants, scenario.sampling_rate)
        } else {
            plan.participants.clone()
        };
        let progress = engine.round_progress_for(driver.world(), r, &participants);
        let mut t = progress.round_s;
        if t <= 0.0 {
            // An extinct round must still advance the fleet clock so
            // pending arrivals can activate (same fast-forward rule as
            // `FleetSim`).
            t = driver.seconds_to_next_event().unwrap_or(0.0);
        }
        // The closed-form baselines don't simulate mid-round departures,
        // but the membership process still produces them; churn-coupled
        // accuracy charges for participant departures committed inside the
        // realized round — the same rule as `FleetSim`, never twice.
        let progress = progress.with_disruptions(plan.committed_leaves_among(&participants, t));
        driver.end_round(t);
        sim_s += t;
        rounds_run += 1;
        // An empty round's duration is a fast-forward jump, not a round
        // time; don't let it inflate the planning horizon (`FleetSim`
        // applies the same rule).
        horizon = if empty_round { 30.0 } else { (t * 2.0).max(1.0) };
        trajectory.push(model.observe(&progress));
        if model.reached() {
            break;
        }
    }
    RoundLoop {
        sim_s,
        rounds_run,
        trajectory,
        events: 0,
        peak: driver.peak_active(),
        arrivals: driver.arrivals_total(),
        departures: driver.departures_total(),
        rounds_factor: engine.rounds_factor(),
    }
}

/// Runs one job to completion. Pure in `(scenario, method, seed)`.
pub fn run_job(scenario: &ScenarioSpec, method: Method, seed: u64) -> JobResult {
    let mut model = scenario.learning_model();
    let run = if method == Method::ComDml {
        run_comdml(scenario, seed, &mut model)
    } else {
        run_baseline(scenario, method, seed, &mut model)
    };
    let mean_round_s = run.sim_s / run.rounds_run.max(1) as f64;
    let rounds_to_target = model.projected_rounds_to_target();
    let time_to_target_s = if model.reached() {
        // Exact: the simulated clock the round the trajectory got there.
        run.sim_s
    } else {
        // Budget exhausted first: extrapolate the remaining rounds at the
        // realized mean pace (the old projection, exactly, when per-round
        // progress was constant).
        run.sim_s + rounds_to_target.saturating_sub(run.rounds_run) as f64 * mean_round_s
    };
    JobResult {
        scenario: scenario.name.clone(),
        method,
        seed,
        rounds_run: run.rounds_run,
        sim_s: run.sim_s,
        mean_round_s,
        rounds_factor: run.rounds_factor,
        rounds_to_target,
        time_to_target_s,
        reached_target: model.reached(),
        final_accuracy: model.accuracy(),
        accuracy_trajectory: run.trajectory,
        events_processed: run.events,
        peak_agents: run.peak,
        arrivals: run.arrivals,
        departures: run.departures,
    }
}

/// A claimable queue of index-tagged jobs — the one execution path every
/// consumer of the worker pool shares.
///
/// The local [`SweepRunner`] wraps the whole job matrix in a `JobSource`;
/// a farm worker wraps the slice its coordinator handed it. Both drain it
/// through [`SweepRunner::execute_source`], so work-stealing semantics,
/// purity and result placement are defined exactly once. Each entry pairs
/// a **global job-matrix index** with its [`JobSpec`]; claims hand out
/// entries in order via an atomic cursor (idle threads steal the next
/// unclaimed entry), and an optional cancel flag lets a consumer abandon
/// the tail of the queue (a farm worker hitting its job budget).
#[derive(Debug)]
pub struct JobSource {
    jobs: Vec<(usize, JobSpec)>,
    cursor: AtomicUsize,
    cancel: Option<Arc<AtomicBool>>,
}

impl JobSource {
    /// Wraps `(global index, job)` entries in claim order.
    pub fn new(jobs: Vec<(usize, JobSpec)>) -> Self {
        Self { jobs, cursor: AtomicUsize::new(0), cancel: None }
    }

    /// Attaches a cancel flag: once it reads `true`, no further claims are
    /// handed out (claims already made keep running).
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Number of entries in the queue (claimed or not).
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue was empty to begin with.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Claims the next unclaimed entry: `(position, global index, job)`.
    /// `None` once the queue is exhausted or cancelled.
    pub fn claim(&self) -> Option<(usize, usize, JobSpec)> {
        if self.cancel.as_ref().is_some_and(|c| c.load(Ordering::SeqCst)) {
            return None;
        }
        let pos = self.cursor.fetch_add(1, Ordering::Relaxed);
        self.jobs.get(pos).map(|&(gi, job)| (pos, gi, job))
    }
}

/// The parallel sweep executor. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
    progress: bool,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner using every available core, with progress reporting on.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { threads, progress: true }
    }

    /// Overrides the worker count (clamped to at least 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Enables or disables the stderr progress line.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Expands the spec's job matrix in report order (scenario-major, then
    /// method, then seed).
    pub fn jobs(spec: &SweepSpec) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(spec.num_jobs());
        for (si, _) in spec.scenarios.iter().enumerate() {
            for &method in &spec.methods {
                for seed in spec.seeds.iter() {
                    jobs.push(JobSpec { scenario: si, method, seed });
                }
            }
        }
        jobs
    }

    /// Drains a [`JobSource`] on the worker pool, calling `on_done` with
    /// `(global index, result)` as each job finishes (from the finishing
    /// pool thread — the farm worker streams rows over the wire from
    /// here), and returning results in source order. `None` slots mark
    /// entries never claimed because the source was cancelled.
    ///
    /// This is the one execution path: the local full-run, the sharded
    /// run and the farm worker all come through here, so they share the
    /// same work-stealing claim loop and purity contract.
    pub fn execute_source(
        &self,
        spec: &SweepSpec,
        source: &JobSource,
        on_done: &(dyn Fn(usize, &JobResult) + Sync),
    ) -> Vec<Option<JobResult>> {
        let total = source.len();
        let results: Vec<Mutex<Option<JobResult>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(total.max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // The shared queue: an idle worker steals the next
                    // unclaimed entry.
                    while let Some((pos, global, job)) = source.claim() {
                        let timer = comdml_obs::phase("job.run");
                        let result = run_job(&spec.scenarios[job.scenario], job.method, job.seed);
                        drop(timer);
                        comdml_obs::counter_add("sweep.jobs", 1);
                        comdml_obs::trace_event(
                            "job",
                            vec![
                                ("scenario", Value::Str(result.scenario.clone())),
                                ("method", Value::Str(job.method.token().to_string())),
                                ("seed", Value::Num(job.seed as f64)),
                                ("rounds_run", Value::Num(result.rounds_run as f64)),
                                ("sim_s", Value::Num(result.sim_s)),
                                ("reached", Value::Bool(result.reached_target)),
                            ],
                        );
                        on_done(global, &result);
                        *results[pos].lock().expect("no poisoned result slot") = Some(result);
                    }
                });
            }
        });
        results.into_iter().map(|m| m.into_inner().expect("no poisoned slot")).collect()
    }

    /// Burns through an (arbitrary subset of a) job list on the worker
    /// pool, returning results in the list's order. Shared by the full-run
    /// and sharded entry points, so both inherit the same determinism
    /// contract: results land in pre-assigned slots keyed by list position,
    /// independent of completion order.
    pub(crate) fn execute(&self, spec: &SweepSpec, jobs: &[JobSpec]) -> Vec<JobResult> {
        let total = jobs.len();
        let source = JobSource::new(jobs.iter().copied().enumerate().collect());
        let done = AtomicUsize::new(0);
        let results = self.execute_source(spec, &source, &|_, _| {
            let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
            if self.progress {
                eprint!("\rsweep {}: {finished}/{total} jobs", spec.name);
                if finished == total {
                    eprintln!();
                }
            }
        });
        results.into_iter().map(|r| r.expect("uncancelled source runs every job")).collect()
    }

    /// Runs the whole sweep and aggregates the report.
    ///
    /// # Errors
    ///
    /// Returns the spec's validation error, if any.
    pub fn run(&self, spec: &SweepSpec) -> Result<SweepReport, String> {
        spec.validate()?;
        let results = self.execute(spec, &Self::jobs(spec));
        Ok(SweepReport::assemble(spec, results))
    }
}
