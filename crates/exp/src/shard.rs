//! Shardable sweeps: partition the job matrix across processes or hosts
//! and byte-merge the partial reports.
//!
//! Every job is a pure function of its `(scenario, method, seed)`
//! coordinates, so the job matrix can be split *anywhere* without changing
//! any result — the only thing a shard needs to know is *which* global job
//! indices it owns. A [`Shard`] `i/n` owns the indices congruent to `i`
//! modulo `n` (round-robin, so expensive scenarios spread evenly), runs
//! them on the ordinary worker pool, and writes a [`PartialReport`]:
//! the full spec plus the owned `(index, job)` rows, as JSON on the
//! [`comdml_bench::Value`] model.
//!
//! [`merge`] takes one partial per shard, verifies the specs and the
//! partition are consistent and complete, scatters the rows back into
//! global order and re-aggregates with the same [`SweepReport::assemble`]
//! the single-process path uses — so the merged report renders
//! **byte-identically** to a single-process run of the same spec
//! (property-tested for 1–5 shards in `tests/shard.rs`). Floats survive
//! the partial-report round trip exactly because [`Value`] renders them in
//! Rust's shortest round-trip representation.

use std::path::{Path, PathBuf};

use comdml_bench::Value;

use crate::{JobResult, SweepReport, SweepRunner, SweepSpec};

/// One slice of a sweep's job matrix: shard `index` of `count` owns the
/// global job indices congruent to `index` modulo `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's position, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards the matrix is split into.
    pub count: usize,
}

impl Shard {
    /// Parses the CLI form `i/n` (e.g. `0/4`).
    ///
    /// # Errors
    ///
    /// Describes the malformed or out-of-range input.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (i, n) = s.split_once('/').ok_or_else(|| format!("shard {s:?} is not i/n"))?;
        let shard = Self {
            index: i.trim().parse().map_err(|e| format!("bad shard index {i:?}: {e}"))?,
            count: n.trim().parse().map_err(|e| format!("bad shard count {n:?}: {e}"))?,
        };
        shard.validate()?;
        Ok(shard)
    }

    /// Checks `index < count` and `count > 0`.
    ///
    /// # Errors
    ///
    /// Describes the violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.count == 0 {
            return Err("shard count must be positive".into());
        }
        if self.index >= self.count {
            return Err(format!("shard index {} out of range 0..{}", self.index, self.count));
        }
        Ok(())
    }

    /// Whether this shard owns global job index `i`.
    pub fn owns(&self, i: usize) -> bool {
        i % self.count == self.index
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// One shard's slice of a sweep: the complete spec (so any merge input is
/// self-describing) plus the owned job rows tagged with their global
/// indices.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialReport {
    /// The sweep this shard belongs to.
    pub spec: SweepSpec,
    /// Which slice of the matrix this is.
    pub shard: Shard,
    /// `(global job index, result)` rows, ascending by index.
    pub jobs: Vec<(usize, JobResult)>,
}

impl PartialReport {
    /// The JSON value form.
    pub fn to_value(&self) -> Value {
        let job_v = |(i, j): &(usize, JobResult)| {
            let mut fields = vec![("index".into(), Value::Num(*i as f64))];
            match j.to_value() {
                Value::Obj(f) => fields.extend(f),
                _ => unreachable!("JobResult::to_value is an object"),
            }
            Value::Obj(fields)
        };
        Value::Obj(vec![
            ("sweep".into(), Value::Str(self.spec.name.clone())),
            (
                "shard".into(),
                Value::Obj(vec![
                    ("index".into(), Value::Num(self.shard.index as f64)),
                    ("count".into(), Value::Num(self.shard.count as f64)),
                ]),
            ),
            ("spec".into(), self.spec.to_value()),
            ("jobs".into(), Value::Arr(self.jobs.iter().map(job_v).collect())),
        ])
    }

    /// Renders the partial report (the input format of
    /// [`PartialReport::parse`]; round-trips losslessly).
    pub fn render(&self) -> String {
        self.to_value().render()
    }

    /// Parses a partial report previously produced by
    /// [`PartialReport::render`].
    ///
    /// # Errors
    ///
    /// Describes the first syntax, schema or consistency problem.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Value::parse(text)?;
        let shard_v = v.get("shard").ok_or("missing \"shard\"")?;
        let shard = Shard {
            index: shard_v
                .get("index")
                .and_then(Value::as_usize)
                .ok_or("shard.index must be a usize")?,
            count: shard_v
                .get("count")
                .and_then(Value::as_usize)
                .ok_or("shard.count must be a usize")?,
        };
        shard.validate()?;
        let spec = SweepSpec::from_value(v.get("spec").ok_or("missing \"spec\"")?)?;
        spec.validate()?;
        let jobs = v
            .get("jobs")
            .and_then(Value::as_array)
            .ok_or("missing \"jobs\" array")?
            .iter()
            .map(|j| {
                let index =
                    j.get("index").and_then(Value::as_usize).ok_or("job missing \"index\"")?;
                Ok((index, JobResult::from_value(j)?))
            })
            .collect::<Result<Vec<(usize, JobResult)>, String>>()?;
        let part = Self { spec, shard, jobs };
        part.check_partition()?;
        Ok(part)
    }

    /// Verifies the rows are exactly the indices this shard owns, in
    /// ascending order and in range.
    fn check_partition(&self) -> Result<(), String> {
        let expected: Vec<usize> =
            (0..self.spec.num_jobs()).filter(|&i| self.shard.owns(i)).collect();
        let got: Vec<usize> = self.jobs.iter().map(|(i, _)| *i).collect();
        if got != expected {
            return Err(format!(
                "shard {} of sweep {:?} carries indices {got:?}, expected {expected:?}",
                self.shard, self.spec.name
            ));
        }
        Ok(())
    }

    /// The artifact file name, `BENCH_part_<sweep>_<i>of<n>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_part_{}_{}of{}.json", self.spec.name, self.shard.index, self.shard.count)
    }

    /// Writes the partial under `dir`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.render())?;
        Ok(path)
    }
}

impl SweepRunner {
    /// Runs only the jobs `shard` owns and returns the partial report.
    /// Pure per-job seeding makes the slice independent of every other
    /// shard, so shards can run on different hosts.
    ///
    /// # Errors
    ///
    /// Returns the spec's or shard's validation error.
    pub fn run_shard(&self, spec: &SweepSpec, shard: Shard) -> Result<PartialReport, String> {
        spec.validate()?;
        shard.validate()?;
        let owned: Vec<(usize, crate::JobSpec)> =
            Self::jobs(spec).into_iter().enumerate().filter(|(i, _)| shard.owns(*i)).collect();
        let jobs: Vec<crate::JobSpec> = owned.iter().map(|(_, j)| *j).collect();
        let results = self.execute(spec, &jobs);
        Ok(PartialReport {
            spec: spec.clone(),
            shard,
            jobs: owned.iter().map(|(i, _)| *i).zip(results).collect(),
        })
    }
}

/// Merges one partial report per shard back into the full [`SweepReport`].
/// The result is byte-identical to a single-process run of the same spec:
/// rows are scattered into global order and aggregated by the same
/// [`SweepReport::assemble`].
///
/// # Errors
///
/// Describes the first inconsistency: mismatched specs or shard counts,
/// duplicate or missing shards.
pub fn merge(parts: &[PartialReport]) -> Result<SweepReport, String> {
    let first = parts.first().ok_or("merge needs at least one partial report")?;
    let count = first.shard.count;
    if parts.len() != count {
        return Err(format!("sweep {:?} has {count} shards, got {}", first.spec.name, parts.len()));
    }
    let spec_text = first.spec.render();
    let mut seen = vec![false; count];
    for p in parts {
        // Hand-constructed partials can carry an out-of-range index; the
        // Err contract covers that too (never an indexing panic).
        p.shard.validate()?;
        if p.spec.render() != spec_text {
            return Err(format!(
                "shard {} was run from a different spec than shard {}",
                p.shard, first.shard
            ));
        }
        if p.shard.count != count {
            return Err(format!("shard {} disagrees on the shard count {count}", p.shard));
        }
        if std::mem::replace(&mut seen[p.shard.index], true) {
            return Err(format!("duplicate shard {}", p.shard));
        }
        p.check_partition()?;
    }
    // All counts match, indices are unique and partitions internally
    // complete, so every global index is covered exactly once.
    let mut slots: Vec<Option<JobResult>> = vec![None; first.spec.num_jobs()];
    for p in parts {
        for (i, job) in &p.jobs {
            slots[*i] = Some(job.clone());
        }
    }
    let jobs: Vec<JobResult> =
        slots.into_iter().map(|s| s.expect("partition covers every index")).collect();
    Ok(SweepReport::assemble(&first.spec, jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn shard_parse_accepts_i_slash_n_only() {
        assert_eq!(Shard::parse("0/2").unwrap(), Shard { index: 0, count: 2 });
        assert_eq!(Shard::parse(" 3 / 5 ").unwrap(), Shard { index: 3, count: 5 });
        for bad in ["2/2", "1/0", "x/2", "1", "1/2/3", ""] {
            assert!(Shard::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn round_robin_partition_is_exhaustive_and_disjoint() {
        for count in 1..=5 {
            let mut owners = [0usize; 17];
            for index in 0..count {
                let shard = Shard { index, count };
                for (i, o) in owners.iter_mut().enumerate() {
                    if shard.owns(i) {
                        *o += 1;
                    }
                }
            }
            assert!(owners.iter().all(|&o| o == 1), "{count} shards must cover each index once");
        }
    }

    #[test]
    fn merge_rejects_inconsistent_partials() {
        let spec = presets::smoke();
        let runner = SweepRunner::new().progress(false);
        let p0 = runner.run_shard(&spec, Shard { index: 0, count: 2 }).unwrap();
        let p1 = runner.run_shard(&spec, Shard { index: 1, count: 2 }).unwrap();
        assert!(merge(&[]).is_err(), "empty merge");
        assert!(
            merge(std::slice::from_ref(&p0)).unwrap_err().contains("2 shards"),
            "missing shard"
        );
        assert!(merge(&[p0.clone(), p0.clone()]).unwrap_err().contains("duplicate"));
        let mut other_spec = p1.clone();
        other_spec.spec.name = "renamed".into();
        assert!(merge(&[p0.clone(), other_spec]).unwrap_err().contains("different spec"));
        // A hand-constructed out-of-range shard must be an Err, not an
        // index-out-of-bounds panic on the seen[] bitmap.
        let mut rogue = p1.clone();
        rogue.shard = Shard { index: 5, count: 2 };
        assert!(merge(&[p0.clone(), rogue]).unwrap_err().contains("out of range"));
        assert!(merge(&[p0, p1]).is_ok());
    }
}
