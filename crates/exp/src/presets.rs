//! Named sweep presets: the paper's Table II/III grids, the extended
//! nine-method comparison, the round-driven convergence showcase, the
//! CI smoke sweep, and the hostile-world conditions (`@diurnal`,
//! `@partition`, `@byzantine`), as programmatic [`SweepSpec`] builders.
//! `exp_sweep` can also read them by name (`@table2`, `@smoke`, …)
//! instead of a spec file; `--list-presets` prints this catalog.

use comdml_core::{AggregationMode, ChurnPolicy};
use comdml_simnet::{
    ArrivalProcess, ByzantineConfig, DistributionConfig, DiurnalCycle, PartitionSchedule,
    SessionLifetime, Topology,
};

use crate::{Method, MethodParams, ScenarioSpec, SweepSpec};

/// The five methods of the paper's Table II, in table order.
pub fn paper_methods() -> Vec<Method> {
    vec![Method::ComDml, Method::Gossip, Method::BrainTorrent, Method::AllReduce, Method::FedAvg]
}

/// Table II: time to target accuracy with 10 heterogeneous agents on
/// CIFAR-10 / CIFAR-100 / CINIC-10, I.I.D. and non-I.I.D. — six dataset
/// cells × five methods, replicated across `seeds` seeds.
pub fn table2(seeds: usize) -> SweepSpec {
    let cell = |name: &str, dataset: &str, iid: bool, target: f64| {
        let mut s = ScenarioSpec::new(name).dataset(dataset, iid).target(target).rounds(30);
        s.samples_per_agent = 5_000; // 50k samples over 10 agents
        s
    };
    let mut spec = SweepSpec::new("table2").seeds(1, seeds);
    for m in paper_methods() {
        spec = spec.method(m);
    }
    spec.scenario(cell("c10_iid", "cifar10", true, 0.90))
        .scenario(cell("c10_noniid", "cifar10", false, 0.85))
        .scenario(cell("c100_iid", "cifar100", true, 0.65))
        .scenario(cell("c100_noniid", "cifar100", false, 0.60))
        .scenario(cell("cinic_iid", "cinic10", true, 0.75))
        .scenario(cell("cinic_noniid", "cinic10", false, 0.65))
}

/// Table III-style stress grid: participation sampling at scale, dynamic
/// profile churn, a sparse Erdős–Rényi topology surviving membership
/// churn, and dropout-heavy fleets — the paper's §V-B robustness axes as
/// four scenarios × five methods.
pub fn table3(seeds: usize) -> SweepSpec {
    let mut spec = SweepSpec::new("table3").seeds(1, seeds);
    for m in paper_methods() {
        spec = spec.method(m);
    }
    spec.scenario(
        // Table III proper: 50 agents, 20% participation per round.
        ScenarioSpec::new("agents50_sample20").agents(50).sampling_rate(0.2).rounds(30),
    )
    .scenario(
        // §V-B.2 dynamic environments: 20% of profiles re-rolled every 10
        // measured rounds.
        ScenarioSpec::new("profile_churn")
            .agents(20)
            .churn(ChurnPolicy { interval: 10, fraction: 0.2 })
            .rounds(30),
    )
    .scenario(
        // Fig. 3's sparse topology, kept sparse under churn by
        // Erdős–Rényi joins (the default join policy for random graphs).
        ScenarioSpec::new("sparse_er20")
            .agents(30)
            .topology(Topology::Random { p: 0.2 })
            .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.002 })
            .lifetime(SessionLifetime::Exponential { mean_s: 20_000.0 })
            .rounds(30),
    )
    .scenario(
        // §V-B.5 dropouts: heavy-tailed sessions under a semi-synchronous
        // quorum, the regime where stragglers and leavers collide.
        ScenarioSpec::new("dropouts_weibull")
            .agents(24)
            .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.004 })
            .lifetime(SessionLifetime::Weibull { scale_s: 15_000.0, shape: 0.7 })
            .aggregation(AggregationMode::SemiSynchronous { quorum: 0.8, staleness_s: f64::MAX })
            .rounds(30),
    )
}

/// Extended comparison beyond Table II: ComDML against *all eight*
/// alternatives — including the straggler-mitigation families of §II
/// (tier-based selection, straggler dropping, FedProx partial work) and
/// classic server-based split learning — on the IID CIFAR-10 cell to 90%.
/// The round budget exceeds most methods' rounds-to-target, so jobs stop
/// early the round their realized trajectory reaches 0.90 (the retired
/// `extended_baselines` bench bin, rehosted on the sweep engine).
pub fn extended(seeds: usize) -> SweepSpec {
    let mut spec = SweepSpec::new("extended").seeds(1, seeds);
    for m in Method::ALL {
        spec = spec.method(m);
    }
    spec.scenario({
        let mut s =
            ScenarioSpec::new("c10_iid_to90").dataset("cifar10", true).target(0.90).rounds(60);
        s.samples_per_agent = 5_000; // 50k samples over 10 agents
        s
    })
}

/// Round-driven convergence showcase (the retired `convergence_curves`
/// bench bin, rehosted): four scenarios whose realized accuracy
/// trajectories the flat projection could never express — the clean IID
/// reference, a non-IID curve *mix* between the calibrated endpoints,
/// membership churn coupled into accuracy (each mid-round departure
/// forfeits effective rounds), and a staleness-discounted semi-synchronous
/// quorum. Trajectories land per job in `BENCH_sweep_convergence.json`.
pub fn convergence(seeds: usize) -> SweepSpec {
    SweepSpec::new("convergence")
        .seeds(1, seeds)
        .method(Method::ComDml)
        .method(Method::FedAvg)
        .method(Method::Gossip)
        .scenario(ScenarioSpec::new("iid_reference").rounds(40).target(0.8))
        .scenario(ScenarioSpec::new("noniid_mix60").noniid_mix(0.6).rounds(40).target(0.75))
        .scenario(
            ScenarioSpec::new("churn_dips")
                .agents(16)
                .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.004 })
                .lifetime(SessionLifetime::Exponential { mean_s: 6_000.0 })
                .churn_dip(0.5)
                .aggregation(AggregationMode::SemiSynchronous {
                    quorum: 0.7,
                    staleness_s: f64::MAX,
                })
                .rounds(40)
                .target(0.75),
        )
        .scenario(
            ScenarioSpec::new("stale_semi_sync")
                .agents(16)
                .aggregation(AggregationMode::SemiSynchronous {
                    quorum: 0.5,
                    staleness_s: f64::MAX,
                })
                .method_params(MethodParams { staleness_decay: 1.0, ..MethodParams::default() })
                .rounds(40)
                .target(0.75),
        )
}

/// The tiny CI smoke sweep: one churny scenario, three methods, two seeds
/// — seconds of wall clock, exercising the full spec → jobs → report path.
pub fn smoke() -> SweepSpec {
    SweepSpec::new("smoke")
        .seeds(1, 2)
        .method(Method::ComDml)
        .method(Method::Gossip)
        .method(Method::FedAvg)
        .scenario(
            ScenarioSpec::new("churny_dozen")
                .agents(12)
                .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.002 })
                .lifetime(SessionLifetime::Exponential { mean_s: 8_000.0 })
                .sampling_rate(0.75)
                .rounds(8),
        )
}

/// The churny 16-agent fleet every hostile preset stresses: the same
/// shape (and therefore the same honest behavior) as the pinned-digest
/// fleet in `comdml-core`'s tests, so the hostile knob is the only thing
/// that moves.
fn hostile_fleet(name: &str) -> ScenarioSpec {
    let mut s = ScenarioSpec::new(name)
        .agents(16)
        .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.002 })
        .lifetime(SessionLifetime::Exponential { mean_s: 5_000.0 })
        .rounds(25);
    s.samples_per_agent = 500;
    s
}

/// The comparison methods every hostile preset runs: ComDML plus the two
/// baselines that bracket it (server-coordinated and fully gossip-based).
fn hostile_methods(spec: SweepSpec) -> SweepSpec {
    spec.method(Method::ComDml).method(Method::FedAvg).method(Method::Gossip)
}

/// Hostile world: diurnal bandwidth. Every link rides a cosine day/night
/// cycle bottoming out at 25% of nominal bandwidth (2-hour period so 25
/// rounds sweep several troughs). The twin scenario adds declarative
/// lognormal CPU/link heterogeneity on top — the distribution tail meets
/// the bandwidth trough.
pub fn diurnal(seeds: usize) -> SweepSpec {
    let cycle = DiurnalCycle { period_s: 7_200.0, min_factor: 0.25 };
    hostile_methods(SweepSpec::new("diurnal").seeds(1, seeds))
        .scenario(hostile_fleet("diurnal_trough").diurnal(cycle))
        .scenario(
            hostile_fleet("diurnal_lognormal")
                .diurnal(cycle)
                .cpu_dist(DistributionConfig::LogNormal { mu: 0.0, sigma: 0.6 })
                .link_dist(DistributionConfig::LogNormal { mu: 3.2, sigma: 0.8 }),
        )
}

/// Hostile world: correlated regional outages. Agents fall into 4 regions
/// (`id mod 4`); every hour one region is cut off from the rest for 15
/// minutes, rotating round-robin, then heals. The twin scenario draws
/// session lifetimes from a heavy-tailed lognormal so departures cluster
/// with the outages.
pub fn partition(seeds: usize) -> SweepSpec {
    let schedule = PartitionSchedule { groups: 4, period_s: 3_600.0, outage_s: 900.0 };
    hostile_methods(SweepSpec::new("partition").seeds(1, seeds))
        .scenario(hostile_fleet("partition_rotating").partition(schedule))
        .scenario(
            hostile_fleet("partition_heavy_tail")
                .partition(schedule)
                .lifetime_dist(DistributionConfig::LogNormal { mu: 8.0, sigma: 1.0 }),
        )
}

/// Hostile world: Byzantine speed misreports. A deterministic 20% of
/// agents advertise 4× their true CPU speed to the pairing broadcast, so
/// the scheduler keeps offloading work onto liars that then underdeliver.
/// The twin scenario adds uniform CPU heterogeneity so the lie competes
/// with genuine spread.
pub fn byzantine(seeds: usize) -> SweepSpec {
    let liars = ByzantineConfig { fraction: 0.2, speed_factor: 4.0 };
    hostile_methods(SweepSpec::new("byzantine").seeds(1, seeds))
        .scenario(hostile_fleet("byzantine_liars").byzantine(liars))
        .scenario(
            hostile_fleet("byzantine_uniform")
                .byzantine(liars)
                .cpu_dist(DistributionConfig::Uniform { min: 0.2, max: 4.0 }),
        )
}

/// The preset catalog: every name [`by_name`] accepts, with a one-line
/// description (the `--list-presets` output).
pub const CATALOG: [(&str, &str); 8] = [
    ("table2", "paper Table II: time-to-target, 6 dataset cells x 5 methods"),
    ("table3", "paper Table III stress grid: sampling, churn, sparse topology, dropouts"),
    ("extended", "ComDML vs all 8 baselines on IID CIFAR-10 to 90%"),
    ("convergence", "round-driven accuracy-trajectory showcase"),
    ("smoke", "tiny CI sweep: one churny scenario, 3 methods, 2 seeds"),
    ("diurnal", "hostile: cosine day/night bandwidth troughs (+ lognormal twin)"),
    ("partition", "hostile: rotating correlated regional outages (+ heavy-tail twin)"),
    ("byzantine", "hostile: 20% of agents misreport 4x speed to the pairing broadcast"),
];

/// Resolves a preset by name.
///
/// # Errors
///
/// Returns the unknown name.
pub fn by_name(name: &str, seeds: usize) -> Result<SweepSpec, String> {
    match name {
        "table2" => Ok(table2(seeds)),
        "table3" => Ok(table3(seeds)),
        "extended" => Ok(extended(seeds)),
        "convergence" => Ok(convergence(seeds)),
        "smoke" => Ok(smoke()),
        "diurnal" => Ok(diurnal(seeds)),
        "partition" => Ok(partition(seeds)),
        "byzantine" => Ok(byzantine(seeds)),
        other => {
            let names: Vec<&str> = CATALOG.iter().map(|(n, _)| *n).collect();
            Err(format!("unknown preset {other:?} (try {})", names.join(", ")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_round_trip() {
        for spec in [
            table2(5),
            table3(5),
            extended(3),
            convergence(3),
            smoke(),
            diurnal(2),
            partition(2),
            byzantine(2),
        ] {
            spec.validate().unwrap();
            let back = SweepSpec::parse(&spec.render()).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn catalog_matches_by_name() {
        for (name, _) in CATALOG {
            assert_eq!(by_name(name, 2).unwrap().name, name);
        }
        assert!(by_name("torus", 2).unwrap_err().contains("byzantine"), "error lists the catalog");
    }

    #[test]
    fn hostile_presets_carry_their_knobs() {
        assert!(diurnal(2).scenarios.iter().all(|s| s.diurnal.is_some()));
        assert!(partition(2).scenarios.iter().all(|s| s.partition.is_some()));
        assert!(byzantine(2).scenarios.iter().all(|s| s.byzantine.is_some()));
        // Each hostile preset's twin also exercises a declarative
        // heterogeneity distribution.
        assert!(diurnal(2).scenarios.iter().any(|s| s.cpu_dist.is_some() && s.link_dist.is_some()));
        assert!(partition(2).scenarios.iter().any(|s| s.lifetime_dist.is_some()));
        assert!(byzantine(2).scenarios.iter().any(|s| s.cpu_dist.is_some()));
    }

    #[test]
    fn extended_runs_every_method() {
        assert_eq!(extended(1).methods.len(), Method::ALL.len());
    }

    #[test]
    fn convergence_covers_the_round_driven_axes() {
        let spec = convergence(2);
        assert!(spec.scenarios.iter().any(|s| s.noniid_mix.is_some()));
        assert!(spec.scenarios.iter().any(|s| s.churn_dip > 0.0));
        assert!(spec
            .scenarios
            .iter()
            .any(|s| s.method_params.staleness_decay != MethodParams::default().staleness_decay));
    }

    #[test]
    fn paper_grids_meet_the_acceptance_floor() {
        // ≥4 baselines (plus ComDML), ≥3 scenarios, ≥5 seeds.
        for spec in [table2(5), table3(5)] {
            assert!(spec.methods.len() >= 5);
            assert!(spec.seeds.count >= 5);
        }
        assert!(table2(5).scenarios.len() >= 3);
        assert!(table3(5).scenarios.len() >= 3);
    }
}
