//! The distributed sweep farm: a work-stealing coordinator/worker service
//! over [`comdml_net`]'s versioned wire protocol.
//!
//! `exp_sweep --shard i/n` partitions the job matrix *statically* — fine
//! when hosts are identical, wasteful when they are not, because the
//! slowest shard serializes the sweep. The farm replaces that with the
//! same pull-based work stealing the in-process [`SweepRunner`] pool uses,
//! stretched over TCP:
//!
//! * A [`Coordinator`] accepts [`submit`]ted [`SweepSpec`]s, expands each
//!   into its job matrix, and hands out small **slices** of global job
//!   indices to whichever worker asks next — workers that finish early
//!   simply ask again, so heterogeneous hosts self-balance.
//! * [`run_worker`] connects, pulls slices, drains each through
//!   [`SweepRunner::execute_source`] on the local thread pool, and streams
//!   every finished row back immediately (one `JobDone` per job), so a
//!   worker lost mid-slice forfeits only its unfinished jobs.
//! * The coordinator folds streamed rows into per-job slots keyed by
//!   **global index** — the same slots a local run fills — and detects
//!   failures two ways: a dropped connection requeues the worker's
//!   in-flight slices at once, and a reaper thread requeues slices whose
//!   worker stopped heartbeating. Folding ignores rows for slots already
//!   filled, so duplicate execution after a requeue is harmless.
//! * [`fetch`] reassembles the finished sweep client-side via
//!   [`JobResult::from_value`] + [`SweepReport::assemble`] — the exact
//!   reconstruction path the shard merge uses, so the farm's
//!   `BENCH_sweep_*.json` is **byte-identical** to a single-process run
//!   whatever the worker count, slice size, or worker deaths along the way
//!   (proven by the property tests in `tests/farm.rs`).
//!
//! Jobs are pure functions of `(scenario, method, seed)`; determinism
//! needs no coordination beyond putting each row in its pre-assigned slot.
//! Specs and rows cross the wire as their canonical JSON text —
//! [`comdml_bench::Value`] renders floats in shortest round-trip form, so
//! `parse ∘ render` is the identity and the text *is* the value.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use comdml_bench::Value;
use comdml_net::{serve, FramedStream, Message, ServerHandle, WorkerRow, PROTOCOL_VERSION};
use comdml_obs::Histogram;

use crate::{JobResult, JobSource, JobSpec, SweepReport, SweepRunner, SweepSpec};

/// The farm's default coordinator endpoint.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7700";

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Jobs per work slice. Small slices steal better; 1 is the perfect
    /// balance / maximum chatter extreme.
    pub slice_size: usize,
    /// How long a slice may go without any sign of life from its worker
    /// (heartbeat, row, or grant) before the reaper requeues it.
    pub worker_timeout: Duration,
    /// How often the reaper scans for timed-out slices.
    pub reaper_tick: Duration,
    /// Poll interval suggested to idle workers via `NoWork`.
    pub retry_ms: u32,
    /// Suppresses the coordinator's stderr event log.
    pub quiet: bool,
}

impl Default for FarmConfig {
    fn default() -> Self {
        Self {
            slice_size: 4,
            worker_timeout: Duration::from_secs(10),
            reaper_tick: Duration::from_millis(200),
            retry_ms: 200,
            quiet: false,
        }
    }
}

/// One outstanding slice: who holds it, which global indices it covers,
/// and when the worker last showed signs of life on it.
#[derive(Debug)]
struct SliceInfo {
    worker: u64,
    indices: Vec<usize>,
    last_activity: Instant,
}

/// Everything the coordinator tracks for one submitted sweep.
#[derive(Debug)]
struct SweepState {
    spec_json: String,
    /// One slot per job matrix entry, filled in any order, read in order.
    slots: Vec<Option<JobResult>>,
    done: usize,
    /// Unclaimed slices, front = next to grant. Requeues go to the front
    /// so recovered work finishes before fresh work starts.
    queue: VecDeque<Vec<usize>>,
    in_flight: HashMap<u64, SliceInfo>,
    /// Jobs handed out more than once (requeued after a death/timeout).
    requeued: usize,
    /// Slices re-queued (each may cover several jobs); the slice-granular
    /// twin of `requeued`.
    requeued_slices: u64,
    /// Slices re-queued specifically by the heartbeat reaper.
    timed_out_slices: u64,
    submitted: Instant,
    /// Elapsed seconds frozen at the moment the last slot filled.
    finished_in_s: Option<f64>,
}

impl SweepState {
    fn total(&self) -> usize {
        self.slots.len()
    }

    fn complete(&self) -> bool {
        self.done == self.total()
    }

    /// Requeues the slice's still-unfilled indices. Returns how many.
    fn requeue(&mut self, info: SliceInfo) -> usize {
        let unfinished: Vec<usize> =
            info.indices.into_iter().filter(|&i| self.slots[i].is_none()).collect();
        let n = unfinished.len();
        if n > 0 {
            self.requeued += n;
            self.requeued_slices += 1;
            comdml_obs::counter_add("farm.slices_requeued", 1);
            self.queue.push_front(unfinished);
        }
        n
    }
}

/// The coordinator's live view of one connected worker: identity plus the
/// latest telemetry snapshot it piggybacked on a heartbeat or slice
/// completion ([`Message::WorkerMetrics`], protocol ≥ 2 — workers from a
/// protocol-1 build simply never update the zeros).
#[derive(Debug)]
struct WorkerStats {
    name: String,
    first_seen: Instant,
    jobs_done: u64,
    slices_done: u64,
    slice_p50_ms: f64,
    slice_p90_ms: f64,
    skipped_unknown: u64,
}

/// Linear completion estimate from realized pace: `0` once complete, `-1`
/// (unknown) before the first job lands, otherwise
/// `elapsed / done * remaining`.
pub fn eta_seconds(done: u64, total: u64, elapsed_s: f64, complete: bool) -> f64 {
    if complete {
        0.0
    } else if done == 0 {
        -1.0 // unknown yet
    } else {
        elapsed_s / done as f64 * total.saturating_sub(done) as f64
    }
}

/// The coordinator's whole mutable world, behind one mutex. Sessions are
/// request/response and every transition is a short critical section, so
/// one lock is simpler and plenty.
#[derive(Debug)]
struct FarmState {
    cfg: FarmConfig,
    sweeps: BTreeMap<u64, SweepState>,
    workers: HashMap<u64, WorkerStats>,
    /// Unknown-kind frames skipped across every coordinator session
    /// (deltas folded in by the session loops).
    skipped_unknown: u64,
    next_sweep_id: u64,
    next_slice_id: u64,
    next_worker_id: u64,
}

impl FarmState {
    fn new(cfg: FarmConfig) -> Self {
        Self {
            cfg,
            sweeps: BTreeMap::new(),
            workers: HashMap::new(),
            skipped_unknown: 0,
            next_sweep_id: 1,
            next_slice_id: 1,
            next_worker_id: 1,
        }
    }

    fn log(&self, msg: std::fmt::Arguments<'_>) {
        if !self.cfg.quiet {
            comdml_obs::info!("comdml_exp::farm", "{msg}");
        }
    }

    /// Validates and enqueues a sweep; returns `(sweep id, total jobs)`.
    fn submit(&mut self, spec_json: &str) -> Result<(u64, u64), String> {
        let spec = SweepSpec::parse(spec_json)?;
        spec.validate()?;
        let total = spec.num_jobs();
        let slice = self.cfg.slice_size.max(1);
        let mut queue = VecDeque::with_capacity(total.div_ceil(slice));
        let mut at = 0usize;
        while at < total {
            queue.push_back((at..(at + slice).min(total)).collect());
            at += slice;
        }
        let id = self.next_sweep_id;
        self.next_sweep_id += 1;
        self.log(format_args!(
            "sweep {id} ({}): {total} jobs queued in {} slices",
            spec.name,
            queue.len()
        ));
        self.sweeps.insert(
            id,
            SweepState {
                // Store the *canonical* text so every worker parses the
                // same bytes regardless of the submitter's formatting.
                spec_json: spec.render(),
                slots: (0..total).map(|_| None).collect(),
                done: 0,
                queue,
                in_flight: HashMap::new(),
                requeued: 0,
                requeued_slices: 0,
                timed_out_slices: 0,
                submitted: Instant::now(),
                finished_in_s: None,
            },
        );
        Ok((id, total as u64))
    }

    fn register_worker(&mut self, name: &str, threads: u32) -> u64 {
        let id = self.next_worker_id;
        self.next_worker_id += 1;
        self.workers.insert(
            id,
            WorkerStats {
                name: name.to_string(),
                first_seen: Instant::now(),
                jobs_done: 0,
                slices_done: 0,
                slice_p50_ms: 0.0,
                slice_p90_ms: 0.0,
                skipped_unknown: 0,
            },
        );
        self.log(format_args!("worker {id} ({name}) joined with {threads} threads"));
        id
    }

    /// Folds a worker's piggybacked telemetry snapshot, which also counts
    /// as a sign of life for every slice it holds.
    fn worker_metrics(&mut self, msg: &Message) {
        let Message::WorkerMetrics {
            worker_id,
            jobs_done,
            slices_done,
            slice_p50_ms,
            slice_p90_ms,
            skipped_unknown,
        } = msg
        else {
            return;
        };
        if let Some(stats) = self.workers.get_mut(worker_id) {
            stats.jobs_done = *jobs_done;
            stats.slices_done = *slices_done;
            stats.slice_p50_ms = *slice_p50_ms;
            stats.slice_p90_ms = *slice_p90_ms;
            stats.skipped_unknown = *skipped_unknown;
        }
        self.heartbeat(*worker_id);
    }

    /// Grants the next queued slice of the oldest unfinished sweep.
    fn grant(&mut self, worker: u64) -> Option<Message> {
        for (&sweep_id, sweep) in self.sweeps.iter_mut() {
            if let Some(indices) = sweep.queue.pop_front() {
                let slice_id = self.next_slice_id;
                self.next_slice_id += 1;
                sweep.in_flight.insert(
                    slice_id,
                    SliceInfo { worker, indices: indices.clone(), last_activity: Instant::now() },
                );
                return Some(Message::WorkSlice {
                    sweep_id,
                    slice_id,
                    spec_json: sweep.spec_json.clone(),
                    indices: indices.iter().map(|&i| i as u64).collect(),
                });
            }
        }
        None
    }

    /// Folds one streamed row into its global slot. Rows for slots already
    /// filled (duplicate execution after a requeue) are ignored — folding
    /// is idempotent, which is what makes at-least-once delivery safe.
    fn fold(&mut self, sweep_id: u64, slice_id: u64, index: u64, row_json: &str) {
        let Some(sweep) = self.sweeps.get_mut(&sweep_id) else {
            return;
        };
        if let Some(slice) = sweep.in_flight.get_mut(&slice_id) {
            slice.last_activity = Instant::now();
        }
        let i = index as usize;
        if i >= sweep.slots.len() || sweep.slots[i].is_some() {
            return;
        }
        let row = match Value::parse(row_json).and_then(|v| JobResult::from_value(&v)) {
            Ok(row) => row,
            Err(e) => {
                // Leave the slot empty: the slice-done sweep below (or the
                // reaper) will requeue it. A malformed row is an anomaly
                // worth surfacing even on quiet coordinators.
                comdml_obs::warn!(
                    "comdml_exp::farm",
                    "sweep {sweep_id}: dropping malformed row {index}: {e}"
                );
                return;
            }
        };
        let sweep = self.sweeps.get_mut(&sweep_id).expect("sweep checked above");
        sweep.slots[i] = Some(row);
        sweep.done += 1;
        if sweep.complete() {
            let elapsed = sweep.submitted.elapsed().as_secs_f64();
            sweep.finished_in_s = Some(elapsed);
            let requeued = sweep.requeued;
            self.log(format_args!(
                "sweep {sweep_id} complete: {} jobs in {elapsed:.2}s ({requeued} requeued)",
                self.sweeps[&sweep_id].total()
            ));
        }
    }

    /// Retires a slice the worker reports fully sent. Any index still
    /// empty (a row lost or malformed en route) goes back on the queue.
    fn slice_done(&mut self, sweep_id: u64, slice_id: u64) {
        let Some(sweep) = self.sweeps.get_mut(&sweep_id) else {
            return;
        };
        if let Some(info) = sweep.in_flight.remove(&slice_id) {
            let n = sweep.requeue(info);
            if n > 0 {
                self.log(format_args!(
                    "sweep {sweep_id}: slice {slice_id} retired with {n} missing rows — requeued"
                ));
            }
        }
    }

    /// A live worker refreshes every slice it holds.
    fn heartbeat(&mut self, worker: u64) {
        let now = Instant::now();
        for sweep in self.sweeps.values_mut() {
            for slice in sweep.in_flight.values_mut() {
                if slice.worker == worker {
                    slice.last_activity = now;
                }
            }
        }
    }

    /// Connection-drop path: requeues everything the worker held,
    /// immediately.
    fn worker_gone(&mut self, worker: u64) {
        let name = self.workers.remove(&worker).map(|w| w.name).unwrap_or_default();
        let mut requeues: Vec<(u64, usize)> = Vec::new();
        for (&sweep_id, sweep) in self.sweeps.iter_mut() {
            let held: Vec<u64> = sweep
                .in_flight
                .iter()
                .filter(|(_, s)| s.worker == worker)
                .map(|(&id, _)| id)
                .collect();
            for slice_id in held {
                let info = sweep.in_flight.remove(&slice_id).expect("slice id just listed");
                let n = sweep.requeue(info);
                if n > 0 {
                    requeues.push((sweep_id, n));
                }
            }
        }
        for (sweep_id, n) in requeues {
            self.log(format_args!(
                "worker {worker} ({name}) disconnected: requeued {n} jobs of sweep {sweep_id}"
            ));
        }
    }

    /// Heartbeat-timeout path: requeues slices nobody has touched within
    /// the timeout (worker hung, wedged, or silently partitioned).
    fn reap(&mut self) {
        let timeout = self.cfg.worker_timeout;
        let mut requeues: Vec<(u64, u64, u64, usize)> = Vec::new();
        for (&sweep_id, sweep) in self.sweeps.iter_mut() {
            let stale: Vec<u64> = sweep
                .in_flight
                .iter()
                .filter(|(_, s)| s.last_activity.elapsed() > timeout)
                .map(|(&id, _)| id)
                .collect();
            for slice_id in stale {
                let info = sweep.in_flight.remove(&slice_id).expect("slice id just listed");
                let worker = info.worker;
                let n = sweep.requeue(info);
                if n > 0 {
                    sweep.timed_out_slices += 1;
                    comdml_obs::counter_add("farm.slices_timed_out", 1);
                    requeues.push((sweep_id, slice_id, worker, n));
                }
            }
        }
        for (sweep_id, slice_id, worker, n) in requeues {
            self.log(format_args!(
                "sweep {sweep_id}: slice {slice_id} timed out on worker {worker} — requeued {n} jobs"
            ));
        }
    }

    fn status_message(&self, sweep_id: u64) -> Result<Message, String> {
        let sweep =
            self.sweeps.get(&sweep_id).ok_or_else(|| format!("unknown sweep {sweep_id}"))?;
        let total = sweep.total();
        let done = sweep.done;
        let complete = sweep.complete();
        let in_flight: usize = sweep
            .in_flight
            .values()
            .map(|s| s.indices.iter().filter(|&&i| sweep.slots[i].is_none()).count())
            .sum();
        let queued: usize = sweep.queue.iter().map(Vec::len).sum();
        let elapsed_s =
            sweep.finished_in_s.unwrap_or_else(|| sweep.submitted.elapsed().as_secs_f64());
        let eta_s = eta_seconds(done as u64, total as u64, elapsed_s, complete);
        Ok(Message::StatusReport {
            sweep_id,
            total: total as u64,
            done: done as u64,
            in_flight: in_flight as u64,
            queued: queued as u64,
            requeued: sweep.requeued as u64,
            workers: self.workers.len() as u64,
            complete,
            elapsed_s,
            eta_s,
            requeued_slices: sweep.requeued_slices,
            timed_out_slices: sweep.timed_out_slices,
            skipped_unknown: self.skipped_unknown,
        })
    }

    /// Per-worker telemetry rows accompanying a status report (protocol
    /// ≥ 2). Throughput is computed here, at report time, from the job
    /// count the worker last snapshotted and its connected lifetime.
    fn detail_message(&self, sweep_id: u64) -> Message {
        let mut rows: Vec<WorkerRow> = self
            .workers
            .iter()
            .map(|(&worker_id, stats)| WorkerRow {
                worker_id,
                name: stats.name.clone(),
                jobs_done: stats.jobs_done,
                slices_done: stats.slices_done,
                jobs_per_s: stats.jobs_done as f64
                    / stats.first_seen.elapsed().as_secs_f64().max(1e-9),
                slice_p50_ms: stats.slice_p50_ms,
                slice_p90_ms: stats.slice_p90_ms,
                skipped_unknown: stats.skipped_unknown,
            })
            .collect();
        rows.sort_by_key(|r| r.worker_id);
        Message::StatusDetail { sweep_id, rows }
    }

    fn fetch_message(&self, sweep_id: u64) -> Result<Message, String> {
        let sweep =
            self.sweeps.get(&sweep_id).ok_or_else(|| format!("unknown sweep {sweep_id}"))?;
        if !sweep.complete() {
            return Ok(Message::FetchReport {
                sweep_id,
                complete: false,
                spec_json: String::new(),
                rows_json: String::new(),
            });
        }
        // Rows in global (report) order, as one canonical JSON array.
        let rows = Value::Arr(
            sweep.slots.iter().map(|s| s.as_ref().expect("complete sweep").to_value()).collect(),
        );
        Ok(Message::FetchReport {
            sweep_id,
            complete: true,
            spec_json: sweep.spec_json.clone(),
            rows_json: rows.render(),
        })
    }
}

/// A running farm coordinator: the TCP service plus the reaper thread.
///
/// Dropping (or [`Coordinator::shutdown`]) stops the accept loop and the
/// reaper; workers see `Shutdown` on their next `WorkRequest` and drain
/// politely.
#[derive(Debug)]
pub struct Coordinator {
    handle: ServerHandle,
    reaper: Option<JoinHandle<()>>,
}

fn lock(state: &Mutex<FarmState>) -> MutexGuard<'_, FarmState> {
    state.lock().expect("farm state lock never poisoned")
}

impl Coordinator {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, cfg: FarmConfig) -> std::io::Result<Self> {
        let reaper_tick = cfg.reaper_tick;
        let state = Arc::new(Mutex::new(FarmState::new(cfg)));
        let session_state = Arc::clone(&state);
        let handle = serve(addr, move |stream, _peer, stop| {
            session(&session_state, stream, stop);
        })?;
        let stop = handle.stop_flag();
        let reaper = std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(reaper_tick);
                lock(&state).reap();
            }
        });
        Ok(Self { handle, reaper: Some(reaper) })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.handle.local_addr()
    }

    /// Signals shutdown without waiting.
    pub fn stop(&self) {
        self.handle.stop();
    }

    /// Stops and joins the service threads.
    pub fn shutdown(mut self) {
        self.handle.stop();
        if let Some(t) = self.reaper.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.handle.stop();
        if let Some(t) = self.reaper.take() {
            let _ = t.join();
        }
    }
}

/// One connection's session loop: pure request/response, with the
/// fire-and-forget worker messages (`JobDone`, `SliceDone`, `Heartbeat`)
/// folded in between. The state lock is never held across a send.
fn session(state: &Arc<Mutex<FarmState>>, mut stream: FramedStream, stop: &AtomicBool) {
    let Ok(proto) = stream.handshake() else {
        return;
    };
    let mut worker_id: Option<u64> = None;
    let mut skipped_folded = 0u64;
    // Loop until the peer vanishes (or speaks garbage) or says Shutdown.
    'session: while let Ok(msg) = stream.recv() {
        // Fold this stream's unknown-kind skips into the farm-wide count
        // (delta since last fold, so the total is exact across sessions).
        let skipped = stream.skipped_unknown();
        if skipped > skipped_folded {
            lock(state).skipped_unknown += skipped - skipped_folded;
            skipped_folded = skipped;
        }
        let mut replies: Vec<Message> = Vec::new();
        match msg {
            Message::SubmitSweep { spec_json } => {
                replies.push(match lock(state).submit(&spec_json) {
                    Ok((sweep_id, total_jobs)) => Message::SweepQueued { sweep_id, total_jobs },
                    Err(detail) => Message::FarmError { detail },
                })
            }
            Message::StatusRequest { sweep_id } => {
                let st = lock(state);
                match st.status_message(sweep_id) {
                    Ok(report) => {
                        replies.push(report);
                        // Per-worker rows only when the negotiated revision
                        // carries them — a protocol-1 client isn't waiting
                        // for a second frame.
                        if proto >= 2 {
                            replies.push(st.detail_message(sweep_id));
                        }
                    }
                    Err(detail) => replies.push(Message::FarmError { detail }),
                }
            }
            Message::FetchRequest { sweep_id } => replies.push(
                lock(state)
                    .fetch_message(sweep_id)
                    .unwrap_or_else(|detail| Message::FarmError { detail }),
            ),
            Message::WorkerHello { name, threads } => {
                let id = lock(state).register_worker(&name, threads);
                worker_id = Some(id);
                replies.push(Message::WorkerWelcome { worker_id: id });
            }
            Message::WorkRequest { worker_id } => {
                if stop.load(Ordering::SeqCst) {
                    replies.push(Message::Shutdown);
                } else {
                    let mut st = lock(state);
                    let retry_ms = st.cfg.retry_ms;
                    replies.push(st.grant(worker_id).unwrap_or(Message::NoWork { retry_ms }));
                }
            }
            Message::JobDone { sweep_id, slice_id, index, row_json } => {
                lock(state).fold(sweep_id, slice_id, index, &row_json);
            }
            Message::SliceDone { sweep_id, slice_id } => {
                lock(state).slice_done(sweep_id, slice_id);
            }
            Message::Heartbeat { worker_id } => {
                lock(state).heartbeat(worker_id);
            }
            msg @ Message::WorkerMetrics { .. } => {
                lock(state).worker_metrics(&msg);
            }
            Message::Shutdown => break,
            other => replies
                .push(Message::FarmError { detail: format!("unexpected {} here", other.name()) }),
        }
        for reply in replies {
            if stream.send(&reply).is_err() {
                break 'session;
            }
        }
    }
    if let Some(id) = worker_id {
        lock(state).worker_gone(id);
    }
}

/// Worker tuning knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Local pool threads; 0 means every available core.
    pub threads: usize,
    /// Name reported to the coordinator (for its event log).
    pub name: String,
    /// Die abruptly — drop the connection mid-slice, no goodbye — after
    /// running this many jobs. A deterministic stand-in for a crashed
    /// host, used by the fault-injection tests and `--max-jobs`.
    pub max_jobs: Option<usize>,
    /// Heartbeat interval; keep well under the coordinator's
    /// `worker_timeout`.
    pub heartbeat: Duration,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            name: "worker".into(),
            max_jobs: None,
            heartbeat: Duration::from_millis(500),
        }
    }
}

/// What a worker did before it stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Identity the coordinator assigned.
    pub worker_id: u64,
    /// Jobs fully executed and streamed back.
    pub jobs_run: usize,
    /// Slices drained to completion.
    pub slices_run: usize,
    /// `true` when the coordinator said `Shutdown`; `false` when the
    /// worker hit its `max_jobs` budget and died on purpose.
    pub clean_shutdown: bool,
}

fn wire_err(context: &str, e: impl std::fmt::Display) -> String {
    format!("{context}: {e}")
}

/// Worker-side telemetry shared between the slice loop and the heartbeat
/// thread. Always on: it times whole slices (never individual jobs), so
/// the cost is one `Instant` pair per slice — nothing the byte-identity
/// contract can see, since rows carry no wall times.
#[derive(Debug, Default)]
struct WorkerTelemetry {
    jobs: AtomicU64,
    slices: AtomicU64,
    skipped_unknown: AtomicU64,
    slice_ms: Mutex<Histogram>,
}

impl WorkerTelemetry {
    /// The current snapshot as a wire message.
    fn snapshot(&self, worker_id: u64) -> Message {
        let hist = self.slice_ms.lock().expect("telemetry hist lock never poisoned");
        Message::WorkerMetrics {
            worker_id,
            jobs_done: self.jobs.load(Ordering::SeqCst),
            slices_done: self.slices.load(Ordering::SeqCst),
            slice_p50_ms: hist.p50(),
            slice_p90_ms: hist.p90(),
            skipped_unknown: self.skipped_unknown.load(Ordering::SeqCst),
        }
    }
}

/// Runs a worker against the coordinator at `addr` until the coordinator
/// says `Shutdown` (or the `max_jobs` budget trips). Pulls one slice at a
/// time, executes it on the local [`SweepRunner`] pool, and streams every
/// row back the moment it finishes.
///
/// # Errors
///
/// Connection and protocol failures, described.
pub fn run_worker(addr: &str, opts: &WorkerOptions) -> Result<WorkerSummary, String> {
    let sock = TcpStream::connect(addr).map_err(|e| wire_err(addr, e))?;
    let mut reader = FramedStream::new(sock);
    let proto = reader.handshake().map_err(|e| wire_err("handshake", e))?;
    // Split the connection: this thread reads grants; pool threads, the
    // heartbeat thread and the request path share the write half.
    let writer = Arc::new(Mutex::new(reader.try_clone().map_err(|e| wire_err("clone stream", e))?));
    let send = |msg: &Message| -> Result<(), String> {
        writer
            .lock()
            .expect("worker writer lock never poisoned")
            .send(msg)
            .map_err(|e| wire_err("send", e))
    };
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        opts.threads
    };
    send(&Message::WorkerHello { name: opts.name.clone(), threads: threads as u32 })?;
    let worker_id = match reader.recv().map_err(|e| wire_err("recv", e))? {
        Message::WorkerWelcome { worker_id } => worker_id,
        Message::FarmError { detail } => return Err(detail),
        other => return Err(format!("expected WorkerWelcome, got {}", other.name())),
    };

    let telemetry = Arc::new(WorkerTelemetry::default());
    let hb_stop = Arc::new(AtomicBool::new(false));
    let hb_thread = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&hb_stop);
        let telemetry = Arc::clone(&telemetry);
        let interval = opts.heartbeat;
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(interval);
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let mut w = writer.lock().expect("worker writer lock never poisoned");
                if w.send(&Message::Heartbeat { worker_id }).is_err() {
                    break;
                }
                // Piggyback the telemetry snapshot on every heartbeat when
                // the coordinator speaks protocol 2 (it doubles as a sign
                // of life for slices whose jobs outlast the timeout).
                if proto >= 2 && w.send(&telemetry.snapshot(worker_id)).is_err() {
                    break;
                }
            }
        })
    };

    let runner = SweepRunner::new().progress(false).threads(threads);
    // Parsed specs cached per sweep so a thousand slices don't re-parse.
    let mut specs: HashMap<u64, Arc<SweepSpec>> = HashMap::new();
    let jobs_run = AtomicUsize::new(0);
    let mut slices_run = 0usize;

    let outcome = loop {
        if let Err(e) = send(&Message::WorkRequest { worker_id }) {
            break Err(e);
        }
        let received = reader.recv();
        telemetry.skipped_unknown.store(reader.skipped_unknown(), Ordering::SeqCst);
        match received {
            Ok(Message::WorkSlice { sweep_id, slice_id, spec_json, indices }) => {
                let spec = match specs.get(&sweep_id) {
                    Some(spec) => Arc::clone(spec),
                    None => match SweepSpec::parse(&spec_json) {
                        Ok(parsed) => {
                            let spec = Arc::new(parsed);
                            specs.insert(sweep_id, Arc::clone(&spec));
                            spec
                        }
                        Err(e) => break Err(format!("bad spec for sweep {sweep_id}: {e}")),
                    },
                };
                let matrix = SweepRunner::jobs(&spec);
                let entries: Vec<(usize, JobSpec)> = indices
                    .iter()
                    .filter_map(|&gi| matrix.get(gi as usize).map(|&job| (gi as usize, job)))
                    .collect();
                let cancel = Arc::new(AtomicBool::new(false));
                let source = JobSource::new(entries).with_cancel(Arc::clone(&cancel));
                let send_error: Mutex<Option<String>> = Mutex::new(None);
                let slice_start = Instant::now();
                runner.execute_source(&spec, &source, &|global, row| {
                    let msg = Message::JobDone {
                        sweep_id,
                        slice_id,
                        index: global as u64,
                        row_json: row.to_value().render(),
                    };
                    if let Err(e) = send(&msg) {
                        *send_error.lock().expect("send error slot") = Some(e);
                        cancel.store(true, Ordering::SeqCst);
                        return;
                    }
                    telemetry.jobs.fetch_add(1, Ordering::SeqCst);
                    let n = jobs_run.fetch_add(1, Ordering::SeqCst) + 1;
                    if opts.max_jobs.is_some_and(|budget| n >= budget) {
                        cancel.store(true, Ordering::SeqCst);
                    }
                });
                if let Some(e) = send_error.lock().expect("send error slot").take() {
                    break Err(e);
                }
                if cancel.load(Ordering::SeqCst) {
                    // Budget tripped: die like a crashed host — no
                    // SliceDone, no goodbye, just a dropped connection.
                    break Ok(WorkerSummary {
                        worker_id,
                        jobs_run: jobs_run.load(Ordering::SeqCst),
                        slices_run,
                        clean_shutdown: false,
                    });
                }
                slices_run += 1;
                telemetry
                    .slice_ms
                    .lock()
                    .expect("telemetry hist lock never poisoned")
                    .record(slice_start.elapsed().as_secs_f64() * 1e3);
                telemetry.slices.fetch_add(1, Ordering::SeqCst);
                if let Err(e) = send(&Message::SliceDone { sweep_id, slice_id }) {
                    break Err(e);
                }
                // Fresh numbers right behind the completion, so status
                // output reflects finished slices without a heartbeat wait.
                if proto >= 2 {
                    if let Err(e) = send(&telemetry.snapshot(worker_id)) {
                        break Err(e);
                    }
                }
            }
            Ok(Message::NoWork { retry_ms }) => {
                std::thread::sleep(Duration::from_millis(u64::from(retry_ms.min(2000))));
            }
            Ok(Message::Shutdown) => {
                break Ok(WorkerSummary {
                    worker_id,
                    jobs_run: jobs_run.load(Ordering::SeqCst),
                    slices_run,
                    clean_shutdown: true,
                });
            }
            Ok(Message::FarmError { detail }) => break Err(detail),
            Ok(other) => break Err(format!("unexpected {} from coordinator", other.name())),
            Err(e) => break Err(wire_err("coordinator connection lost", e)),
        }
    };
    hb_stop.store(true, Ordering::SeqCst);
    let _ = hb_thread.join(); // ≤ one heartbeat interval
    outcome
    // The socket (reader + cloned writer) closes here; a coordinator
    // watching this worker sees the drop immediately.
}

/// Live progress of a submitted sweep, as reported by [`status`].
#[derive(Debug, Clone, PartialEq)]
pub struct FarmStatus {
    /// Sweep queried.
    pub sweep_id: u64,
    /// Total jobs in the matrix.
    pub total: u64,
    /// Jobs folded into their slots.
    pub done: u64,
    /// Jobs currently out with workers (unfilled only).
    pub in_flight: u64,
    /// Jobs still queued, never (or re-)granted.
    pub queued: u64,
    /// Jobs granted more than once after a death or timeout.
    pub requeued: u64,
    /// Workers currently connected.
    pub workers: u64,
    /// Every slot filled.
    pub complete: bool,
    /// Seconds since submission (frozen at completion).
    pub elapsed_s: f64,
    /// Linear completion estimate; negative while unknown, 0 when done.
    pub eta_s: f64,
    /// Slices re-queued after a worker death or timeout (slice-granular).
    pub requeued_slices: u64,
    /// Slices re-queued specifically by the heartbeat reaper.
    pub timed_out_slices: u64,
    /// Unknown-kind frames the coordinator skipped across its sessions.
    pub skipped_unknown: u64,
    /// Per-worker live telemetry (empty against a protocol-1 coordinator).
    pub worker_rows: Vec<WorkerRow>,
}

fn connect(addr: &str) -> Result<FramedStream, String> {
    let sock = TcpStream::connect(addr).map_err(|e| wire_err(addr, e))?;
    let mut stream = FramedStream::new(sock);
    stream.handshake().map_err(|e| wire_err("handshake", e))?;
    Ok(stream)
}

fn request(addr: &str, msg: &Message) -> Result<Message, String> {
    let mut stream = connect(addr)?;
    stream.send(msg).map_err(|e| wire_err("send", e))?;
    match stream.recv().map_err(|e| wire_err("recv", e))? {
        Message::FarmError { detail } => Err(detail),
        reply => Ok(reply),
    }
}

/// Submits a sweep to the coordinator at `addr`; returns
/// `(sweep id, total jobs)`.
///
/// # Errors
///
/// Connection failures and spec validation errors, described.
pub fn submit(addr: &str, spec: &SweepSpec) -> Result<(u64, u64), String> {
    match request(addr, &Message::SubmitSweep { spec_json: spec.render() })? {
        Message::SweepQueued { sweep_id, total_jobs } => Ok((sweep_id, total_jobs)),
        other => Err(format!("expected SweepQueued, got {}", other.name())),
    }
}

/// Queries a sweep's progress. Against a protocol-2 coordinator the
/// report arrives with per-worker telemetry rows; against protocol 1 the
/// rows are simply empty.
///
/// # Errors
///
/// Connection failures and unknown sweep ids, described.
pub fn status(addr: &str, sweep_id: u64) -> Result<FarmStatus, String> {
    let mut stream = connect(addr)?;
    let proto = stream.peer_version().unwrap_or(1).min(PROTOCOL_VERSION);
    stream.send(&Message::StatusRequest { sweep_id }).map_err(|e| wire_err("send", e))?;
    match stream.recv().map_err(|e| wire_err("recv", e))? {
        Message::FarmError { detail } => Err(detail),
        Message::StatusReport {
            sweep_id,
            total,
            done,
            in_flight,
            queued,
            requeued,
            workers,
            complete,
            elapsed_s,
            eta_s,
            requeued_slices,
            timed_out_slices,
            skipped_unknown,
        } => {
            let worker_rows = if proto >= 2 {
                match stream.recv().map_err(|e| wire_err("recv detail", e))? {
                    Message::StatusDetail { rows, .. } => rows,
                    other => {
                        return Err(format!("expected StatusDetail, got {}", other.name()));
                    }
                }
            } else {
                Vec::new()
            };
            Ok(FarmStatus {
                sweep_id,
                total,
                done,
                in_flight,
                queued,
                requeued,
                workers,
                complete,
                elapsed_s,
                eta_s,
                requeued_slices,
                timed_out_slices,
                skipped_unknown,
                worker_rows,
            })
        }
        other => Err(format!("expected StatusReport, got {}", other.name())),
    }
}

/// Fetches a finished sweep and reassembles the [`SweepReport`] — the
/// byte-identical twin of the single-process run. `Ok(None)` while the
/// sweep is still running.
///
/// # Errors
///
/// Connection failures, unknown sweep ids, and malformed payloads,
/// described.
pub fn fetch(addr: &str, sweep_id: u64) -> Result<Option<SweepReport>, String> {
    match request(addr, &Message::FetchRequest { sweep_id })? {
        Message::FetchReport { complete: false, .. } => Ok(None),
        Message::FetchReport { spec_json, rows_json, .. } => {
            let spec = SweepSpec::parse(&spec_json)?;
            let rows = Value::parse(&rows_json)?;
            let jobs = rows
                .as_array()
                .ok_or("rows payload must be a JSON array")?
                .iter()
                .map(JobResult::from_value)
                .collect::<Result<Vec<_>, _>>()?;
            if jobs.len() != spec.num_jobs() {
                return Err(format!(
                    "fetched {} rows for a {}-job matrix",
                    jobs.len(),
                    spec.num_jobs()
                ));
            }
            Ok(Some(SweepReport::assemble(&spec, jobs)))
        }
        other => Err(format!("expected FetchReport, got {}", other.name())),
    }
}

/// Polls [`status`] every `poll` until the sweep completes, then
/// [`fetch`]es the report. With `progress` on, writes a live counter line
/// to stderr.
///
/// # Errors
///
/// Whatever [`status`] or [`fetch`] report.
pub fn wait_and_fetch(
    addr: &str,
    sweep_id: u64,
    poll: Duration,
    progress: bool,
) -> Result<SweepReport, String> {
    loop {
        let s = status(addr, sweep_id)?;
        if progress {
            let eta = if s.eta_s < 0.0 { "?".into() } else { format!("{:.0}s", s.eta_s) };
            eprint!(
                "\rfarm sweep {}: {}/{} done, {} in flight, {} queued, {} workers, eta {eta}   ",
                s.sweep_id, s.done, s.total, s.in_flight, s.queued, s.workers
            );
            if s.complete {
                eprintln!();
            }
        }
        if s.complete {
            return fetch(addr, sweep_id)?
                .ok_or_else(|| "sweep reported complete but fetch says running".to_string());
        }
        std::thread::sleep(poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Method, ScenarioSpec};

    fn tiny_spec() -> SweepSpec {
        SweepSpec::new("farm_unit")
            .seeds(1, 2)
            .method(Method::ComDml)
            .method(Method::FedAvg)
            .scenario(ScenarioSpec::new("tiny").agents(5).rounds(3))
    }

    #[test]
    fn submit_slices_the_matrix() {
        let mut state = FarmState::new(FarmConfig { slice_size: 3, ..FarmConfig::default() });
        let (id, total) = state.submit(&tiny_spec().render()).unwrap();
        assert_eq!(total, 4);
        let sweep = &state.sweeps[&id];
        assert_eq!(sweep.queue.len(), 2); // 3 + 1
        assert_eq!(sweep.queue[0], vec![0, 1, 2]);
        assert_eq!(sweep.queue[1], vec![3]);
    }

    #[test]
    fn submit_rejects_garbage() {
        let mut state = FarmState::new(FarmConfig::default());
        assert!(state.submit("not json").is_err());
    }

    #[test]
    fn fold_is_idempotent_and_requeue_skips_filled_slots() {
        let mut state =
            FarmState::new(FarmConfig { slice_size: 4, quiet: true, ..FarmConfig::default() });
        let (id, _) = state.submit(&tiny_spec().render()).unwrap();
        let w = state.register_worker("w", 1);
        let Some(Message::WorkSlice { slice_id, spec_json, indices, .. }) = state.grant(w) else {
            panic!("expected a slice");
        };
        assert_eq!(indices, vec![0, 1, 2, 3]);
        let spec = SweepSpec::parse(&spec_json).unwrap();
        let job = SweepRunner::jobs(&spec)[0];
        let row = crate::run_job(&spec.scenarios[job.scenario], job.method, job.seed);
        let row_json = row.to_value().render();
        state.fold(id, slice_id, 0, &row_json);
        state.fold(id, slice_id, 0, &row_json); // duplicate: ignored
        assert_eq!(state.sweeps[&id].done, 1);
        // Worker dies: only the three unfilled indices come back.
        state.worker_gone(w);
        let sweep = &state.sweeps[&id];
        assert_eq!(sweep.queue.front().unwrap(), &vec![1, 2, 3]);
        assert_eq!(sweep.requeued, 3);
        assert_eq!(sweep.done, 1);
    }

    #[test]
    fn status_and_fetch_track_completion() {
        let mut state =
            FarmState::new(FarmConfig { slice_size: 64, quiet: true, ..FarmConfig::default() });
        let spec = tiny_spec();
        let (id, _) = state.submit(&spec.render()).unwrap();
        let w = state.register_worker("w", 1);
        let Some(Message::WorkSlice { slice_id, .. }) = state.grant(w) else {
            panic!("expected a slice");
        };
        let jobs = SweepRunner::jobs(&spec);
        for (gi, job) in jobs.iter().enumerate() {
            let row = crate::run_job(&spec.scenarios[job.scenario], job.method, job.seed);
            state.fold(id, slice_id, gi as u64, &row.to_value().render());
        }
        let Message::StatusReport { done, complete, eta_s, .. } = state.status_message(id).unwrap()
        else {
            panic!("expected status");
        };
        assert_eq!(done, 4);
        assert!(complete);
        assert_eq!(eta_s, 0.0);
        let Message::FetchReport { complete: true, spec_json, rows_json, .. } =
            state.fetch_message(id).unwrap()
        else {
            panic!("expected a complete fetch");
        };
        // The fetched payload reassembles to exactly the local report.
        let fetched_spec = SweepSpec::parse(&spec_json).unwrap();
        let rows = Value::parse(&rows_json).unwrap();
        let fetched_jobs: Vec<JobResult> =
            rows.as_array().unwrap().iter().map(|v| JobResult::from_value(v).unwrap()).collect();
        let fetched = SweepReport::assemble(&fetched_spec, fetched_jobs);
        let local = SweepRunner::new().progress(false).run(&spec).unwrap();
        assert_eq!(fetched.to_value().render(), local.to_value().render());
    }
}
