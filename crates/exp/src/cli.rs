//! One argument-parsing surface for every experiment binary.
//!
//! `exp_sweep`, `sweep_merge`, `paper_tables` and `exp_farm` all speak the
//! same flag dialect, defined once here: canonical names with legacy
//! aliases (`--workers` was born `--threads`, `--out-dir` was `--out`),
//! `--flag value` and `--flag=value` forms, positional arguments, and a
//! generated `--help`. The shared sweep-facing conveniences live on
//! [`ParsedArgs`] — [`ParsedArgs::runner`] builds the configured
//! [`SweepRunner`], [`ParsedArgs::out_dir`] resolves the artifact
//! directory — and [`resolve_spec`] turns a `spec.json` path or `@preset`
//! token into a validated [`SweepSpec`] the same way for every binary.

use std::collections::HashMap;
use std::path::PathBuf;

use crate::{presets, SweepRunner, SweepSpec};

/// One flag a binary accepts.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// Canonical name (no leading `--`); the key [`ParsedArgs`] stores
    /// under whichever spelling arrived.
    pub name: &'static str,
    /// Accepted legacy spellings.
    pub aliases: &'static [&'static str],
    /// Whether the flag consumes a value (`--flag V` or `--flag=V`).
    pub takes_value: bool,
    /// One-line description for `--help`.
    pub help: &'static str,
}

/// `--workers N` (alias `--threads`): worker pool size.
pub const WORKERS: FlagSpec = FlagSpec {
    name: "workers",
    aliases: &["threads"],
    takes_value: true,
    help: "worker pool threads (default: all cores)",
};

/// `--out-dir DIR` (alias `--out`): artifact directory.
pub const OUT_DIR: FlagSpec = FlagSpec {
    name: "out-dir",
    aliases: &["out"],
    takes_value: true,
    help: "artifact directory (default: target/experiments)",
};

/// `--seeds N`: override the spec's seed count.
pub const SEEDS: FlagSpec = FlagSpec {
    name: "seeds",
    aliases: &[],
    takes_value: true,
    help: "seeds per cell (preset default: 5)",
};

/// `--quiet`: suppress progress output.
pub const QUIET: FlagSpec =
    FlagSpec { name: "quiet", aliases: &[], takes_value: false, help: "suppress progress output" };

/// `--addr HOST:PORT`: farm coordinator endpoint.
pub const ADDR: FlagSpec = FlagSpec {
    name: "addr",
    aliases: &[],
    takes_value: true,
    help: "coordinator address (default: 127.0.0.1:7700)",
};

/// `--list-presets`: print the `@preset` catalog and exit.
pub const LIST_PRESETS: FlagSpec = FlagSpec {
    name: "list-presets",
    aliases: &[],
    takes_value: false,
    help: "list the @preset names and exit",
};

/// The `--list-presets` output: one `@name  description` line per preset.
pub fn preset_listing() -> String {
    let mut out = String::new();
    for (name, desc) in presets::CATALOG {
        out.push_str(&format!("@{name:<13} {desc}\n"));
    }
    out
}

/// Renders the `--help` text: synopsis plus one line per flag.
pub fn usage(prog: &str, synopsis: &str, flags: &[FlagSpec]) -> String {
    let mut out = format!("usage: {prog} {synopsis}\n");
    for f in flags {
        let mut spelling = format!("--{}", f.name);
        for a in f.aliases {
            spelling.push_str(&format!(" | --{a}"));
        }
        if f.takes_value {
            spelling.push_str(" VALUE");
        }
        out.push_str(&format!("  {spelling:<28} {}\n", f.help));
    }
    out
}

/// The parsed command line: canonical-keyed flag values plus positionals.
#[derive(Debug, Default)]
pub struct ParsedArgs {
    values: HashMap<&'static str, String>,
    switches: Vec<&'static str>,
    positionals: Vec<String>,
}

/// Parses `args` against `flags`. `--help`/`-h` short-circuits with the
/// usage text as the error, so binaries print it through their normal
/// error path.
///
/// # Errors
///
/// Unknown flags, missing values, and `--help`, each with the usage
/// appended.
pub fn parse<I>(
    prog: &str,
    synopsis: &str,
    flags: &[FlagSpec],
    args: I,
) -> Result<ParsedArgs, String>
where
    I: IntoIterator<Item = String>,
{
    let find = |token: &str| flags.iter().find(|f| f.name == token || f.aliases.contains(&token));
    let mut parsed = ParsedArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--help" || arg == "-h" {
            return Err(usage(prog, synopsis, flags));
        }
        let Some(rest) = arg.strip_prefix("--") else {
            parsed.positionals.push(arg);
            continue;
        };
        let (name, inline) = match rest.split_once('=') {
            Some((n, v)) => (n, Some(v.to_string())),
            None => (rest, None),
        };
        let Some(flag) = find(name) else {
            return Err(format!("unknown flag --{name}\n{}", usage(prog, synopsis, flags)));
        };
        if flag.takes_value {
            let value = match inline {
                Some(v) => v,
                None => it.next().ok_or_else(|| format!("--{name} needs a value"))?,
            };
            parsed.values.insert(flag.name, value);
        } else {
            if inline.is_some() {
                return Err(format!("--{name} takes no value"));
            }
            parsed.switches.push(flag.name);
        }
    }
    Ok(parsed)
}

/// [`parse`] over the process arguments.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_env(prog: &str, synopsis: &str, flags: &[FlagSpec]) -> Result<ParsedArgs, String> {
    parse(prog, synopsis, flags, std::env::args().skip(1))
}

impl ParsedArgs {
    /// Whether `name` (canonical) was given, as switch or value.
    pub fn has(&self, name: &str) -> bool {
        self.switches.contains(&name) || self.values.contains_key(name)
    }

    /// The raw value of `name`, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// The value of `name` parsed as `T`.
    ///
    /// # Errors
    ///
    /// Describes the malformed value.
    pub fn parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        self.value(name)
            .map(|v| v.parse().map_err(|e| format!("bad --{name} {v:?}: {e}")))
            .transpose()
    }

    /// Positional (non-flag) arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Exactly one positional argument, or an error built from `what`.
    ///
    /// # Errors
    ///
    /// Zero or several positionals.
    pub fn one_positional(&self, what: &str) -> Result<&str, String> {
        match self.positionals.as_slice() {
            [one] => Ok(one),
            [] => Err(format!("missing {what}")),
            more => Err(format!("expected one {what}, got {}", more.len())),
        }
    }

    /// `--out-dir` (default `target/experiments`).
    pub fn out_dir(&self) -> PathBuf {
        self.value("out-dir").map(PathBuf::from).unwrap_or_else(|| "target/experiments".into())
    }

    /// `--workers`, parsed.
    ///
    /// # Errors
    ///
    /// Malformed value.
    pub fn workers(&self) -> Result<Option<usize>, String> {
        self.parsed("workers")
    }

    /// `--seeds`, parsed and checked positive.
    ///
    /// # Errors
    ///
    /// Malformed or zero value.
    pub fn seeds(&self) -> Result<Option<usize>, String> {
        match self.parsed::<usize>("seeds")? {
            Some(0) => Err("--seeds must be positive".into()),
            other => Ok(other),
        }
    }

    /// A [`SweepRunner`] configured from `--workers` and `--quiet`.
    ///
    /// # Errors
    ///
    /// Malformed `--workers`.
    pub fn runner(&self) -> Result<SweepRunner, String> {
        let mut runner = SweepRunner::new().progress(!self.has("quiet"));
        if let Some(n) = self.workers()? {
            runner = runner.threads(n);
        }
        Ok(runner)
    }
}

/// Resolves a spec token — `@preset` or a `spec.json` path — applying the
/// `--seeds` override when given. The one spec-loading path every binary
/// shares.
///
/// # Errors
///
/// Unknown presets, unreadable files, and parse failures, described.
pub fn resolve_spec(token: &str, seeds: Option<usize>) -> Result<SweepSpec, String> {
    let mut spec = if let Some(preset) = token.strip_prefix('@') {
        presets::by_name(preset, seeds.unwrap_or(5))?
    } else {
        let text = std::fs::read_to_string(token).map_err(|e| format!("read {token}: {e}"))?;
        SweepSpec::parse(&text).map_err(|e| format!("parse {token}: {e}"))?
    };
    if let Some(n) = seeds {
        spec.seeds.count = n;
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn canonical_and_alias_spellings_coincide() {
        for spelling in ["--workers", "--threads"] {
            let p = parse("t", "", &[WORKERS], argv(&[spelling, "8"])).unwrap();
            assert_eq!(p.workers().unwrap(), Some(8));
        }
        for spelling in ["--out-dir", "--out"] {
            let p = parse("t", "", &[OUT_DIR], argv(&[spelling, "x"])).unwrap();
            assert_eq!(p.out_dir(), PathBuf::from("x"));
        }
    }

    #[test]
    fn equals_form_switches_and_positionals() {
        let p = parse(
            "t",
            "",
            &[WORKERS, QUIET, SEEDS],
            argv(&["a.json", "--workers=4", "--quiet", "b.json", "--seeds", "3"]),
        )
        .unwrap();
        assert_eq!(p.workers().unwrap(), Some(4));
        assert!(p.has("quiet"));
        assert_eq!(p.seeds().unwrap(), Some(3));
        assert_eq!(p.positionals(), ["a.json", "b.json"]);
        assert!(p.one_positional("spec").is_err());
    }

    #[test]
    fn errors_are_described() {
        assert!(parse("t", "", &[WORKERS], argv(&["--nope"])).unwrap_err().contains("--nope"));
        assert!(parse("t", "", &[WORKERS], argv(&["--workers"]))
            .unwrap_err()
            .contains("needs a value"));
        let p = parse("t", "", &[WORKERS], argv(&["--workers", "many"])).unwrap();
        assert!(p.workers().unwrap_err().contains("bad --workers"));
        let p = parse("t", "", &[SEEDS], argv(&["--seeds", "0"])).unwrap();
        assert!(p.seeds().unwrap_err().contains("positive"));
        assert!(parse("t", "synopsis", &[WORKERS], argv(&["--help"]))
            .unwrap_err()
            .starts_with("usage: t synopsis"));
    }

    #[test]
    fn preset_listing_covers_the_catalog() {
        let listing = preset_listing();
        for (name, _) in presets::CATALOG {
            assert!(listing.contains(&format!("@{name}")), "listing missing @{name}");
            assert!(resolve_spec(&format!("@{name}"), Some(1)).is_ok());
        }
    }

    #[test]
    fn resolve_spec_handles_presets_and_seed_overrides() {
        let spec = resolve_spec("@smoke", None).unwrap();
        let overridden = resolve_spec("@smoke", Some(2)).unwrap();
        assert_eq!(overridden.name, spec.name);
        assert_eq!(overridden.seeds.count, 2);
        assert!(resolve_spec("@no_such_preset", None).is_err());
        assert!(resolve_spec("no/such/file.json", None).is_err());
    }
}
