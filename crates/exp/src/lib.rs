//! `comdml-exp` — declarative scenario specs and the parallel sweep engine.
//!
//! The paper's headline results (Tables II/III: time-to-accuracy against
//! FedAvg, AllReduce-DML, BrainTorrent and Gossip Learning under profile
//! churn, participation sampling, sparse topologies and dropouts) are grids
//! of scenario × method × seed runs. This crate makes those grids a
//! first-class object:
//!
//! * [`ScenarioSpec`] / [`SweepSpec`] — a declarative model naming one
//!   experimental condition (world, topology, membership churn,
//!   aggregation, sampling, budget) and a whole grid, with builder-style
//!   construction, named presets ([`presets`]) for the paper's tables, and
//!   a dependency-free JSON file format that parse/render round-trips.
//! * [`SweepRunner`] — expands the grid into a job matrix and executes it
//!   on a `std::thread` worker pool stealing from a shared queue, with
//!   deterministic per-job seeding: the assembled report is byte-identical
//!   whatever the worker count. Jobs are **round-driven**: each simulated
//!   round's realized efficiency/participation/disruptions advance a
//!   [`comdml_core::LearningModel`], and jobs stop early the round the
//!   realized accuracy trajectory reaches the scenario's target.
//! * [`SweepReport`] — per-cell mean/p50/p95 time-to-target, realized
//!   accuracy and reached-target counts, speedup-vs-FedAvg, emitted as
//!   `BENCH_sweep_*.json` + CSV and paper-style stdout tables.
//!
//! Two binaries front the engine: `exp_sweep <spec.json>` runs any spec
//! file (or `@table2`-style preset), and `paper_tables` regenerates the
//! Table II/III grids from one command.
//!
//! # Example
//!
//! ```
//! use comdml_exp::{Method, ScenarioSpec, SweepRunner, SweepSpec};
//!
//! let spec = SweepSpec::new("doc")
//!     .seeds(1, 2)
//!     .method(Method::ComDml)
//!     .method(Method::FedAvg)
//!     .scenario(ScenarioSpec::new("tiny").agents(6).rounds(3));
//! let report = SweepRunner::new().progress(false).run(&spec).unwrap();
//! assert_eq!(report.jobs.len(), 4);
//! assert!(report.cells.iter().all(|c| c.mean_time_s > 0.0));
//! ```

pub mod presets;
mod report;
mod runner;
mod spec;

pub use report::{SweepCell, SweepReport};
pub use runner::{run_job, JobResult, JobSpec, SweepRunner};
pub use spec::{Method, MethodParams, ScenarioSpec, SeedRange, SweepSpec};
