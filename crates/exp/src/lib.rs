//! `comdml-exp` — declarative scenario specs and the parallel sweep engine.
//!
//! The paper's headline results (Tables II/III: time-to-accuracy against
//! FedAvg, AllReduce-DML, BrainTorrent and Gossip Learning under profile
//! churn, participation sampling, sparse topologies and dropouts) are grids
//! of scenario × method × seed runs. This crate makes those grids a
//! first-class object:
//!
//! * [`ScenarioSpec`] / [`SweepSpec`] — a declarative model naming one
//!   experimental condition (world, topology, membership churn,
//!   aggregation, sampling, budget) and a whole grid, with builder-style
//!   construction, named presets ([`presets`]) for the paper's tables, and
//!   a dependency-free JSON file format that parse/render round-trips.
//! * [`SweepRunner`] — expands the grid into a job matrix and executes it
//!   on a `std::thread` worker pool stealing from a shared queue, with
//!   deterministic per-job seeding: the assembled report is byte-identical
//!   whatever the worker count. Jobs are **round-driven**: each simulated
//!   round's realized efficiency/participation/disruptions advance a
//!   [`comdml_core::LearningModel`], and jobs stop early the round the
//!   realized accuracy trajectory reaches the scenario's target.
//! * [`SweepReport`] — per-cell mean/p50/p95 time-to-target, realized
//!   accuracy and reached-target counts, speedup-vs-FedAvg, emitted as
//!   `BENCH_sweep_*.json` + CSV and paper-style stdout tables.
//! * [`CurveAggregate`] ([`curves`] module) — trajectory-level
//!   aggregation: per-round mean/p10/p90 accuracy bands per cell, aligned
//!   on the scenario's shared round grid, emitted as
//!   `BENCH_curves_*.json` + CSV + a dependency-free SVG panel per
//!   scenario, so convergence figures come straight out of a sweep.
//! * [`Shard`] / [`PartialReport`] / [`merge`] ([`shard`] module) — the
//!   job matrix deterministically partitioned across processes or hosts
//!   (`exp_sweep --shard i/n`), with partial reports that byte-merge
//!   (`sweep_merge`) into exactly the single-process report.
//!
//! Three binaries front the engine: `exp_sweep <spec.json>` runs any spec
//! file (or `@table2`-style preset) — whole or as one shard —
//! `sweep_merge` fuses partial reports, and `paper_tables` regenerates
//! the Table II/III grids from one command.
//!
//! This crate is the experiment layer of the `comdml-rs` workspace — see
//! the crate map in the repository README for how the pieces fit.
//!
//! # Example
//!
//! ```
//! use comdml_exp::{Method, ScenarioSpec, SweepRunner, SweepSpec};
//!
//! let spec = SweepSpec::new("doc")
//!     .seeds(1, 2)
//!     .method(Method::ComDml)
//!     .method(Method::FedAvg)
//!     .scenario(ScenarioSpec::new("tiny").agents(6).rounds(3));
//! let report = SweepRunner::new().progress(false).run(&spec).unwrap();
//! assert_eq!(report.jobs.len(), 4);
//! assert!(report.cells.iter().all(|c| c.mean_time_s > 0.0));
//! ```

pub mod cli;
pub mod curves;
pub mod farm;
pub mod presets;
mod report;
mod runner;
pub mod shard;
mod spec;

pub use curves::{CurveAggregate, CurvePoint};
pub use farm::{run_worker, Coordinator, FarmConfig, FarmStatus, WorkerOptions, WorkerSummary};
pub use report::{SweepCell, SweepReport};
pub use runner::{run_job, JobResult, JobSource, JobSpec, SweepRunner};
pub use shard::{merge, PartialReport, Shard};
pub use spec::{Method, MethodParams, ScenarioSpec, SeedRange, SweepSpec};
