//! Golden-file pin of the trajectory aggregation.
//!
//! A tiny 2-method × 3-seed sweep is aggregated into [`CurveAggregate`]s
//! whose JSON and CSV artifacts are pinned byte-for-byte against committed
//! golden files (`tests/golden/`), and whose bands are re-derived by hand
//! in the test from the recorded per-job trajectories: with three seeds
//! the nearest-rank p10 is the per-round minimum, p90 the maximum, and the
//! mean the arithmetic mean, with early-stopped seeds holding their final
//! target-crossing value on the padded tail.
//!
//! Refresh the goldens after an intentional format change with
//! `UPDATE_GOLDEN=1 cargo test -p comdml-exp --test curves`.

use std::path::Path;

use comdml_exp::{Method, ScenarioSpec, SweepRunner, SweepSpec};

/// The pinned sweep: two closed-form methods (fully deterministic), three
/// seeds, a target FedAvg reaches inside the 10-round budget (so its tail
/// is padded) while Gossip's partial mixing does not (so it defines the
/// grid). Poisson membership churn with a churn-coupled accuracy dip
/// makes the trajectories genuinely seed-dependent, so the p10–p90 bands
/// are non-degenerate.
fn golden_spec() -> SweepSpec {
    use comdml_simnet::{ArrivalProcess, SessionLifetime};
    SweepSpec::new("golden").seeds(1, 3).method(Method::FedAvg).method(Method::Gossip).scenario(
        ScenarioSpec::new("tiny")
            .agents(8)
            .rounds(10)
            .target(0.5)
            .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.01 })
            .lifetime(SessionLifetime::Exponential { mean_s: 1_500.0 })
            .churn_dip(0.3),
    )
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(actual, expected, "golden {name} drifted; UPDATE_GOLDEN=1 refreshes it");
}

#[test]
fn curve_artifacts_match_the_committed_goldens() {
    let report = SweepRunner::new().progress(false).run(&golden_spec()).unwrap();
    check_golden("curves_golden.json", &report.curves_value().render());
    check_golden("curves_golden.csv", &report.curves_csv().to_csv());
}

#[test]
fn bands_equal_the_hand_computed_aggregation() {
    let report = SweepRunner::new().progress(false).run(&golden_spec()).unwrap();
    let curves = report.curves();
    assert_eq!(curves.len(), 2, "one aggregate per (scenario, method) cell");
    // The shared grid is the longest trajectory across the scenario.
    let grid = report.jobs.iter().map(|j| j.rounds_run).max().unwrap();
    // FedAvg (efficiency 1) reaches 50% inside the budget; Gossip's
    // partial-mixing factor keeps it short of the target, so it runs the
    // full budget and defines the grid.
    assert_eq!(grid, 10);
    assert!(report.jobs.iter().filter(|j| j.method == Method::FedAvg).all(|j| j.reached_target));
    assert!(report.jobs.iter().filter(|j| j.method == Method::Gossip).all(|j| !j.reached_target));
    for curve in &curves {
        let cell_jobs: Vec<_> = report.jobs.iter().filter(|j| j.method == curve.method).collect();
        assert_eq!(cell_jobs.len(), 3);
        assert_eq!(curve.rounds(), grid);
        let mut padded = 0usize;
        for (i, point) in curve.points.iter().enumerate() {
            assert_eq!(point.round, i + 1);
            // A seed past its early stop holds its final value.
            let values: Vec<f64> = cell_jobs
                .iter()
                .map(|j| {
                    let t = &j.accuracy_trajectory;
                    if i < t.len() {
                        t[i]
                    } else {
                        *t.last().unwrap()
                    }
                })
                .collect();
            let mean = values.iter().sum::<f64>() / 3.0;
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!((point.mean - mean).abs() < 1e-12);
            assert_eq!(point.p10, min, "3 seeds: nearest-rank p10 is the minimum");
            assert_eq!(point.p90, max, "3 seeds: nearest-rank p90 is the maximum");
            let realized = cell_jobs.iter().filter(|j| j.rounds_run > i).count();
            assert_eq!(point.realized, realized);
            padded += 3 - realized;
        }
        assert_eq!(curve.extrapolated_frac, padded as f64 / (3 * grid) as f64);
        // Padded values sit at or above the target: the seed stopped
        // because it crossed it.
        for job in &cell_jobs {
            if job.reached_target {
                assert!(*job.accuracy_trajectory.last().unwrap() >= 0.5);
            }
        }
        let mut rtt: Vec<f64> = cell_jobs.iter().map(|j| j.rounds_to_target as f64).collect();
        rtt.sort_by(f64::total_cmp);
        assert_eq!(curve.rounds_to_target_p50, rtt[1], "median of three is the middle seed");
    }
    // FedAvg stopped early on every seed, so its band has a padded tail;
    // the cell-level summary column agrees with the curve aggregate.
    let fedavg = curves.iter().find(|c| c.method == Method::FedAvg).unwrap();
    assert!(fedavg.extrapolated_frac > 0.0);
    let gossip = curves.iter().find(|c| c.method == Method::Gossip).unwrap();
    assert_eq!(gossip.extrapolated_frac, 0.0);
    // Seed-dependent churn dips make the bands real, not collapsed lines.
    assert!(
        curves.iter().any(|c| c.points.iter().any(|p| p.p90 - p.p10 > 1e-6)),
        "bands must be non-degenerate"
    );
    for (curve, cell) in curves.iter().zip(&report.cells) {
        assert_eq!(curve.extrapolated_frac, cell.extrapolated_frac);
        assert_eq!(curve.rounds_to_target_p50, cell.rounds_to_target_p50);
    }
}
