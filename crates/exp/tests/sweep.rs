//! Properties of the sweep engine:
//!
//! * the assembled report is **byte-identical** across 1/2/8 worker
//!   threads for arbitrary specs (the runner's core guarantee);
//! * spec files round-trip `parse` ∘ `render` exactly, for arbitrary
//!   scenario knobs;
//! * job results are pure functions of their coordinates (re-running any
//!   job reproduces its row).

use comdml_core::{AggregationMode, ChurnPolicy, LearningCurve};
use comdml_exp::{presets, run_job, Method, MethodParams, ScenarioSpec, SweepRunner, SweepSpec};
use comdml_simnet::{
    ArrivalProcess, ByzantineConfig, DistributionConfig, DiurnalCycle, PartitionSchedule,
    SessionLifetime, Topology,
};
use proptest::prelude::*;

/// Builds a small scenario from drawn knobs
/// `(topo, agg, churny, sampling, learning, hetero)`, the last two
/// covering the round-driven accuracy fields (curve override, non-IID mix,
/// churn dip, per-method params) and the heterogeneity-distribution /
/// hostile-world fields (dist overrides, diurnal, partition, byzantine).
fn scenario_from(
    name: &str,
    agents: usize,
    rounds: usize,
    knobs: (u8, u8, u8, u8, u8, u8),
) -> ScenarioSpec {
    let (topo, agg, churny, sampling, learning, hetero) = knobs;
    let mut s = ScenarioSpec::new(name).agents(agents).rounds(rounds);
    s = match topo % 3 {
        0 => s.topology(Topology::Full),
        1 => s.topology(Topology::Ring),
        _ => s.topology(Topology::Random { p: 0.4 }),
    };
    s = match agg % 3 {
        0 => s.aggregation(AggregationMode::Synchronous),
        1 => s.aggregation(AggregationMode::SemiSynchronous { quorum: 0.7, staleness_s: f64::MAX }),
        _ => s.aggregation(AggregationMode::Asynchronous),
    };
    if churny % 2 == 1 {
        s = s
            .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.005 })
            .lifetime(SessionLifetime::Exponential { mean_s: 3_000.0 })
            .churn(ChurnPolicy { interval: 2, fraction: 0.25 });
    }
    s = match sampling % 3 {
        0 => s,
        1 => s.sampling_rate(0.5),
        _ => s.sampling_rate(0.25),
    };
    s = match learning % 5 {
        0 => s,
        1 => s.noniid_mix(0.375),
        2 => s.churn_dip(0.625).target(0.7),
        3 => s.curve(LearningCurve::new(0.875, 7.25)).target(0.72),
        _ => s.method_params(MethodParams {
            fedprox_min_work: 0.375,
            drop_fraction: 0.25,
            tiers: 3,
            staleness_decay: 0.75,
            sl_agent_layers: 28,
            sl_server_cpus: 6.5,
        }),
    };
    s = match hetero % 6 {
        0 => s,
        1 => s
            .cpu_dist(DistributionConfig::LogNormal { mu: 0.25, sigma: 0.5 })
            .link_dist(DistributionConfig::Uniform { min: 5.0, max: 80.0 }),
        2 => s
            .link_dist(DistributionConfig::Normal { mean: 40.0, std_dev: 15.0 })
            .lifetime_dist(DistributionConfig::Fixed { value: 2_500.0 }),
        3 => s.diurnal(DiurnalCycle { period_s: 1_800.0, min_factor: 0.375 }),
        4 => s.partition(PartitionSchedule { groups: 3, period_s: 1_200.0, outage_s: 300.0 }),
        _ => s
            .byzantine(ByzantineConfig { fraction: 0.25, speed_factor: 3.0 })
            .cpu_dist(DistributionConfig::Trace { values: vec![0.5, 1.0, 2.0, 4.0] }),
    };
    s
}

fn methods_from(mask: u8) -> Vec<Method> {
    let pool = [Method::ComDml, Method::FedAvg, Method::Gossip, Method::BrainTorrent];
    let picked: Vec<Method> =
        pool.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &m)| m).collect();
    if picked.is_empty() {
        vec![Method::ComDml]
    } else {
        picked
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The acceptance property: scenario × method × seed grids produce the
    // same bytes on 1, 2 and 8 workers.
    #[test]
    fn report_is_byte_identical_across_worker_counts(
        agents in 4usize..9,
        rounds in 2usize..5,
        knobs in (0u8..3, 0u8..3, 0u8..2, 0u8..3, 0u8..5, 0u8..6),
        mask in 1u8..16,
        base_seed in 1u64..500,
    ) {
        let (topo, agg, churny, sampling, learning, hetero) = knobs;
        let mut spec = SweepSpec::new("prop")
            .seeds(base_seed, 2)
            .scenario(scenario_from("a", agents, rounds, knobs))
            .scenario(scenario_from(
                "b",
                agents + 2,
                rounds,
                (topo + 1, agg + 1, 1 - churny, sampling + 1, learning + 1, hetero + 1),
            ));
        for m in methods_from(mask) {
            spec = spec.method(m);
        }
        let run = |threads: usize| {
            SweepRunner::new()
                .threads(threads)
                .progress(false)
                .run(&spec)
                .expect("spec validates")
                .to_value()
                .render()
        };
        let one = run(1);
        prop_assert_eq!(&run(2), &one, "2 workers diverged");
        prop_assert_eq!(&run(8), &one, "8 workers diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Spec files survive parse ∘ render for arbitrary knob combinations.
    #[test]
    fn spec_files_round_trip(
        agents in 1usize..200,
        rounds in 1usize..500,
        knobs in (0u8..3, 0u8..3, 0u8..2, 0u8..3, 0u8..5, 0u8..6),
        seeds in (0u64..10_000, 1usize..50),
        lifetime_sel in 0u8..4,
        arrivals_sel in 0u8..3,
    ) {
        let mut s = scenario_from("s", agents, rounds, knobs);
        s.lifetime = match lifetime_sel {
            0 => SessionLifetime::Infinite,
            1 => SessionLifetime::Exponential { mean_s: 123.456 },
            2 => SessionLifetime::Weibull { scale_s: 77.5, shape: 0.625 },
            _ => SessionLifetime::Fixed { duration_s: 3.25 },
        };
        s.arrivals = match arrivals_sel {
            0 => s.arrivals,
            1 => ArrivalProcess::Gaps(DistributionConfig::Fixed { value: 30.5 }),
            _ => ArrivalProcess::Gaps(DistributionConfig::LogNormal { mu: 3.0, sigma: 0.5 }),
        };
        let spec = SweepSpec::new("roundtrip")
            .seeds(seeds.0, seeds.1)
            .method(Method::ComDml)
            .method(Method::Tiered)
            .scenario(s);
        let text = spec.render();
        let back = SweepSpec::parse(&text).expect("rendered specs parse");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.render(), text, "second render identical");
    }
}

#[test]
fn jobs_are_pure_functions_of_their_coordinates() {
    let spec = presets::smoke();
    let report = SweepRunner::new().progress(false).run(&spec).unwrap();
    for job in &report.jobs {
        let scenario = spec.scenarios.iter().find(|s| s.name == job.scenario).unwrap();
        let again = run_job(scenario, job.method, job.seed);
        assert_eq!(&again, job, "re-running {}::{:?}", job.scenario, job.method);
    }
}

#[test]
fn report_cells_aggregate_job_rows() {
    let spec = presets::smoke();
    let report = SweepRunner::new().progress(false).run(&spec).unwrap();
    assert_eq!(report.jobs.len(), spec.num_jobs());
    assert_eq!(report.cells.len(), spec.scenarios.len() * spec.methods.len());
    for cell in &report.cells {
        let rows: Vec<_> = report
            .jobs
            .iter()
            .filter(|j| j.scenario == cell.scenario && j.method == cell.method)
            .collect();
        assert_eq!(rows.len(), spec.seeds.count);
        let mean = rows.iter().map(|j| j.time_to_target_s).sum::<f64>() / rows.len() as f64;
        assert!((cell.mean_time_s - mean).abs() < 1e-9 * mean.max(1.0));
        assert!(cell.p50_time_s <= cell.p95_time_s + 1e-12);
        // FedAvg is in the smoke grid, so every cell carries a speedup.
        let speedup = cell.speedup_vs_fedavg.expect("fedavg present");
        assert!(speedup > 0.0);
        if cell.method == Method::FedAvg {
            assert!((speedup - 1.0).abs() < 1e-9, "FedAvg vs itself is 1.0");
        }
    }
}

#[test]
fn preset_grids_execute_at_reduced_scale() {
    // One seed, truncated rounds: the full Table II/III scenario diversity
    // (datasets, sampling, churn, sparse topology, dropouts) runs end to
    // end in seconds and produces positive, ordered results.
    for preset in ["table2", "table3"] {
        let mut spec = presets::by_name(preset, 1).unwrap();
        for s in &mut spec.scenarios {
            s.rounds = 4;
        }
        let report = SweepRunner::new().progress(false).run(&spec).unwrap();
        for cell in &report.cells {
            assert!(cell.mean_time_s > 0.0, "{preset}/{}/{:?}", cell.scenario, cell.method);
            assert!(cell.mean_rounds_to_target >= 1.0);
        }
        // ComDML must beat FedAvg on every scenario of the paper grids.
        for scenario in &report.scenarios {
            let get = |m: Method| {
                report
                    .cells
                    .iter()
                    .find(|c| &c.scenario == scenario && c.method == m)
                    .map(|c| c.mean_time_s)
                    .unwrap()
            };
            assert!(
                get(Method::ComDml) < get(Method::FedAvg),
                "{preset}/{scenario}: ComDML {} vs FedAvg {}",
                get(Method::ComDml),
                get(Method::FedAvg)
            );
        }
    }
}

#[test]
fn sampling_rate_thins_sweep_rounds() {
    // The same scenario at sampling 1.0 vs 0.2: the sampled run's ComDML
    // jobs must touch fewer events while projecting more rounds-to-target.
    let base = ScenarioSpec::new("full").agents(20).rounds(6);
    let sampled = {
        let mut s = base.clone().sampling_rate(0.2);
        s.name = "sampled".into();
        s
    };
    let full_job = run_job(&base, Method::ComDml, 7);
    let sampled_job = run_job(&sampled, Method::ComDml, 7);
    assert!(sampled_job.events_processed < full_job.events_processed);
    assert!(sampled_job.rounds_to_target > full_job.rounds_to_target);
}
