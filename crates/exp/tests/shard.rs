//! The sharding contract: for *any* shard count, running every shard
//! separately and merging the partial reports reproduces the
//! single-process report **byte for byte** — JSON, CSV and curve
//! artifacts alike — and partial reports survive their own JSON round
//! trip exactly (floats render in shortest round-trip form).

use comdml_core::AggregationMode;
use comdml_exp::{
    merge, presets, Method, PartialReport, ScenarioSpec, Shard, SweepRunner, SweepSpec,
};
use comdml_simnet::{ArrivalProcess, SessionLifetime, Topology};
use proptest::prelude::*;

fn small_spec(agents: usize, rounds: usize, knobs: (u8, u8), seeds: (u64, usize)) -> SweepSpec {
    let (variant, churny) = knobs;
    let mut s = ScenarioSpec::new("a").agents(agents).rounds(rounds);
    s = match variant % 3 {
        0 => s,
        1 => s
            .topology(Topology::Random { p: 0.5 })
            .aggregation(AggregationMode::SemiSynchronous { quorum: 0.7, staleness_s: f64::MAX })
            .sampling_rate(0.5),
        _ => s.noniid_mix(0.4).churn_dip(0.5).target(0.7),
    };
    if churny % 2 == 1 {
        s = s
            .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.005 })
            .lifetime(SessionLifetime::Exponential { mean_s: 3_000.0 });
    }
    SweepSpec::new("shardprop")
        .seeds(seeds.0, seeds.1)
        .method(Method::ComDml)
        .method(Method::FedAvg)
        .method(Method::Gossip)
        .scenario(s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    // The acceptance property: merge(shards) == single-process report,
    // byte for byte, for every shard count 1..=5.
    #[test]
    fn merged_shards_reproduce_the_single_process_report(
        agents in 4usize..9,
        rounds in 2usize..5,
        knobs in (0u8..3, 0u8..2),
        seeds in (1u64..500, 2usize..4),
        threads in 1usize..4,
    ) {
        let spec = small_spec(agents, rounds, knobs, seeds);
        let runner = SweepRunner::new().threads(threads).progress(false);
        let single = runner.run(&spec).expect("spec validates");
        let single_json = single.to_value().render();
        let single_csv = single.to_csv().to_csv();
        let single_curves = single.curves_value().render();
        for count in 1..=5usize {
            let parts: Vec<PartialReport> = (0..count)
                .map(|index| {
                    runner
                        .run_shard(&spec, Shard { index, count })
                        .expect("shard validates")
                })
                .collect();
            // Merge order must not matter: feed the shards reversed.
            let reversed: Vec<PartialReport> = parts.iter().rev().cloned().collect();
            let merged = merge(&reversed).expect("complete partition merges");
            prop_assert_eq!(
                &merged.to_value().render(),
                &single_json,
                "{} shards diverged from the single-process JSON",
                count
            );
            prop_assert_eq!(&merged.to_csv().to_csv(), &single_csv);
            prop_assert_eq!(&merged.curves_value().render(), &single_curves);
        }
    }

    // Partial reports survive parse ∘ render exactly — the disk format of
    // the cross-host hand-off.
    #[test]
    fn partial_reports_round_trip_through_json(
        agents in 4usize..8,
        rounds in 2usize..4,
        knobs in (0u8..3, 0u8..2),
        seeds in (1u64..100, 2usize..3),
        index in 0usize..3,
    ) {
        let spec = small_spec(agents, rounds, knobs, seeds);
        let shard = Shard { index, count: 3 };
        let partial = SweepRunner::new()
            .progress(false)
            .run_shard(&spec, shard)
            .expect("shard validates");
        let text = partial.render();
        let back = PartialReport::parse(&text).expect("rendered partials parse");
        prop_assert_eq!(&back, &partial);
        prop_assert_eq!(back.render(), text, "second render identical");
    }
}

#[test]
fn smoke_shards_merge_to_the_exact_smoke_report() {
    let spec = presets::smoke();
    let runner = SweepRunner::new().progress(false);
    let single = runner.run(&spec).unwrap();
    let parts = [
        runner.run_shard(&spec, Shard { index: 0, count: 2 }).unwrap(),
        runner.run_shard(&spec, Shard { index: 1, count: 2 }).unwrap(),
    ];
    let merged = merge(&parts).unwrap();
    assert_eq!(merged.to_value().render(), single.to_value().render());
    assert_eq!(merged.render_table(), single.render_table());
}

#[test]
fn partial_parse_rejects_tampered_partitions() {
    let spec = presets::smoke();
    let runner = SweepRunner::new().progress(false);
    let partial = runner.run_shard(&spec, Shard { index: 0, count: 2 }).unwrap();
    // Drop one row: the partition is no longer the one shard 0/2 owns.
    let mut truncated = partial.clone();
    truncated.jobs.pop();
    assert!(PartialReport::parse(&truncated.render()).unwrap_err().contains("indices"));
    // Re-tag the shard: the carried rows no longer match the claimed slice.
    let mut mislabeled = partial;
    mislabeled.shard = Shard { index: 1, count: 2 };
    assert!(PartialReport::parse(&mislabeled.render()).unwrap_err().contains("indices"));
}
