//! End-to-end properties of the distributed sweep farm, on localhost:
//!
//! * the fetched report is **byte-identical** to the single-process run
//!   for arbitrary worker counts × slice sizes (the farm's acceptance
//!   bar);
//! * a worker killed mid-sweep (abrupt connection drop, no goodbye)
//!   forfeits only its unfinished jobs — they are requeued, a surviving
//!   worker finishes them, and the bytes still match;
//! * a worker that goes silent holding a slice (no rows, no heartbeats)
//!   trips the reaper's timeout path, with the same outcome;
//! * client-facing errors (unknown sweeps, malformed specs) come back
//!   described, not as hangs or disconnects.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use comdml_exp::{farm, FarmConfig, Method, ScenarioSpec, SweepRunner, SweepSpec, WorkerOptions};
use comdml_net::{FramedStream, Message};
use proptest::prelude::*;

/// A 2-scenario × 3-method grid: `6 × seeds` jobs, each a few milliseconds.
fn farm_spec(name: &str, seeds: usize) -> SweepSpec {
    SweepSpec::new(name)
        .seeds(11, seeds)
        .method(Method::ComDml)
        .method(Method::FedAvg)
        .method(Method::Gossip)
        .scenario(ScenarioSpec::new("mini").agents(5).rounds(3))
        .scenario(ScenarioSpec::new("churny").agents(7).rounds(4).sampling_rate(0.5))
}

fn test_config(slice_size: usize) -> FarmConfig {
    FarmConfig {
        slice_size,
        worker_timeout: Duration::from_secs(10),
        reaper_tick: Duration::from_millis(50),
        retry_ms: 20,
        quiet: true,
    }
}

fn worker_opts(name: &str) -> WorkerOptions {
    WorkerOptions {
        threads: 2,
        name: name.into(),
        max_jobs: None,
        heartbeat: Duration::from_millis(50),
    }
}

fn local_bytes(spec: &SweepSpec) -> String {
    SweepRunner::new().progress(false).run(spec).expect("spec validates").to_value().render()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // The acceptance property: whatever the worker count and slice size,
    // the farm's report renders the same bytes as the local run.
    #[test]
    fn farm_report_is_byte_identical_to_local(
        workers in 1usize..4,
        slice_size in 1usize..6,
        seeds in 1usize..3,
    ) {
        let spec = farm_spec("farm_prop", seeds);
        let local = local_bytes(&spec);
        let coordinator = farm::Coordinator::bind("127.0.0.1:0", test_config(slice_size)).unwrap();
        let addr = coordinator.local_addr().to_string();
        let (sweep_id, total) = farm::submit(&addr, &spec).unwrap();
        prop_assert_eq!(total as usize, spec.num_jobs());
        let fleet: Vec<_> = (0..workers)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || farm::run_worker(&addr, &worker_opts(&format!("w{i}"))))
            })
            .collect();
        let report =
            farm::wait_and_fetch(&addr, sweep_id, Duration::from_millis(20), false).unwrap();
        prop_assert_eq!(report.to_value().render(), local);
        coordinator.stop(); // workers see Shutdown on their next poll
        for worker in fleet {
            let summary = worker.join().unwrap().unwrap();
            prop_assert!(summary.clean_shutdown);
        }
    }
}

/// Kill a worker mid-sweep: it runs exactly one job of a three-job slice,
/// then drops the connection with no goodbye. The coordinator must requeue
/// the two unfinished jobs, a rescuer must finish everything, and the
/// bytes must still match the local run.
#[test]
fn killed_worker_mid_sweep_is_requeued_and_bytes_match() {
    let spec = farm_spec("farm_kill", 2); // 12 jobs
    let local = local_bytes(&spec);
    let coordinator = farm::Coordinator::bind("127.0.0.1:0", test_config(3)).unwrap();
    let addr = coordinator.local_addr().to_string();
    let (sweep_id, _) = farm::submit(&addr, &spec).unwrap();

    let flaky = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let opts = WorkerOptions { threads: 1, max_jobs: Some(1), ..worker_opts("flaky") };
            farm::run_worker(&addr, &opts)
        })
    };
    let summary = flaky.join().unwrap().unwrap();
    assert!(!summary.clean_shutdown, "budgeted worker must die, not drain");
    assert_eq!(summary.jobs_run, 1);

    // The session thread notices the drop and requeues the slice's two
    // unfinished jobs.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = farm::status(&addr, sweep_id).unwrap();
        if s.requeued >= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "death never requeued: {s:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        farm::fetch(&addr, sweep_id).unwrap().is_none(),
        "fetch of an unfinished sweep must say so"
    );

    let rescuer = {
        let addr = addr.clone();
        std::thread::spawn(move || farm::run_worker(&addr, &worker_opts("rescuer")))
    };
    let report = farm::wait_and_fetch(&addr, sweep_id, Duration::from_millis(20), false).unwrap();
    assert_eq!(report.to_value().render(), local, "post-recovery report diverged");
    let s = farm::status(&addr, sweep_id).unwrap();
    assert!(s.complete);
    assert!(s.requeued >= 2);
    // Exactly one slice was forfeited, by the drop path — the reaper
    // (10s timeout here) never fired.
    assert_eq!(s.requeued_slices, 1, "one slice forfeited by the death: {s:?}");
    assert_eq!(s.timed_out_slices, 0, "drop path, not the reaper: {s:?}");
    // Heartbeat-piggybacked telemetry: the survivor has a live row; the
    // dead worker's row went with its session.
    let row = s
        .worker_rows
        .iter()
        .find(|w| w.name == "rescuer")
        .expect("rescuer telemetry row in StatusDetail");
    assert!(row.jobs_done >= 1, "rescuer metrics never arrived: {row:?}");
    assert!(row.slices_done >= 1 && row.jobs_per_s > 0.0 && row.slice_p50_ms > 0.0, "{row:?}");
    assert!(row.slice_p90_ms >= row.slice_p50_ms, "{row:?}");
    assert!(s.worker_rows.iter().all(|w| w.name != "flaky"), "dead worker still listed: {s:?}");
    coordinator.stop();
    assert!(rescuer.join().unwrap().unwrap().clean_shutdown);
}

/// A worker that claims a slice and then goes silent — no rows, no
/// heartbeats, but the connection stays open — must trip the reaper's
/// timeout path (the connection-drop path never fires).
#[test]
fn hung_worker_times_out_and_slice_is_requeued() {
    let spec = farm_spec("farm_hang", 1); // 6 jobs
    let local = local_bytes(&spec);
    let cfg = FarmConfig { worker_timeout: Duration::from_millis(300), ..test_config(2) };
    let coordinator = farm::Coordinator::bind("127.0.0.1:0", cfg).unwrap();
    let addr = coordinator.local_addr().to_string();
    let (sweep_id, _) = farm::submit(&addr, &spec).unwrap();

    // Hand-rolled wedged worker: hello, one grant, then silence.
    let mut wedged = FramedStream::new(TcpStream::connect(&addr).unwrap());
    wedged.handshake().unwrap();
    wedged.send(&Message::WorkerHello { name: "wedged".into(), threads: 1 }).unwrap();
    let Message::WorkerWelcome { worker_id } = wedged.recv().unwrap() else {
        panic!("expected a welcome")
    };
    wedged.send(&Message::WorkRequest { worker_id }).unwrap();
    let Message::WorkSlice { indices, .. } = wedged.recv().unwrap() else {
        panic!("expected a grant")
    };
    assert_eq!(indices.len(), 2);

    let real = {
        let addr = addr.clone();
        std::thread::spawn(move || farm::run_worker(&addr, &worker_opts("real")))
    };
    let report = farm::wait_and_fetch(&addr, sweep_id, Duration::from_millis(20), false).unwrap();
    assert_eq!(report.to_value().render(), local, "post-timeout report diverged");
    let s = farm::status(&addr, sweep_id).unwrap();
    assert!(s.requeued >= 2, "reaper never requeued the wedged slice: {s:?}");
    // The reaper requeued exactly one slice, so both counters moved
    // exactly once — a reaped slice is counted when it is pulled back,
    // never again on the worker's eventual disconnect.
    assert_eq!(s.timed_out_slices, 1, "one reap, one timeout count: {s:?}");
    assert_eq!(s.requeued_slices, 1, "one reap, one requeue count: {s:?}");
    drop(wedged);
    coordinator.stop();
    assert!(real.join().unwrap().unwrap().clean_shutdown);
}

/// The ETA published in `StatusReport` is the linear completion estimate,
/// with its two sentinel states (unknown before the first job, zero once
/// complete) and saturation on `done > total`.
#[test]
fn eta_seconds_math() {
    assert_eq!(farm::eta_seconds(0, 10, 5.0, false), -1.0, "no data yet");
    assert_eq!(farm::eta_seconds(5, 10, 5.0, false), 5.0, "half done, half to go");
    assert_eq!(farm::eta_seconds(2, 10, 1.0, false), 4.0);
    assert_eq!(farm::eta_seconds(10, 10, 5.0, true), 0.0, "complete pins to zero");
    assert_eq!(farm::eta_seconds(0, 10, 5.0, true), 0.0, "complete wins over unknown");
    assert_eq!(farm::eta_seconds(10, 10, 5.0, false), 0.0, "nothing remaining");
    assert_eq!(farm::eta_seconds(12, 10, 6.0, false), 0.0, "overshoot saturates");
}

#[test]
fn wire_errors_come_back_described() {
    let coordinator = farm::Coordinator::bind("127.0.0.1:0", test_config(4)).unwrap();
    let addr = coordinator.local_addr().to_string();
    assert!(farm::status(&addr, 42).unwrap_err().contains("unknown sweep"));
    assert!(farm::fetch(&addr, 42).unwrap_err().contains("unknown sweep"));
    // A malformed submission (impossible through the typed client, which
    // renders a real spec) earns a FarmError, not a hang or a disconnect.
    let mut s = FramedStream::new(TcpStream::connect(&addr).unwrap());
    s.handshake().unwrap();
    s.send(&Message::SubmitSweep { spec_json: "nonsense".into() }).unwrap();
    let Message::FarmError { detail } = s.recv().unwrap() else {
        panic!("expected a described error")
    };
    assert!(!detail.is_empty());
    coordinator.shutdown();
}
