//! The round-driven accuracy semantics, pinned.
//!
//! * **Equivalence gate**: with constant efficiency, full participation
//!   and no churn, the round-driven time-to-target must reproduce the old
//!   closed-form projection `mean_round_s × rounds_to_target(curve,
//!   realized factor, sampling)` to 1e-9 — for all 9 methods. The old
//!   algorithm is replicated verbatim below (it no longer exists in the
//!   runner) and compared against `run_job`.
//! * **Early stopping**: when the budget exceeds rounds-to-target, jobs
//!   stop the round the trajectory reaches the target, with the *same*
//!   answer the full-budget projection gave (constant-round-time methods).
//! * **Trajectory properties** (proptested): monotone non-decreasing under
//!   synchronous aggregation without churn coupling, and pointwise bounded
//!   by the ideal closed-form curve under churn/staleness/sampling.

use comdml_baselines::{
    AllReduceDml, BaselineConfig, BrainTorrent, ClassicSplitLearning, DropStragglers, FedAvg,
    FedProx, GossipLearning, TierBased,
};
use comdml_bench::rounds_with_sampling;
use comdml_core::{AggregationMode, ChurnPolicy, FleetSim, RoundEngine};
use comdml_exp::{run_job, Method, MethodParams, ScenarioSpec};
use comdml_simnet::{ArrivalProcess, FleetDriver, SessionLifetime};
use proptest::prelude::*;

/// The pre-round-driven `baseline_engine`, with its fixed constants
/// resolved from the scenario's (default) method params.
fn old_baseline_engine(
    scenario: &ScenarioSpec,
    method: Method,
    seed: u64,
    density: f64,
) -> Box<dyn RoundEngine> {
    let base = BaselineConfig { sampling_rate: 1.0, churn: None, ..BaselineConfig::default() };
    let p = &scenario.method_params;
    match method {
        Method::ComDml => unreachable!("ComDML runs through FleetSim"),
        Method::FedAvg => Box::new(FedAvg::new(base)),
        Method::AllReduce => Box::new(AllReduceDml::new(base)),
        Method::BrainTorrent => Box::new(BrainTorrent::new(base).with_seed(seed ^ 0x000b_7a10)),
        Method::Gossip => {
            Box::new(GossipLearning::new(base).with_topology_density(density.clamp(0.01, 1.0)))
        }
        Method::FedProx => Box::new(FedProx::new(base, p.fedprox_min_work)),
        Method::DropStragglers => Box::new(DropStragglers::new(base, p.drop_fraction)),
        Method::Tiered => Box::new(TierBased::new(base, p.tiers)),
        Method::SplitLearning => {
            Box::new(ClassicSplitLearning::new(base, p.sl_agent_layers, p.sl_server_cpus))
        }
    }
}

/// The retired closed-form projection, replicated verbatim: run the *full*
/// round budget, then project `mean_round_s × rounds_to_target` from the
/// realized mean factor. Returns `(time_to_target_s, rounds_to_target)`.
fn old_projection(scenario: &ScenarioSpec, method: Method, seed: u64) -> (f64, usize) {
    let (rounds_run, sim_s, rounds_factor) = if method == Method::ComDml {
        let mut sim = FleetSim::new(scenario.fleet_config(seed), scenario.comdml_config());
        let r = sim.run(scenario.rounds);
        (r.rounds, r.total_sim_s, r.rounds_factor)
    } else {
        let mut driver: FleetDriver = scenario.fleet_config(seed).build();
        let density = driver.world().adjacency().density();
        let mut engine = old_baseline_engine(scenario, method, seed, density);
        let mut sim_s = 0.0f64;
        let mut horizon = 30.0f64;
        for r in 0..scenario.rounds {
            if let Some(churn) = scenario.churn {
                if churn.interval > 0 && r > 0 && r % churn.interval == 0 {
                    driver.world_mut().churn_profiles(churn.fraction);
                }
            }
            let plan = driver.begin_round(horizon);
            let empty_round = plan.participants.is_empty();
            let participants = if scenario.sampling_rate < 1.0 {
                driver
                    .world_mut()
                    .sample_participants_among(&plan.participants, scenario.sampling_rate)
            } else {
                plan.participants
            };
            let mut t = engine.round_time_for(driver.world(), r, &participants);
            if t <= 0.0 {
                t = driver.seconds_to_next_event().unwrap_or(0.0);
            }
            driver.end_round(t);
            sim_s += t;
            horizon = if empty_round { 30.0 } else { (t * 2.0).max(1.0) };
        }
        (scenario.rounds, sim_s, engine.rounds_factor())
    };
    let mean_round_s = sim_s / rounds_run.max(1) as f64;
    let rounds_to_target = rounds_with_sampling(
        &scenario.learning_curve(),
        scenario.target_accuracy,
        rounds_factor.max(1e-6),
        scenario.sampling_rate,
    );
    (mean_round_s * rounds_to_target as f64, rounds_to_target)
}

/// The equivalence regime: static fleet, full participation, no churn,
/// synchronous aggregation — constant per-round efficiency for every
/// method.
fn static_scenario(name: &str, rounds: usize, target: f64) -> ScenarioSpec {
    ScenarioSpec::new(name).rounds(rounds).target(target)
}

#[test]
fn round_driven_matches_the_closed_form_projection_for_all_9_methods() {
    // Budget (8) far below every method's rounds-to-target (>= 38): no
    // early stop, so the round-driven path must degenerate to *exactly*
    // the old projection — same simulated rounds, same mean, same
    // extrapolation — for every method including those with round-varying
    // times (BrainTorrent's rotating aggregator, TiFL's tier cycle).
    let scenario = static_scenario("equivalence", 8, 0.90);
    assert_eq!(Method::ALL.len(), 9);
    for method in Method::ALL {
        for seed in [1u64, 7] {
            let (old_time, old_rounds) = old_projection(&scenario, method, seed);
            let new = run_job(&scenario, method, seed);
            assert!(!new.reached_target, "{method:?}: an 8-round budget cannot reach 90%");
            assert_eq!(new.rounds_run, 8, "{method:?}: no early stop below target");
            assert_eq!(
                new.rounds_to_target, old_rounds,
                "{method:?} seed {seed}: projected rounds diverged"
            );
            let rel = (new.time_to_target_s - old_time).abs() / old_time.max(1e-12);
            assert!(
                rel < 1e-9,
                "{method:?} seed {seed}: round-driven {} vs closed-form {old_time} (rel {rel:e})",
                new.time_to_target_s
            );
        }
    }
}

#[test]
fn early_stopping_reproduces_the_projection_and_saves_rounds() {
    // Budget (120) far above rounds-to-target: jobs stop early, and for
    // every constant-round-time method the realized time must *still*
    // equal the old full-budget projection — early stopping changes the
    // wall-clock cost, never the answer. (BrainTorrent and TiFL rounds
    // vary in wall time, so their full-budget mean is not their first-k
    // mean; they are pinned by the no-early-stop gate above.)
    let scenario = static_scenario("early_stop", 120, 0.80);
    let constant_round_methods = [
        Method::ComDml,
        Method::FedAvg,
        Method::AllReduce,
        Method::Gossip,
        Method::FedProx,
        Method::DropStragglers,
        Method::SplitLearning,
    ];
    for method in constant_round_methods {
        let (old_time, old_rounds) = old_projection(&scenario, method, 3);
        let new = run_job(&scenario, method, 3);
        assert!(new.reached_target, "{method:?}: 120 rounds reach an 80% target");
        assert_eq!(new.rounds_run, old_rounds, "{method:?}: stops exactly at rounds-to-target");
        assert!(
            new.rounds_run < scenario.rounds,
            "{method:?}: early stopping must save simulated rounds"
        );
        let rel = (new.time_to_target_s - old_time).abs() / old_time.max(1e-12);
        assert!(
            rel < 1e-9,
            "{method:?}: early-stopped {} vs projected {old_time} (rel {rel:e})",
            new.time_to_target_s
        );
        assert!((new.time_to_target_s - new.sim_s).abs() < 1e-12, "reached => exact sim clock");
        let last = *new.accuracy_trajectory.last().expect("non-empty trajectory");
        assert!(last >= 0.80 - 1e-9, "trajectory ends at/above the target: {last}");
    }
}

#[test]
fn method_params_change_the_parameterized_methods_only() {
    let base = static_scenario("params_base", 6, 0.90);
    let tweaked = {
        let mut s = static_scenario("params_tweaked", 6, 0.90).method_params(MethodParams {
            fedprox_min_work: 0.9,
            drop_fraction: 0.6,
            tiers: 2,
            sl_agent_layers: 40,
            ..MethodParams::default()
        });
        s.name = "params_tweaked".into();
        s
    };
    for method in [Method::FedProx, Method::DropStragglers, Method::Tiered, Method::SplitLearning] {
        let a = run_job(&base, method, 5);
        let b = run_job(&tweaked, method, 5);
        assert_ne!(
            a.time_to_target_s, b.time_to_target_s,
            "{method:?}: spec params must actually reach the engine"
        );
    }
    for method in [Method::FedAvg, Method::AllReduce, Method::Gossip] {
        let a = run_job(&base, method, 5);
        let b = run_job(&tweaked, method, 5);
        assert_eq!(
            a.time_to_target_s, b.time_to_target_s,
            "{method:?}: unrelated params must not perturb the method"
        );
    }
}

#[test]
fn staleness_decay_override_reaches_the_comdml_engine() {
    // Membership churn keeps the pairing imbalanced (a *static* fleet is
    // balanced so well that a semi-sync quorum leaves nobody behind), so
    // stragglers spill past the quorum and the staleness exponent bites.
    // Timing is unaffected by the exponent — identical seeds walk the
    // identical membership timeline — so any factor difference is purely
    // the model-side discount.
    let mk = |decay: f64| {
        ScenarioSpec::new("stale")
            .agents(16)
            .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.008 })
            .lifetime(SessionLifetime::Exponential { mean_s: 3_000.0 })
            .aggregation(AggregationMode::SemiSynchronous { quorum: 0.5, staleness_s: f64::MAX })
            .method_params(MethodParams { staleness_decay: decay, ..MethodParams::default() })
            .rounds(12)
            .target(0.85)
    };
    let gentle = run_job(&mk(0.1), Method::ComDml, 2);
    let harsh = run_job(&mk(2.0), Method::ComDml, 2);
    assert_eq!(gentle.rounds_run, harsh.rounds_run, "same budget, same timeline");
    assert!(
        harsh.rounds_factor < gentle.rounds_factor,
        "a harsher staleness discount must cost realized efficiency: {} vs {}",
        harsh.rounds_factor,
        gentle.rounds_factor
    );
    // The ceil'd projection may coincide for small discounts, but a harsher
    // discount can never make the target *cheaper*.
    assert!(harsh.rounds_to_target >= gentle.rounds_to_target);
    assert!(harsh.time_to_target_s >= gentle.time_to_target_s);
    assert!(harsh.final_accuracy < gentle.final_accuracy);
}

#[test]
fn churn_dips_slow_the_trajectory() {
    let churny = |name: &str, dip: f64| {
        let mut s = ScenarioSpec::new(name)
            .agents(16)
            .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.01 })
            .lifetime(SessionLifetime::Exponential { mean_s: 2_000.0 })
            .rounds(30)
            .target(0.8);
        s = s.churn_dip(dip);
        s
    };
    let clean = run_job(&churny("no_dip", 0.0), Method::ComDml, 9);
    let dipped = run_job(&churny("dipped", 1.0), Method::ComDml, 9);
    assert!(
        dipped.final_accuracy <= clean.final_accuracy,
        "charging departures cannot speed learning: {} vs {}",
        dipped.final_accuracy,
        clean.final_accuracy
    );
    assert!(dipped.time_to_target_s >= clean.time_to_target_s);
    // The dip is model-level: it can only cost *more* simulated rounds
    // (later early stop), never change the per-round simulation itself.
    assert!(dipped.rounds_run >= clean.rounds_run);
}

#[test]
fn noniid_mix_interpolates_time_to_target() {
    let mk = |name: &str, mix: f64| ScenarioSpec::new(name).noniid_mix(mix).rounds(60).target(0.75);
    let iid = run_job(&mk("m0", 0.0), Method::FedAvg, 1);
    let mid = run_job(&mk("m5", 0.5), Method::FedAvg, 1);
    let non = run_job(&mk("m1", 1.0), Method::FedAvg, 1);
    assert!(
        iid.time_to_target_s < mid.time_to_target_s && mid.time_to_target_s < non.time_to_target_s,
        "more skew converges slower: {} / {} / {}",
        iid.time_to_target_s,
        mid.time_to_target_s,
        non.time_to_target_s
    );
}

/// Draws a scenario across the round-driven feature space;
/// `knobs = (agg, churny, sampling)`.
fn any_scenario(
    name: &str,
    agents: usize,
    rounds: usize,
    knobs: (u8, bool, u8),
    dip: f64,
    mix: Option<f64>,
) -> ScenarioSpec {
    let (agg, churny, sampling) = knobs;
    let mut s = ScenarioSpec::new(name).agents(agents).rounds(rounds).target(0.7);
    s = match agg % 3 {
        0 => s.aggregation(AggregationMode::Synchronous),
        1 => s.aggregation(AggregationMode::SemiSynchronous { quorum: 0.6, staleness_s: f64::MAX }),
        _ => s.aggregation(AggregationMode::Asynchronous),
    };
    if churny {
        s = s
            .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.006 })
            .lifetime(SessionLifetime::Exponential { mean_s: 2_500.0 })
            .churn(ChurnPolicy { interval: 3, fraction: 0.3 });
    }
    s = match sampling % 3 {
        0 => s,
        1 => s.sampling_rate(0.5),
        _ => s.sampling_rate(0.25),
    };
    if dip > 0.0 {
        s = s.churn_dip(dip);
    }
    if let Some(m) = mix {
        s = s.noniid_mix(m);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Satellite property 1: under synchronous aggregation with no churn
    // coupling, the realized accuracy trajectory never decreases — every
    // round's effective gain is non-negative.
    #[test]
    fn trajectory_is_monotone_under_synchronous_aggregation(
        agents in 4usize..12,
        rounds in 3usize..10,
        churny in 0u8..2,
        sampling in 0u8..3,
        seed in 1u64..300,
        method_sel in 0usize..3,
    ) {
        let scenario = any_scenario("mono", agents, rounds, (0, churny == 1, sampling), 0.0, None);
        let method = [Method::ComDml, Method::FedAvg, Method::Gossip][method_sel];
        let job = run_job(&scenario, method, seed);
        let mut prev = 0.0f64;
        for (r, &acc) in job.accuracy_trajectory.iter().enumerate() {
            prop_assert!(acc >= prev - 1e-12, "round {r}: {acc} < {prev}");
            prev = acc;
        }
    }

    // Satellite property 2: under churn, staleness and sampling — dips and
    // all — the realized trajectory is pointwise at or below the ideal
    // closed-form curve (one fresh full-participation round per round).
    #[test]
    fn trajectory_is_bounded_by_the_ideal_curve(
        agents in 4usize..12,
        rounds in 3usize..10,
        agg in 0u8..3,
        churny in 0u8..2,
        sampling in 0u8..3,
        dip in 0.0f64..1.5,
        mix_pct in 0u8..101,
        seed in 1u64..300,
        method_sel in 0usize..3,
    ) {
        // Half the draws use the pure `iid` selection, half a mix.
        let mix = (mix_pct % 2 == 0).then_some(f64::from(mix_pct) / 100.0);
        let scenario =
            any_scenario("bound", agents, rounds, (agg, churny == 1, sampling), dip, mix);
        let method = [Method::ComDml, Method::FedAvg, Method::Gossip][method_sel];
        let curve = scenario.learning_curve();
        let job = run_job(&scenario, method, seed);
        for (r, &acc) in job.accuracy_trajectory.iter().enumerate() {
            let ideal = curve.accuracy_at((r + 1) as f64);
            prop_assert!(
                acc <= ideal + 1e-9,
                "round {r}: realized {acc} above ideal {ideal}"
            );
        }
    }
}
