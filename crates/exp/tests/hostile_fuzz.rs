//! Fuzz-style negative tests for the heterogeneity-distribution and
//! hostile-world spec surface: malformed parameters — negative `std_dev`,
//! `min > max`, empty traces, out-of-range hostile knobs — must fail
//! [`ScenarioSpec`] validation with a described error naming the field,
//! and must **never panic**, whether they arrive programmatically or
//! through a JSON spec file. The proptest at the bottom sprays arbitrary
//! (including degenerate) parameters through `validate` and, for the
//! survivors, through `parse ∘ render`, asserting the only two outcomes
//! are `Ok` and a descriptive `Err`.

use comdml_exp::{Method, ScenarioSpec, SweepSpec};
use comdml_simnet::{
    ArrivalProcess, ByzantineConfig, DistributionConfig, DiurnalCycle, PartitionSchedule,
};
use proptest::prelude::*;

fn wrap(s: ScenarioSpec) -> SweepSpec {
    SweepSpec::new("x").method(Method::ComDml).scenario(s)
}

/// Every malformed distribution must be rejected in every slot that
/// accepts one, with the slot's name in the error.
#[test]
fn malformed_distributions_fail_validation_in_every_slot() {
    let bad = [
        DistributionConfig::Fixed { value: 0.0 },
        DistributionConfig::Fixed { value: -3.0 },
        DistributionConfig::Fixed { value: f64::NAN },
        DistributionConfig::Fixed { value: f64::INFINITY },
        DistributionConfig::Uniform { min: 5.0, max: 1.0 },
        DistributionConfig::Uniform { min: -1.0, max: 2.0 },
        DistributionConfig::Uniform { min: 1.0, max: f64::NAN },
        DistributionConfig::Normal { mean: 2.0, std_dev: -0.5 },
        DistributionConfig::Normal { mean: -2.0, std_dev: 0.5 },
        DistributionConfig::Normal { mean: 2.0, std_dev: f64::NAN },
        DistributionConfig::LogNormal { mu: 0.0, sigma: -1.0 },
        DistributionConfig::LogNormal { mu: f64::NAN, sigma: 0.5 },
        DistributionConfig::Trace { values: vec![] },
        DistributionConfig::Trace { values: vec![1.0, -2.0] },
        DistributionConfig::Trace { values: vec![1.0, f64::NAN] },
    ];
    for d in &bad {
        for (slot, s) in [
            ("cpu_dist", ScenarioSpec::new("a").cpu_dist(d.clone())),
            ("link_dist", ScenarioSpec::new("a").link_dist(d.clone())),
            ("lifetime_dist", ScenarioSpec::new("a").lifetime_dist(d.clone())),
            ("arrivals gap", ScenarioSpec::new("a").arrivals(ArrivalProcess::Gaps(d.clone()))),
        ] {
            let err = wrap(s).validate().expect_err(&format!("{d:?} in {slot} must fail"));
            assert!(err.contains(slot), "error {err:?} does not name the slot {slot}");
        }
    }
}

#[test]
fn malformed_hostile_knobs_fail_validation() {
    let bad_diurnal = [
        DiurnalCycle { period_s: 0.0, min_factor: 0.5 },
        DiurnalCycle { period_s: -10.0, min_factor: 0.5 },
        DiurnalCycle { period_s: f64::NAN, min_factor: 0.5 },
        DiurnalCycle { period_s: 100.0, min_factor: 0.0 },
        DiurnalCycle { period_s: 100.0, min_factor: 1.5 },
        DiurnalCycle { period_s: 100.0, min_factor: f64::NAN },
    ];
    for d in bad_diurnal {
        let err = wrap(ScenarioSpec::new("a").diurnal(d)).validate().unwrap_err();
        assert!(err.contains("diurnal"), "error {err:?} does not name diurnal");
    }
    let bad_partition = [
        PartitionSchedule { groups: 0, period_s: 100.0, outage_s: 10.0 },
        PartitionSchedule { groups: 1, period_s: 100.0, outage_s: 10.0 },
        PartitionSchedule { groups: 3, period_s: 0.0, outage_s: 10.0 },
        PartitionSchedule { groups: 3, period_s: 100.0, outage_s: 0.0 },
        PartitionSchedule { groups: 3, period_s: 100.0, outage_s: 150.0 },
        PartitionSchedule { groups: 3, period_s: 100.0, outage_s: f64::NAN },
    ];
    for p in bad_partition {
        let err = wrap(ScenarioSpec::new("a").partition(p)).validate().unwrap_err();
        assert!(err.contains("partition"), "error {err:?} does not name partition");
    }
    let bad_byzantine = [
        ByzantineConfig { fraction: -0.1, speed_factor: 2.0 },
        ByzantineConfig { fraction: 1.5, speed_factor: 2.0 },
        ByzantineConfig { fraction: f64::NAN, speed_factor: 2.0 },
        ByzantineConfig { fraction: 0.2, speed_factor: 0.0 },
        ByzantineConfig { fraction: 0.2, speed_factor: -1.0 },
        ByzantineConfig { fraction: 0.2, speed_factor: f64::NAN },
    ];
    for b in bad_byzantine {
        let err = wrap(ScenarioSpec::new("a").byzantine(b)).validate().unwrap_err();
        assert!(err.contains("byzantine"), "error {err:?} does not name byzantine");
    }
}

/// The JSON path rejects the same degenerate inputs (parse runs validate),
/// plus structural problems the builders cannot express: unknown
/// distribution kinds and missing parameter fields.
#[test]
fn malformed_json_specs_error_and_never_panic() {
    let spec = |scenario_fields: &str| {
        format!(
            r#"{{"name":"t","seeds":{{"base":1,"count":1}},"methods":["comdml"],
                "scenarios":[{{"name":"s",{scenario_fields}}}]}}"#
        )
    };
    for (fields, expect) in [
        (r#""cpu_dist":{"kind":"zipf","s":1.1}"#, "zipf"),
        (r#""cpu_dist":{"kind":"normal","mean":2.0}"#, "std_dev"),
        (r#""cpu_dist":{"kind":"uniform","min":5.0,"max":1.0}"#, "min 5 exceeds max 1"),
        (r#""link_dist":{"kind":"normal","mean":40.0,"std_dev":-2.0}"#, "std_dev"),
        (r#""lifetime_dist":{"kind":"trace","values":[]}"#, "empty"),
        (r#""arrivals":{"kind":"gaps"}"#, "gap"),
        (r#""arrivals":{"kind":"gaps","gap":{"kind":"fixed","value":-5.0}}"#, "value"),
        (r#""diurnal":{"period_s":3600.0}"#, "min_factor"),
        (r#""diurnal":{"period_s":3600.0,"min_factor":2.0}"#, "min_factor"),
        (r#""partition":{"groups":1,"period_s":100.0,"outage_s":10.0}"#, "groups"),
        (r#""partition":{"period_s":100.0,"outage_s":10.0}"#, "groups"),
        (r#""byzantine":{"fraction":1.5,"speed_factor":2.0}"#, "fraction"),
        (r#""byzantine":{"fraction":0.2}"#, "speed_factor"),
    ] {
        let err = SweepSpec::parse(&spec(fields)).expect_err(fields);
        assert!(err.contains(expect), "parse of {fields} gave {err:?}, expected {expect:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Arbitrary — including degenerate — parameters only ever produce Ok
    // or a descriptive Err, and everything that validates survives the
    // parse ∘ render round trip bit for bit. The value pool deliberately
    // includes 0, negatives, and huge magnitudes.
    #[test]
    fn arbitrary_parameters_validate_or_error_without_panicking(
        which in 0u8..6,
        a_sel in 0u8..6,
        b_sel in 0u8..6,
        spread in 0.01f64..1.0e6,
        groups in 0usize..10,
    ) {
        // A value pool that deliberately includes 0, negatives and huge
        // magnitudes alongside an ordinary positive draw.
        let pick = |sel: u8| match sel {
            0 => -1.0e9,
            1 => -1.0,
            2 => 0.0,
            3 => 1.0e-9,
            4 => spread,
            _ => 1.0e18,
        };
        let (a, b) = (pick(a_sel), pick(b_sel));
        let mut s = ScenarioSpec::new("fuzz");
        s = match which {
            0 => s.cpu_dist(DistributionConfig::Uniform { min: a, max: b }),
            1 => s.link_dist(DistributionConfig::Normal { mean: a, std_dev: b }),
            2 => s.lifetime_dist(DistributionConfig::LogNormal { mu: a, sigma: b }),
            3 => s.diurnal(DiurnalCycle { period_s: a, min_factor: b }),
            4 => s.partition(PartitionSchedule { groups, period_s: a, outage_s: b }),
            _ => s.byzantine(ByzantineConfig { fraction: a, speed_factor: b }),
        };
        let spec = wrap(s);
        match spec.validate() {
            Ok(()) => {
                let text = spec.render();
                let back = SweepSpec::parse(&text).expect("validated specs re-parse");
                prop_assert_eq!(&back, &spec);
            }
            Err(e) => prop_assert!(!e.is_empty(), "errors must describe the problem"),
        }
    }
}
