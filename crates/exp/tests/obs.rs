//! The observability no-perturbation contract, end to end: enabling
//! metrics, spans and the JSONL trace must not move a single byte of any
//! simulation output. One sequential test owns the process-global obs
//! state (this file is its own test binary, so no sibling can race it).

use comdml_core::{ComDmlConfig, EventGranularity, FleetSim};
use comdml_exp::{Method, ScenarioSpec, SweepRunner, SweepSpec};
use comdml_obs::Value;
use comdml_simnet::{ArrivalProcess, FleetConfig, SessionLifetime};

fn sweep_bytes() -> String {
    let spec = SweepSpec::new("obs_identity")
        .seeds(7, 2)
        .method(Method::ComDml)
        .method(Method::FedAvg)
        .scenario(ScenarioSpec::new("mini").agents(5).rounds(3))
        .scenario(ScenarioSpec::new("churny").agents(7).rounds(4).sampling_rate(0.5));
    SweepRunner::new().progress(false).run(&spec).expect("spec validates").to_value().render()
}

/// The same order-sensitive FNV digest the core fleet tests pin, over the
/// same churny 25-round synchronous run — so this test fails if
/// instrumentation perturbs *either* the sweep artifacts or the fleet
/// dynamics.
fn fleet_digest() -> u64 {
    let fleet = FleetConfig::new(16, 5)
        .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.002 })
        .lifetime(SessionLifetime::Exponential { mean_s: 5_000.0 })
        .samples_per_agent(500);
    let config = ComDmlConfig {
        churn: None,
        candidate_offloads: Some(vec![8, 16, 24, 32, 40, 48]),
        granularity: EventGranularity::Coarse,
        ..ComDmlConfig::default()
    };
    let mut sim = FleetSim::new(fleet, config);
    let mut d = 0xcbf2_9ce4_8422_2325u64;
    for _ in 0..25 {
        let s = sim.step();
        for v in [
            s.round_s.to_bits(),
            s.efficiency.to_bits(),
            s.participants as u64,
            s.cohort as u64,
            s.joins as u64,
            s.leaves as u64,
            s.repairs as u64,
            s.events_processed,
        ] {
            d = (d ^ v).wrapping_mul(0x1000_0000_01b3);
        }
    }
    let r = sim.report();
    for v in [r.total_sim_s.to_bits(), r.effective_rounds.to_bits(), r.events_processed] {
        d = (d ^ v).wrapping_mul(0x1000_0000_01b3);
    }
    d
}

#[test]
fn instrumentation_never_moves_a_byte() {
    // Baseline: observability fully off.
    comdml_obs::set_metrics_enabled(false);
    let plain_bytes = sweep_bytes();
    let plain_digest = fleet_digest();
    assert_eq!(plain_digest, 0x6d09_9d62_a159_60ea, "pinned pre-obs fleet digest must hold");

    // Everything on: metrics, phase spans, and the JSONL trace sink.
    let trace = std::env::temp_dir().join("comdml_obs_identity_test.jsonl");
    comdml_obs::set_trace_path(&trace).unwrap();
    assert!(comdml_obs::metrics_enabled() && comdml_obs::trace_enabled());
    comdml_obs::metrics().reset();
    let traced_bytes = sweep_bytes();
    let traced_digest = fleet_digest();
    comdml_obs::disable_trace();
    comdml_obs::set_metrics_enabled(false);

    assert_eq!(traced_bytes, plain_bytes, "tracing perturbed the sweep artifact bytes");
    assert_eq!(traced_digest, plain_digest, "tracing perturbed the fleet dynamics");

    // The instrumentation actually observed the run.
    let snap = comdml_obs::metrics().snapshot();
    let counter = |k: &str| snap.counters.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
    assert_eq!(counter("sweep.jobs"), Some(8), "2 scenarios x 2 methods x 2 seeds");
    assert!(counter("simnet.events").unwrap_or(0) > 0);
    let phases = snap.phase_totals();
    for needed in ["job.run", "fleet.pairing", "fleet.round"] {
        assert!(phases.iter().any(|(n, _)| n == needed), "missing phase {needed}: {phases:?}");
    }

    // Every trace line carries the envelope; the structured kinds the
    // runner and fleet emit are all present.
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(!text.is_empty());
    let mut kinds = std::collections::BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let v = Value::parse(line).unwrap_or_else(|e| panic!("line {}: {e}: {line}", i + 1));
        assert_eq!(v.get("seq").and_then(Value::as_u64), Some(i as u64), "seq gap at line {i}");
        kinds.insert(v.get("t").and_then(Value::as_str).expect("envelope kind").to_string());
    }
    for needed in ["span", "job", "round"] {
        assert!(kinds.contains(needed), "trace never saw a {needed:?} event: {kinds:?}");
    }

    comdml_obs::metrics().reset();
    let _ = std::fs::remove_file(&trace);
}
