use std::fmt;

use serde::{Deserialize, Serialize};

use crate::AgentProfile;

/// Identifier of an agent in a simulated world.
///
/// A newtype over the agent's index; printable as `agent#7`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AgentId(pub usize);

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent#{}", self.0)
    }
}

impl From<usize> for AgentId {
    fn from(v: usize) -> Self {
        AgentId(v)
    }
}

/// Per-agent simulation state: identity, resources and task size.
///
/// The "task size" is the number of local mini-batches per round (`Ñ_i` in
/// Algorithm 1) — the paper ties workload directly to local dataset size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentState {
    /// Agent identity.
    pub id: AgentId,
    /// Current compute/communication profile (may change via churn).
    pub profile: AgentProfile,
    /// Number of local training samples.
    pub num_samples: usize,
    /// Mini-batch size used locally.
    pub batch_size: usize,
}

impl AgentState {
    /// Creates a new agent state.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(id: AgentId, profile: AgentProfile, num_samples: usize, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self { id, profile, num_samples, batch_size }
    }

    /// Local mini-batches per round (`Ñ_i`), rounding up so every sample is
    /// visited once per local epoch.
    pub fn num_batches(&self) -> usize {
        self.num_samples.div_ceil(self.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_round_up() {
        let a = AgentState::new(AgentId(0), AgentProfile::new(1.0, 10.0), 501, 100);
        assert_eq!(a.num_batches(), 6);
        let b = AgentState::new(AgentId(1), AgentProfile::new(1.0, 10.0), 500, 100);
        assert_eq!(b.num_batches(), 5);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(AgentId(7).to_string(), "agent#7");
    }

    #[test]
    fn id_conversion() {
        let id: AgentId = 3usize.into();
        assert_eq!(id, AgentId(3));
    }
}
