//! Declarative sampling distributions for heterogeneity knobs.
//!
//! The paper fixes heterogeneity to two small grids (§V-A). Real fleets are
//! messier: CPU speeds are roughly lognormal across device generations, link
//! bandwidth varies continuously, and session lifetimes follow heavy tails.
//! [`DistributionConfig`] makes the *shape* of each knob declarative — a
//! scenario spec picks `lognormal`/`normal`/`uniform`/`fixed`/`trace` per
//! knob and the simulation threads a seeded [`DistSampler`] through profile
//! generation, session lifetimes and arrival gaps.
//!
//! Samplers draw **at most one uniform** per sample (`fixed` and `trace`
//! draw none), so swapping one distribution for another never perturbs the
//! draw count of an unrelated stream. The normal quantile uses Acklam's
//! rational approximation rather than a rejection method for the same
//! reason: rejection consumes a data-dependent number of uniforms, which
//! would make downstream streams depend on sampled *values*.
//!
//! # Example
//!
//! ```
//! use comdml_simnet::{DistSampler, DistributionConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let cfg = DistributionConfig::LogNormal { mu: 0.0, sigma: 0.5 };
//! cfg.validate("cpu_dist").unwrap();
//! let mut s = DistSampler::new(cfg);
//! let mut rng = StdRng::seed_from_u64(7);
//! let v = s.sample(&mut rng);
//! assert!(v > 0.0);
//! ```

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Samples are clamped to this floor so a wide `normal` can never emit a
/// non-positive CPU speed, bandwidth, lifetime or arrival gap (profiles
/// assert positivity; a zero arrival gap would admit infinitely many agents
/// in one round).
pub const DIST_SAMPLE_FLOOR: f64 = 1e-6;

/// A declarative sampling distribution, tagged for JSON specs.
///
/// All distributions describe a positive quantity; [`DistSampler`] clamps
/// every sample to [`DIST_SAMPLE_FLOOR`]. `LogNormal` is parameterized by
/// the mean/std-dev of the *underlying normal* (`μ`, `σ`), the standard
/// convention: its mean is `exp(μ + σ²/2)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DistributionConfig {
    /// Every sample is exactly `value`.
    Fixed {
        /// The constant value.
        value: f64,
    },
    /// Uniform on `[min, max]`.
    Uniform {
        /// Inclusive lower bound (positive).
        min: f64,
        /// Inclusive upper bound (`>= min`).
        max: f64,
    },
    /// Normal with the given mean and standard deviation, clamped positive.
    Normal {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation (non-negative).
        std_dev: f64,
    },
    /// Lognormal: `exp(N(μ, σ²))`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal (non-negative).
        sigma: f64,
    },
    /// Replays `values` in order, cycling; consumes no randomness.
    Trace {
        /// The replayed values (non-empty, all positive and finite).
        values: Vec<f64>,
    },
}

impl DistributionConfig {
    /// Checks the parameters, returning a `"{ctx}: ..."`-prefixed error for
    /// anything degenerate (negative `std_dev`, `min > max`, empty trace,
    /// non-finite or non-positive values).
    pub fn validate(&self, ctx: &str) -> Result<(), String> {
        let pos = |name: &str, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{ctx}: {name} must be positive and finite, got {v}"))
            }
        };
        match self {
            Self::Fixed { value } => pos("value", *value),
            Self::Uniform { min, max } => {
                pos("min", *min)?;
                pos("max", *max)?;
                if min > max {
                    return Err(format!("{ctx}: min {min} exceeds max {max}"));
                }
                Ok(())
            }
            Self::Normal { mean, std_dev } => {
                pos("mean", *mean)?;
                if !std_dev.is_finite() || *std_dev < 0.0 {
                    return Err(format!(
                        "{ctx}: std_dev must be non-negative and finite, got {std_dev}"
                    ));
                }
                Ok(())
            }
            Self::LogNormal { mu, sigma } => {
                if !mu.is_finite() {
                    return Err(format!("{ctx}: mu must be finite, got {mu}"));
                }
                if !sigma.is_finite() || *sigma < 0.0 {
                    return Err(format!(
                        "{ctx}: sigma must be non-negative and finite, got {sigma}"
                    ));
                }
                Ok(())
            }
            Self::Trace { values } => {
                if values.is_empty() {
                    return Err(format!("{ctx}: trace must not be empty"));
                }
                for (i, &v) in values.iter().enumerate() {
                    if !v.is_finite() || v <= 0.0 {
                        return Err(format!(
                            "{ctx}: trace[{i}] must be positive and finite, got {v}"
                        ));
                    }
                }
                Ok(())
            }
        }
    }

    /// The distribution's spec tag (`fixed` / `uniform` / `normal` /
    /// `lognormal` / `trace`), shared by the JSON codec and error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Fixed { .. } => "fixed",
            Self::Uniform { .. } => "uniform",
            Self::Normal { .. } => "normal",
            Self::LogNormal { .. } => "lognormal",
            Self::Trace { .. } => "trace",
        }
    }
}

/// A stateful sampler over a [`DistributionConfig`].
///
/// Stateful only for `trace` (a replay cursor); the random variants are
/// pure functions of the rng stream. Each sample consumes exactly one
/// uniform for `uniform`/`normal`/`lognormal` and zero for `fixed`/`trace`.
#[derive(Debug, Clone)]
pub struct DistSampler {
    config: DistributionConfig,
    cursor: usize,
}

impl DistSampler {
    /// Wraps a validated config. Call [`DistributionConfig::validate`]
    /// first; sampling a degenerate config clamps rather than panics, but
    /// the values will be garbage.
    pub fn new(config: DistributionConfig) -> Self {
        Self { config, cursor: 0 }
    }

    /// The wrapped config.
    pub fn config(&self) -> &DistributionConfig {
        &self.config
    }

    /// Draws one sample, clamped to [`DIST_SAMPLE_FLOOR`].
    pub fn sample(&mut self, rng: &mut StdRng) -> f64 {
        let v = match &self.config {
            DistributionConfig::Fixed { value } => *value,
            DistributionConfig::Uniform { min, max } => {
                let u = rng.gen::<f64>();
                min + (max - min) * u
            }
            DistributionConfig::Normal { mean, std_dev } => mean + std_dev * standard_normal(rng),
            DistributionConfig::LogNormal { mu, sigma } => {
                (mu + sigma * standard_normal(rng)).exp()
            }
            DistributionConfig::Trace { values } => {
                let v = values[self.cursor % values.len()];
                self.cursor += 1;
                v
            }
        };
        v.max(DIST_SAMPLE_FLOOR)
    }
}

/// One standard-normal draw from a single uniform via the inverse CDF.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u = rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12);
    inverse_normal_cdf(u)
}

/// Acklam's rational approximation of the standard normal quantile
/// (relative error below `1.15e-9` over the open unit interval) — one
/// uniform per normal draw, unlike rejection methods whose draw count is
/// value-dependent.
fn inverse_normal_cdf(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mean_of(cfg: DistributionConfig, n: usize, seed: u64) -> (f64, f64) {
        let mut s = DistSampler::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..n).map(|_| s.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn fixed_is_exact_and_draw_free() {
        let mut s = DistSampler::new(DistributionConfig::Fixed { value: 2.5 });
        let mut rng = StdRng::seed_from_u64(1);
        let before = rng.clone().gen::<f64>();
        for _ in 0..10 {
            assert_eq!(s.sample(&mut rng), 2.5);
        }
        assert_eq!(rng.gen::<f64>(), before, "fixed must not consume randomness");
    }

    #[test]
    fn trace_cycles_in_order_without_randomness() {
        let mut s = DistSampler::new(DistributionConfig::Trace { values: vec![1.0, 2.0, 3.0] });
        let mut rng = StdRng::seed_from_u64(1);
        let before = rng.clone().gen::<f64>();
        let got: Vec<f64> = (0..7).map(|_| s.sample(&mut rng)).collect();
        assert_eq!(got, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]);
        assert_eq!(rng.gen::<f64>(), before, "trace must not consume randomness");
    }

    #[test]
    fn uniform_mean_and_bounds() {
        let cfg = DistributionConfig::Uniform { min: 2.0, max: 6.0 };
        let (mean, _) = mean_of(cfg.clone(), 20_000, 11);
        assert!((mean - 4.0).abs() < 0.05, "uniform mean drifted: {mean}");
        let mut s = DistSampler::new(cfg);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..1000 {
            let v = s.sample(&mut rng);
            assert!((2.0..=6.0).contains(&v), "out of bounds: {v}");
        }
    }

    #[test]
    fn normal_mean_and_variance() {
        let (mean, var) =
            mean_of(DistributionConfig::Normal { mean: 10.0, std_dev: 2.0 }, 20_000, 13);
        assert!((mean - 10.0).abs() < 0.06, "normal mean drifted: {mean}");
        assert!((var - 4.0).abs() < 0.25, "normal variance drifted: {var}");
    }

    #[test]
    fn lognormal_mean_matches_closed_form() {
        // E[exp(N(μ, σ²))] = exp(μ + σ²/2).
        let (mu, sigma) = (0.2f64, 0.4f64);
        let expected = (mu + sigma * sigma / 2.0).exp();
        let (mean, _) = mean_of(DistributionConfig::LogNormal { mu, sigma }, 40_000, 17);
        assert!((mean / expected - 1.0).abs() < 0.02, "lognormal mean {mean} vs {expected}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        for cfg in [
            DistributionConfig::Uniform { min: 1.0, max: 2.0 },
            DistributionConfig::Normal { mean: 3.0, std_dev: 1.0 },
            DistributionConfig::LogNormal { mu: 0.0, sigma: 0.7 },
        ] {
            let draw = |seed: u64| {
                let mut s = DistSampler::new(cfg.clone());
                let mut rng = StdRng::seed_from_u64(seed);
                (0..32).map(|_| s.sample(&mut rng)).collect::<Vec<f64>>()
            };
            assert_eq!(draw(5), draw(5), "{} not deterministic", cfg.kind());
            assert_ne!(draw(5), draw(6), "{} ignores the seed", cfg.kind());
        }
    }

    #[test]
    fn samples_stay_positive_even_for_wide_normals() {
        let cfg = DistributionConfig::Normal { mean: 0.5, std_dev: 50.0 };
        let mut s = DistSampler::new(cfg);
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..5000 {
            assert!(s.sample(&mut rng) >= DIST_SAMPLE_FLOOR);
        }
    }

    #[test]
    fn inverse_cdf_hits_known_quantiles() {
        // Φ⁻¹(0.5) = 0, Φ⁻¹(0.975) ≈ 1.959964, and symmetry.
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959_964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + inverse_normal_cdf(0.975)).abs() < 1e-7);
        // Tail branch sanity.
        assert!(inverse_normal_cdf(0.001) < -3.0);
        assert!(inverse_normal_cdf(0.999) > 3.0);
    }

    #[test]
    fn validation_rejects_degenerate_parameters() {
        let bad = [
            DistributionConfig::Fixed { value: 0.0 },
            DistributionConfig::Fixed { value: f64::NAN },
            DistributionConfig::Uniform { min: 5.0, max: 1.0 },
            DistributionConfig::Uniform { min: -1.0, max: 1.0 },
            DistributionConfig::Normal { mean: 1.0, std_dev: -0.5 },
            DistributionConfig::Normal { mean: f64::INFINITY, std_dev: 1.0 },
            DistributionConfig::LogNormal { mu: 0.0, sigma: -1.0 },
            DistributionConfig::LogNormal { mu: f64::NAN, sigma: 1.0 },
            DistributionConfig::Trace { values: vec![] },
            DistributionConfig::Trace { values: vec![1.0, -2.0] },
            DistributionConfig::Trace { values: vec![f64::NAN] },
        ];
        for cfg in bad {
            let err = cfg.validate("knob").unwrap_err();
            assert!(err.starts_with("knob:"), "error missing context: {err}");
        }
    }

    #[test]
    fn validation_accepts_every_well_formed_variant() {
        let good = [
            DistributionConfig::Fixed { value: 1.0 },
            DistributionConfig::Uniform { min: 1.0, max: 1.0 },
            DistributionConfig::Normal { mean: 2.0, std_dev: 0.0 },
            DistributionConfig::LogNormal { mu: -1.0, sigma: 0.0 },
            DistributionConfig::Trace { values: vec![0.5] },
        ];
        for cfg in good {
            cfg.validate("knob").unwrap_or_else(|e| panic!("rejected {cfg:?}: {e}"));
        }
    }
}
