use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The paper's CPU profile grid (§V-A): 4, 2, 1, 0.5 and 0.2 CPUs.
pub const CPU_PROFILES: [f64; 5] = [4.0, 2.0, 1.0, 0.5, 0.2];

/// The paper's non-zero link profile grid in Mbps. A 0 Mbps link represents
/// a disconnected agent and is modelled via [`AgentProfile::disconnected`]
/// or topology edges rather than steady-state assignment.
pub const LINK_PROFILES_MBPS: [f64; 4] = [10.0, 20.0, 50.0, 100.0];

/// Computation and communication capacity of one agent.
///
/// # Example
///
/// ```
/// use comdml_simnet::AgentProfile;
///
/// let p = AgentProfile::new(2.0, 50.0);
/// assert!(p.is_connected());
/// assert!(!AgentProfile::disconnected(1.0).is_connected());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgentProfile {
    /// CPU capacity in abstract "CPU units" (the paper's 0.2–4 grid).
    pub cpus: f64,
    /// Uplink/downlink capacity in Mbps; 0 means disconnected.
    pub link_mbps: f64,
}

impl AgentProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is not positive or `link_mbps` is negative.
    pub fn new(cpus: f64, link_mbps: f64) -> Self {
        assert!(cpus > 0.0, "cpu capacity must be positive, got {cpus}");
        assert!(link_mbps >= 0.0, "link speed cannot be negative, got {link_mbps}");
        Self { cpus, link_mbps }
    }

    /// A profile whose link is down (the paper's 0 Mbps case).
    pub fn disconnected(cpus: f64) -> Self {
        Self::new(cpus, 0.0)
    }

    /// Whether the agent currently has any network connectivity.
    pub fn is_connected(&self) -> bool {
        self.link_mbps > 0.0
    }

    /// Samples a profile uniformly from the paper's grid.
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        let cpus = *CPU_PROFILES.choose(rng).expect("non-empty grid");
        let link = *LINK_PROFILES_MBPS.choose(rng).expect("non-empty grid");
        Self::new(cpus, link)
    }
}

/// Assigns profiles to `k` agents so each grid point gets an equal share
/// ("randomly assigning 20% of the agents to each CPU and communication
/// speed profile combination", §V-B.2), shuffling the assignment with `rng`.
///
/// When `k` is not a multiple of the grid size the remainder is sampled
/// uniformly.
pub fn assign_profiles<R: Rng>(k: usize, rng: &mut R) -> Vec<AgentProfile> {
    let per_cell = k / CPU_PROFILES.len();
    let mut cpus: Vec<f64> =
        CPU_PROFILES.iter().flat_map(|&c| std::iter::repeat_n(c, per_cell)).collect();
    // Links cycle through the grid and are shuffled *independently* of the
    // CPU tiers, so compute and communication heterogeneity are uncorrelated
    // (the paper assigns agents to CPU × link combinations randomly).
    let mut links: Vec<f64> =
        (0..cpus.len()).map(|i| LINK_PROFILES_MBPS[i % LINK_PROFILES_MBPS.len()]).collect();
    cpus.shuffle(rng);
    links.shuffle(rng);
    let mut out: Vec<AgentProfile> =
        cpus.into_iter().zip(links).map(|(c, l)| AgentProfile::new(c, l)).collect();
    while out.len() < k {
        out.push(AgentProfile::sample(rng));
    }
    out.shuffle(rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_matches_paper() {
        assert_eq!(CPU_PROFILES, [4.0, 2.0, 1.0, 0.5, 0.2]);
        assert_eq!(LINK_PROFILES_MBPS, [10.0, 20.0, 50.0, 100.0]);
    }

    #[test]
    fn assignment_is_balanced_for_multiples() {
        let mut rng = StdRng::seed_from_u64(1);
        let profiles = assign_profiles(10, &mut rng);
        assert_eq!(profiles.len(), 10);
        for &c in &CPU_PROFILES {
            let n = profiles.iter().filter(|p| p.cpus == c).count();
            assert_eq!(n, 2, "cpu tier {c} should appear twice in 10 agents");
        }
    }

    #[test]
    fn assignment_handles_remainders() {
        let mut rng = StdRng::seed_from_u64(2);
        let profiles = assign_profiles(7, &mut rng);
        assert_eq!(profiles.len(), 7);
        assert!(profiles.iter().all(|p| p.cpus > 0.0 && p.link_mbps > 0.0));
    }

    #[test]
    fn disconnected_profile() {
        let p = AgentProfile::disconnected(0.5);
        assert!(!p.is_connected());
        assert_eq!(p.cpus, 0.5);
    }

    #[test]
    #[should_panic(expected = "cpu capacity")]
    fn rejects_zero_cpus() {
        let _ = AgentProfile::new(0.0, 10.0);
    }

    #[test]
    fn sample_stays_on_grid() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let p = AgentProfile::sample(&mut rng);
            assert!(CPU_PROFILES.contains(&p.cpus));
            assert!(LINK_PROFILES_MBPS.contains(&p.link_mbps));
        }
    }
}
