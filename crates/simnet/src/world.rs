use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::profile::assign_profiles;
use crate::{
    Adjacency, AgentId, AgentProfile, AgentState, DistSampler, DistributionConfig, JoinTopology,
    Topology,
};

/// Builder for a simulated world of heterogeneous agents.
///
/// # Example
///
/// ```
/// use comdml_simnet::{Topology, WorldConfig};
///
/// let world = WorldConfig::heterogeneous(20, 7)
///     .total_samples(50_000)
///     .batch_size(100)
///     .topology(Topology::Full)
///     .build();
/// assert_eq!(world.num_agents(), 20);
/// let total: usize = world.agents().iter().map(|a| a.num_samples).sum();
/// assert_eq!(total, 50_000);
/// ```
#[derive(Debug, Clone)]
pub struct WorldConfig {
    num_agents: usize,
    seed: u64,
    total_samples: usize,
    batch_size: usize,
    topology: Topology,
    sample_skew: f64,
    cpu_dist: Option<DistributionConfig>,
    link_dist: Option<DistributionConfig>,
}

impl WorldConfig {
    /// Starts a config for `k` agents with the paper's heterogeneous profile
    /// mix, deterministic under `seed`.
    pub fn heterogeneous(k: usize, seed: u64) -> Self {
        Self {
            num_agents: k,
            seed,
            total_samples: 50_000,
            batch_size: 100,
            topology: Topology::Full,
            sample_skew: 0.0,
            cpu_dist: None,
            link_dist: None,
        }
    }

    /// Replaces the paper's 5-point CPU grid with a declarative
    /// distribution. Samples come from a dedicated rng stream, so a world
    /// built without a distribution is bit-identical to one built before
    /// this knob existed.
    pub fn cpu_dist(mut self, dist: DistributionConfig) -> Self {
        self.cpu_dist = Some(dist);
        self
    }

    /// Replaces the link-bandwidth grid with a declarative distribution
    /// (Mbps), drawn from the same dedicated stream as [`Self::cpu_dist`].
    pub fn link_dist(mut self, dist: DistributionConfig) -> Self {
        self.link_dist = Some(dist);
        self
    }

    /// Sets the total number of training samples shared by all agents
    /// (50 000 for CIFAR-10/100, 90 000 for CINIC-10).
    pub fn total_samples(mut self, n: usize) -> Self {
        self.total_samples = n;
        self
    }

    /// Sets the local mini-batch size (the paper uses 100).
    pub fn batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }

    /// Sets the network topology.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Skews dataset sizes across agents: 0 gives an even split, 1 gives a
    /// strongly uneven split (sizes proportional to `1 + skew·u` for uniform
    /// `u`). The paper lists "task size" as one of the heterogeneity axes.
    pub fn sample_skew(mut self, skew: f64) -> Self {
        self.sample_skew = skew.clamp(0.0, 4.0);
        self
    }

    /// Materializes the world.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero agents or a zero batch size.
    pub fn build(self) -> World {
        assert!(self.num_agents > 0, "a world needs at least one agent");
        assert!(self.batch_size > 0, "batch size must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut profiles = assign_profiles(self.num_agents, &mut rng);
        // Distribution overrides draw from a dedicated stream *after* the
        // grid assignment consumed the main stream, so dataset weights and
        // topology below are unchanged whether or not a knob is set.
        if self.cpu_dist.is_some() || self.link_dist.is_some() {
            let mut dist_rng = StdRng::seed_from_u64(self.seed ^ 0x94d0_49bb);
            let mut cpu_s = self.cpu_dist.map(DistSampler::new);
            let mut link_s = self.link_dist.map(DistSampler::new);
            for p in &mut profiles {
                if let Some(s) = cpu_s.as_mut() {
                    p.cpus = s.sample(&mut dist_rng);
                }
                if let Some(s) = link_s.as_mut() {
                    p.link_mbps = s.sample(&mut dist_rng);
                }
            }
        }

        // Dataset split: even shares, optionally skewed.
        let k = self.num_agents;
        let weights: Vec<f64> = (0..k).map(|_| 1.0 + self.sample_skew * rng.gen::<f64>()).collect();
        let wsum: f64 = weights.iter().sum();
        let mut sizes: Vec<usize> =
            weights.iter().map(|w| (self.total_samples as f64 * w / wsum) as usize).collect();
        // Distribute rounding remainder deterministically.
        let assigned: usize = sizes.iter().sum();
        for i in 0..self.total_samples.saturating_sub(assigned) {
            sizes[i % k] += 1;
        }

        let agents: Vec<AgentState> = profiles
            .into_iter()
            .zip(sizes)
            .enumerate()
            .map(|(i, (p, n))| AgentState::new(AgentId(i), p, n, self.batch_size))
            .collect();
        let adjacency = self.topology.build(k, &mut rng);
        let mut world = World {
            agents,
            cpus: Vec::new(),
            link_col: Vec::new(),
            adjacency,
            link_scale: 1.0,
            partition: None,
            churn_rng: StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9),
            participation_rng: StdRng::seed_from_u64(self.seed ^ 0x85eb_ca6b),
        };
        world.rebuild_columns();
        world
    }
}

/// A simulated world: agents with resources and data, plus the link graph.
///
/// Pairwise link speed is the minimum of the two endpoints' link profiles
/// (a path is no faster than its slowest hop), and 0 when the topology has
/// no edge.
///
/// # Hot columns
///
/// The agent list stays the authoritative record, but the fields the event
/// engine and scheduler touch per event — CPU speed and link class — are
/// mirrored into struct-of-arrays columns ([`World::cpus`],
/// [`World::link_classes_mbps`]) so a scan over a million agents reads
/// dense `f64` arrays instead of striding through whole `AgentState`s.
/// Every mutator keeps the columns in sync; [`World::agents_mut`] hands
/// out a guard that rebuilds them when dropped.
#[derive(Debug, Clone)]
pub struct World {
    agents: Vec<AgentState>,
    /// Column mirror of `agents[i].profile.cpus`.
    cpus: Vec<f64>,
    /// Column mirror of `agents[i].profile.link_mbps`.
    link_col: Vec<f64>,
    adjacency: Adjacency,
    /// Multiplicative bandwidth scale (diurnal cycles); 1.0 = no scaling,
    /// in which case link lookups return the raw column bit-for-bit.
    link_scale: f64,
    /// Active regional outage as `(groups, isolated_region)`: links between
    /// the isolated region (`id % groups == isolated_region`) and the rest
    /// of the fleet read as 0 Mbps until cleared.
    partition: Option<(usize, usize)>,
    /// Drives profile churn only. Participation sampling has its own stream
    /// ([`World::sample_participants`]) so enabling one feature never
    /// perturbs the other's outcomes under a fixed seed.
    churn_rng: StdRng,
    participation_rng: StdRng,
}

impl World {
    /// Builds a world from explicit parts (used by tests and baselines).
    ///
    /// # Panics
    ///
    /// Panics if `agents.len()` differs from the adjacency size.
    pub fn from_parts(agents: Vec<AgentState>, adjacency: Adjacency, seed: u64) -> Self {
        assert_eq!(agents.len(), adjacency.len(), "agents and adjacency must agree");
        let mut world = Self {
            agents,
            cpus: Vec::new(),
            link_col: Vec::new(),
            adjacency,
            link_scale: 1.0,
            partition: None,
            churn_rng: StdRng::seed_from_u64(seed),
            participation_rng: StdRng::seed_from_u64(seed ^ 0x85eb_ca6b),
        };
        world.rebuild_columns();
        world
    }

    /// Recomputes the hot columns from the agent list.
    fn rebuild_columns(&mut self) {
        self.cpus.clear();
        self.link_col.clear();
        self.cpus.extend(self.agents.iter().map(|a| a.profile.cpus));
        self.link_col.extend(self.agents.iter().map(|a| a.profile.link_mbps));
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }

    /// All agent states.
    pub fn agents(&self) -> &[AgentState] {
        &self.agents
    }

    /// Mutable agent states (used by failure-injection tests). Returns a
    /// guard that dereferences to the agent slice and re-syncs the hot
    /// columns when dropped, so callers can mutate profiles freely without
    /// the columns going stale.
    pub fn agents_mut(&mut self) -> AgentsMut<'_> {
        AgentsMut { world: self }
    }

    /// The per-agent CPU-speed column (`agents()[i].profile.cpus`),
    /// contiguous for cache-line-sized hot-path scans.
    pub fn cpus(&self) -> &[f64] {
        &self.cpus
    }

    /// The per-agent link-class column (`agents()[i].profile.link_mbps`),
    /// contiguous for cache-line-sized hot-path scans.
    pub fn link_classes_mbps(&self) -> &[f64] {
        &self.link_col
    }

    /// One agent's state.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn agent(&self, id: AgentId) -> &AgentState {
        &self.agents[id.0]
    }

    /// The link graph.
    pub fn adjacency(&self) -> &Adjacency {
        &self.adjacency
    }

    /// Appends a new agent to the world (elastic-fleet arrivals), connected
    /// to every existing agent via [`Adjacency::grow`], and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn push_agent(
        &mut self,
        profile: AgentProfile,
        num_samples: usize,
        batch_size: usize,
    ) -> AgentId {
        let id = AgentId(self.agents.len());
        self.agents.push(AgentState::new(id, profile, num_samples, batch_size));
        self.cpus.push(profile.cpus);
        self.link_col.push(profile.link_mbps);
        self.adjacency.grow();
        id
    }

    /// Appends a new agent wired in under the given [`JoinTopology`]
    /// (full-mesh joins behave exactly like [`World::push_agent`];
    /// Erdős–Rényi joins draw each edge from `rng`), and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn push_agent_joined<R: Rng>(
        &mut self,
        profile: AgentProfile,
        num_samples: usize,
        batch_size: usize,
        join: JoinTopology,
        rng: &mut R,
    ) -> AgentId {
        let id = AgentId(self.agents.len());
        self.agents.push(AgentState::new(id, profile, num_samples, batch_size));
        self.cpus.push(profile.cpus);
        self.link_col.push(profile.link_mbps);
        match join {
            JoinTopology::FullMesh => self.adjacency.grow(),
            JoinTopology::ErdosRenyi { p } => self.adjacency.grow_er(p, rng),
        }
        id
    }

    /// Reuses a departed agent's world slot for a newcomer: the agent state
    /// is replaced wholesale and the slot's links are rewired under the
    /// given [`JoinTopology`]. The caller (the fleet driver's free-list) is
    /// responsible for only recycling slots whose occupant has actually
    /// departed.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or `batch_size` is zero.
    pub fn recycle_agent<R: Rng>(
        &mut self,
        id: AgentId,
        profile: AgentProfile,
        num_samples: usize,
        batch_size: usize,
        join: JoinTopology,
        rng: &mut R,
    ) {
        self.agents[id.0] = AgentState::new(id, profile, num_samples, batch_size);
        self.cpus[id.0] = profile.cpus;
        self.link_col[id.0] = profile.link_mbps;
        match join {
            JoinTopology::FullMesh => self.adjacency.rewire_full(id.0),
            JoinTopology::ErdosRenyi { p } => self.adjacency.rewire_er(id.0, p, rng),
        }
    }

    /// Effective link speed between two agents in Mbps: the minimum of the
    /// endpoints' profiles, or 0 if the topology has no edge, either agent
    /// is disconnected, or an active [`World::set_partition`] cut separates
    /// them. Scaled by [`World::set_link_scale`] (diurnal cycles).
    pub fn link_mbps(&self, i: AgentId, j: AgentId) -> f64 {
        if i == j || !self.adjacency.connected(i.0, j.0) {
            return 0.0;
        }
        if let Some((groups, isolated)) = self.partition {
            if (i.0 % groups == isolated) != (j.0 % groups == isolated) {
                return 0.0;
            }
        }
        let base = self.link_col[i.0].min(self.link_col[j.0]);
        if self.link_scale == 1.0 {
            base
        } else {
            base * self.link_scale
        }
    }

    /// One agent's own uplink in Mbps under the current diurnal scale —
    /// what collectives pay per member. Partitions do not zero this: a cut
    /// separates regions, it does not sever an agent from its own region.
    pub fn uplink_mbps(&self, i: AgentId) -> f64 {
        let base = self.link_col[i.0];
        if self.link_scale == 1.0 {
            base
        } else {
            base * self.link_scale
        }
    }

    /// Sets the multiplicative bandwidth scale applied by
    /// [`World::link_mbps`] and [`World::uplink_mbps`]. A scale of exactly
    /// `1.0` short-circuits to the raw columns, bit-for-bit.
    pub fn set_link_scale(&mut self, scale: f64) {
        self.link_scale = scale;
    }

    /// Cuts the fleet into `groups` id-striped regions and isolates one of
    /// them: links crossing the `isolated` region's boundary read 0 Mbps.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero or `isolated >= groups`.
    pub fn set_partition(&mut self, groups: usize, isolated: usize) {
        assert!(groups > 0 && isolated < groups, "invalid partition {isolated}/{groups}");
        self.partition = Some((groups, isolated));
    }

    /// Heals any active partition.
    pub fn clear_partition(&mut self) {
        self.partition = None;
    }

    /// The neighbours of `i` with a usable (non-zero) link.
    pub fn reachable_neighbors(&self, i: AgentId) -> Vec<AgentId> {
        self.reachable_neighbors_iter(i).collect()
    }

    /// Iterator form of [`World::reachable_neighbors`] — no allocation, for
    /// hot paths that only scan or count.
    pub fn reachable_neighbors_iter(&self, i: AgentId) -> impl Iterator<Item = AgentId> + '_ {
        self.adjacency.neighbors_iter(i.0).map(AgentId).filter(move |&j| self.link_mbps(i, j) > 0.0)
    }

    /// Re-rolls the profiles of a `fraction` of agents, the paper's dynamic
    /// environment ("we randomly changed the profile of 20% of the agents
    /// after 100 rounds").
    pub fn churn_profiles(&mut self, fraction: f64) {
        let k = self.agents.len();
        let n = ((k as f64 * fraction).round() as usize).min(k);
        let mut ids: Vec<usize> = (0..k).collect();
        ids.shuffle(&mut self.churn_rng);
        for &i in ids.iter().take(n) {
            let p = AgentProfile::sample(&mut self.churn_rng);
            self.agents[i].profile = p;
            self.cpus[i] = p.cpus;
            self.link_col[i] = p.link_mbps;
        }
    }

    /// Samples a participation subset of the given rate (Table III uses a
    /// 20% sampling rate), always returning at least one agent.
    ///
    /// Draws from a dedicated RNG stream: toggling sampling on or off does
    /// not change which profiles churn re-rolls, and vice versa.
    pub fn sample_participants(&mut self, rate: f64) -> Vec<AgentId> {
        let all: Vec<AgentId> = (0..self.agents.len()).map(AgentId).collect();
        self.sample_participants_among(&all, rate)
    }

    /// Samples a participation subset of the given rate from an explicit
    /// candidate set — the elastic-fleet variant of
    /// [`World::sample_participants`], where the candidates are the
    /// currently *active* members rather than every agent ever seen.
    /// Returns at least one agent (unless `candidates` is empty) in
    /// ascending id order, drawing from the same dedicated participation
    /// stream.
    pub fn sample_participants_among(&mut self, candidates: &[AgentId], rate: f64) -> Vec<AgentId> {
        let k = candidates.len();
        if k == 0 {
            return Vec::new();
        }
        let n = ((k as f64 * rate).round() as usize).clamp(1, k);
        let mut ids: Vec<AgentId> = candidates.to_vec();
        ids.shuffle(&mut self.participation_rng);
        ids.truncate(n);
        ids.sort();
        ids
    }

    /// The slowest agent's solo round time given per-batch seconds computed
    /// by the caller — convenience for straggler diagnostics.
    pub fn straggler_by<F: Fn(&AgentState) -> f64>(&self, time_fn: F) -> (AgentId, f64) {
        let mut worst = (AgentId(0), 0.0);
        for a in &self.agents {
            let t = time_fn(a);
            if t > worst.1 {
                worst = (a.id, t);
            }
        }
        worst
    }
}

/// Mutable view of the agent list handed out by [`World::agents_mut`].
///
/// Dereferences to `[AgentState]`; when dropped it rebuilds the hot
/// struct-of-arrays columns so profile edits made through the view are
/// reflected in [`World::cpus`] and [`World::link_classes_mbps`].
#[derive(Debug)]
pub struct AgentsMut<'a> {
    world: &'a mut World,
}

impl std::ops::Deref for AgentsMut<'_> {
    type Target = [AgentState];

    fn deref(&self) -> &[AgentState] {
        &self.world.agents
    }
}

impl std::ops::DerefMut for AgentsMut<'_> {
    fn deref_mut(&mut self) -> &mut [AgentState] {
        &mut self.world.agents
    }
}

impl Drop for AgentsMut<'_> {
    fn drop(&mut self) {
        self.world.rebuild_columns();
    }
}

/// Summary statistics of a world used in reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorldSummary {
    /// Number of agents.
    pub num_agents: usize,
    /// Mean CPU units.
    pub mean_cpus: f64,
    /// Mean link speed (Mbps).
    pub mean_link_mbps: f64,
    /// Edge density of the topology.
    pub density: f64,
}

impl World {
    /// Computes summary statistics.
    pub fn summary(&self) -> WorldSummary {
        let k = self.agents.len() as f64;
        WorldSummary {
            num_agents: self.agents.len(),
            mean_cpus: self.agents.iter().map(|a| a.profile.cpus).sum::<f64>() / k,
            mean_link_mbps: self.agents.iter().map(|a| a.profile.link_mbps).sum::<f64>() / k,
            density: self.adjacency.density(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_splits_samples_exactly() {
        let w = WorldConfig::heterogeneous(7, 3).total_samples(1000).build();
        let total: usize = w.agents().iter().map(|a| a.num_samples).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn build_is_deterministic_under_seed() {
        let a = WorldConfig::heterogeneous(10, 5).build();
        let b = WorldConfig::heterogeneous(10, 5).build();
        assert_eq!(a.agents(), b.agents());
        assert_eq!(a.adjacency(), b.adjacency());
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorldConfig::heterogeneous(10, 5).build();
        let b = WorldConfig::heterogeneous(10, 6).build();
        assert_ne!(a.agents(), b.agents());
    }

    #[test]
    fn link_speed_is_min_of_endpoints() {
        let agents = vec![
            AgentState::new(AgentId(0), AgentProfile::new(1.0, 10.0), 100, 10),
            AgentState::new(AgentId(1), AgentProfile::new(1.0, 50.0), 100, 10),
        ];
        let adj = Adjacency::from_matrix(vec![vec![false, true], vec![true, false]]);
        let w = World::from_parts(agents, adj, 0);
        assert_eq!(w.link_mbps(AgentId(0), AgentId(1)), 10.0);
        assert_eq!(w.link_mbps(AgentId(0), AgentId(0)), 0.0);
    }

    #[test]
    fn disconnected_profile_has_no_reachable_neighbors() {
        let agents = vec![
            AgentState::new(AgentId(0), AgentProfile::disconnected(1.0), 100, 10),
            AgentState::new(AgentId(1), AgentProfile::new(1.0, 50.0), 100, 10),
        ];
        let adj = Adjacency::from_matrix(vec![vec![false, true], vec![true, false]]);
        let w = World::from_parts(agents, adj, 0);
        assert!(w.reachable_neighbors(AgentId(0)).is_empty());
        assert!(w.reachable_neighbors(AgentId(1)).is_empty());
    }

    #[test]
    fn churn_changes_a_fraction_of_profiles() {
        let mut w = WorldConfig::heterogeneous(20, 11).build();
        let before: Vec<AgentProfile> = w.agents().iter().map(|a| a.profile).collect();
        w.churn_profiles(0.2);
        let changed =
            w.agents().iter().zip(before.iter()).filter(|(a, b)| a.profile != **b).count();
        // Exactly 4 agents are re-rolled; a re-roll may land on the same
        // profile, so allow <= 4 but require the mechanism to have acted.
        assert!(changed <= 4);
        assert!(changed >= 1, "churn should usually change something");
    }

    #[test]
    fn sampling_respects_rate_and_is_nonempty() {
        let mut w = WorldConfig::heterogeneous(50, 13).build();
        let s = w.sample_participants(0.2);
        assert_eq!(s.len(), 10);
        let tiny = w.sample_participants(0.0001);
        assert_eq!(tiny.len(), 1);
    }

    #[test]
    fn sampling_does_not_perturb_churn_stream() {
        let mut plain = WorldConfig::heterogeneous(20, 11).build();
        let mut sampled = WorldConfig::heterogeneous(20, 11).build();
        // Only one world draws participation samples first…
        let _ = sampled.sample_participants(0.2);
        let _ = sampled.sample_participants(0.2);
        // …yet churn outcomes must stay identical: the streams are decoupled.
        plain.churn_profiles(0.5);
        sampled.churn_profiles(0.5);
        assert_eq!(plain.agents(), sampled.agents());
    }

    #[test]
    fn churn_does_not_perturb_sampling_stream() {
        let mut plain = WorldConfig::heterogeneous(20, 13).build();
        let mut churned = WorldConfig::heterogeneous(20, 13).build();
        churned.churn_profiles(0.5);
        assert_eq!(plain.sample_participants(0.3), churned.sample_participants(0.3));
    }

    #[test]
    fn sample_among_respects_candidates_and_rate() {
        let mut w = WorldConfig::heterogeneous(40, 29).build();
        let candidates: Vec<AgentId> = (10..30).map(AgentId).collect();
        let s = w.sample_participants_among(&candidates, 0.5);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|id| candidates.contains(id)));
        assert!(s.windows(2).all(|p| p[0] < p[1]), "ascending ids");
        assert!(w.sample_participants_among(&[], 0.5).is_empty());
        assert_eq!(w.sample_participants_among(&candidates, 1e-9).len(), 1);
    }

    #[test]
    fn er_joins_preserve_sparse_topology() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut w = WorldConfig::heterogeneous(30, 31).topology(Topology::random(0.2)).build();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            w.push_agent_joined(
                AgentProfile::new(1.0, 50.0),
                100,
                10,
                JoinTopology::ErdosRenyi { p: 0.2 },
                &mut rng,
            );
        }
        let d = w.adjacency().density();
        assert!((0.1..0.3).contains(&d), "density {d} should stay near 0.2");
    }

    #[test]
    fn recycled_slot_takes_over_state_and_links() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut w = WorldConfig::heterogeneous(6, 37).topology(Topology::random(0.3)).build();
        let mut rng = StdRng::seed_from_u64(2);
        let target = AgentId(2);
        w.recycle_agent(
            target,
            AgentProfile::new(4.0, 100.0),
            777,
            7,
            JoinTopology::FullMesh,
            &mut rng,
        );
        let a = w.agent(target);
        assert_eq!(a.profile, AgentProfile::new(4.0, 100.0));
        assert_eq!(a.num_samples, 777);
        assert_eq!(a.batch_size, 7);
        assert_eq!(w.adjacency().degree(target.0), 5, "full-mesh rewire links everyone");
    }

    #[test]
    fn skewed_sizes_are_uneven() {
        let w = WorldConfig::heterogeneous(10, 17).sample_skew(3.0).build();
        let sizes: Vec<usize> = w.agents().iter().map(|a| a.num_samples).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max as f64 > 1.5 * min as f64, "sizes {sizes:?}");
    }

    #[test]
    fn straggler_by_finds_maximum() {
        let w = WorldConfig::heterogeneous(10, 19).build();
        let (id, t) = w.straggler_by(|a| a.num_batches() as f64 / a.profile.cpus);
        for a in w.agents() {
            assert!(a.num_batches() as f64 / a.profile.cpus <= t + 1e-12);
        }
        assert!(id.0 < 10);
    }

    #[test]
    fn hot_columns_track_every_mutator() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let check = |w: &World| {
            for (i, a) in w.agents().iter().enumerate() {
                assert_eq!(w.cpus()[i], a.profile.cpus);
                assert_eq!(w.link_classes_mbps()[i], a.profile.link_mbps);
            }
        };
        let mut w = WorldConfig::heterogeneous(12, 41).build();
        check(&w);
        w.churn_profiles(0.5);
        check(&w);
        w.push_agent(AgentProfile::new(2.0, 20.0), 100, 10);
        check(&w);
        let mut rng = StdRng::seed_from_u64(3);
        w.push_agent_joined(
            AgentProfile::new(0.5, 10.0),
            100,
            10,
            JoinTopology::ErdosRenyi { p: 0.5 },
            &mut rng,
        );
        check(&w);
        w.recycle_agent(
            AgentId(1),
            AgentProfile::new(4.0, 100.0),
            50,
            5,
            JoinTopology::FullMesh,
            &mut rng,
        );
        check(&w);
        // Mutation through the guard re-syncs on drop.
        w.agents_mut()[0].profile = AgentProfile::new(1.0, 50.0);
        check(&w);
    }

    #[test]
    fn distribution_overrides_only_touch_profiles() {
        let plain = WorldConfig::heterogeneous(15, 8).sample_skew(1.0).build();
        let dist = WorldConfig::heterogeneous(15, 8)
            .sample_skew(1.0)
            .cpu_dist(DistributionConfig::Fixed { value: 3.0 })
            .build();
        // Profiles come from the override…
        assert!(dist.agents().iter().all(|a| a.profile.cpus == 3.0));
        // …links stay on the grid (only cpu_dist was set)…
        assert!(dist
            .agents()
            .iter()
            .all(|a| crate::LINK_PROFILES_MBPS.contains(&a.profile.link_mbps)));
        // …and dataset split + topology are untouched (dedicated stream).
        for (a, b) in plain.agents().iter().zip(dist.agents()) {
            assert_eq!(a.num_samples, b.num_samples);
        }
        assert_eq!(plain.adjacency(), dist.adjacency());
    }

    #[test]
    fn lognormal_profiles_leave_the_grid_deterministically() {
        let cfg = || {
            WorldConfig::heterogeneous(20, 9)
                .cpu_dist(DistributionConfig::LogNormal { mu: 0.0, sigma: 0.5 })
                .link_dist(DistributionConfig::Uniform { min: 5.0, max: 200.0 })
        };
        let a = cfg().build();
        let b = cfg().build();
        assert_eq!(a.agents(), b.agents());
        let off_grid =
            a.agents().iter().filter(|ag| !crate::CPU_PROFILES.contains(&ag.profile.cpus)).count();
        assert!(off_grid > 15, "continuous draws should leave the 5-point grid");
        assert!(a.agents().iter().all(|ag| ag.profile.cpus > 0.0));
        assert!(a.agents().iter().all(|ag| (5.0..=200.0).contains(&ag.profile.link_mbps)));
    }

    #[test]
    fn link_scale_and_partition_shape_links() {
        let agents: Vec<AgentState> = (0..4)
            .map(|i| AgentState::new(AgentId(i), AgentProfile::new(1.0, 40.0), 100, 10))
            .collect();
        let mut w = World::from_parts(agents, Adjacency::full(4), 0);
        assert_eq!(w.link_mbps(AgentId(0), AgentId(1)), 40.0);
        assert_eq!(w.uplink_mbps(AgentId(0)), 40.0);
        w.set_link_scale(0.5);
        assert_eq!(w.link_mbps(AgentId(0), AgentId(1)), 20.0);
        assert_eq!(w.uplink_mbps(AgentId(0)), 20.0);
        // Partition into 2 id-striped regions, isolate region 0 ({0, 2}).
        w.set_link_scale(1.0);
        w.set_partition(2, 0);
        assert_eq!(w.link_mbps(AgentId(0), AgentId(1)), 0.0, "cross-region link cut");
        assert_eq!(w.link_mbps(AgentId(0), AgentId(2)), 40.0, "intra-region link up");
        assert_eq!(w.link_mbps(AgentId(1), AgentId(3)), 40.0, "other region untouched");
        assert_eq!(w.uplink_mbps(AgentId(0)), 40.0, "uplink survives partition");
        w.clear_partition();
        assert_eq!(w.link_mbps(AgentId(0), AgentId(1)), 40.0, "partition heals");
    }

    #[test]
    fn summary_reports_sane_values() {
        let w = WorldConfig::heterogeneous(25, 23).topology(Topology::random(0.5)).build();
        let s = w.summary();
        assert_eq!(s.num_agents, 25);
        assert!(s.mean_cpus > 0.0 && s.mean_cpus <= 4.0);
        assert!((0.0..=1.0).contains(&s.density));
    }
}
