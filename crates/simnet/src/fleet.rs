//! The elastic multi-round fleet driver.
//!
//! The paper evaluates ComDML under agent dropouts (§V-B.5) but treats each
//! round's membership as given. [`FleetDriver`] turns membership into a
//! *process*: agents arrive according to a configurable [`ArrivalProcess`]
//! (Poisson or trace-driven), stay for a session drawn from a
//! [`SessionLifetime`] distribution (exponential, Weibull, fixed, or
//! infinite), and depart mid-round — so the fleet the round engine sees is
//! continuously evolving instead of fixed at construction.
//!
//! The driver owns the [`World`] across rounds and deliberately knows
//! nothing about round execution. Each round is a two-phase handshake:
//!
//! 1. [`FleetDriver::begin_round`] returns a [`FleetRoundPlan`]: the active
//!    membership at the round start plus every arrival/departure whose
//!    absolute fleet time falls inside the caller-supplied horizon, as
//!    round-relative [`MembershipEvent`]s. The round engine injects these as
//!    mid-round join/leave disruptions.
//! 2. [`FleetDriver::end_round`] receives the round's actual simulated
//!    duration, advances the fleet clock, and commits every membership
//!    change whose absolute time has now passed — departed agents
//!    deactivate, arrivals activate for the next round. Events the horizon
//!    missed commit at the round boundary; events the horizon overshot
//!    (beyond the actual duration) stay pending and are handed out again.
//!
//! Arrival times, session lifetimes and newcomer profiles are drawn from
//! three *independent* seeded RNG streams, lazily but in arrival order, so
//! the absolute membership timeline is a pure function of the seed — two
//! engines with different per-round durations (say ComDML vs a baseline)
//! observe the *same* agents arriving and departing at the *same* fleet
//! times, which is what makes churn comparisons apples-to-apples.
//!
//! # Example
//!
//! ```
//! use comdml_simnet::{ArrivalProcess, FleetConfig, SessionLifetime};
//!
//! let mut fleet = FleetConfig::new(20, 7)
//!     .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.01 })
//!     .lifetime(SessionLifetime::Exponential { mean_s: 500.0 })
//!     .build();
//! let plan = fleet.begin_round(100.0);
//! assert_eq!(plan.participants.len(), 20);
//! fleet.end_round(100.0);
//! assert!(fleet.active_count() <= fleet.world().num_agents());
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{
    AgentId, AgentProfile, DistSampler, DistributionConfig, JoinTopology, Topology, World,
    WorldConfig,
};

/// How new agents arrive into the fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// No arrivals: the fleet only shrinks.
    None,
    /// Homogeneous Poisson process: exponential inter-arrival times with
    /// the given rate (agents per simulated second).
    Poisson {
        /// Mean arrivals per simulated second.
        rate_per_s: f64,
    },
    /// Trace-driven schedule: explicit absolute arrival times in simulated
    /// seconds, ascending.
    Trace(Vec<f64>),
    /// Inter-arrival gaps drawn from a declarative distribution — the
    /// generalization of `Poisson` (whose gaps are exponential): a `fixed`
    /// gap gives a metronome, a `lognormal` gap gives bursty arrivals, a
    /// `trace` gap replays measured spacings. Like `Poisson`, the chain
    /// anchors on the previous arrival so the realized process is
    /// independent of round discretization.
    Gaps(DistributionConfig),
}

/// How long an agent's session lasts once it is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionLifetime {
    /// Agents never leave on their own.
    Infinite,
    /// Exponentially distributed session length (memoryless churn).
    Exponential {
        /// Mean session length in simulated seconds.
        mean_s: f64,
    },
    /// Weibull-distributed session length — `shape < 1` gives the
    /// heavy-tailed "most sessions are short, some are very long" pattern
    /// observed in volunteer-computing fleets.
    Weibull {
        /// Scale parameter λ in simulated seconds.
        scale_s: f64,
        /// Shape parameter k (1 recovers the exponential).
        shape: f64,
    },
    /// Every session lasts exactly this long.
    Fixed {
        /// Session length in simulated seconds.
        duration_s: f64,
    },
}

impl SessionLifetime {
    /// Draws one session length in seconds.
    fn sample(&self, rng: &mut StdRng) -> f64 {
        // Clamp away u == 0/1 so logs stay finite.
        let u = rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12);
        match *self {
            SessionLifetime::Infinite => f64::INFINITY,
            SessionLifetime::Exponential { mean_s } => -mean_s * (1.0 - u).ln(),
            SessionLifetime::Weibull { scale_s, shape } => {
                scale_s * (-(1.0 - u).ln()).powf(1.0 / shape.max(1e-9))
            }
            SessionLifetime::Fixed { duration_s } => duration_s,
        }
    }
}

/// A membership change inside one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipChange {
    /// The agent arrives and becomes eligible (e.g. as a replacement
    /// helper) from `at_s`; it is a full participant from the next round.
    Join,
    /// The agent departs gracefully at `at_s`.
    Leave,
}

/// One arrival or departure, relative to the current round's start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipEvent {
    /// The affected agent.
    pub agent: AgentId,
    /// Seconds after the round start at which the change occurs.
    pub at_s: f64,
    /// Whether the agent joins or leaves.
    pub kind: MembershipChange,
}

/// What one round of an elastic fleet looks like before it runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRoundPlan {
    /// Zero-based round index.
    pub round: usize,
    /// Agents active at the round start, ascending by id.
    pub participants: Vec<AgentId>,
    /// Arrivals/departures expected within the caller's horizon, ascending
    /// by `at_s`.
    pub events: Vec<MembershipEvent>,
}

impl FleetRoundPlan {
    /// Departures among `participants` (sorted ascending by id) that land
    /// *inside* a round of realized duration `round_s` (`at_s <= round_s`).
    /// The events list forecasts the caller's whole planning horizon, so a
    /// later departure stays active past `end_round` and re-appears in the
    /// next plan — this commit rule is what churn-coupled accuracy charging
    /// uses on every path, kept here so it cannot drift between them.
    pub fn committed_leaves_among(&self, participants: &[AgentId], round_s: f64) -> usize {
        self.events
            .iter()
            .filter(|e| {
                e.kind == MembershipChange::Leave
                    && e.at_s <= round_s
                    && participants.binary_search(&e.agent).is_ok()
            })
            .count()
    }
}

/// Builder for a [`FleetDriver`].
///
/// The initial world is a standard heterogeneous [`WorldConfig`] build;
/// arrivals push new agents with profiles sampled from the paper's grid.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    initial_agents: usize,
    seed: u64,
    samples_per_agent: usize,
    batch_size: usize,
    topology: Topology,
    join_topology: Option<JoinTopology>,
    arrivals: ArrivalProcess,
    lifetime: SessionLifetime,
    max_agents: usize,
    recycle_slots: bool,
    cpu_dist: Option<DistributionConfig>,
    link_dist: Option<DistributionConfig>,
    lifetime_dist: Option<DistributionConfig>,
}

impl FleetConfig {
    /// Starts a config for `k` initial agents, deterministic under `seed`.
    /// Defaults: no arrivals, infinite sessions, full mesh, 500 samples per
    /// agent in batches of 100, and a 4·k agent capacity.
    pub fn new(k: usize, seed: u64) -> Self {
        Self {
            initial_agents: k,
            seed,
            samples_per_agent: 500,
            batch_size: 100,
            topology: Topology::Full,
            join_topology: None,
            arrivals: ArrivalProcess::None,
            lifetime: SessionLifetime::Infinite,
            max_agents: 4 * k.max(1),
            recycle_slots: false,
            cpu_dist: None,
            link_dist: None,
            lifetime_dist: None,
        }
    }

    /// The seed this fleet is deterministic under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws CPU speeds from a declarative distribution instead of the
    /// paper's grid — for both the initial world and every arrival.
    pub fn cpu_dist(mut self, dist: DistributionConfig) -> Self {
        self.cpu_dist = Some(dist);
        self
    }

    /// Draws link bandwidth (Mbps) from a declarative distribution instead
    /// of the grid — initial world and arrivals alike.
    pub fn link_dist(mut self, dist: DistributionConfig) -> Self {
        self.link_dist = Some(dist);
        self
    }

    /// Draws session lifetimes (seconds) from a declarative distribution,
    /// overriding [`FleetConfig::lifetime`] entirely when set.
    pub fn lifetime_dist(mut self, dist: DistributionConfig) -> Self {
        self.lifetime_dist = Some(dist);
        self
    }

    /// Sets the arrival process.
    pub fn arrivals(mut self, a: ArrivalProcess) -> Self {
        self.arrivals = a;
        self
    }

    /// Sets the session-lifetime distribution (applies to initial agents
    /// and arrivals alike).
    pub fn lifetime(mut self, l: SessionLifetime) -> Self {
        self.lifetime = l;
        self
    }

    /// Sets local dataset size per agent (arrivals get the same).
    pub fn samples_per_agent(mut self, n: usize) -> Self {
        self.samples_per_agent = n;
        self
    }

    /// Sets the local mini-batch size.
    pub fn batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }

    /// Sets the initial topology. Unless overridden by
    /// [`FleetConfig::join_topology`], arrivals wire in under
    /// [`JoinTopology::matching`] — full-mesh worlds stay full mesh,
    /// Erdős–Rényi worlds keep their edge probability under churn.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Overrides how arrivals wire into the overlay (default: the policy
    /// matching the construction topology).
    pub fn join_topology(mut self, j: JoinTopology) -> Self {
        self.join_topology = Some(j);
        self
    }

    /// Caps total world size; arrivals beyond the cap are dropped (their
    /// RNG draws are still consumed, keeping the streams aligned).
    pub fn max_agents(mut self, cap: usize) -> Self {
        self.max_agents = cap;
        self
    }

    /// Recycles departed agents' world slots through a free-list: an
    /// arrival reuses the slot of an agent whose departure has already
    /// committed instead of growing the world, so long-running fleets stop
    /// saturating [`FleetConfig::max_agents`] and dropping arrivals (and
    /// stop growing memory without bound).
    ///
    /// Off by default. Caveat: slot availability depends on when
    /// departures *commit* (round boundaries), so at the capacity limit
    /// the admit-or-drop decision — unlike the arrival/departure timeline
    /// itself — is no longer independent of how rounds discretize time.
    pub fn recycle_slots(mut self, on: bool) -> Self {
        self.recycle_slots = on;
        self
    }

    /// Materializes the driver.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero agents or a zero batch size.
    pub fn build(self) -> FleetDriver {
        let mut wc = WorldConfig::heterogeneous(self.initial_agents, self.seed)
            .total_samples(self.samples_per_agent * self.initial_agents)
            .batch_size(self.batch_size)
            .topology(self.topology);
        if let Some(d) = self.cpu_dist.clone() {
            wc = wc.cpu_dist(d);
        }
        if let Some(d) = self.link_dist.clone() {
            wc = wc.link_dist(d);
        }
        let world = wc.build();
        let mut lifetime_rng = StdRng::seed_from_u64(self.seed ^ 0xc2b2_ae35);
        let arrival_rng = StdRng::seed_from_u64(self.seed ^ 0x27d4_eb2f);
        let profile_rng = StdRng::seed_from_u64(self.seed ^ 0x1656_67b1);
        let topology_rng = StdRng::seed_from_u64(self.seed ^ 0x7f4a_7c15);
        // Declarative-distribution overrides draw from their own stream —
        // distinct from the world's override stream so initial-world and
        // arrival draws are uncorrelated.
        let dist_rng = StdRng::seed_from_u64(self.seed ^ 0x3c6e_f372);
        let cpu_sampler = self.cpu_dist.clone().map(DistSampler::new);
        let link_sampler = self.link_dist.clone().map(DistSampler::new);
        let mut lifetime_sampler = self.lifetime_dist.clone().map(DistSampler::new);
        let gap_sampler = match &self.arrivals {
            ArrivalProcess::Gaps(d) => Some(DistSampler::new(d.clone())),
            _ => None,
        };
        let join = self.join_topology.unwrap_or(JoinTopology::matching(&self.topology));
        let k = world.num_agents();
        // Initial agents draw their session lifetimes in id order.
        let depart_at: Vec<f64> = (0..k)
            .map(|_| match lifetime_sampler.as_mut() {
                Some(s) => s.sample(&mut lifetime_rng),
                None => self.lifetime.sample(&mut lifetime_rng),
            })
            .collect();
        FleetDriver {
            world,
            cfg: self,
            join,
            clock_s: 0.0,
            round: 0,
            active: vec![true; k],
            depart_at,
            next_arrival_s: None,
            prev_arrival_s: 0.0,
            trace_idx: 0,
            arrival_rng,
            lifetime_rng,
            profile_rng,
            topology_rng,
            dist_rng,
            cpu_sampler,
            link_sampler,
            lifetime_sampler,
            gap_sampler,
            pending_joins: Vec::new(),
            free_slots: std::collections::VecDeque::new(),
            in_round: false,
            peak_active: k,
            arrivals_total: 0,
            departures_total: 0,
            arrivals_dropped: 0,
            slots_recycled: 0,
        }
    }
}

/// The multi-round elastic fleet driver. See the module docs for the
/// begin/end round protocol and the determinism guarantees.
#[derive(Debug, Clone)]
pub struct FleetDriver {
    world: World,
    cfg: FleetConfig,
    /// Resolved join policy (explicit knob, or matching the topology).
    join: JoinTopology,
    clock_s: f64,
    round: usize,
    /// Whether each world agent is currently an active fleet member.
    active: Vec<bool>,
    /// Absolute fleet time at which each agent departs (∞ = never).
    depart_at: Vec<f64>,
    /// Next pending arrival time (absolute), drawn lazily.
    next_arrival_s: Option<f64>,
    /// Absolute time of the previous arrival (Poisson chain anchor).
    prev_arrival_s: f64,
    trace_idx: usize,
    arrival_rng: StdRng,
    lifetime_rng: StdRng,
    profile_rng: StdRng,
    /// Draws Erdős–Rényi join edges — its own stream so enabling sparse
    /// joins never perturbs profiles, lifetimes or arrivals under a seed.
    topology_rng: StdRng,
    /// Feeds the declarative-distribution profile overrides below — its own
    /// stream so a distribution knob never perturbs the grid streams.
    dist_rng: StdRng,
    /// Overrides arrival CPU draws when [`FleetConfig::cpu_dist`] is set.
    cpu_sampler: Option<DistSampler>,
    /// Overrides arrival link draws when [`FleetConfig::link_dist`] is set.
    link_sampler: Option<DistSampler>,
    /// Overrides session-lifetime draws when [`FleetConfig::lifetime_dist`]
    /// is set.
    lifetime_sampler: Option<DistSampler>,
    /// Draws inter-arrival gaps for [`ArrivalProcess::Gaps`].
    gap_sampler: Option<DistSampler>,
    /// Agents admitted to the world whose arrival time has not yet passed
    /// the fleet clock: `(id, absolute arrival time)`.
    pending_joins: Vec<(AgentId, f64)>,
    /// World slots of committed departures, available for reuse when
    /// [`FleetConfig::recycle_slots`] is on (FIFO by departure commit).
    free_slots: std::collections::VecDeque<AgentId>,
    in_round: bool,
    peak_active: usize,
    arrivals_total: usize,
    departures_total: usize,
    arrivals_dropped: usize,
    slots_recycled: usize,
}

impl FleetDriver {
    /// The world (all agents ever seen, active or departed).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access (profile churn between rounds, tests).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// The fleet's simulated clock in seconds.
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Zero-based index of the next round to begin.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Number of currently active agents.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Whether `id` is an active fleet member.
    pub fn is_active(&self, id: AgentId) -> bool {
        self.active.get(id.0).copied().unwrap_or(false)
    }

    /// Largest concurrent active membership observed so far.
    pub fn peak_active(&self) -> usize {
        self.peak_active
    }

    /// Total arrivals activated so far.
    pub fn arrivals_total(&self) -> usize {
        self.arrivals_total
    }

    /// Total departures committed so far.
    pub fn departures_total(&self) -> usize {
        self.departures_total
    }

    /// Arrivals dropped because the fleet was at `max_agents`.
    pub fn arrivals_dropped(&self) -> usize {
        self.arrivals_dropped
    }

    /// Arrivals that reused a departed agent's world slot
    /// ([`FleetConfig::recycle_slots`]).
    pub fn slots_recycled(&self) -> usize {
        self.slots_recycled
    }

    /// The join policy in effect for arrivals.
    pub fn join_topology(&self) -> JoinTopology {
        self.join
    }

    /// Seconds from the fleet clock to the next scheduled membership event
    /// (pending join, active agent's departure, or the next arrival), if
    /// any. An idle caller — a round with no participants takes zero
    /// simulated time — fast-forwards by this much so the clock keeps
    /// moving and future arrivals can still activate.
    pub fn seconds_to_next_event(&mut self) -> Option<f64> {
        let mut next = f64::INFINITY;
        for &(_, t) in &self.pending_joins {
            next = next.min(t);
        }
        for i in 0..self.world.num_agents() {
            if self.active[i] {
                next = next.min(self.depart_at[i]);
            }
        }
        if let Some(t) = self.peek_next_arrival() {
            next = next.min(t);
        }
        next.is_finite().then(|| (next - self.clock_s).max(0.0))
    }

    /// Draws (or reads from the trace) the next arrival time at or after
    /// the last one, caching it in `next_arrival_s`.
    fn peek_next_arrival(&mut self) -> Option<f64> {
        if self.next_arrival_s.is_none() {
            self.next_arrival_s = match &self.cfg.arrivals {
                ArrivalProcess::None => None,
                ArrivalProcess::Poisson { rate_per_s } => {
                    if *rate_per_s <= 0.0 {
                        None
                    } else {
                        // The chain anchors on the previous arrival, not the
                        // fleet clock, so the realized process is the same
                        // regardless of how rounds discretize time.
                        let u = self.arrival_rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12);
                        let gap = -(1.0 - u).ln() / rate_per_s;
                        let t = self.prev_arrival_s + gap;
                        self.prev_arrival_s = t;
                        Some(t)
                    }
                }
                ArrivalProcess::Trace(times) => {
                    let t = times.get(self.trace_idx).copied();
                    self.trace_idx += 1;
                    t
                }
                ArrivalProcess::Gaps(_) => {
                    // Same previous-arrival anchoring as the Poisson chain;
                    // the sampler floors gaps at a positive epsilon so the
                    // chain always advances.
                    let sampler =
                        self.gap_sampler.as_mut().expect("gap sampler exists for Gaps arrivals");
                    let gap = sampler.sample(&mut self.arrival_rng);
                    let t = self.prev_arrival_s + gap;
                    self.prev_arrival_s = t;
                    Some(t)
                }
            };
        }
        self.next_arrival_s
    }

    /// Admits one arrival at absolute time `at`: reuses a free slot (when
    /// recycling is on and a committed departure left one), pushes a new
    /// world agent, or drops the arrival at capacity. Draws the newcomer's
    /// lifetime and returns the occupied id.
    fn admit_arrival(&mut self, at: f64) -> Option<AgentId> {
        // Draw profile and lifetime unconditionally so the streams stay
        // aligned whether or not the arrival is admitted. The grid draw
        // happens even under a distribution override: the override replaces
        // values, never the draw count of the grid streams.
        let mut profile = AgentProfile::sample(&mut self.profile_rng);
        if let Some(s) = self.cpu_sampler.as_mut() {
            profile.cpus = s.sample(&mut self.dist_rng);
        }
        if let Some(s) = self.link_sampler.as_mut() {
            profile.link_mbps = s.sample(&mut self.dist_rng);
        }
        let session = match self.lifetime_sampler.as_mut() {
            Some(s) => s.sample(&mut self.lifetime_rng),
            None => self.cfg.lifetime.sample(&mut self.lifetime_rng),
        };
        if self.cfg.recycle_slots {
            if let Some(id) = self.free_slots.pop_front() {
                self.world.recycle_agent(
                    id,
                    profile,
                    self.cfg.samples_per_agent,
                    self.cfg.batch_size,
                    self.join,
                    &mut self.topology_rng,
                );
                debug_assert!(!self.active[id.0], "free slot must be inactive");
                self.depart_at[id.0] = at + session;
                self.slots_recycled += 1;
                return Some(id);
            }
        }
        if self.world.num_agents() >= self.cfg.max_agents {
            self.arrivals_dropped += 1;
            return None;
        }
        let id = self.world.push_agent_joined(
            profile,
            self.cfg.samples_per_agent,
            self.cfg.batch_size,
            self.join,
            &mut self.topology_rng,
        );
        self.active.push(false); // activated when the join commits
        self.depart_at.push(at + session);
        Some(id)
    }

    /// Starts round `self.round()`: returns the active membership and every
    /// membership event expected within `horizon_s` seconds, round-relative.
    ///
    /// The horizon is a *planning* window, typically a generous multiple of
    /// the previous round's duration: events inside it become mid-round
    /// disruptions; events the horizon misses still commit at the round
    /// boundary in [`FleetDriver::end_round`].
    ///
    /// # Panics
    ///
    /// Panics if a round is already in progress or `horizon_s` is negative
    /// or NaN.
    pub fn begin_round(&mut self, horizon_s: f64) -> FleetRoundPlan {
        assert!(!self.in_round, "begin_round called twice without end_round");
        assert!(horizon_s >= 0.0, "horizon must be non-negative, got {horizon_s}");
        self.in_round = true;
        let window_end = self.clock_s + horizon_s;

        let participants: Vec<AgentId> =
            (0..self.world.num_agents()).filter(|&i| self.active[i]).map(AgentId).collect();

        let mut events: Vec<MembershipEvent> = Vec::new();
        // Departures of active agents inside the window.
        for &id in &participants {
            let t = self.depart_at[id.0];
            if t < window_end {
                events.push(MembershipEvent {
                    agent: id,
                    at_s: (t - self.clock_s).max(0.0),
                    kind: MembershipChange::Leave,
                });
            }
        }
        // Joins admitted by an earlier (overshooting) horizon whose arrival
        // time has still not passed, plus fresh arrivals inside the window.
        for &(id, t) in &self.pending_joins {
            if t < window_end {
                events.push(MembershipEvent {
                    agent: id,
                    at_s: (t - self.clock_s).max(0.0),
                    kind: MembershipChange::Join,
                });
            }
        }
        while let Some(t) = self.peek_next_arrival() {
            if t >= window_end {
                break;
            }
            self.next_arrival_s = None; // consume
            if let Some(id) = self.admit_arrival(t) {
                self.pending_joins.push((id, t));
                events.push(MembershipEvent {
                    agent: id,
                    at_s: (t - self.clock_s).max(0.0),
                    kind: MembershipChange::Join,
                });
            }
        }
        events.sort_by(|a, b| {
            a.at_s
                .partial_cmp(&b.at_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.agent.cmp(&b.agent))
        });
        FleetRoundPlan { round: self.round, participants, events }
    }

    /// Ends the round begun by [`FleetDriver::begin_round`]: advances the
    /// fleet clock by `duration_s` and commits every membership change
    /// whose absolute time has now passed — whether or not the planning
    /// horizon handed it to the round as a disruption. The commit is driven
    /// purely by the drawn absolute times, so the realized membership
    /// timeline is identical however the caller discretizes rounds.
    ///
    /// # Panics
    ///
    /// Panics if no round is in progress or `duration_s` is negative/NaN.
    pub fn end_round(&mut self, duration_s: f64) {
        assert!(self.in_round, "end_round without begin_round");
        assert!(duration_s >= 0.0, "round duration must be non-negative, got {duration_s}");
        self.in_round = false;
        self.clock_s += duration_s;
        // Joins first (an agent can arrive and depart within one round).
        let clock = self.clock_s;
        let mut arrived: Vec<AgentId> = Vec::new();
        self.pending_joins.retain(|&(id, t)| {
            if t <= clock {
                arrived.push(id);
                false
            } else {
                true
            }
        });
        for id in arrived {
            self.active[id.0] = true;
            self.arrivals_total += 1;
        }
        // Departures due this round, sorted by time: one O(world) scan,
        // then a cursor interleaves them with the boundary arrivals so a
        // recycled slot becomes available in absolute-time order (an
        // arrival can reuse the slot of a session that ended earlier in
        // the same boundary commit) without rescanning the world per
        // arrival — `fedavg_barrier` commits hundreds of arrivals per
        // 10k-agent boundary.
        let mut due: Vec<(f64, usize)> = (0..self.world.num_agents())
            .filter(|&i| self.active[i] && self.depart_at[i] <= clock)
            .map(|i| (self.depart_at[i], i))
            .collect();
        due.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mut cursor = 0usize;
        while let Some(t) = self.peek_next_arrival() {
            if t > self.clock_s {
                break;
            }
            self.next_arrival_s = None;
            while cursor < due.len() && due[cursor].0 <= t {
                self.commit_departure(due[cursor].1);
                cursor += 1;
            }
            if let Some(id) = self.admit_arrival(t) {
                self.active[id.0] = true;
                self.arrivals_total += 1;
            }
        }
        while cursor < due.len() {
            self.commit_departure(due[cursor].1);
            cursor += 1;
        }
        // Boundary arrivals admitted above may themselves have sessions
        // ending inside this round; their departures commit here (their
        // slots become reusable from the next boundary on).
        for i in 0..self.world.num_agents() {
            if self.active[i] && self.depart_at[i] <= clock {
                self.commit_departure(i);
            }
        }
        self.round += 1;
        self.peak_active = self.peak_active.max(self.active_count());
    }

    /// Deactivates one active agent, freeing its slot for reuse when
    /// recycling is on.
    fn commit_departure(&mut self, i: usize) {
        debug_assert!(self.active[i]);
        self.active[i] = false;
        self.departures_total += 1;
        if self.cfg.recycle_slots {
            self.free_slots.push_back(AgentId(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_fleet(seed: u64) -> FleetDriver {
        FleetConfig::new(10, seed)
            .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.05 })
            .lifetime(SessionLifetime::Exponential { mean_s: 200.0 })
            .build()
    }

    #[test]
    fn static_fleet_never_changes() {
        let mut f = FleetConfig::new(8, 1).build();
        for _ in 0..5 {
            let plan = f.begin_round(100.0);
            assert_eq!(plan.participants.len(), 8);
            assert!(plan.events.is_empty());
            f.end_round(100.0);
        }
        assert_eq!(f.active_count(), 8);
        assert_eq!(f.arrivals_total(), 0);
        assert_eq!(f.departures_total(), 0);
    }

    #[test]
    fn poisson_churn_changes_membership() {
        let mut f = poisson_fleet(3);
        let mut saw_join = false;
        let mut saw_leave = false;
        for _ in 0..40 {
            let plan = f.begin_round(100.0);
            for e in &plan.events {
                match e.kind {
                    MembershipChange::Join => saw_join = true,
                    MembershipChange::Leave => saw_leave = true,
                }
                assert!((0.0..100.0).contains(&e.at_s), "event inside window: {}", e.at_s);
            }
            f.end_round(100.0);
        }
        assert!(saw_join, "Poisson arrivals should fire in 4000s at rate 0.05/s");
        assert!(saw_leave, "exponential sessions of mean 200s should end");
        assert!(f.peak_active() >= 10);
    }

    #[test]
    fn membership_timeline_is_deterministic_per_seed() {
        let run = |seed| {
            let mut f = poisson_fleet(seed);
            let mut log = Vec::new();
            for _ in 0..25 {
                let plan = f.begin_round(120.0);
                log.push((plan.participants.len(), plan.events.len()));
                f.end_round(120.0);
            }
            (log, f.arrivals_total(), f.departures_total())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
    }

    #[test]
    fn durations_shift_round_boundaries_not_the_timeline() {
        // Same seed, different round durations: the *absolute* membership
        // totals over the same total simulated time must agree.
        let totals = |dur: f64, rounds: usize| {
            let mut f = poisson_fleet(11);
            for _ in 0..rounds {
                let plan = f.begin_round(dur);
                drop(plan);
                f.end_round(dur);
            }
            (f.arrivals_total() + f.arrivals_dropped(), f.departures_total(), f.clock_s())
        };
        let a = totals(100.0, 30);
        let b = totals(300.0, 10);
        assert_eq!(a.2, b.2, "same total simulated time");
        assert_eq!(a.0, b.0, "same arrivals over the same window");
        assert_eq!(a.1, b.1, "same departures over the same window");
    }

    #[test]
    fn trace_arrivals_fire_at_given_times() {
        let mut f =
            FleetConfig::new(3, 5).arrivals(ArrivalProcess::Trace(vec![50.0, 150.0])).build();
        let p0 = f.begin_round(100.0);
        assert_eq!(p0.events.len(), 1);
        assert_eq!(p0.events[0].kind, MembershipChange::Join);
        assert!((p0.events[0].at_s - 50.0).abs() < 1e-9);
        f.end_round(100.0);
        assert_eq!(f.active_count(), 4);
        let p1 = f.begin_round(100.0);
        assert_eq!(p1.participants.len(), 4);
        assert_eq!(p1.events.len(), 1);
        assert!((p1.events[0].at_s - 50.0).abs() < 1e-9);
        f.end_round(100.0);
        assert_eq!(f.active_count(), 5);
    }

    #[test]
    fn capacity_cap_drops_arrivals() {
        let mut f = FleetConfig::new(2, 9)
            .arrivals(ArrivalProcess::Trace(vec![1.0, 2.0, 3.0]))
            .max_agents(3)
            .build();
        let plan = f.begin_round(10.0);
        assert_eq!(plan.events.len(), 1, "only one admission fits the cap");
        f.end_round(10.0);
        assert_eq!(f.world().num_agents(), 3);
        assert_eq!(f.arrivals_dropped(), 2);
    }

    #[test]
    fn missed_horizon_events_commit_at_the_boundary() {
        let mut f =
            FleetConfig::new(4, 13).lifetime(SessionLifetime::Fixed { duration_s: 50.0 }).build();
        // Horizon 10s sees no departures, but the round actually ran 80s:
        // all four sessions ended inside the round; the boundary commit
        // catches them.
        let plan = f.begin_round(10.0);
        assert!(plan.events.is_empty());
        f.end_round(80.0);
        assert_eq!(f.active_count(), 0);
        assert_eq!(f.departures_total(), 4);
    }

    #[test]
    fn weibull_sessions_are_positive_and_vary() {
        let mut rng = StdRng::seed_from_u64(17);
        let dist = SessionLifetime::Weibull { scale_s: 100.0, shape: 0.7 };
        let draws: Vec<f64> = (0..100).map(|_| dist.sample(&mut rng)).collect();
        assert!(draws.iter().all(|&d| d > 0.0 && d.is_finite()));
        let min = draws.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = draws.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 10.0 * min, "heavy-tailed draws should spread widely");
    }

    #[test]
    #[should_panic(expected = "begin_round called twice")]
    fn double_begin_panics() {
        let mut f = FleetConfig::new(2, 1).build();
        let _ = f.begin_round(1.0);
        let _ = f.begin_round(1.0);
    }

    #[test]
    fn recycling_reuses_slots_instead_of_dropping() {
        // Two slots, sessions end at 5 s, arrivals at 10/20/30 s: without
        // recycling only one arrival fits the cap of 3; with it, every
        // arrival reuses a freed slot and the world never grows past 2.
        let mk = |recycle: bool| {
            FleetConfig::new(2, 17)
                .lifetime(SessionLifetime::Fixed { duration_s: 5.0 })
                .arrivals(ArrivalProcess::Trace(vec![10.0, 20.0, 30.0]))
                .max_agents(3)
                .recycle_slots(recycle)
                .build()
        };
        let run = |mut f: FleetDriver| {
            for _ in 0..5 {
                let _ = f.begin_round(10.0);
                f.end_round(10.0);
            }
            f
        };
        let plain = run(mk(false));
        assert_eq!(plain.arrivals_dropped(), 2);
        assert_eq!(plain.world().num_agents(), 3);

        let recycled = run(mk(true));
        assert_eq!(recycled.arrivals_dropped(), 0, "freed slots absorb every arrival");
        assert_eq!(recycled.world().num_agents(), 2, "the world never grows");
        assert_eq!(recycled.slots_recycled(), 3);
        assert_eq!(recycled.arrivals_total(), 3);
        assert_eq!(recycled.departures_total(), plain.departures_total() + 2);
    }

    #[test]
    fn recycled_slot_carries_the_newcomers_profile_and_lifetime() {
        let mut f = FleetConfig::new(1, 23)
            .lifetime(SessionLifetime::Fixed { duration_s: 5.0 })
            .arrivals(ArrivalProcess::Trace(vec![20.0]))
            .max_agents(1)
            .recycle_slots(true)
            .build();
        // Round 0 ends at 10 s: the original occupant (session ended at
        // 5 s) has departed and freed slot 0.
        let _ = f.begin_round(10.0);
        f.end_round(10.0);
        assert!(!f.is_active(AgentId(0)));
        assert_eq!(f.departures_total(), 1);
        // Round 1 ends at 20 s: the trace arrival reuses slot 0 and is
        // active with a fresh lifetime drawn from its own arrival time.
        let _ = f.begin_round(10.0);
        f.end_round(10.0);
        assert_eq!(f.slots_recycled(), 1);
        assert!(f.is_active(AgentId(0)), "newcomer occupies slot 0");
        assert_eq!(f.arrivals_total(), 1);
        // Round 2 ends at 30 s: the newcomer's own 5 s session (20→25 s)
        // has ended — its departure is rescheduled from the arrival time,
        // not inherited from the previous occupant.
        let _ = f.begin_round(10.0);
        f.end_round(10.0);
        assert!(!f.is_active(AgentId(0)));
        assert_eq!(f.departures_total(), 2);
    }

    #[test]
    fn recycling_off_by_default_preserves_growth_behavior() {
        let f = FleetConfig::new(4, 1).build();
        assert_eq!(f.slots_recycled(), 0);
        let g = poisson_fleet(3);
        assert_eq!(g.slots_recycled(), 0);
    }

    #[test]
    fn er_joins_follow_a_random_topology_by_default() {
        use crate::{JoinTopology, Topology};
        let f = FleetConfig::new(10, 5).topology(Topology::random(0.2)).build();
        assert_eq!(f.join_topology(), JoinTopology::ErdosRenyi { p: 0.2 });
        let g = FleetConfig::new(10, 5).build();
        assert_eq!(g.join_topology(), JoinTopology::FullMesh);
        let h = FleetConfig::new(10, 5)
            .topology(Topology::random(0.2))
            .join_topology(JoinTopology::FullMesh)
            .build();
        assert_eq!(h.join_topology(), JoinTopology::FullMesh);
    }

    #[test]
    fn er_joins_keep_density_under_churn() {
        use crate::Topology;
        let mut f = FleetConfig::new(40, 7)
            .topology(Topology::random(0.2))
            .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.05 })
            .lifetime(SessionLifetime::Exponential { mean_s: 400.0 })
            .max_agents(400)
            .build();
        for _ in 0..40 {
            let _ = f.begin_round(100.0);
            f.end_round(100.0);
        }
        assert!(f.arrivals_total() > 20, "churn must actually fire");
        let d = f.world().adjacency().density();
        assert!((0.1..0.3).contains(&d), "density {d} must stay near 0.2 under ER joins");
    }

    #[test]
    fn fixed_gap_arrivals_are_a_metronome() {
        let mut f = FleetConfig::new(2, 31)
            .arrivals(ArrivalProcess::Gaps(DistributionConfig::Fixed { value: 25.0 }))
            .max_agents(100)
            .build();
        let plan = f.begin_round(100.0);
        let times: Vec<f64> = plan.events.iter().map(|e| e.at_s).collect();
        assert_eq!(times, vec![25.0, 50.0, 75.0]);
        // The boundary commit also catches the arrival at exactly 100 s
        // (horizon windows are half-open, commits are inclusive).
        f.end_round(100.0);
        assert_eq!(f.arrivals_total(), 4);
    }

    #[test]
    fn gap_arrivals_are_deterministic_and_discretization_independent() {
        let mk = || {
            FleetConfig::new(5, 33)
                .arrivals(ArrivalProcess::Gaps(DistributionConfig::LogNormal {
                    mu: 3.0,
                    sigma: 0.8,
                }))
                .max_agents(500)
                .build()
        };
        let totals = |mut f: FleetDriver, dur: f64, rounds: usize| {
            for _ in 0..rounds {
                let _ = f.begin_round(dur);
                f.end_round(dur);
            }
            (f.arrivals_total() + f.arrivals_dropped(), f.clock_s())
        };
        let a = totals(mk(), 100.0, 30);
        let b = totals(mk(), 300.0, 10);
        assert_eq!(a, b, "gap arrivals must not depend on round discretization");
        assert!(a.0 > 50, "mean gap ~28s over 3000s should admit many arrivals");
    }

    #[test]
    fn lifetime_dist_overrides_the_builtin_lifetimes() {
        // A fixed lifetime distribution behaves exactly like Fixed sessions.
        let mut f = FleetConfig::new(4, 35)
            .lifetime(SessionLifetime::Infinite)
            .lifetime_dist(DistributionConfig::Fixed { value: 50.0 })
            .build();
        let _ = f.begin_round(10.0);
        f.end_round(80.0);
        assert_eq!(f.active_count(), 0, "all fixed 50s sessions ended by 80s");
        assert_eq!(f.departures_total(), 4);
    }

    #[test]
    fn arrival_profiles_follow_the_distribution_overrides() {
        let mut f = FleetConfig::new(2, 37)
            .arrivals(ArrivalProcess::Trace(vec![10.0, 20.0, 30.0]))
            .cpu_dist(DistributionConfig::Fixed { value: 7.0 })
            .link_dist(DistributionConfig::Uniform { min: 30.0, max: 31.0 })
            .max_agents(10)
            .build();
        for _ in 0..4 {
            let _ = f.begin_round(10.0);
            f.end_round(10.0);
        }
        assert_eq!(f.arrivals_total(), 3);
        for a in f.world().agents() {
            assert_eq!(a.profile.cpus, 7.0, "initial and arriving agents share the dist");
            assert!((30.0..=31.0).contains(&a.profile.link_mbps));
        }
    }

    #[test]
    fn joined_agents_participate_from_the_next_round() {
        let mut f = FleetConfig::new(3, 21).arrivals(ArrivalProcess::Trace(vec![5.0])).build();
        let p0 = f.begin_round(10.0);
        assert_eq!(p0.participants.len(), 3, "joiner is not yet a participant");
        let join = p0.events[0];
        assert!(!f.is_active(join.agent), "inactive until the round commits");
        f.end_round(10.0);
        assert!(f.is_active(join.agent));
        let p1 = f.begin_round(10.0);
        assert!(p1.participants.contains(&join.agent));
        f.end_round(10.0);
    }
}
