//! Heterogeneous-agent world simulation for the ComDML reproduction.
//!
//! The paper evaluates ComDML in a simulated heterogeneous environment
//! (§V-A "Implementation"): each agent owns a CPU profile from
//! {4, 2, 1, 0.5, 0.2} CPUs and a link profile from {0, 10, 20, 50, 100}
//! Mbps, profiles drift over time (20% of agents re-rolled after round 100),
//! and agents are connected by a topology that ranges from a full mesh to a
//! random graph with 20% of the links (Fig. 3).
//!
//! This crate reproduces that substrate: [`AgentProfile`]s and the paper's
//! profile grids, [`Topology`] generation, the [`World`] container tying
//! agents + links + data sizes together, profile churn, participant sampling,
//! and the discrete-event core — a deterministic [`EventQueue`] plus the
//! [`SimDriver`] that executes typed [`SimEvent`]s (batch production,
//! transfers, suffix returns, aggregation, failure/join/leave) against a
//! shared simulated clock with per-agent [`AgentTimeline`] accounting. The
//! round engine in `comdml-core` builds every simulation — ComDML and all
//! baselines — on this driver.
//!
//! On top of the single-round substrate, [`FleetDriver`] makes membership a
//! *process*: Poisson or trace-driven [`ArrivalProcess`] arrivals,
//! [`SessionLifetime`] departures (exponential/Weibull/fixed), elastic
//! [`World`] growth, and a begin/end-round handshake that hands each round
//! its mid-round joins and leaves — deterministic per seed regardless of how
//! rounds discretize time.
//!
//! # Example
//!
//! ```
//! use comdml_simnet::{Topology, WorldConfig};
//!
//! let world = WorldConfig::heterogeneous(10, 42)
//!     .topology(Topology::random(0.2))
//!     .build();
//! assert_eq!(world.num_agents(), 10);
//! ```
//!
//! Part of the `comdml-rs` workspace — the crate map in the repository
//! README shows how this crate fits the whole.

mod agent;
mod dist;
mod driver;
mod events;
mod fleet;
mod hostile;
mod profile;
mod topology;
mod world;

pub use agent::{AgentId, AgentState};
pub use dist::{DistSampler, DistributionConfig, DIST_SAMPLE_FLOOR};
pub use driver::{AgentTimeline, SimDriver, SimEvent};
pub use events::{BucketStats, EventQueue};
pub use fleet::{
    ArrivalProcess, FleetConfig, FleetDriver, FleetRoundPlan, MembershipChange, MembershipEvent,
    SessionLifetime,
};
pub use hostile::{ByzantineConfig, DiurnalCycle, PartitionSchedule};
pub use profile::{AgentProfile, CPU_PROFILES, LINK_PROFILES_MBPS};
pub use topology::{Adjacency, JoinTopology, NeighborsIter, Topology};
pub use world::{AgentsMut, World, WorldConfig};
