use rand::Rng;
use serde::{Deserialize, Serialize};

/// Network topology shapes evaluated in the paper (§V-B.5): full mesh, ring,
/// and random graphs keeping a fraction `p` of all possible links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// Every pair of agents is connected.
    Full,
    /// Agents form a cycle; each talks to two neighbours.
    Ring,
    /// Erdős–Rényi-style graph: each possible edge exists with probability
    /// `p` (Fig. 3 uses `p = 0.2`).
    Random {
        /// Probability of keeping each edge.
        p: f64,
    },
}

impl Topology {
    /// Convenience constructor for a random topology.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn random(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "edge probability must be in [0, 1], got {p}");
        Topology::Random { p }
    }

    /// Materializes the adjacency for `k` agents using `rng` for random
    /// topologies.
    #[allow(clippy::needless_range_loop)] // symmetric writes need both indices
    pub fn build<R: Rng>(&self, k: usize, rng: &mut R) -> Adjacency {
        // A full mesh is stored implicitly: at fleet scale (10k+ agents) an
        // explicit k×k matrix would cost O(k²) memory for no information.
        if matches!(*self, Topology::Full) {
            return Adjacency::Full { k };
        }
        let mut adj = vec![vec![false; k]; k];
        match *self {
            Topology::Full => unreachable!("handled above"),
            Topology::Ring => {
                if k > 1 {
                    for i in 0..k {
                        let next = (i + 1) % k;
                        adj[i][next] = true;
                        adj[next][i] = true;
                    }
                }
            }
            Topology::Random { p } => {
                for i in 0..k {
                    for j in (i + 1)..k {
                        if rng.gen_bool(p.clamp(0.0, 1.0)) {
                            adj[i][j] = true;
                            adj[j][i] = true;
                        }
                    }
                }
            }
        }
        Adjacency::from_matrix(adj)
    }
}

/// How an agent arriving into an elastic fleet wires itself into the
/// overlay — the join-time counterpart of [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JoinTopology {
    /// The newcomer announces itself to everyone ([`Adjacency::grow`]):
    /// cheap and keeps an implicit full mesh implicit, but densifies sparse
    /// topologies over time.
    FullMesh,
    /// The newcomer links to each existing agent with probability `p`
    /// ([`Adjacency::grow_er`]), preserving Erdős–Rényi density under
    /// churn.
    ErdosRenyi {
        /// Probability of linking to each existing agent.
        p: f64,
    },
}

impl JoinTopology {
    /// The join policy matching a construction-time [`Topology`]: random
    /// topologies keep their edge probability, everything else joins
    /// full-mesh (a ring has no canonical insertion point; the paper treats
    /// non-random graphs as static).
    pub fn matching(topology: &Topology) -> Self {
        match *topology {
            Topology::Random { p } => JoinTopology::ErdosRenyi { p },
            Topology::Full | Topology::Ring => JoinTopology::FullMesh,
        }
    }
}

/// A symmetric link graph over agents: either an implicit full mesh (O(1)
/// memory, the fleet-scale default) or an explicit adjacency matrix.
///
/// # Example
///
/// ```
/// use comdml_simnet::Topology;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let adj = Topology::Ring.build(5, &mut rng);
/// assert_eq!(adj.degree(0), 2);
/// assert!(adj.connected(0, 1) && !adj.connected(0, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Adjacency {
    /// Every distinct pair of the `k` agents is linked.
    Full {
        /// Number of agents.
        k: usize,
    },
    /// Explicit symmetric adjacency matrix.
    Matrix {
        /// `matrix[i][j]` is true when `i` and `j` share a link.
        matrix: Vec<Vec<bool>>,
    },
}

impl Adjacency {
    /// Builds an adjacency from an explicit symmetric matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square, not symmetric, or has self-loops.
    pub fn from_matrix(matrix: Vec<Vec<bool>>) -> Self {
        let k = matrix.len();
        for (i, row) in matrix.iter().enumerate() {
            assert_eq!(row.len(), k, "adjacency matrix must be square");
            assert!(!row[i], "self-loops are not allowed");
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, matrix[j][i], "adjacency matrix must be symmetric");
            }
        }
        Self::Matrix { matrix }
    }

    /// An implicit full mesh over `k` agents.
    pub fn full(k: usize) -> Self {
        Self::Full { k }
    }

    /// Whether the full mesh is stored implicitly (O(1) memory).
    pub fn is_full_mesh(&self) -> bool {
        matches!(self, Adjacency::Full { .. })
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        match self {
            Adjacency::Full { k } => *k,
            Adjacency::Matrix { matrix } => matrix.len(),
        }
    }

    /// Whether the adjacency covers zero agents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether agents `i` and `j` share a link.
    pub fn connected(&self, i: usize, j: usize) -> bool {
        match self {
            Adjacency::Full { k } => i != j && i < *k && j < *k,
            Adjacency::Matrix { matrix } => i != j && matrix[i][j],
        }
    }

    /// The neighbours of agent `i`.
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        self.neighbors_iter(i).collect()
    }

    /// The neighbours of agent `i`, without allocating — the hot-path
    /// variant of [`Adjacency::neighbors`] for per-event and per-pairing
    /// scans at fleet scale.
    pub fn neighbors_iter(&self, i: usize) -> NeighborsIter<'_> {
        NeighborsIter {
            inner: match self {
                Adjacency::Full { k } => NeighborsInner::Full { k: *k, skip: i, next: 0 },
                Adjacency::Matrix { matrix } => {
                    NeighborsInner::Matrix { row: matrix[i].iter().enumerate() }
                }
            },
        }
    }

    /// The degree of agent `i`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn degree(&self, i: usize) -> usize {
        match self {
            Adjacency::Full { k } => {
                assert!(i < *k, "agent {i} out of range for {k} agents");
                *k - 1
            }
            Adjacency::Matrix { matrix } => matrix[i].iter().filter(|&&c| c).count(),
        }
    }

    /// Grows the graph by one agent that is connected to every existing
    /// agent — the elastic-fleet join policy: a newcomer announces itself on
    /// the overlay and can reach anyone. An implicit full mesh stays
    /// implicit (O(1)); a matrix gains a fully-true row/column.
    pub fn grow(&mut self) {
        match self {
            Adjacency::Full { k } => *k += 1,
            Adjacency::Matrix { matrix } => {
                for row in matrix.iter_mut() {
                    row.push(true);
                }
                let k = matrix.len() + 1;
                let mut row = vec![true; k];
                row[k - 1] = false; // no self-loop
                matrix.push(row);
            }
        }
    }

    /// Grows the graph by one agent with an Erdős–Rényi edge draw: each
    /// existing agent is linked with probability `p`. This is the join
    /// policy that preserves sparse-topology semantics under churn — a
    /// fleet built from [`Topology::Random`] keeps its expected density as
    /// newcomers arrive, instead of densifying toward a full mesh.
    ///
    /// An implicit full mesh is materialized into a matrix first (`p < 1`
    /// breaks the all-pairs invariant), which costs O(k²) once; callers
    /// that want to stay implicit should use [`Adjacency::grow`].
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn grow_er<R: Rng>(&mut self, p: f64, rng: &mut R) {
        assert!((0.0..=1.0).contains(&p), "edge probability must be in [0, 1], got {p}");
        self.materialize();
        let Adjacency::Matrix { matrix } = self else { unreachable!("materialized above") };
        let k = matrix.len();
        let mut row = vec![false; k + 1];
        for (j, row_j) in matrix.iter_mut().enumerate() {
            let linked = rng.gen_bool(p);
            row_j.push(linked);
            row[j] = linked;
        }
        matrix.push(row);
    }

    /// Replaces agent `i`'s edges with a fresh Erdős–Rényi draw against
    /// every other agent — the recycled-slot counterpart of
    /// [`Adjacency::grow_er`]. Materializes an implicit full mesh.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or `i` is out of range.
    #[allow(clippy::needless_range_loop)] // symmetric writes need both indices
    pub fn rewire_er<R: Rng>(&mut self, i: usize, p: f64, rng: &mut R) {
        assert!((0.0..=1.0).contains(&p), "edge probability must be in [0, 1], got {p}");
        assert!(i < self.len(), "agent {i} out of range for {} agents", self.len());
        self.materialize();
        let Adjacency::Matrix { matrix } = self else { unreachable!("materialized above") };
        for j in 0..matrix.len() {
            let linked = j != i && rng.gen_bool(p);
            matrix[i][j] = linked;
            matrix[j][i] = linked;
        }
    }

    /// Connects agent `i` to every other agent — the recycled-slot
    /// counterpart of [`Adjacency::grow`]. An implicit full mesh is left
    /// untouched (slot reuse cannot change an all-pairs graph).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[allow(clippy::needless_range_loop)] // symmetric writes need both indices
    pub fn rewire_full(&mut self, i: usize) {
        assert!(i < self.len(), "agent {i} out of range for {} agents", self.len());
        if let Adjacency::Matrix { matrix } = self {
            for j in 0..matrix.len() {
                let linked = j != i;
                matrix[i][j] = linked;
                matrix[j][i] = linked;
            }
        }
    }

    /// Converts an implicit full mesh into an explicit matrix in place (a
    /// matrix stays as is), so edge-level edits become possible.
    fn materialize(&mut self) {
        if let Adjacency::Full { k } = *self {
            let matrix = (0..k).map(|i| (0..k).map(|j| i != j).collect()).collect();
            *self = Adjacency::Matrix { matrix };
        }
    }

    /// Fraction of possible edges present.
    pub fn density(&self) -> f64 {
        let k = self.len();
        if k < 2 {
            return 0.0;
        }
        if self.is_full_mesh() {
            return 1.0;
        }
        let edges: usize = (0..k).map(|i| self.degree(i)).sum::<usize>() / 2;
        edges as f64 / (k * (k - 1) / 2) as f64
    }

    /// Whether the graph is connected (single component). Isolated agents
    /// make this false; the paper lets such agents train independently.
    pub fn is_connected_graph(&self) -> bool {
        let k = self.len();
        if k == 0 || self.is_full_mesh() {
            return true;
        }
        let mut seen = vec![false; k];
        let mut stack = vec![0];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            for j in self.neighbors_iter(i) {
                if !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

/// Allocation-free neighbour cursor (see [`Adjacency::neighbors_iter`]).
#[derive(Debug, Clone)]
pub struct NeighborsIter<'a> {
    inner: NeighborsInner<'a>,
}

#[derive(Debug, Clone)]
enum NeighborsInner<'a> {
    Full { k: usize, skip: usize, next: usize },
    Matrix { row: std::iter::Enumerate<std::slice::Iter<'a, bool>> },
}

impl Iterator for NeighborsIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match &mut self.inner {
            NeighborsInner::Full { k, skip, next } => {
                if *next == *skip {
                    *next += 1;
                }
                if *next >= *k {
                    return None;
                }
                let j = *next;
                *next += 1;
                Some(j)
            }
            NeighborsInner::Matrix { row } => {
                for (j, &connected) in row.by_ref() {
                    if connected {
                        return Some(j);
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_mesh_connects_everyone() {
        let mut rng = StdRng::seed_from_u64(0);
        let adj = Topology::Full.build(6, &mut rng);
        assert_eq!(adj.degree(3), 5);
        assert!((adj.density() - 1.0).abs() < 1e-12);
        assert!(adj.is_connected_graph());
    }

    #[test]
    fn ring_has_degree_two() {
        let mut rng = StdRng::seed_from_u64(0);
        let adj = Topology::Ring.build(8, &mut rng);
        for i in 0..8 {
            assert_eq!(adj.degree(i), 2);
        }
        assert!(adj.is_connected_graph());
    }

    #[test]
    fn ring_of_two_is_a_single_edge() {
        let mut rng = StdRng::seed_from_u64(0);
        let adj = Topology::Ring.build(2, &mut rng);
        assert!(adj.connected(0, 1));
        assert_eq!(adj.degree(0), 1);
    }

    #[test]
    fn random_density_tracks_p() {
        let mut rng = StdRng::seed_from_u64(42);
        let adj = Topology::random(0.2).build(60, &mut rng);
        let d = adj.density();
        assert!((0.12..0.28).contains(&d), "density {d}");
    }

    #[test]
    fn random_p_zero_is_isolated() {
        let mut rng = StdRng::seed_from_u64(1);
        let adj = Topology::random(0.0).build(5, &mut rng);
        assert_eq!(adj.density(), 0.0);
        assert!(!adj.is_connected_graph());
    }

    #[test]
    fn no_self_loops_anywhere() {
        let mut rng = StdRng::seed_from_u64(9);
        for topo in [Topology::Full, Topology::Ring, Topology::random(0.5)] {
            let adj = topo.build(10, &mut rng);
            for i in 0..10 {
                assert!(!adj.connected(i, i));
            }
        }
    }

    #[test]
    fn grow_er_keeps_expected_density() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut adj = Topology::random(0.2).build(40, &mut rng);
        for _ in 0..40 {
            adj.grow_er(0.2, &mut rng);
        }
        assert_eq!(adj.len(), 80);
        let d = adj.density();
        assert!((0.12..0.28).contains(&d), "ER joins should preserve density, got {d}");
    }

    #[test]
    fn grow_er_materializes_a_full_mesh() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut adj = Adjacency::full(6);
        adj.grow_er(0.5, &mut rng);
        assert!(!adj.is_full_mesh());
        assert_eq!(adj.len(), 7);
        // Original all-pairs links survive materialization.
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(adj.connected(i, j), i != j);
            }
        }
        assert!(!adj.connected(6, 6));
    }

    #[test]
    fn grow_er_zero_p_isolates_the_newcomer() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut adj = Topology::Ring.build(5, &mut rng);
        adj.grow_er(0.0, &mut rng);
        assert_eq!(adj.degree(5), 0);
        for i in 0..5 {
            assert_eq!(adj.degree(i), 2, "ring edges untouched");
        }
    }

    #[test]
    fn rewire_er_replaces_only_one_agents_edges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut adj = Topology::Ring.build(8, &mut rng);
        adj.rewire_er(3, 1.0, &mut rng);
        assert_eq!(adj.degree(3), 7, "p = 1 connects to everyone");
        assert!(!adj.connected(3, 3));
        // Edges not incident on 3 are untouched.
        assert!(adj.connected(0, 1) && adj.connected(5, 6));
    }

    #[test]
    fn rewire_full_on_matrix_connects_everyone() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut adj = Topology::random(0.0).build(5, &mut rng);
        adj.rewire_full(2);
        assert_eq!(adj.degree(2), 4);
        assert!(adj.connected(2, 0) && adj.connected(4, 2));
        assert!(!adj.connected(0, 1), "non-incident pairs stay unlinked");
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_matrix_validates_symmetry() {
        let _ = Adjacency::from_matrix(vec![vec![false, true], vec![false, false]]);
    }

    #[test]
    fn neighbors_listed_in_order() {
        let m = vec![vec![false, true, true], vec![true, false, false], vec![true, false, false]];
        let adj = Adjacency::from_matrix(m);
        assert_eq!(adj.neighbors(0), vec![1, 2]);
        assert_eq!(adj.neighbors(1), vec![0]);
    }
}
