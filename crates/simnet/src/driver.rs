use crate::{AgentId, EventQueue};

/// Typed events of the ComDML discrete-event simulation.
///
/// `pair` fields index into the round's pairing list (the round engine in
/// `comdml-core` owns the per-pair state); agent-level events carry the
/// [`AgentId`] directly. The engine is deliberately open-ended: fleet-level
/// dynamics (failure, join, leave) share the same queue as the per-batch
/// pipeline events, so a helper can die halfway through a transfer and the
/// handler observes it in causal order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// The slow side of pairing `pair` finished producing activation batch
    /// `batch`.
    BatchProduced {
        /// Pairing index within the round.
        pair: usize,
        /// Zero-based batch index.
        batch: usize,
    },
    /// The link of pairing `pair` finished moving batch `batch` to the
    /// helper.
    TransferComplete {
        /// Pairing index within the round.
        pair: usize,
        /// Zero-based batch index.
        batch: usize,
    },
    /// The helper of pairing `pair` shipped the trained suffix parameters
    /// back to the slow agent.
    SuffixReturn {
        /// Pairing index within the round.
        pair: usize,
    },
    /// Coarse-granularity completion of pairing `pair`: the whole
    /// produce/transfer/train/return pipeline collapsed into one event
    /// scheduled from the closed-form completion time. Emitted instead of
    /// the per-batch `BatchProduced`/`TransferComplete`/`SuffixReturn`
    /// cascade when the pair has no pending disruption.
    PairDone {
        /// Pairing index within the round.
        pair: usize,
    },
    /// `agent` finished its round task (solo epoch or its half of a pair).
    AgentDone {
        /// The finishing agent.
        agent: AgentId,
    },
    /// Aggregation began over the currently finished cohort.
    AggregateStart,
    /// Aggregation completed; the round's critical path ends here.
    AggregateDone,
    /// `agent` failed (crash-stop). Pairs it participates in must react.
    AgentFail {
        /// The failing agent.
        agent: AgentId,
    },
    /// `agent` joined the fleet mid-simulation.
    AgentJoin {
        /// The joining agent.
        agent: AgentId,
    },
    /// `agent` left the fleet gracefully.
    AgentLeave {
        /// The leaving agent.
        agent: AgentId,
    },
}

/// Per-agent accounting accumulated while events execute.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AgentTimeline {
    /// Compute-busy seconds.
    pub busy_s: f64,
    /// Critical-path communication seconds.
    pub comm_s: f64,
    /// When the agent's task finished (simulated seconds); 0 until then.
    pub finish_s: f64,
    /// Whether the agent finished its task this round.
    pub done: bool,
    /// Whether the agent crash-stopped this round.
    pub failed: bool,
}

/// The discrete-event simulation driver: a shared simulated clock, the
/// typed event queue, and per-agent timelines.
///
/// The driver intentionally has *no* callback registration — the consumer
/// drains events in causal order with [`SimDriver::next`] and schedules
/// follow-ups, which keeps borrow scopes trivial and makes handlers easy
/// to test:
///
/// ```
/// use comdml_simnet::{AgentId, SimDriver, SimEvent};
///
/// let mut driver = SimDriver::new(2);
/// // Agent 0 produces one batch at t=1.0; the transfer takes 0.5s.
/// driver.schedule_at(1.0, SimEvent::BatchProduced { pair: 0, batch: 0 });
/// while let Some((t, ev)) = driver.next() {
///     match ev {
///         SimEvent::BatchProduced { pair, batch } => {
///             driver.record_busy(AgentId(0), 1.0);
///             driver.schedule_in(0.5, SimEvent::TransferComplete { pair, batch });
///         }
///         SimEvent::TransferComplete { .. } => {
///             driver.mark_done(AgentId(0), t);
///         }
///         _ => {}
///     }
/// }
/// assert_eq!(driver.now(), 1.5);
/// assert!(driver.timeline(AgentId(0)).done);
/// ```
#[derive(Debug, Clone)]
pub struct SimDriver {
    queue: EventQueue<SimEvent>,
    now: f64,
    timelines: Vec<AgentTimeline>,
    processed: u64,
    peak_pending: usize,
}

impl SimDriver {
    /// Creates a driver for a fleet of `num_agents`, clock at zero.
    pub fn new(num_agents: usize) -> Self {
        Self {
            queue: EventQueue::new(),
            now: 0.0,
            timelines: vec![AgentTimeline::default(); num_agents],
            processed: 0,
            peak_pending: 0,
        }
    }

    /// The current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of events executed by [`SimDriver::next`] so far — the
    /// cost metric the benchmark JSON reports, and what the coarse event
    /// granularity shrinks.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the pending-event queue — how bursty the round's
    /// schedule got. Plain bookkeeping, so it is exact whether or not
    /// observability is enabled.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Publishes the driver's lifetime counters to the process-wide
    /// metrics registry (`simnet.events`, `simnet.peak_pending`), plus the
    /// calendar-queue layout (`simnet.queue_buckets`,
    /// `simnet.bucket_occupancy` p50/p99 at the high-water calendar). No-op
    /// unless observability is enabled; never touches the clock or queue,
    /// so calling it cannot perturb a run.
    pub fn publish_metrics(&self) {
        if !comdml_obs::metrics_enabled() {
            return;
        }
        comdml_obs::counter_add("simnet.events", self.processed);
        comdml_obs::gauge_max("simnet.peak_pending", self.peak_pending as f64);
        let stats = self.queue.bucket_stats();
        comdml_obs::gauge_max("simnet.queue_buckets", stats.buckets as f64);
        comdml_obs::gauge_max("simnet.bucket_occupancy_p50", stats.occupancy_p50);
        comdml_obs::gauge_max("simnet.bucket_occupancy_p99", stats.occupancy_p99);
    }

    /// Schedules `event` at absolute simulated time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the current clock (causality violation) or
    /// is NaN.
    pub fn schedule_at(&mut self, time: f64, event: SimEvent) {
        assert!(time >= self.now, "cannot schedule into the past: {time} < {}", self.now);
        self.queue.push(time, event);
        self.peak_pending = self.peak_pending.max(self.queue.len());
    }

    /// Schedules `event` `delay` seconds from now.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_in(&mut self, delay: f64, event: SimEvent) {
        assert!(delay >= 0.0, "delay must be non-negative, got {delay}");
        self.queue.push(self.now + delay, event);
        self.peak_pending = self.peak_pending.max(self.queue.len());
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    ///
    /// Ties are delivered in scheduling order, so identical runs replay the
    /// exact same event sequence — the determinism the seed-reproducibility
    /// tests rely on.
    #[allow(clippy::should_implement_trait)] // DES vocabulary; the driver is not an Iterator
    pub fn next(&mut self) -> Option<(f64, SimEvent)> {
        let (t, ev) = self.queue.pop()?;
        self.now = t;
        self.processed += 1;
        Some((t, ev))
    }

    /// Accounts `seconds` of compute on `agent`'s timeline.
    pub fn record_busy(&mut self, agent: AgentId, seconds: f64) {
        self.timelines[agent.0].busy_s += seconds;
    }

    /// Accounts `seconds` of critical-path communication on `agent`'s
    /// timeline.
    pub fn record_comm(&mut self, agent: AgentId, seconds: f64) {
        self.timelines[agent.0].comm_s += seconds;
    }

    /// Marks `agent`'s round task finished at time `at`.
    pub fn mark_done(&mut self, agent: AgentId, at: f64) {
        let t = &mut self.timelines[agent.0];
        t.done = true;
        t.finish_s = at;
    }

    /// Marks `agent` crash-stopped.
    pub fn mark_failed(&mut self, agent: AgentId) {
        self.timelines[agent.0].failed = true;
    }

    /// Clears `agent`'s done flag — used when an idle agent is re-tasked
    /// mid-round (e.g. claimed as a replacement helper after a failure).
    pub fn mark_active(&mut self, agent: AgentId) {
        self.timelines[agent.0].done = false;
    }

    /// One agent's accumulated timeline.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn timeline(&self, agent: AgentId) -> &AgentTimeline {
        &self.timelines[agent.0]
    }

    /// All timelines, indexed by agent id.
    pub fn timelines(&self) -> &[AgentTimeline] {
        &self.timelines
    }

    /// Number of agents currently marked done.
    pub fn done_count(&self) -> usize {
        self.timelines.iter().filter(|t| t.done).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut d = SimDriver::new(1);
        d.schedule_at(2.0, SimEvent::AggregateStart);
        d.schedule_at(1.0, SimEvent::AgentDone { agent: AgentId(0) });
        let (t1, e1) = d.next().unwrap();
        assert_eq!(t1, 1.0);
        assert!(matches!(e1, SimEvent::AgentDone { .. }));
        assert_eq!(d.now(), 1.0);
        let (t2, _) = d.next().unwrap();
        assert_eq!(t2, 2.0);
        assert!(d.next().is_none());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut d = SimDriver::new(1);
        d.schedule_at(3.0, SimEvent::AggregateStart);
        d.next().unwrap();
        d.schedule_in(1.5, SimEvent::AggregateDone);
        let (t, _) = d.next().unwrap();
        assert_eq!(t, 4.5);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut d = SimDriver::new(1);
        d.schedule_at(5.0, SimEvent::AggregateStart);
        d.next().unwrap();
        d.schedule_at(4.0, SimEvent::AggregateDone);
    }

    #[test]
    fn timelines_accumulate() {
        let mut d = SimDriver::new(2);
        d.record_busy(AgentId(0), 2.0);
        d.record_busy(AgentId(0), 3.0);
        d.record_comm(AgentId(1), 1.0);
        d.mark_done(AgentId(0), 5.0);
        assert_eq!(d.timeline(AgentId(0)).busy_s, 5.0);
        assert_eq!(d.timeline(AgentId(1)).comm_s, 1.0);
        assert!(d.timeline(AgentId(0)).done);
        assert!(!d.timeline(AgentId(1)).done);
        assert_eq!(d.done_count(), 1);
    }

    #[test]
    fn peak_pending_tracks_queue_high_water_mark() {
        let mut d = SimDriver::new(1);
        assert_eq!(d.peak_pending(), 0);
        d.schedule_at(1.0, SimEvent::AggregateStart);
        d.schedule_at(2.0, SimEvent::AggregateDone);
        assert_eq!(d.peak_pending(), 2);
        d.next().unwrap();
        d.next().unwrap();
        // Draining does not lower the high-water mark.
        assert_eq!(d.pending(), 0);
        assert_eq!(d.peak_pending(), 2);
        d.schedule_in(1.0, SimEvent::AggregateStart);
        assert_eq!(d.peak_pending(), 2);
    }

    #[test]
    fn identical_schedules_replay_identically() {
        let run = || {
            let mut d = SimDriver::new(3);
            d.schedule_at(1.0, SimEvent::AgentDone { agent: AgentId(0) });
            d.schedule_at(1.0, SimEvent::AgentDone { agent: AgentId(1) });
            d.schedule_at(0.5, SimEvent::BatchProduced { pair: 0, batch: 0 });
            let mut order = Vec::new();
            while let Some((t, ev)) = d.next() {
                order.push((t.to_bits(), format!("{ev:?}")));
            }
            order
        };
        assert_eq!(run(), run());
    }
}
