//! Hostile-world knobs: conditions the paper never tested.
//!
//! The paper's evaluation worlds are benign — links are stationary, the
//! topology never cuts, and every agent honestly reports its speed to the
//! pairing broadcast. These knobs open the other worlds:
//!
//! - [`DiurnalCycle`] — time-varying bandwidth (mobile fleets see day/night
//!   swings); a smooth multiplicative scale on every link.
//! - [`PartitionSchedule`] — correlated regional outages: one region at a
//!   time loses connectivity to the rest of the fleet, then heals, rotating
//!   through regions.
//! - [`ByzantineConfig`] — agents that misreport their speed (`τ̂`) to the
//!   pairing broadcast, stressing Algorithm 1's trust in advertised speeds:
//!   pairing decisions see the lie, execution runs on the truth.
//!
//! All three are pure functions of the simulated clock and agent identity —
//! no randomness — so enabling them cannot perturb any seeded stream and
//! every pinned determinism digest stays valid.

use serde::{Deserialize, Serialize};

/// A smooth day/night bandwidth cycle applied as a multiplicative scale on
/// every link: `factor(t) = min + (1 − min)·(1 + cos(2πt/period))/2`.
///
/// At `t = 0` the factor is exactly `1.0` (peak); at `t = period/2` it
/// bottoms out at `min_factor`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalCycle {
    /// Full cycle length in simulated seconds.
    pub period_s: f64,
    /// Bandwidth scale at the trough, in `(0, 1]`.
    pub min_factor: f64,
}

impl DiurnalCycle {
    /// The bandwidth scale at simulated time `t_s`.
    pub fn factor_at(&self, t_s: f64) -> f64 {
        let phase = (2.0 * std::f64::consts::PI * t_s / self.period_s).cos();
        self.min_factor + (1.0 - self.min_factor) * 0.5 * (1.0 + phase)
    }

    /// Validates the knobs with `"{ctx}: ..."`-prefixed errors.
    pub fn validate(&self, ctx: &str) -> Result<(), String> {
        if !self.period_s.is_finite() || self.period_s <= 0.0 {
            return Err(format!(
                "{ctx}: period_s must be positive and finite, got {}",
                self.period_s
            ));
        }
        if !self.min_factor.is_finite() || self.min_factor <= 0.0 || self.min_factor > 1.0 {
            return Err(format!("{ctx}: min_factor must be in (0, 1], got {}", self.min_factor));
        }
        Ok(())
    }
}

/// Rotating correlated regional outages.
///
/// Agents are striped into `groups` regions by id (`region = id % groups`).
/// Each period, one region — cycling `0, 1, …, groups−1, 0, …` — is cut off
/// from every other region for the first `outage_s` seconds, then heals.
/// Links *within* a region stay up (the outage models a backbone cut, not a
/// regional power loss).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionSchedule {
    /// Number of regions (at least 2).
    pub groups: usize,
    /// Seconds between outage onsets.
    pub period_s: f64,
    /// Outage duration at the start of each period, in `(0, period_s]`.
    pub outage_s: f64,
}

impl PartitionSchedule {
    /// The region isolated at simulated time `t_s`, or `None` while healed.
    pub fn cut_at(&self, t_s: f64) -> Option<usize> {
        if t_s < 0.0 {
            return None;
        }
        let cycle = (t_s / self.period_s).floor();
        let phase = t_s - cycle * self.period_s;
        if phase < self.outage_s {
            Some((cycle as u64 % self.groups as u64) as usize)
        } else {
            None
        }
    }

    /// The region an agent id belongs to.
    pub fn region_of(&self, id: usize) -> usize {
        id % self.groups
    }

    /// Validates the knobs with `"{ctx}: ..."`-prefixed errors.
    pub fn validate(&self, ctx: &str) -> Result<(), String> {
        if self.groups < 2 {
            return Err(format!("{ctx}: groups must be at least 2, got {}", self.groups));
        }
        if !self.period_s.is_finite() || self.period_s <= 0.0 {
            return Err(format!(
                "{ctx}: period_s must be positive and finite, got {}",
                self.period_s
            ));
        }
        if !self.outage_s.is_finite() || self.outage_s <= 0.0 || self.outage_s > self.period_s {
            return Err(format!("{ctx}: outage_s must be in (0, period_s], got {}", self.outage_s));
        }
        Ok(())
    }
}

/// Byzantine speed misreporting against the pairing broadcast.
///
/// A deterministic `fraction` of agents advertise `speed_factor ×` their
/// true CPU speed in Algorithm 1's broadcast. `speed_factor > 1` models
/// freeloaders that attract offloads they then execute slowly;
/// `speed_factor < 1` models sandbagging. Execution always uses the true
/// profile — only the scheduler's beliefs are poisoned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ByzantineConfig {
    /// Fraction of the fleet that lies, in `[0, 1]`.
    pub fraction: f64,
    /// Multiplier applied to the advertised CPU speed (positive, ≠ 1 to
    /// have any effect).
    pub speed_factor: f64,
}

impl ByzantineConfig {
    /// Whether `id` lies, as a deterministic pure function of `(id, salt)` —
    /// an FNV hash mapped to `[0, 1)` and compared against `fraction`, so
    /// the liar set is stable across rounds, threads and replays without
    /// touching any rng stream.
    pub fn is_liar(&self, id: usize, salt: u64) -> bool {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in id.to_le_bytes().into_iter().chain(salt.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Top 53 bits → uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.fraction
    }

    /// Validates the knobs with `"{ctx}: ..."`-prefixed errors.
    pub fn validate(&self, ctx: &str) -> Result<(), String> {
        if !self.fraction.is_finite() || !(0.0..=1.0).contains(&self.fraction) {
            return Err(format!("{ctx}: fraction must be in [0, 1], got {}", self.fraction));
        }
        if !self.speed_factor.is_finite() || self.speed_factor <= 0.0 {
            return Err(format!(
                "{ctx}: speed_factor must be positive and finite, got {}",
                self.speed_factor
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_peaks_at_zero_and_troughs_at_half_period() {
        let d = DiurnalCycle { period_s: 100.0, min_factor: 0.3 };
        assert!((d.factor_at(0.0) - 1.0).abs() < 1e-12);
        assert!((d.factor_at(50.0) - 0.3).abs() < 1e-12);
        assert!((d.factor_at(100.0) - 1.0).abs() < 1e-9);
        // Always inside [min, 1].
        for i in 0..200 {
            let f = d.factor_at(i as f64 * 1.7);
            assert!((0.3 - 1e-12..=1.0 + 1e-12).contains(&f), "factor {f} out of range");
        }
    }

    #[test]
    fn partition_rotates_regions_and_heals() {
        let p = PartitionSchedule { groups: 3, period_s: 60.0, outage_s: 20.0 };
        assert_eq!(p.cut_at(0.0), Some(0));
        assert_eq!(p.cut_at(19.9), Some(0));
        assert_eq!(p.cut_at(20.0), None);
        assert_eq!(p.cut_at(59.9), None);
        assert_eq!(p.cut_at(60.0), Some(1));
        assert_eq!(p.cut_at(125.0), Some(2));
        assert_eq!(p.cut_at(180.0), Some(0), "rotation wraps");
        assert_eq!(p.cut_at(-5.0), None);
        assert_eq!(p.region_of(7), 1);
    }

    #[test]
    fn byzantine_liar_set_is_deterministic_and_fraction_scaled() {
        let b = ByzantineConfig { fraction: 0.25, speed_factor: 4.0 };
        let liars: Vec<bool> = (0..10_000).map(|id| b.is_liar(id, 42)).collect();
        let again: Vec<bool> = (0..10_000).map(|id| b.is_liar(id, 42)).collect();
        assert_eq!(liars, again);
        let count = liars.iter().filter(|&&l| l).count();
        assert!((2000..3000).contains(&count), "expected ~25% liars, got {count}");
        // Salt changes the set.
        let other = (0..10_000).filter(|&id| b.is_liar(id, 43)).count();
        assert!((2000..3000).contains(&other));
        assert_ne!(
            (0..100).map(|id| b.is_liar(id, 42)).collect::<Vec<_>>(),
            (0..100).map(|id| b.is_liar(id, 43)).collect::<Vec<_>>()
        );
        // Degenerate fractions.
        let none = ByzantineConfig { fraction: 0.0, speed_factor: 4.0 };
        assert!((0..100).all(|id| !none.is_liar(id, 1)));
        let all = ByzantineConfig { fraction: 1.0, speed_factor: 4.0 };
        assert!((0..100).all(|id| all.is_liar(id, 1)));
    }

    #[test]
    fn validation_rejects_bad_hostile_knobs() {
        assert!(DiurnalCycle { period_s: 0.0, min_factor: 0.5 }.validate("d").is_err());
        assert!(DiurnalCycle { period_s: 10.0, min_factor: 0.0 }.validate("d").is_err());
        assert!(DiurnalCycle { period_s: 10.0, min_factor: 1.5 }.validate("d").is_err());
        assert!(DiurnalCycle { period_s: f64::NAN, min_factor: 0.5 }.validate("d").is_err());
        assert!(PartitionSchedule { groups: 1, period_s: 10.0, outage_s: 5.0 }
            .validate("p")
            .is_err());
        assert!(PartitionSchedule { groups: 2, period_s: 10.0, outage_s: 0.0 }
            .validate("p")
            .is_err());
        assert!(PartitionSchedule { groups: 2, period_s: 10.0, outage_s: 11.0 }
            .validate("p")
            .is_err());
        assert!(ByzantineConfig { fraction: 1.5, speed_factor: 2.0 }.validate("b").is_err());
        assert!(ByzantineConfig { fraction: -0.1, speed_factor: 2.0 }.validate("b").is_err());
        assert!(ByzantineConfig { fraction: 0.5, speed_factor: 0.0 }.validate("b").is_err());
        // Well-formed knobs pass.
        assert!(DiurnalCycle { period_s: 10.0, min_factor: 0.5 }.validate("d").is_ok());
        assert!(PartitionSchedule { groups: 2, period_s: 10.0, outage_s: 10.0 }
            .validate("p")
            .is_ok());
        assert!(ByzantineConfig { fraction: 0.0, speed_factor: 1.0 }.validate("b").is_ok());
    }
}
