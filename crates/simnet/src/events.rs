use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A deterministic discrete-event queue keyed by simulated seconds.
///
/// Ties are broken by insertion order so simulations are reproducible across
/// runs regardless of payload type.
///
/// # Example
///
/// ```
/// use comdml_simnet::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(2.0, "late");
/// q.push(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; earlier time first, then earlier insertion.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `payload` at simulated time `time` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN — an event at undefined time would silently
    /// corrupt the ordering.
    pub fn push(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        self.heap.push(Entry { time, seq: self.seq, payload });
        self.seq += 1;
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, 'c');
        q.push(1.0, 'a');
        q.push(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, "first");
        q.push(1.0, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(5.0, ());
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_times_rejected() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }
}
