//! Deterministic discrete-event queue, implemented as a calendar queue.
//!
//! The classic `BinaryHeap` implementation pays `O(log n)` per operation
//! and scatters comparisons across the heap array; at fleet scale (millions
//! of pending events per round) that log factor and its cache misses
//! dominate the event loop. A calendar queue instead hashes each event into
//! a time bucket of width ≈ the mean inter-event gap, making push `O(1)`
//! and pop an `O(1)` amortized probe of the cursor's bucket.
//!
//! Fleet rounds are full of *tied* timestamps — every agent released by the
//! same barrier or aggregate schedules at the identical instant — and tied
//! events all share one bucket by construction. A naive per-bucket list
//! degrades to `O(m²)` when draining an `m`-way tie, so each bucket is a
//! small binary heap ordered by `(time, seq)`: probing a bucket is an `O(1)`
//! peek and draining a tie costs `O(m log m)` total.
//!
//! Determinism is the load-bearing contract: pop order is exactly
//! ascending `(time, insertion sequence)`, bit-for-bit identical to the
//! heap it replaced, because equal timestamps always land in the same
//! bucket (same `t / width` quotient) where the sequence number breaks the
//! tie explicitly. The paranoid cases — events pushed into the past,
//! events a full calendar rotation in the future, ±infinite times — are
//! handled by cursor reset and a global min-scan fallback, and
//! `tests/properties.rs` holds the heap-equivalence property under random
//! interleaved push/pop.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Occupancy snapshot of the calendar layout (see
/// [`EventQueue::bucket_stats`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketStats {
    /// Number of buckets in the calendar.
    pub buckets: usize,
    /// Median events per bucket.
    pub occupancy_p50: f64,
    /// 99th-percentile events per bucket.
    pub occupancy_p99: f64,
}

/// A deterministic discrete-event queue keyed by simulated seconds.
///
/// Ties are broken by insertion order so simulations are reproducible across
/// runs regardless of payload type.
///
/// # Example
///
/// ```
/// use comdml_simnet::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(2.0, "late");
/// q.push(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    /// Min-heaps (via `Reverse`) keyed by `(time, seq)`; a bucket's peek is
    /// therefore its earliest entry, which is also its earliest *virtual
    /// bucket* since `vbucket` is monotone in time.
    buckets: Vec<BinaryHeap<Reverse<Entry<T>>>>,
    /// Bucket width in simulated seconds (re-estimated at every resize).
    width: f64,
    /// Virtual bucket index of the pop cursor: every strictly earlier
    /// virtual bucket is known empty. Integer, so the cursor cannot drift
    /// from the `t / width` quotient the way a floating bucket-top would.
    cur_vb: i64,
    len: usize,
    seq: u64,
    /// Layout snapshot captured at the last capacity grow — the high-water
    /// calendar — for observability (the live layout at publish time is
    /// usually already drained).
    grow_stats: Option<BucketStats>,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

// Ordered by `(time, seq)` exactly as the tuple comparison the heap-backed
// queue used; `time` is never NaN (asserted on push) and `seq` is unique,
// so the order is total and the tie-break deterministic.
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq && self.time == other.time
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("event times are never NaN")
            .then(self.seq.cmp(&other.seq))
    }
}

/// Smallest calendar; also the initial size.
const MIN_BUCKETS: usize = 16;

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            buckets: (0..MIN_BUCKETS).map(|_| BinaryHeap::new()).collect(),
            width: 1.0,
            cur_vb: 0,
            len: 0,
            seq: 0,
            grow_stats: None,
        }
    }

    /// The virtual (un-wrapped) bucket an event time belongs to. Equal
    /// times share a quotient, hence a bucket, hence an explicit
    /// sequence-number tie-break — the determinism contract.
    fn vbucket(&self, time: f64) -> i64 {
        // `as` saturates, which keeps ±infinite times ordered at the
        // extremes instead of wrapping.
        (time / self.width).floor() as i64
    }

    /// Schedules `payload` at simulated time `time` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN — an event at undefined time would silently
    /// corrupt the ordering.
    pub fn push(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let vb = self.vbucket(time);
        // An event pushed before the cursor (legal here, even though
        // `SimDriver` forbids scheduling in the past) rewinds it.
        if self.len == 0 || vb < self.cur_vb {
            self.cur_vb = vb;
        }
        let nb = self.buckets.len();
        let idx = vb.rem_euclid(nb as i64) as usize;
        self.buckets[idx].push(Reverse(Entry { time, seq: self.seq, payload }));
        self.seq += 1;
        self.len += 1;
        if self.len > 2 * nb {
            self.resize(self.len, true);
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        let b = self.find_min()?;
        let Reverse(e) = self.buckets[b].pop().expect("find_min returned a non-empty bucket");
        // The popped event was the global minimum, so nothing earlier than
        // its bucket remains; later pops resume the scan there.
        self.cur_vb = self.vbucket(e.time);
        self.len -= 1;
        let nb = self.buckets.len();
        if nb > MIN_BUCKETS && self.len * 8 < nb {
            self.resize(self.len, false);
        }
        Some((e.time, e.payload))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.find_min().map(|b| self.buckets[b].peek().expect("non-empty bucket").0.time)
    }

    /// Locates the bucket holding the earliest event by `(time, seq)`: walk
    /// the calendar one rotation from the cursor looking for a bucket whose
    /// earliest entry lives in the visited virtual bucket. A bucket's peek
    /// is its time-minimal entry, and every pending virtual bucket is
    /// ≥ `cur_vb`, so within one rotation the peek's virtual bucket is
    /// either the visited one (hit — and the peek is exactly the `(time,
    /// seq)` minimum at home) or a later rotation (miss, `O(1)` skip). If
    /// the whole rotation misses, every pending event is at least a full
    /// rotation ahead, and a direct global peek-scan finds it exactly.
    fn find_min(&self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let nb = self.buckets.len() as i64;
        for step in 0..nb {
            let vb = self.cur_vb.saturating_add(step);
            let idx = vb.rem_euclid(nb) as usize;
            if let Some(Reverse(e)) = self.buckets[idx].peek() {
                if self.vbucket(e.time) == vb {
                    return Some(idx);
                }
            }
        }
        let mut best: Option<usize> = None;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            if let Some(Reverse(c)) = bucket.peek() {
                let better = match best {
                    None => true,
                    Some(b) => {
                        let Reverse(p) = self.buckets[b].peek().expect("tracked best is non-empty");
                        c < p
                    }
                };
                if better {
                    best = Some(idx);
                }
            }
        }
        best
    }

    /// Rebuilds the calendar for ~`target` events: bucket count is the next
    /// power of two (so the modulo is a mask) and the width is re-estimated
    /// from the pending span so roughly one event lands per bucket. Both
    /// triggers are geometric (grow at 2× buckets, shrink at 1/8), so the
    /// `O(n)` redistribution amortizes to `O(1)` per operation.
    fn resize(&mut self, target: usize, grew: bool) {
        let nb = target.max(MIN_BUCKETS).next_power_of_two();
        let entries: Vec<Entry<T>> = std::mem::take(&mut self.buckets)
            .into_iter()
            .flat_map(|heap| heap.into_iter().map(|Reverse(e)| e))
            .collect();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for e in &entries {
            lo = lo.min(e.time);
            hi = hi.max(e.time);
        }
        let span = hi - lo;
        if entries.len() > 1 && span > 0.0 && span.is_finite() {
            self.width = span / entries.len() as f64;
        }
        self.buckets = (0..nb).map(|_| BinaryHeap::new()).collect();
        if !entries.is_empty() {
            self.cur_vb = self.vbucket(lo);
        }
        for e in entries {
            let idx = self.vbucket(e.time).rem_euclid(nb as i64) as usize;
            self.buckets[idx].push(Reverse(e));
        }
        if grew {
            self.grow_stats = Some(self.layout_stats());
        }
    }

    /// Occupancy snapshot: the layout at the last capacity grow (the
    /// high-water calendar), or the live layout if the queue never grew.
    pub fn bucket_stats(&self) -> BucketStats {
        self.grow_stats.unwrap_or_else(|| self.layout_stats())
    }

    fn layout_stats(&self) -> BucketStats {
        let mut counts: Vec<usize> = self.buckets.iter().map(BinaryHeap::len).collect();
        counts.sort_unstable();
        let q = |p: f64| counts[((counts.len() - 1) as f64 * p).round() as usize] as f64;
        BucketStats { buckets: self.buckets.len(), occupancy_p50: q(0.5), occupancy_p99: q(0.99) }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, 'c');
        q.push(1.0, 'a');
        q.push(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, "first");
        q.push(1.0, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(5.0, ());
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_times_rejected() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn growth_and_shrink_preserve_order() {
        // Push enough to force several grows, drain through the shrink
        // threshold, and require globally sorted (time, seq) output.
        let mut q = EventQueue::new();
        let mut rng = 0x9e37_79b9_u64;
        for i in 0..10_000usize {
            rng = rng.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            q.push((rng % 1000) as f64 * 0.125, i);
        }
        let mut prev: Option<(f64, usize)> = None;
        while let Some((t, p)) = q.pop() {
            if let Some((pt, pp)) = prev {
                assert!(pt < t || (pt == t && pp < p), "({pt},{pp}) then ({t},{p})");
            }
            prev = Some((t, p));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn events_pushed_into_the_past_rewind_the_cursor() {
        let mut q = EventQueue::new();
        q.push(100.0, "late");
        assert_eq!(q.pop(), Some((100.0, "late")));
        // The cursor now sits at t=100's bucket; an earlier event must
        // still come out first.
        q.push(200.0, "later");
        q.push(1.0, "early");
        assert_eq!(q.pop(), Some((1.0, "early")));
        assert_eq!(q.pop(), Some((200.0, "later")));
    }

    #[test]
    fn far_future_events_use_the_rotation_fallback() {
        // One event many full calendar rotations ahead: the rotation scan
        // finds nothing at home and the global min-scan must locate it.
        let mut q = EventQueue::new();
        q.push(0.0, "now");
        q.push(1e9, "someday");
        assert_eq!(q.pop(), Some((0.0, "now")));
        assert_eq!(q.pop(), Some((1e9, "someday")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_survive_resizes() {
        let mut q = EventQueue::new();
        for i in 0..1000usize {
            q.push(7.5, i);
        }
        for i in 0..1000usize {
            assert_eq!(q.pop(), Some((7.5, i)));
        }
    }

    #[test]
    fn negative_and_infinite_times_order_correctly() {
        let mut q = EventQueue::new();
        q.push(f64::INFINITY, "end");
        q.push(-3.0, "past");
        q.push(0.0, "zero");
        q.push(f64::NEG_INFINITY, "dawn");
        assert_eq!(q.pop(), Some((f64::NEG_INFINITY, "dawn")));
        assert_eq!(q.pop(), Some((-3.0, "past")));
        assert_eq!(q.pop(), Some((0.0, "zero")));
        assert_eq!(q.pop(), Some((f64::INFINITY, "end")));
    }

    #[test]
    fn bucket_stats_reflect_the_high_water_layout() {
        let mut q = EventQueue::new();
        for i in 0..500usize {
            q.push(i as f64, i);
        }
        let stats = q.bucket_stats();
        // Grows trigger at 2× buckets, so the high-water calendar holds at
        // least half an event per bucket.
        assert!(stats.buckets >= 256, "grew with the event count: {stats:?}");
        assert!(stats.occupancy_p50 <= stats.occupancy_p99);
        // Draining does not erase the high-water snapshot.
        while q.pop().is_some() {}
        assert_eq!(q.bucket_stats(), stats);
    }
}
