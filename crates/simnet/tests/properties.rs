//! Property tests for the simulation substrate.

use comdml_simnet::{EventQueue, Topology, WorldConfig};
use proptest::prelude::*;

/// Reference model for the calendar queue: the binary heap it replaced,
/// reduced to its ordering contract — pop the `(time, seq)`-minimal entry.
#[derive(Default)]
struct HeapModel {
    entries: Vec<(f64, u64, usize)>,
    seq: u64,
}

impl HeapModel {
    fn push(&mut self, time: f64, payload: usize) {
        self.entries.push((time, self.seq, payload));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(f64, usize)> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("no NaN times"))
            .map(|(i, _)| i)?;
        let (t, _, p) = self.entries.remove(best);
        Some((t, p))
    }
}

proptest! {
    /// World building conserves the dataset and stays within profile grids.
    #[test]
    fn world_invariants(k in 1usize..64, seed in 0u64..u64::MAX, total in 100usize..200_000) {
        let world = WorldConfig::heterogeneous(k, seed).total_samples(total).build();
        prop_assert_eq!(world.num_agents(), k);
        let sum: usize = world.agents().iter().map(|a| a.num_samples).sum();
        prop_assert_eq!(sum, total, "every sample assigned exactly once");
        for a in world.agents() {
            prop_assert!(a.profile.cpus > 0.0 && a.profile.cpus <= 4.0);
            prop_assert!(a.profile.link_mbps >= 0.0 && a.profile.link_mbps <= 100.0);
        }
    }

    /// Link speeds are symmetric and zero on missing edges.
    #[test]
    fn link_symmetry(k in 2usize..32, seed in 0u64..u64::MAX, p in 0.0f64..1.0) {
        let world = WorldConfig::heterogeneous(k, seed)
            .topology(Topology::random(p))
            .build();
        for i in 0..k {
            for j in 0..k {
                let a = world.link_mbps(i.into(), j.into());
                let b = world.link_mbps(j.into(), i.into());
                prop_assert!((a - b).abs() < 1e-12, "symmetric links");
                if i == j {
                    prop_assert_eq!(a, 0.0);
                }
                if !world.adjacency().connected(i, j) {
                    prop_assert_eq!(a, 0.0);
                }
            }
        }
    }

    /// Churn changes at most the requested fraction of profiles.
    #[test]
    fn churn_bounds(k in 5usize..40, seed in 0u64..u64::MAX, frac in 0.0f64..1.0) {
        let mut world = WorldConfig::heterogeneous(k, seed).build();
        let before: Vec<_> = world.agents().iter().map(|a| a.profile).collect();
        world.churn_profiles(frac);
        let changed = world
            .agents()
            .iter()
            .zip(before.iter())
            .filter(|(a, b)| a.profile != **b)
            .count();
        let max_changed = (k as f64 * frac).round() as usize;
        prop_assert!(changed <= max_changed, "{changed} > {max_changed}");
    }

    /// Participant sampling returns sorted unique ids within bounds.
    #[test]
    fn sampling_invariants(k in 1usize..64, seed in 0u64..u64::MAX, rate in 0.0f64..1.0) {
        let mut world = WorldConfig::heterogeneous(k, seed).build();
        let sample = world.sample_participants(rate);
        prop_assert!(!sample.is_empty());
        prop_assert!(sample.len() <= k);
        for w in sample.windows(2) {
            prop_assert!(w[0] < w[1], "sorted and unique");
        }
        for id in &sample {
            prop_assert!(id.0 < k);
        }
    }

    /// The calendar queue pops in exactly the order the old binary heap
    /// did, under random interleaved push/pop with heavy timestamp
    /// collisions (times drawn from a tiny grid so equal-time tie-breaks
    /// are exercised constantly, and spans vary enough to force both
    /// resize directions and the far-future rotation fallback).
    #[test]
    fn calendar_queue_matches_heap_order(
        ops in prop::collection::vec((0u8..4, 0u32..64), 1..400),
        scale in 0.01f64..1e6,
    ) {
        let mut q = EventQueue::new();
        let mut model = HeapModel::default();
        let mut payload = 0usize;
        for (op, t) in ops {
            if op == 0 {
                // Pop on both; results must agree bit for bit.
                let got = q.pop();
                let want = model.pop();
                prop_assert_eq!(got, want);
            } else {
                let time = f64::from(t) * scale / 7.0;
                q.push(time, payload);
                model.push(time, payload);
                payload += 1;
            }
            prop_assert_eq!(q.len(), model.entries.len());
            prop_assert_eq!(q.peek_time().map(f64::to_bits),
                            model.entries.iter().map(|e| e.0)
                                .min_by(|a, b| a.partial_cmp(b).unwrap())
                                .map(f64::to_bits));
        }
        // Drain: the full remaining order must match.
        while let Some(want) = model.pop() {
            prop_assert_eq!(q.pop(), Some(want));
        }
        prop_assert!(q.is_empty());
    }

    /// Topology density is within [0, 1] and full mesh is exactly 1.
    #[test]
    fn density_bounds(k in 2usize..32, seed in 0u64..u64::MAX, p in 0.0f64..1.0) {
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(seed)
        };
        let adj = Topology::random(p).build(k, &mut rng);
        let d = adj.density();
        prop_assert!((0.0..=1.0).contains(&d));
        let full = Topology::Full.build(k, &mut rng);
        prop_assert!((full.density() - 1.0).abs() < 1e-12);
    }
}
