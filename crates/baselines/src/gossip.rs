use comdml_core::RoundEngine;
use comdml_simnet::{AgentId, World};

use crate::BaselineConfig;

/// Gossip Learning \[11\]: every agent trains locally and exchanges its model
/// with a single random neighbour.
///
/// There is no global barrier, so the effective round advances at the *mean*
/// pace of the fleet rather than the straggler's — but pairwise averaging
/// mixes information much more slowly than a global AllReduce, so more
/// rounds are needed to reach the same accuracy (the `rounds_factor`).
#[derive(Debug, Clone)]
pub struct GossipLearning {
    cfg: BaselineConfig,
    rounds_factor: f64,
}

impl GossipLearning {
    /// Creates the engine with the default mixing efficiency (0.55):
    /// pairwise averaging propagates information across `K` agents roughly
    /// a factor `log(K)/K` slower per round than a global average, which at
    /// the paper's scales costs a bit under half the round efficiency.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self { cfg, rounds_factor: 0.55 }
    }

    /// Overrides the mixing efficiency (1.0 = as good as full averaging).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn with_rounds_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1], got {factor}");
        self.rounds_factor = factor;
        self
    }

    /// Degrades the mixing efficiency for a sparse topology: pairwise
    /// averaging mixes through the graph's conductance, so a graph keeping
    /// only a `density` fraction of links slows convergence roughly by
    /// `√density` (random-graph spectral-gap scaling).
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    pub fn with_topology_density(mut self, density: f64) -> Self {
        assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1], got {density}");
        self.rounds_factor = (0.55 * density.sqrt()).max(0.05);
        self
    }
}

impl RoundEngine for GossipLearning {
    fn name(&self) -> &'static str {
        "Gossip Learning"
    }

    fn rounds_factor(&self) -> f64 {
        self.rounds_factor
    }

    fn round_time_s(&mut self, world: &mut World, round: usize) -> f64 {
        let participants = self.cfg.participants(world, round);
        self.round_time_for(world, round, &participants)
    }

    fn round_time_for(&mut self, world: &World, _round: usize, participants: &[AgentId]) -> f64 {
        let b = self.cfg.model.model_bytes() as u64;
        // No barrier: the fleet progresses at its mean pace, each agent
        // paying its own compute plus one model exchange over its own link.
        let times: Vec<_> = participants
            .iter()
            .map(|&id| {
                let a = world.agent(id);
                let exchange = 2.0 * self.cfg.calibration.transfer_time_s(b, a.profile.link_mbps);
                (id, self.cfg.solo_time_s(a) + exchange)
            })
            .collect();
        comdml_core::mean_round_s(&times)
    }

    // `round_progress_for` inherits the trait default: everyone exchanges,
    // but pairwise averaging only *partially* mixes information — the
    // round's learning efficiency is the (possibly topology-degraded)
    // mixing factor, well below a global average's 1.0.
}

#[cfg(test)]
mod tests {
    use super::*;
    use comdml_core::{time_to_accuracy, LearningCurve};
    use comdml_simnet::WorldConfig;

    #[test]
    fn gossip_rounds_exceed_synchronous_rounds() {
        let world = WorldConfig::heterogeneous(10, 1).build();
        let curve = LearningCurve::cifar10(true);
        let mut gossip = GossipLearning::new(BaselineConfig { churn: None, ..Default::default() });
        let t = time_to_accuracy(&mut gossip, &world, &curve, 0.80);
        assert!(t.rounds > curve.rounds_to(0.80, 1.0));
    }

    #[test]
    fn per_round_time_below_straggler() {
        let mut gossip = GossipLearning::new(BaselineConfig { churn: None, ..Default::default() });
        let mut world = WorldConfig::heterogeneous(10, 2).build();
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let straggler = gossip.cfg.straggler_compute_s(&world, &ids);
        let t = gossip.round_time_s(&mut world, 0);
        assert!(t < straggler, "mean pace {t} should be under straggler {straggler}");
    }

    #[test]
    fn progress_carries_the_mixing_efficiency() {
        let mut gossip = GossipLearning::new(BaselineConfig { churn: None, ..Default::default() })
            .with_topology_density(0.25);
        let world = WorldConfig::heterogeneous(8, 4).build();
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let p = gossip.round_progress_for(&world, 0, &ids);
        assert!((p.efficiency - 0.55 * 0.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(p.cohort, 8, "everyone exchanges");
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn invalid_rounds_factor_rejected() {
        let _ = GossipLearning::new(BaselineConfig::default()).with_rounds_factor(1.5);
    }
}
