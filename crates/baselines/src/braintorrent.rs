use comdml_core::RoundEngine;
use comdml_simnet::{AgentId, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::BaselineConfig;

/// BrainTorrent \[10\]: a peer-to-peer framework where agents take turns
/// acting as the aggregation server.
///
/// Per round a randomly selected participant pulls every other participant's
/// model over its own link (`(P−1)·b` bytes in, then `(P−1)·b` bytes out) —
/// cheaper than a real server but still serialized through one peer's
/// connection, unlike AllReduce's balanced schedule.
#[derive(Debug)]
pub struct BrainTorrent {
    cfg: BaselineConfig,
    rng: StdRng,
}

impl BrainTorrent {
    /// Creates the engine; the rotating aggregator is drawn from `seed`.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self { cfg, rng: StdRng::seed_from_u64(0x000b_7a10) }
    }

    /// Overrides the aggregator-selection seed (for reproducible runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }
}

impl RoundEngine for BrainTorrent {
    fn name(&self) -> &'static str {
        "BrainTorrent"
    }

    fn round_time_s(&mut self, world: &mut World, round: usize) -> f64 {
        let participants = self.cfg.participants(world, round);
        self.round_time_for(world, round, &participants)
    }

    fn round_time_for(&mut self, world: &World, _round: usize, participants: &[AgentId]) -> f64 {
        let times = self.cfg.per_agent_times(world, participants);
        if participants.len() < 2 {
            return comdml_core::barrier_round_s(&times, 0.0);
        }
        let aggregator = participants[self.rng.gen_range(0..participants.len())];
        let agg_link = world.agent(aggregator).profile.link_mbps;
        let b = self.cfg.model.model_bytes() as u64;
        let bytes = 2 * (participants.len() as u64 - 1) * b;
        comdml_core::barrier_round_s(&times, self.cfg.calibration.transfer_time_s(bytes, agg_link))
    }

    // `round_progress_for` inherits the trait default: the rotating
    // aggregator serializes communication but still averages every
    // participant's fresh update — only the round *time* varies with the
    // drawn aggregator, never the learning efficiency.
}

#[cfg(test)]
mod tests {
    use super::*;
    use comdml_simnet::WorldConfig;

    #[test]
    fn aggregation_scales_with_participants() {
        let world_small = WorldConfig::heterogeneous(4, 1).build();
        let world_big = WorldConfig::heterogeneous(32, 1).build();
        let mk =
            || BrainTorrent::new(BaselineConfig { churn: None, ..Default::default() }).with_seed(1);
        // Compare aggregation-only by subtracting the straggler compute.
        let mut small_engine = mk();
        let mut w = world_small.clone();
        let ids: Vec<_> = w.agents().iter().map(|a| a.id).collect();
        let agg_small =
            small_engine.round_time_s(&mut w, 0) - small_engine.cfg.straggler_compute_s(&w, &ids);
        let mut big_engine = mk();
        let mut w = world_big.clone();
        let ids: Vec<_> = w.agents().iter().map(|a| a.id).collect();
        let agg_big =
            big_engine.round_time_s(&mut w, 0) - big_engine.cfg.straggler_compute_s(&w, &ids);
        assert!(agg_big > agg_small, "{agg_big} vs {agg_small}");
    }

    #[test]
    fn progress_varies_in_time_but_not_in_efficiency() {
        let mut engine =
            BrainTorrent::new(BaselineConfig { churn: None, ..Default::default() }).with_seed(7);
        let world = WorldConfig::heterogeneous(12, 5).build();
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let times: Vec<f64> = (0..8).map(|r| engine.round_progress_for(&world, r, &ids)).fold(
            Vec::new(),
            |mut acc, p| {
                assert_eq!((p.efficiency, p.cohort), (1.0, 12));
                acc.push(p.round_s);
                acc
            },
        );
        assert!(
            times.iter().any(|&t| (t - times[0]).abs() > 1e-9),
            "the rotating aggregator should vary round times"
        );
    }

    #[test]
    fn single_agent_has_no_aggregation() {
        let mut engine = BrainTorrent::new(BaselineConfig { churn: None, ..Default::default() });
        let mut world = WorldConfig::heterogeneous(1, 1).build();
        let t = engine.round_time_s(&mut world, 0);
        let solo = engine.cfg.solo_time_s(&world.agents()[0]);
        assert!((t - solo).abs() < 1e-9);
    }
}
