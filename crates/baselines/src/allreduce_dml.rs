use comdml_collective::{AllReduceAlgorithm, CollectiveCost};
use comdml_core::RoundEngine;
use comdml_simnet::{AgentId, World};

use crate::BaselineConfig;

/// Decentralized AllReduce DML \[34\]: agents train the full model
/// independently and aggregate with AllReduce — ComDML without the workload
/// balancing.
///
/// The gap between this engine and ComDML isolates the contribution of the
/// pairing scheduler, since both share the identical aggregation step.
#[derive(Debug, Clone)]
pub struct AllReduceDml {
    cfg: BaselineConfig,
    algorithm: AllReduceAlgorithm,
}

impl AllReduceDml {
    /// Creates the engine with halving/doubling aggregation.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self { cfg, algorithm: AllReduceAlgorithm::HalvingDoubling }
    }

    /// Selects the aggregation algorithm (ring vs halving/doubling).
    pub fn with_algorithm(mut self, algorithm: AllReduceAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }
}

impl RoundEngine for AllReduceDml {
    fn name(&self) -> &'static str {
        "AllReduce"
    }

    fn round_time_s(&mut self, world: &mut World, round: usize) -> f64 {
        let participants = self.cfg.participants(world, round);
        self.round_time_for(world, round, &participants)
    }

    fn round_time_for(&mut self, world: &World, _round: usize, participants: &[AgentId]) -> f64 {
        if participants.is_empty() {
            return 0.0;
        }
        let times = self.cfg.per_agent_times(world, participants);
        let min_link = self.cfg.min_link_mbps(world, participants);
        let cost = CollectiveCost::new(
            self.algorithm,
            participants.len().max(1),
            self.cfg.model.model_bytes() as u64,
        );
        let agg = cost.time_s(
            self.cfg.calibration.bytes_per_s(min_link),
            self.cfg.calibration.link_latency_s,
        );
        comdml_core::barrier_round_s(&times, agg)
    }

    // `round_progress_for` inherits the trait default: AllReduce is a
    // global average over the full barrier cohort — the same learning step
    // as FedAvg, at full per-round efficiency.
}

#[cfg(test)]
mod tests {
    use super::*;
    use comdml_simnet::WorldConfig;

    #[test]
    fn ring_and_hd_differ_only_in_steps() {
        let world = WorldConfig::heterogeneous(16, 1).build();
        let mut hd = AllReduceDml::new(BaselineConfig { churn: None, ..Default::default() });
        let mut ring = AllReduceDml::new(BaselineConfig { churn: None, ..Default::default() })
            .with_algorithm(AllReduceAlgorithm::Ring);
        let t_hd = hd.round_time_s(&mut world.clone(), 0);
        let t_ring = ring.round_time_s(&mut world.clone(), 0);
        // Same bytes, ring has more latency-bound steps.
        assert!(t_ring >= t_hd);
    }

    #[test]
    fn progress_reports_the_full_cohort_at_full_efficiency() {
        let mut engine = AllReduceDml::new(BaselineConfig { churn: None, ..Default::default() });
        let world = WorldConfig::heterogeneous(8, 4).build();
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let p = engine.round_progress_for(&world, 0, &ids);
        assert_eq!(p.round_s, engine.round_time_for(&world, 0, &ids));
        assert_eq!((p.efficiency, p.cohort), (1.0, 8));
    }

    #[test]
    fn compute_dominates_for_large_models() {
        let mut engine = AllReduceDml::new(BaselineConfig { churn: None, ..Default::default() });
        let mut world = WorldConfig::heterogeneous(10, 2).build();
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let compute = engine.cfg.straggler_compute_s(&world, &ids);
        let t = engine.round_time_s(&mut world, 0);
        assert!(t < compute * 1.2, "aggregation should be a small fraction: {t} vs {compute}");
    }
}
