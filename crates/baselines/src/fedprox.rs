use comdml_core::RoundEngine;
use comdml_simnet::{AgentId, World};

use crate::BaselineConfig;

/// FedProx (\[27\] Li et al., discussed in §II-B): heterogeneity-aware FedAvg
/// that lets slow agents do *less local work* per round (fewer local
/// iterations), with a proximal term keeping partial updates stable.
///
/// We model the system-level effect: each agent trains a fraction of its
/// local epoch proportional to its speed (floored so everyone contributes),
/// which caps the straggler's round time, at the cost of extra rounds
/// (partial local work converges slower).
#[derive(Debug, Clone)]
pub struct FedProx {
    cfg: BaselineConfig,
    min_work: f64,
}

impl FedProx {
    /// Creates the engine; `min_work` is the floor on the fraction of a
    /// local epoch a straggler performs (FedProx's γ-inexactness knob).
    ///
    /// # Panics
    ///
    /// Panics if `min_work` is not in `(0, 1]`.
    pub fn new(cfg: BaselineConfig, min_work: f64) -> Self {
        assert!(min_work > 0.0 && min_work <= 1.0, "min work must be in (0, 1], got {min_work}");
        Self { cfg, min_work }
    }
}

impl RoundEngine for FedProx {
    fn name(&self) -> &'static str {
        "FedProx"
    }

    fn rounds_factor(&self) -> f64 {
        // Partial local work converges slower: the more a straggler's
        // epoch is truncated (small `min_work`), the more rounds the global
        // model needs. Linear interpolation to 1.0 at full work.
        0.6 + 0.4 * self.min_work
    }

    fn round_time_s(&mut self, world: &mut World, round: usize) -> f64 {
        let participants = self.cfg.participants(world, round);
        self.round_time_for(world, round, &participants)
    }

    fn round_time_for(&mut self, world: &World, _round: usize, participants: &[AgentId]) -> f64 {
        if participants.is_empty() {
            return 0.0;
        }
        // Reference pace: the median agent trains a full epoch; faster
        // agents too; slower agents scale their work down to match, floored.
        let mut solos: Vec<f64> =
            participants.iter().map(|&id| self.cfg.solo_time_s(world.agent(id))).collect();
        solos.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let reference = solos[solos.len() / 2];
        let times: Vec<_> = participants
            .iter()
            .map(|&id| {
                let solo = self.cfg.solo_time_s(world.agent(id));
                let work = (reference / solo).clamp(self.min_work, 1.0);
                (id, solo * work)
            })
            .collect();
        let b = self.cfg.model.model_bytes() as u64;
        let min_link = self.cfg.min_link_mbps(world, participants);
        let comm = 2.0 * self.cfg.calibration.transfer_time_s(b, min_link);
        comdml_core::barrier_round_s(&times, comm)
    }

    // `round_progress_for` inherits the trait default: every participant
    // contributes, but stragglers contribute *truncated* epochs — the
    // round's efficiency is the γ-inexactness discount, a constant of the
    // `min_work` floor.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FedAvg;
    use comdml_simnet::WorldConfig;

    #[test]
    fn caps_straggler_rounds_below_fedavg() {
        let base = BaselineConfig { churn: None, ..BaselineConfig::default() };
        let world = WorldConfig::heterogeneous(10, 1).build();
        let mut fedavg = FedAvg::new(base.clone());
        let mut fedprox = FedProx::new(base, 0.5);
        let t_avg = fedavg.round_time_s(&mut world.clone(), 0);
        let t_prox = fedprox.round_time_s(&mut world.clone(), 0);
        assert!(t_prox < t_avg, "{t_prox} vs {t_avg}");
    }

    #[test]
    fn min_work_one_degenerates_to_fedavg_compute() {
        let base = BaselineConfig { churn: None, ..BaselineConfig::default() };
        let world = WorldConfig::heterogeneous(10, 2).build();
        let mut full = FedProx::new(base.clone(), 1.0);
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let straggler = base.straggler_compute_s(&world, &ids);
        let t = full.round_time_s(&mut world.clone(), 0);
        assert!(t >= straggler, "min_work = 1 keeps full epochs: {t} vs {straggler}");
    }

    #[test]
    fn pays_in_rounds() {
        assert!(FedProx::new(BaselineConfig::default(), 0.2).rounds_factor() < 1.0);
    }

    #[test]
    fn progress_carries_the_inexactness_discount() {
        let base = BaselineConfig { churn: None, ..BaselineConfig::default() };
        let world = WorldConfig::heterogeneous(10, 6).build();
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let mut engine = FedProx::new(base, 0.4);
        let p = engine.round_progress_for(&world, 0, &ids);
        assert!((p.efficiency - (0.6 + 0.4 * 0.4)).abs() < 1e-12);
        assert_eq!(p.cohort, 10, "everyone's partial update aggregates");
    }
}
