use comdml_core::{RoundEngine, RoundProgress};
use comdml_simnet::{AgentId, World};

use crate::BaselineConfig;

/// Straggler dropping (\[26\] Bonawitz et al., discussed in §II-B): each round
/// simply ignores the slowest fraction of participants (the reference system
/// drops ~30%), synchronizing only on the survivors.
///
/// Cheap rounds, but the dropped agents' data never contributes that round —
/// and the same slow agents are dropped every time, so their data is
/// systematically under-represented (the paper's criticism: "the challenge
/// of determining optimal parameters").
#[derive(Debug, Clone)]
pub struct DropStragglers {
    cfg: BaselineConfig,
    drop_fraction: f64,
}

impl DropStragglers {
    /// Creates the engine dropping the slowest `drop_fraction` each round.
    ///
    /// # Panics
    ///
    /// Panics if `drop_fraction` is not in `[0, 1)`.
    pub fn new(cfg: BaselineConfig, drop_fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&drop_fraction),
            "drop fraction must be in [0, 1), got {drop_fraction}"
        );
        Self { cfg, drop_fraction }
    }

    /// Survivors of an `n`-participant round: the fastest
    /// `ceil(n · (1 − drop_fraction))`, at least one — the single drop rule
    /// both the pricing and the progress report use.
    fn keep(&self, n: usize) -> usize {
        ((n as f64 * (1.0 - self.drop_fraction)).ceil() as usize).clamp(1, n)
    }
}

impl RoundEngine for DropStragglers {
    fn name(&self) -> &'static str {
        "Drop-30%"
    }

    fn rounds_factor(&self) -> f64 {
        // Surviving fraction of data per round, with the usual sub-linear
        // transfer between rounds.
        (1.0 - self.drop_fraction).powf(0.35)
    }

    fn round_time_s(&mut self, world: &mut World, round: usize) -> f64 {
        let participants = self.cfg.participants(world, round);
        self.round_time_for(world, round, &participants)
    }

    fn round_time_for(&mut self, world: &World, _round: usize, participants: &[AgentId]) -> f64 {
        if participants.is_empty() {
            return 0.0;
        }
        let mut by_speed: Vec<(AgentId, f64)> =
            participants.iter().map(|&id| (id, self.cfg.solo_time_s(world.agent(id)))).collect();
        by_speed.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let keep = self.keep(by_speed.len());
        let survivors: Vec<AgentId> = by_speed[..keep].iter().map(|&(id, _)| id).collect();
        let b = self.cfg.model.model_bytes() as u64;
        let min_link = self.cfg.min_link_mbps(world, &survivors);
        let comm = 2.0 * self.cfg.calibration.transfer_time_s(b, min_link);
        comdml_core::barrier_round_s(&by_speed[..keep], comm)
    }

    /// The aggregation cohort is only the surviving fast fraction — the
    /// dropped stragglers' data never contributes this round, which is
    /// exactly what the analytic efficiency discounts.
    fn round_progress_for(
        &mut self,
        world: &World,
        round: usize,
        participants: &[AgentId],
    ) -> RoundProgress {
        let round_s = self.round_time_for(world, round, participants);
        if participants.is_empty() {
            return RoundProgress::idle(round_s);
        }
        RoundProgress {
            round_s,
            efficiency: self.rounds_factor(),
            participants: participants.len(),
            cohort: self.keep(participants.len()),
            disruptions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FedAvg;
    use comdml_simnet::WorldConfig;

    #[test]
    fn dropping_shortens_rounds() {
        let base = BaselineConfig { churn: None, ..BaselineConfig::default() };
        let world = WorldConfig::heterogeneous(10, 1).build();
        let mut fedavg = FedAvg::new(base.clone());
        let mut dropper = DropStragglers::new(base, 0.3);
        let t_full = fedavg.round_time_s(&mut world.clone(), 0);
        let t_drop = dropper.round_time_s(&mut world.clone(), 0);
        assert!(t_drop < t_full, "{t_drop} vs {t_full}");
    }

    #[test]
    fn needs_more_rounds_than_full_participation() {
        let engine = DropStragglers::new(BaselineConfig::default(), 0.3);
        assert!(engine.rounds_factor() < 1.0);
    }

    #[test]
    fn progress_cohort_is_the_surviving_fraction() {
        let base = BaselineConfig { churn: None, ..BaselineConfig::default() };
        let world = WorldConfig::heterogeneous(10, 3).build();
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let mut engine = DropStragglers::new(base, 0.3);
        let p = engine.round_progress_for(&world, 0, &ids);
        assert_eq!(p.participants, 10);
        assert_eq!(p.cohort, 7, "30% of 10 dropped");
        assert!((p.efficiency - engine.rounds_factor()).abs() < 1e-12);
    }

    #[test]
    fn zero_drop_matches_full_straggler() {
        let base = BaselineConfig { churn: None, ..BaselineConfig::default() };
        let world = WorldConfig::heterogeneous(10, 2).build();
        let mut engine = DropStragglers::new(base.clone(), 0.0);
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let straggler = base.straggler_compute_s(&world, &ids);
        let t = engine.round_time_s(&mut world.clone(), 0);
        assert!(t >= straggler, "keeps everyone: {t} vs {straggler}");
    }
}
