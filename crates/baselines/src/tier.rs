use comdml_core::RoundEngine;
use comdml_simnet::{AgentId, World};

use crate::BaselineConfig;

/// TiFL-style tier-based training (\[5\] Chai et al., discussed in §I/§II):
/// agents are segmented into tiers by training speed and each round selects
/// participants from a *single* tier, so fast tiers never wait for slow
/// ones.
///
/// The price: every round sees only one tier's data, so more rounds are
/// needed (the rounds factor scales like participation sampling), and the
/// whole model still trains on every agent — unlike ComDML, no workload
/// moves anywhere.
#[derive(Debug, Clone)]
pub struct TierBased {
    cfg: BaselineConfig,
    num_tiers: usize,
}

impl TierBased {
    /// Creates the engine with the given tier count (TiFL uses ~5).
    ///
    /// # Panics
    ///
    /// Panics if `num_tiers` is zero.
    pub fn new(cfg: BaselineConfig, num_tiers: usize) -> Self {
        assert!(num_tiers > 0, "need at least one tier");
        Self { cfg, num_tiers }
    }

    /// Splits participants into speed tiers (tier 0 = fastest).
    fn tiers(&self, world: &World, participants: &[AgentId]) -> Vec<Vec<AgentId>> {
        let mut by_speed: Vec<AgentId> = participants.to_vec();
        by_speed.sort_by(|&a, &b| {
            let ta = self.cfg.solo_time_s(world.agent(a));
            let tb = self.cfg.solo_time_s(world.agent(b));
            ta.partial_cmp(&tb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let t = self.num_tiers.min(by_speed.len().max(1));
        let mut tiers = vec![Vec::new(); t];
        let per = by_speed.len().div_ceil(t);
        for (i, id) in by_speed.into_iter().enumerate() {
            tiers[(i / per).min(t - 1)].push(id);
        }
        tiers
    }
}

impl RoundEngine for TierBased {
    fn name(&self) -> &'static str {
        "TiFL (tiers)"
    }

    fn rounds_factor(&self) -> f64 {
        // One tier of data per round: same sub-linear penalty as
        // participation sampling at rate 1/T.
        (1.0 / self.num_tiers as f64).powf(0.35)
    }

    fn round_time_s(&mut self, world: &mut World, round: usize) -> f64 {
        let participants = self.cfg.participants(world, round);
        self.round_time_for(world, round, &participants)
    }

    fn round_time_for(&mut self, world: &World, round: usize, participants: &[AgentId]) -> f64 {
        if participants.is_empty() {
            return 0.0;
        }
        let tiers = self.tiers(world, participants);
        let tier = &tiers[round % tiers.len()];
        if tier.is_empty() {
            return 0.0;
        }
        let times = self.cfg.per_agent_times(world, tier);
        // Server exchange for the tier, as in FedAvg.
        let b = self.cfg.model.model_bytes() as u64;
        let min_link = self.cfg.min_link_mbps(world, tier);
        let comm = 2.0 * self.cfg.calibration.transfer_time_s(b, min_link);
        comdml_core::barrier_round_s(&times, comm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comdml_simnet::WorldConfig;

    #[test]
    fn fast_tier_rounds_are_much_shorter() {
        let mut engine = TierBased::new(BaselineConfig { churn: None, ..Default::default() }, 5);
        let world = WorldConfig::heterogeneous(20, 1).build();
        // Tier index = round % 5; tier 0 is fastest.
        let mut w = world.clone();
        let fast = engine.round_time_s(&mut w, 0);
        let slow = engine.round_time_s(&mut w, 4);
        assert!(slow > 4.0 * fast, "fast tier {fast:.1}s vs slow tier {slow:.1}s");
    }

    #[test]
    fn mean_round_beats_global_straggler() {
        let mut engine = TierBased::new(BaselineConfig { churn: None, ..Default::default() }, 5);
        let world = WorldConfig::heterogeneous(20, 2).build();
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let straggler = engine.cfg.straggler_compute_s(&world, &ids);
        let mut w = world.clone();
        let mean: f64 = (0..10).map(|r| engine.round_time_s(&mut w, r)).sum::<f64>() / 10.0;
        assert!(mean < straggler, "tiering should cut the mean round: {mean} vs {straggler}");
    }

    #[test]
    fn rounds_factor_penalizes_tier_count() {
        let one = TierBased::new(BaselineConfig::default(), 1).rounds_factor();
        let five = TierBased::new(BaselineConfig::default(), 5).rounds_factor();
        assert!((one - 1.0).abs() < 1e-12);
        assert!(five < one);
    }
}
