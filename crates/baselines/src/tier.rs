use comdml_core::{RoundEngine, RoundProgress};
use comdml_simnet::{AgentId, World};

use crate::BaselineConfig;

/// TiFL-style tier-based training (\[5\] Chai et al., discussed in §I/§II):
/// agents are segmented into tiers by training speed and each round selects
/// participants from a *single* tier, so fast tiers never wait for slow
/// ones.
///
/// The price: every round sees only one tier's data, so more rounds are
/// needed (the rounds factor scales like participation sampling), and the
/// whole model still trains on every agent — unlike ComDML, no workload
/// moves anywhere.
#[derive(Debug, Clone)]
pub struct TierBased {
    cfg: BaselineConfig,
    num_tiers: usize,
}

impl TierBased {
    /// Creates the engine with the given tier count (TiFL uses ~5).
    ///
    /// # Panics
    ///
    /// Panics if `num_tiers` is zero.
    pub fn new(cfg: BaselineConfig, num_tiers: usize) -> Self {
        assert!(num_tiers > 0, "need at least one tier");
        Self { cfg, num_tiers }
    }

    /// Splits participants into speed tiers (tier 0 = fastest).
    fn tiers(&self, world: &World, participants: &[AgentId]) -> Vec<Vec<AgentId>> {
        let mut by_speed: Vec<AgentId> = participants.to_vec();
        by_speed.sort_by(|&a, &b| {
            let ta = self.cfg.solo_time_s(world.agent(a));
            let tb = self.cfg.solo_time_s(world.agent(b));
            ta.partial_cmp(&tb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let t = self.num_tiers.min(by_speed.len().max(1));
        let mut tiers = vec![Vec::new(); t];
        let per = by_speed.len().div_ceil(t);
        for (i, id) in by_speed.into_iter().enumerate() {
            tiers[(i / per).min(t - 1)].push(id);
        }
        tiers
    }

    /// The speed tier round `round` selects.
    fn selected_tier(&self, world: &World, round: usize, participants: &[AgentId]) -> Vec<AgentId> {
        let mut tiers = self.tiers(world, participants);
        let idx = round % tiers.len();
        std::mem::take(&mut tiers[idx])
    }

    /// Barrier time of one tier's round: the tier's compute plus the
    /// FedAvg-style server exchange.
    fn price_tier(&self, world: &World, tier: &[AgentId]) -> f64 {
        if tier.is_empty() {
            return 0.0;
        }
        let times = self.cfg.per_agent_times(world, tier);
        let b = self.cfg.model.model_bytes() as u64;
        let min_link = self.cfg.min_link_mbps(world, tier);
        let comm = 2.0 * self.cfg.calibration.transfer_time_s(b, min_link);
        comdml_core::barrier_round_s(&times, comm)
    }
}

impl RoundEngine for TierBased {
    fn name(&self) -> &'static str {
        "TiFL (tiers)"
    }

    fn rounds_factor(&self) -> f64 {
        // One tier of data per round: same sub-linear penalty as
        // participation sampling at rate 1/T.
        (1.0 / self.num_tiers as f64).powf(0.35)
    }

    fn round_time_s(&mut self, world: &mut World, round: usize) -> f64 {
        let participants = self.cfg.participants(world, round);
        self.round_time_for(world, round, &participants)
    }

    fn round_time_for(&mut self, world: &World, round: usize, participants: &[AgentId]) -> f64 {
        if participants.is_empty() {
            return 0.0;
        }
        let tier = self.selected_tier(world, round, participants);
        self.price_tier(world, &tier)
    }

    /// Only the round's selected speed tier trains and aggregates: the
    /// cohort is that tier, and the efficiency is the one-tier-of-data
    /// sampling discount. The tier split is computed once and both the
    /// price and the cohort read from it.
    fn round_progress_for(
        &mut self,
        world: &World,
        round: usize,
        participants: &[AgentId],
    ) -> RoundProgress {
        if participants.is_empty() {
            return RoundProgress::idle(0.0);
        }
        let tier = self.selected_tier(world, round, participants);
        if tier.is_empty() {
            // Ceil splitting can leave trailing tiers empty when the
            // participant count doesn't divide evenly; a round whose
            // selected tier trains nobody advances nothing.
            return RoundProgress::idle(0.0);
        }
        RoundProgress {
            round_s: self.price_tier(world, &tier),
            efficiency: self.rounds_factor(),
            participants: participants.len(),
            cohort: tier.len(),
            disruptions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comdml_simnet::WorldConfig;

    #[test]
    fn fast_tier_rounds_are_much_shorter() {
        let mut engine = TierBased::new(BaselineConfig { churn: None, ..Default::default() }, 5);
        let world = WorldConfig::heterogeneous(20, 1).build();
        // Tier index = round % 5; tier 0 is fastest.
        let mut w = world.clone();
        let fast = engine.round_time_s(&mut w, 0);
        let slow = engine.round_time_s(&mut w, 4);
        assert!(slow > 4.0 * fast, "fast tier {fast:.1}s vs slow tier {slow:.1}s");
    }

    #[test]
    fn mean_round_beats_global_straggler() {
        let mut engine = TierBased::new(BaselineConfig { churn: None, ..Default::default() }, 5);
        let world = WorldConfig::heterogeneous(20, 2).build();
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let straggler = engine.cfg.straggler_compute_s(&world, &ids);
        let mut w = world.clone();
        let mean: f64 = (0..10).map(|r| engine.round_time_s(&mut w, r)).sum::<f64>() / 10.0;
        assert!(mean < straggler, "tiering should cut the mean round: {mean} vs {straggler}");
    }

    #[test]
    fn progress_cohort_is_one_tier() {
        let mut engine = TierBased::new(BaselineConfig { churn: None, ..Default::default() }, 5);
        let world = WorldConfig::heterogeneous(20, 3).build();
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        for round in 0..5 {
            let p = engine.round_progress_for(&world, round, &ids);
            assert_eq!(p.participants, 20);
            assert_eq!(p.cohort, 4, "20 agents over 5 tiers");
        }
    }

    #[test]
    fn empty_tier_rounds_advance_nothing() {
        // 7 participants over 5 tiers splits ceil(7/5) = 2 per tier:
        // [2, 2, 2, 1, 0] — the last tier is empty, and its round must not
        // be credited with learning progress.
        let mut engine = TierBased::new(BaselineConfig { churn: None, ..Default::default() }, 5);
        let world = WorldConfig::heterogeneous(7, 3).build();
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let p = engine.round_progress_for(&world, 4, &ids);
        assert_eq!(p.cohort, 0);
        assert_eq!(p.efficiency, 0.0, "an empty tier teaches nothing");
        assert_eq!(p.round_s, 0.0);
    }

    #[test]
    fn rounds_factor_penalizes_tier_count() {
        let one = TierBased::new(BaselineConfig::default(), 1).rounds_factor();
        let five = TierBased::new(BaselineConfig::default(), 5).rounds_factor();
        assert!((one - 1.0).abs() < 1e-12);
        assert!(five < one);
    }
}
