use comdml_core::RoundEngine;
use comdml_simnet::{AgentId, World};

use crate::BaselineConfig;

/// FedAvg \[1\]: server-coordinated federated averaging.
///
/// Per round: every participant downloads the global model, trains one full
/// local epoch, and uploads its update. The round is gated by the slowest
/// participant's compute, the slowest participant's link (2·b bytes each
/// way), and the server's aggregate bandwidth (2·P·b bytes through one
/// pipe) — the central-server bottleneck §I and §V-B.2 describe.
#[derive(Debug, Clone)]
pub struct FedAvg {
    cfg: BaselineConfig,
}

impl FedAvg {
    /// Creates the engine.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self { cfg }
    }
}

impl RoundEngine for FedAvg {
    fn name(&self) -> &'static str {
        "FedAvg"
    }

    fn round_time_s(&mut self, world: &mut World, round: usize) -> f64 {
        let participants = self.cfg.participants(world, round);
        self.round_time_for(world, round, &participants)
    }

    /// Round time for an externally chosen participant set — used by the
    /// elastic-fleet and sweep harnesses to drive FedAvg under the *same*
    /// membership process as ComDML (apples-to-apples churn comparison).
    fn round_time_for(&mut self, world: &World, _round: usize, participants: &[AgentId]) -> f64 {
        if participants.is_empty() {
            return 0.0;
        }
        let times = self.cfg.per_agent_times(world, participants);
        let b = self.cfg.model.model_bytes() as u64;
        // Slowest client link carries the model down and back up.
        let min_link = self.cfg.min_link_mbps(world, participants);
        let client_comm = 2.0 * self.cfg.calibration.transfer_time_s(b, min_link);
        // The server moves 2·P·b bytes through its own pipe.
        let server_bytes = 2 * participants.len() as u64 * b;
        let server_comm = self.cfg.calibration.transfer_time_s(server_bytes, self.cfg.server_mbps);
        comdml_core::barrier_round_s(&times, client_comm.max(server_comm))
    }

    // `round_progress_for` inherits the trait default: the barrier waits
    // for everyone, so every participant's update reaches the server fresh
    // — a full-efficiency round over the whole cohort.
}

#[cfg(test)]
mod tests {
    use super::*;
    use comdml_simnet::WorldConfig;

    #[test]
    fn round_time_exceeds_straggler_compute() {
        let mut engine = FedAvg::new(BaselineConfig { churn: None, ..Default::default() });
        let mut world = WorldConfig::heterogeneous(10, 1).build();
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let compute = engine.cfg.straggler_compute_s(&world, &ids);
        let t = engine.round_time_s(&mut world, 0);
        assert!(t > compute);
    }

    #[test]
    fn progress_pairs_barrier_time_with_full_efficiency() {
        let mut engine = FedAvg::new(BaselineConfig { churn: None, ..Default::default() });
        let world = WorldConfig::heterogeneous(10, 3).build();
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let p = engine.round_progress_for(&world, 0, &ids);
        assert_eq!(p.round_s, engine.round_time_for(&world, 0, &ids));
        assert_eq!(p.efficiency, 1.0, "everyone aggregates fresh");
        assert_eq!(p.cohort, 10);
        assert_eq!(engine.round_progress_for(&world, 0, &[]).efficiency, 0.0, "idle when empty");
    }

    #[test]
    fn slower_server_increases_round_time() {
        let mut fast_server = FedAvg::new(BaselineConfig {
            churn: None,
            server_mbps: 10_000.0,
            ..Default::default()
        });
        let mut slow_server =
            FedAvg::new(BaselineConfig { churn: None, server_mbps: 10.0, ..Default::default() });
        let world = WorldConfig::heterogeneous(10, 2).build();
        let t_fast = fast_server.round_time_s(&mut world.clone(), 0);
        let t_slow = slow_server.round_time_s(&mut world.clone(), 0);
        assert!(t_slow > t_fast, "{t_slow} vs {t_fast}");
    }
}
