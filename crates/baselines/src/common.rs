use comdml_core::ChurnPolicy;
use comdml_cost::{CostCalibration, ModelSpec};
use comdml_simnet::{AgentId, AgentState, World};

/// Shared configuration of all baseline engines.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// The model being trained (for FLOPs and payload size).
    pub model: ModelSpec,
    /// Resource-to-seconds calibration (must match the ComDML run being
    /// compared against).
    pub calibration: CostCalibration,
    /// Fraction of agents participating per round.
    pub sampling_rate: f64,
    /// Profile churn policy, mirroring the ComDML run.
    pub churn: Option<ChurnPolicy>,
    /// Central-server aggregate bandwidth in Mbps (FedAvg only).
    pub server_mbps: f64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            model: ModelSpec::resnet56(),
            calibration: CostCalibration::default(),
            sampling_rate: 1.0,
            churn: Some(ChurnPolicy::default()),
            server_mbps: 1000.0,
        }
    }
}

impl BaselineConfig {
    /// Solo full-model training time of one agent (`Ñ / p`): baselines do
    /// not split models, so every agent always trains the whole network.
    pub fn solo_time_s(&self, agent: &AgentState) -> f64 {
        agent.num_batches() as f64
            * self.calibration.batch_time_s(
                self.model.train_flops_per_sample(),
                agent.batch_size,
                agent.profile.cpus,
            )
    }

    /// Applies churn and participation sampling for round `round`,
    /// returning the participant set.
    pub fn participants(&self, world: &mut World, round: usize) -> Vec<AgentId> {
        if let Some(churn) = self.churn {
            if churn.interval > 0 && round > 0 && round.is_multiple_of(churn.interval) {
                world.churn_profiles(churn.fraction);
            }
        }
        if self.sampling_rate < 1.0 {
            world.sample_participants(self.sampling_rate)
        } else {
            world.agents().iter().map(|a| a.id).collect()
        }
    }

    /// Per-participant full-model epoch times, the input every synchronized
    /// baseline feeds to the shared event clock.
    pub fn per_agent_times(&self, world: &World, participants: &[AgentId]) -> Vec<(AgentId, f64)> {
        participants.iter().map(|&id| (id, self.solo_time_s(world.agent(id)))).collect()
    }

    /// The compute phase of a synchronized round: the slowest participant's
    /// full local epoch, executed as `AgentDone` events on the shared
    /// simulated clock ([`comdml_core::barrier_round_s`]).
    pub fn straggler_compute_s(&self, world: &World, participants: &[AgentId]) -> f64 {
        comdml_core::barrier_round_s(&self.per_agent_times(world, participants), 0.0)
    }

    /// The slowest participant link in Mbps (0 if anyone is disconnected).
    pub fn min_link_mbps(&self, world: &World, participants: &[AgentId]) -> f64 {
        participants
            .iter()
            .map(|&id| world.agent(id).profile.link_mbps)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comdml_simnet::WorldConfig;

    #[test]
    fn solo_time_matches_manual_computation() {
        let cfg = BaselineConfig::default();
        let world = WorldConfig::heterogeneous(5, 1).build();
        let a = &world.agents()[0];
        let expected = a.num_batches() as f64
            * cfg.calibration.batch_time_s(
                cfg.model.train_flops_per_sample(),
                a.batch_size,
                a.profile.cpus,
            );
        assert!((cfg.solo_time_s(a) - expected).abs() < 1e-12);
    }

    #[test]
    fn straggler_dominates_compute_phase() {
        let cfg = BaselineConfig::default();
        let world = WorldConfig::heterogeneous(10, 2).build();
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let straggler = cfg.straggler_compute_s(&world, &ids);
        for a in world.agents() {
            assert!(cfg.solo_time_s(a) <= straggler + 1e-9);
        }
    }

    #[test]
    fn participants_respect_sampling() {
        let cfg = BaselineConfig { sampling_rate: 0.2, ..BaselineConfig::default() };
        let mut world = WorldConfig::heterogeneous(50, 3).build();
        assert_eq!(cfg.participants(&mut world, 0).len(), 10);
    }
}
