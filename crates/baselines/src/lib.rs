//! Baseline methods the paper compares ComDML against (§V-A "Baselines").
//!
//! * [`FedAvg`] — classic server-coordinated federated averaging \[1\]. Every
//!   agent trains the full model locally; the central server collects and
//!   redistributes models, so the round is gated by the slowest agent *and*
//!   the server's aggregate bandwidth.
//! * [`AllReduceDml`] — server-less: independent local training followed by
//!   decentralized AllReduce aggregation \[34\].
//! * [`BrainTorrent`] — peer-to-peer with a rotating aggregator \[10\]: one
//!   agent per round gathers all models over its own link and sends back the
//!   average.
//! * [`GossipLearning`] — each agent exchanges models with a single random
//!   neighbour per round \[11\]; no global barrier, but mixing is partial so
//!   more rounds are needed for the same accuracy.
//!
//! None of these balance workload: a 0.2-CPU straggler trains the entire
//! model every round, which is precisely the bottleneck ComDML removes.
//! All engines implement [`comdml_core::RoundEngine`], so the experiment
//! harness drives them interchangeably.
//!
//! # Example
//!
//! ```
//! use comdml_baselines::{AllReduceDml, BaselineConfig, FedAvg};
//! use comdml_core::{time_to_accuracy, LearningCurve};
//! use comdml_simnet::WorldConfig;
//!
//! let world = WorldConfig::heterogeneous(10, 1).build();
//! let curve = LearningCurve::cifar10(true);
//! let mut fedavg = FedAvg::new(BaselineConfig::default());
//! let t = time_to_accuracy(&mut fedavg, &world, &curve, 0.80);
//! assert!(t.total_time_s > 0.0);
//! ```
//!
//! Part of the `comdml-rs` workspace — the crate map in the repository
//! README shows how this crate fits the whole.

mod allreduce_dml;
mod braintorrent;
mod common;
mod drop_stragglers;
mod fedavg;
mod fedprox;
mod gossip;
mod split_learning;
mod tier;

pub use allreduce_dml::AllReduceDml;
pub use braintorrent::BrainTorrent;
pub use common::BaselineConfig;
pub use drop_stragglers::DropStragglers;
pub use fedavg::FedAvg;
pub use fedprox::FedProx;
pub use gossip::GossipLearning;
pub use split_learning::ClassicSplitLearning;
pub use tier::TierBased;
