use comdml_core::RoundEngine;
use comdml_cost::SplitProfile;
use comdml_simnet::{AgentId, World};

use crate::BaselineConfig;

/// Classic server-based split learning (\[2\] Vepakomma et al., §II-A): every
/// agent keeps only the first layers and a central server trains the rest —
/// but unlike local-loss training, each batch requires a *round trip*: the
/// activation goes up and the gradient comes back, and the agent stalls
/// until the gradient arrives.
///
/// This is the method ComDML's §III-B design replaces; the engine exists to
/// quantify exactly the overhead the paper attributes to it ("SL requires
/// agents to wait for backpropagated gradients from the server ... resulting
/// in substantial communication overhead in each training round").
#[derive(Debug, Clone)]
pub struct ClassicSplitLearning {
    cfg: BaselineConfig,
    profile: SplitProfile,
    /// Layers kept on the agent side (the rest live on the server).
    agent_layers: usize,
    /// Server processing speed in "CPU" units.
    server_cpus: f64,
}

impl ClassicSplitLearning {
    /// Creates the engine with agents keeping `agent_layers` layers and a
    /// server of `server_cpus` capacity hosting the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `agent_layers` is zero or not smaller than the model depth,
    /// or `server_cpus` is not positive.
    pub fn new(cfg: BaselineConfig, agent_layers: usize, server_cpus: f64) -> Self {
        let l = cfg.model.num_weighted_layers();
        assert!(agent_layers > 0 && agent_layers < l, "agent must keep 1..{l} layers");
        assert!(server_cpus > 0.0, "server capacity must be positive");
        let profile = SplitProfile::new(&cfg.model, 100);
        Self { cfg, profile, agent_layers, server_cpus }
    }

    /// Communication bytes per batch: the activation up plus a gradient of
    /// the same shape back down.
    pub fn bytes_per_batch(&self) -> u64 {
        let offload = self.cfg.model.num_weighted_layers() - self.agent_layers;
        let e = self.profile.entry(offload).expect("valid split");
        2 * e.nu_bytes_per_batch
    }
}

impl RoundEngine for ClassicSplitLearning {
    fn name(&self) -> &'static str {
        "Split Learning"
    }

    fn round_time_s(&mut self, world: &mut World, round: usize) -> f64 {
        let participants = self.cfg.participants(world, round);
        self.round_time_for(world, round, &participants)
    }

    fn round_time_for(&mut self, world: &World, _round: usize, participants: &[AgentId]) -> f64 {
        let offload = self.cfg.model.num_weighted_layers() - self.agent_layers;
        let e = self.profile.entry(offload).expect("valid split");
        // Per batch, the agent computes its prefix, ships the activation,
        // waits for the server to run the suffix, and receives the gradient
        // — fully serialized (that is the point of the comparison).
        let times: Vec<_> = participants
            .iter()
            .map(|&id| {
                let a = world.agent(id);
                let p = self.cfg.calibration.batches_per_s(
                    self.cfg.model.train_flops_per_sample(),
                    a.batch_size,
                    a.profile.cpus,
                );
                let p_server = self.cfg.calibration.batches_per_s(
                    self.cfg.model.train_flops_per_sample(),
                    a.batch_size,
                    self.server_cpus,
                );
                let agent_batch = e.t_slow_rel / p;
                let server_batch = e.t_fast_rel / p_server;
                let round_trip = 2.0
                    * self
                        .cfg
                        .calibration
                        .transfer_time_s(e.nu_bytes_per_batch, a.profile.link_mbps);
                (id, a.num_batches() as f64 * (agent_batch + round_trip + server_batch))
            })
            .collect();
        comdml_core::barrier_round_s(&times, 0.0)
    }

    // `round_progress_for` inherits the trait default: per-batch server
    // round trips are slow but lossless — the global model still sees
    // every participant's full epoch, a full-efficiency round.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FedAvg;
    use comdml_simnet::WorldConfig;

    fn base() -> BaselineConfig {
        BaselineConfig { churn: None, ..BaselineConfig::default() }
    }

    #[test]
    fn round_trips_double_the_activation_traffic() {
        let engine = ClassicSplitLearning::new(base(), 19, 8.0);
        let offload = engine.cfg.model.num_weighted_layers() - 19;
        let one_way = engine.profile.entry(offload).unwrap().nu_bytes_per_batch;
        assert_eq!(engine.bytes_per_batch(), 2 * one_way);
    }

    #[test]
    fn serialized_round_trips_hurt_on_slow_links() {
        // On the paper's link grid, classic SL's per-batch synchronization
        // is slower than even full local training for most agents.
        let world = WorldConfig::heterogeneous(10, 1).build();
        let mut sl = ClassicSplitLearning::new(base(), 19, 8.0);
        let mut fedavg = FedAvg::new(base());
        let t_sl = sl.round_time_s(&mut world.clone(), 0);
        let t_avg = fedavg.round_time_s(&mut world.clone(), 0);
        assert!(
            t_sl > 0.5 * t_avg,
            "SL should not magically beat local training: {t_sl} vs {t_avg}"
        );
    }

    #[test]
    fn progress_pairs_round_trip_time_with_full_efficiency() {
        let world = WorldConfig::heterogeneous(6, 2).build();
        let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
        let mut engine = ClassicSplitLearning::new(base(), 19, 8.0);
        let p = engine.round_progress_for(&world, 0, &ids);
        assert_eq!(p.round_s, engine.round_time_for(&world, 0, &ids));
        assert_eq!((p.efficiency, p.cohort), (1.0, 6));
    }

    #[test]
    #[should_panic(expected = "agent must keep")]
    fn rejects_keeping_whole_model() {
        let _ = ClassicSplitLearning::new(base(), 56, 8.0);
    }
}
