use serde::{Deserialize, Serialize};

/// Converts abstract resource profiles into seconds.
///
/// The paper assigns each agent a CPU profile (4, 2, 1, 0.5 or 0.2 "CPUs")
/// and a link profile (0–100 Mbps). The calibration maps "1 CPU" to a
/// sustained FLOP rate so that simulated round times land in the same range
/// as the paper's testbed (their 0.2-CPU straggler takes tens of seconds per
/// ResNet-56 batch of 100 samples).
///
/// # Example
///
/// ```
/// use comdml_cost::{CostCalibration, ModelSpec};
///
/// let cal = CostCalibration::default();
/// let spec = ModelSpec::resnet56();
/// let per_batch = cal.batch_time_s(spec.train_flops_per_sample(), 100, 1.0);
/// assert!(per_batch > 0.1 && per_batch < 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostCalibration {
    /// Sustained training throughput of one CPU unit, in FLOPs per second.
    pub flops_per_cpu_s: f64,
    /// Fixed per-message latency added to every transfer, in seconds.
    pub link_latency_s: f64,
    /// Effective fraction of nominal link bandwidth achieved by bulk
    /// transfers (protocol overhead).
    pub bandwidth_efficiency: f64,
}

impl Default for CostCalibration {
    fn default() -> Self {
        // Chosen so a 1-CPU agent trains a ResNet-56 batch of 100 in ~1 s
        // (a GPU-fraction-class device, like the paper's simulated CPUs
        // backed by GTX 1080 Ti hardware). At this operating point the
        // 10–100 Mbps links of the profile grid are *comparable* to batch
        // compute, which is the regime where Table I's communication column
        // becomes non-trivial.
        Self { flops_per_cpu_s: 7.5e10, link_latency_s: 0.005, bandwidth_efficiency: 0.9 }
    }
}

impl CostCalibration {
    /// Seconds to train one mini-batch of `batch_size` samples of a workload
    /// costing `flops_per_sample`, on an agent with `cpus` CPU units.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is not positive.
    pub fn batch_time_s(&self, flops_per_sample: f64, batch_size: usize, cpus: f64) -> f64 {
        assert!(cpus > 0.0, "cpu profile must be positive, got {cpus}");
        flops_per_sample * batch_size as f64 / (cpus * self.flops_per_cpu_s)
    }

    /// Processing speed in batches per second — the paper's `p_i`.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is not positive.
    pub fn batches_per_s(&self, flops_per_sample: f64, batch_size: usize, cpus: f64) -> f64 {
        1.0 / self.batch_time_s(flops_per_sample, batch_size, cpus)
    }

    /// Seconds to push `bytes` over a `mbps` megabit-per-second link.
    ///
    /// Returns `f64::INFINITY` for a disconnected (0 Mbps) link, matching the
    /// paper's "0 representing disconnected agents".
    pub fn transfer_time_s(&self, bytes: u64, mbps: f64) -> f64 {
        if mbps <= 0.0 {
            return f64::INFINITY;
        }
        let bytes_per_s = mbps * 1e6 / 8.0 * self.bandwidth_efficiency;
        self.link_latency_s + bytes as f64 / bytes_per_s
    }

    /// Effective link throughput in bytes per second (0 when disconnected).
    pub fn bytes_per_s(&self, mbps: f64) -> f64 {
        if mbps <= 0.0 {
            0.0
        } else {
            mbps * 1e6 / 8.0 * self.bandwidth_efficiency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelSpec;

    #[test]
    fn batch_time_scales_inversely_with_cpus() {
        let cal = CostCalibration::default();
        let t1 = cal.batch_time_s(1e9, 100, 1.0);
        let t4 = cal.batch_time_s(1e9, 100, 4.0);
        assert!((t1 / t4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn straggler_is_20x_slower_than_fastest_profile() {
        let cal = CostCalibration::default();
        let spec = ModelSpec::resnet56();
        let fast = cal.batch_time_s(spec.train_flops_per_sample(), 100, 4.0);
        let slow = cal.batch_time_s(spec.train_flops_per_sample(), 100, 0.2);
        assert!((slow / fast - 20.0).abs() < 1e-6);
    }

    #[test]
    fn disconnected_links_transfer_nothing() {
        let cal = CostCalibration::default();
        assert!(cal.transfer_time_s(1_000_000, 0.0).is_infinite());
        assert_eq!(cal.bytes_per_s(0.0), 0.0);
    }

    #[test]
    fn transfer_time_tracks_bandwidth() {
        let cal = CostCalibration { link_latency_s: 0.0, ..CostCalibration::default() };
        // 1 MB over 8 Mbps at 90% efficiency: 1e6 / (1e6 * 0.9) s.
        let t = cal.transfer_time_s(1_000_000, 8.0);
        assert!((t - 1.0 / 0.9).abs() < 1e-6);
        // Double the bandwidth, halve the time.
        assert!((cal.transfer_time_s(1_000_000, 16.0) - t / 2.0).abs() < 1e-6);
    }

    #[test]
    fn batches_per_s_is_reciprocal() {
        let cal = CostCalibration::default();
        let t = cal.batch_time_s(2e9, 50, 2.0);
        let p = cal.batches_per_s(2e9, 50, 2.0);
        assert!((t * p - 1.0).abs() < 1e-9);
    }
}
