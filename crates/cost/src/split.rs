use serde::{Deserialize, Serialize};

use crate::ModelSpec;

/// Profiling result for one candidate split `m` (number of offloaded layers).
///
/// `t_slow_rel`/`t_fast_rel` are *relative* training times — the fraction of
/// the full-model per-batch compute that each side performs — matching the
/// paper's `T_s^{a_m}` and `T_f^{a_m}` (Algorithm 1 converts an agent's
/// full-model processing speed `p` into split speeds via `p^m = p / T^m`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitEntry {
    /// Number of layers offloaded to the fast agent (suffix length).
    pub offload: usize,
    /// Slow-side relative training time, including the auxiliary head.
    pub t_slow_rel: f64,
    /// Fast-side relative training time.
    pub t_fast_rel: f64,
    /// Intermediate activation bytes transferred per *batch* (`ν_m`).
    pub nu_bytes_per_batch: u64,
    /// One-time per-round payload for shipping the trained suffix parameters
    /// back to the slow agent.
    pub suffix_param_bytes: u64,
}

/// The complete split-model profile of a model for a given batch size.
///
/// Entry `m` describes offloading the last `m` weighted layers. `m = 0` means
/// the agent trains alone; `m = L − 1` keeps only the first layer locally.
/// Profiling is a *local, lightweight* operation in the paper (§I: "This
/// pairing strategy employs lightweight, low-overhead local split model
/// profiling"); here it is a pure function of the analytic [`ModelSpec`].
///
/// # Example
///
/// ```
/// use comdml_cost::{ModelSpec, SplitProfile};
///
/// let profile = SplitProfile::new(&ModelSpec::resnet56(), 100);
/// assert_eq!(profile.len(), 56); // m in 0..=55
/// assert_eq!(profile.entry(0).unwrap().nu_bytes_per_batch, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitProfile {
    entries: Vec<SplitEntry>,
    batch_size: usize,
    model_bytes: u64,
}

impl SplitProfile {
    /// Profiles every split of `spec` for mini-batches of `batch_size`
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(spec: &ModelSpec, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let total = spec.train_flops_per_sample();
        let l = spec.num_weighted_layers();
        let entries = (0..l)
            .map(|m| {
                let keep = l - m;
                let slow = spec.prefix_train_flops(keep) + spec.aux_head_flops(m);
                let fast = spec.suffix_train_flops(m);
                SplitEntry {
                    offload: m,
                    t_slow_rel: slow / total,
                    t_fast_rel: fast / total,
                    nu_bytes_per_batch: (spec.cut_activation_bytes(m) * batch_size) as u64,
                    suffix_param_bytes: spec.suffix_param_bytes(m) as u64,
                }
            })
            .collect();
        Self { entries, batch_size, model_bytes: spec.model_bytes() as u64 }
    }

    /// Number of candidate splits (`L`, for `m ∈ 0..L`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the profile is empty (never true for a valid model).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The batch size the profile was computed for.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The full model payload in bytes (for AllReduce cost accounting).
    pub fn model_bytes(&self) -> u64 {
        self.model_bytes
    }

    /// The entry for offloading `m` layers, if `m` is among the profiled
    /// candidates (lookup is by offload value, so it remains correct after
    /// [`SplitProfile::restrict_to`]).
    pub fn entry(&self, m: usize) -> Option<&SplitEntry> {
        if self.entries.get(m).is_some_and(|e| e.offload == m) {
            return self.entries.get(m);
        }
        self.entries.iter().find(|e| e.offload == m)
    }

    /// Iterates over all split entries in offload order.
    pub fn iter(&self) -> impl Iterator<Item = &SplitEntry> {
        self.entries.iter()
    }

    /// Restricts the profile to a subset of candidate offloads (the paper
    /// evaluates `M` candidate split models, not necessarily all `L`).
    ///
    /// Unknown offload values are silently dropped; `m = 0` is always kept so
    /// "train alone" remains representable.
    pub fn restrict_to(&self, offloads: &[usize]) -> Self {
        let mut entries: Vec<SplitEntry> = self
            .entries
            .iter()
            .filter(|e| e.offload == 0 || offloads.contains(&e.offload))
            .copied()
            .collect();
        entries.sort_by_key(|e| e.offload);
        entries.dedup_by_key(|e| e.offload);
        Self { entries, batch_size: self.batch_size, model_bytes: self.model_bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_has_one_entry_per_split() {
        let p = SplitProfile::new(&ModelSpec::resnet56(), 100);
        assert_eq!(p.len(), 56);
        assert_eq!(p.entry(0).unwrap().offload, 0);
        assert_eq!(p.entry(55).unwrap().offload, 55);
        assert!(p.entry(56).is_none());
    }

    #[test]
    fn zero_offload_means_full_local_training() {
        let p = SplitProfile::new(&ModelSpec::resnet56(), 100);
        let e = p.entry(0).unwrap();
        assert!((e.t_slow_rel - 1.0).abs() < 1e-9);
        assert_eq!(e.t_fast_rel, 0.0);
        assert_eq!(e.nu_bytes_per_batch, 0);
        assert_eq!(e.suffix_param_bytes, 0);
    }

    #[test]
    fn relative_times_sum_to_one_plus_aux() {
        let spec = ModelSpec::resnet56();
        let p = SplitProfile::new(&spec, 100);
        for e in p.iter() {
            let aux = spec.aux_head_flops(e.offload) / spec.train_flops_per_sample();
            assert!((e.t_slow_rel + e.t_fast_rel - 1.0 - aux).abs() < 1e-9);
        }
    }

    #[test]
    fn slow_share_decreases_with_offload() {
        let p = SplitProfile::new(&ModelSpec::resnet56(), 100);
        for w in p.iter().collect::<Vec<_>>().windows(2) {
            assert!(w[1].t_slow_rel <= w[0].t_slow_rel + 1e-6);
        }
    }

    #[test]
    fn intermediate_size_reflects_stage_shapes() {
        let p = SplitProfile::new(&ModelSpec::resnet56(), 100);
        // Cut after stem (m = 55): 16*32*32 floats * 100 samples.
        assert_eq!(p.entry(55).unwrap().nu_bytes_per_batch, 16 * 32 * 32 * 4 * 100);
        // Cut before FC (m = 1): 64*8*8 floats * 100 samples.
        assert_eq!(p.entry(1).unwrap().nu_bytes_per_batch, 64 * 8 * 8 * 4 * 100);
        // Early cuts carry more activation data than late cuts.
        assert!(p.entry(55).unwrap().nu_bytes_per_batch > p.entry(1).unwrap().nu_bytes_per_batch);
    }

    #[test]
    fn restrict_to_keeps_requested_and_zero() {
        let p = SplitProfile::new(&ModelSpec::resnet56(), 100);
        let r = p.restrict_to(&[10, 28, 46]);
        let offloads: Vec<usize> = r.iter().map(|e| e.offload).collect();
        assert_eq!(offloads, vec![0, 10, 28, 46]);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = SplitProfile::new(&ModelSpec::resnet20(), 0);
    }
}
