use serde::{Deserialize, Serialize};

/// The kind of a weighted layer, used for display and sanity checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv,
    /// Fully connected layer.
    Dense,
}

/// Analytic cost description of one weighted layer.
///
/// `flops_fwd` counts multiply-accumulates ×2 for one sample's forward pass;
/// the backward pass is modelled as twice the forward cost (one pass for
/// input gradients, one for weight gradients), the standard approximation for
/// dense/conv workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Human-readable layer name, e.g. `"stage2.block3.conv1"`.
    pub name: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// Forward FLOPs per sample.
    pub flops_fwd: f64,
    /// Number of trainable parameters.
    pub params: usize,
    /// Elements in the output activation for one sample.
    pub out_elems: usize,
    /// Output channels (0 for dense layers).
    pub out_channels: usize,
}

impl LayerSpec {
    /// Builds the cost entry for a `k×k` convolution.
    ///
    /// `h_out`/`w_out` are the output spatial dimensions; FLOPs follow the
    /// textbook `2·k²·C_in·C_out·H_out·W_out` count.
    pub fn conv(
        name: impl Into<String>,
        k: usize,
        c_in: usize,
        c_out: usize,
        h_out: usize,
        w_out: usize,
    ) -> Self {
        let flops_fwd = 2.0 * (k * k * c_in * c_out * h_out * w_out) as f64;
        Self {
            name: name.into(),
            kind: LayerKind::Conv,
            flops_fwd,
            params: k * k * c_in * c_out + c_out,
            out_elems: c_out * h_out * w_out,
            out_channels: c_out,
        }
    }

    /// Builds the cost entry for a fully connected layer.
    pub fn dense(name: impl Into<String>, in_features: usize, out_features: usize) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Dense,
            flops_fwd: 2.0 * (in_features * out_features) as f64,
            params: in_features * out_features + out_features,
            out_elems: out_features,
            out_channels: 0,
        }
    }

    /// Training FLOPs per sample (forward + backward ≈ 3× forward).
    pub fn flops_train(&self) -> f64 {
        3.0 * self.flops_fwd
    }

    /// Parameter payload in bytes (`f32` storage).
    pub fn param_bytes(&self) -> usize {
        self.params * std::mem::size_of::<f32>()
    }

    /// Activation payload in bytes for one sample (`f32` storage).
    pub fn activation_bytes(&self) -> usize {
        self.out_elems * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_flops_match_textbook_formula() {
        // 3x3 conv, 16 -> 16 channels, 32x32 output.
        let l = LayerSpec::conv("c", 3, 16, 16, 32, 32);
        assert_eq!(l.flops_fwd, 2.0 * 9.0 * 16.0 * 16.0 * 1024.0);
        assert_eq!(l.params, 9 * 16 * 16 + 16);
        assert_eq!(l.out_elems, 16 * 32 * 32);
    }

    #[test]
    fn dense_flops_and_params() {
        let l = LayerSpec::dense("fc", 64, 10);
        assert_eq!(l.flops_fwd, 1280.0);
        assert_eq!(l.params, 650);
        assert_eq!(l.out_elems, 10);
        assert_eq!(l.kind, LayerKind::Dense);
    }

    #[test]
    fn training_is_three_times_forward() {
        let l = LayerSpec::conv("c", 3, 8, 8, 16, 16);
        assert_eq!(l.flops_train(), 3.0 * l.flops_fwd);
    }

    #[test]
    fn byte_sizes_use_f32() {
        let l = LayerSpec::dense("fc", 10, 10);
        assert_eq!(l.param_bytes(), 110 * 4);
        assert_eq!(l.activation_bytes(), 40);
    }
}
