//! Analytic cost models of the paper's CNNs and split-model profiling.
//!
//! ComDML's scheduler never inspects weights — its inputs are *costs*: how
//! many FLOPs each prefix/suffix of the model needs, how many bytes the
//! activation at a cut point occupies, and how many bytes the model itself
//! occupies for AllReduce. This crate computes those quantities analytically
//! from the layer topology of the CIFAR-style ResNets the paper evaluates
//! (ResNet-56 and ResNet-110, §V-A "Model Architecture").
//!
//! The central product is a [`SplitProfile`]: for every possible number of
//! offloaded layers `m` it records the *relative* slow-side and fast-side
//! training times `T_s^m`, `T_f^m` and the intermediate data size `ν_m`
//! exactly as Algorithm 1's split-model profiling step requires.
//!
//! # Example
//!
//! ```
//! use comdml_cost::{ModelSpec, SplitProfile};
//!
//! let spec = ModelSpec::resnet56();
//! assert_eq!(spec.num_weighted_layers(), 56);
//! let profile = SplitProfile::new(&spec, 100);
//! // Offloading everything but the stem leaves almost no slow-side work.
//! let last = profile.entry(55).unwrap();
//! assert!(last.t_slow_rel < 0.1);
//! ```
//!
//! Part of the `comdml-rs` workspace — the crate map in the repository
//! README shows how this crate fits the whole.

mod calibration;
mod layer;
mod model;
mod split;

pub use calibration::CostCalibration;
pub use layer::{LayerKind, LayerSpec};
pub use model::ModelSpec;
pub use split::{SplitEntry, SplitProfile};
