use serde::{Deserialize, Serialize};

#[cfg(test)]
use crate::LayerKind;
use crate::LayerSpec;

/// Analytic description of a full model as an ordered list of weighted
/// layers.
///
/// The order matters: ComDML offloads a *suffix* of the layer list to the
/// fast agent, so prefix/suffix cost queries are the primitive operations.
///
/// # Example
///
/// ```
/// use comdml_cost::ModelSpec;
///
/// let r56 = ModelSpec::resnet56();
/// let r110 = ModelSpec::resnet110();
/// assert!(r110.train_flops_per_sample() > 1.9 * r56.train_flops_per_sample());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    name: String,
    layers: Vec<LayerSpec>,
    num_classes: usize,
    input_elems: usize,
}

impl ModelSpec {
    /// Builds a spec from parts.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty — a model must have at least one weighted
    /// layer for the split machinery to be meaningful.
    pub fn new(
        name: impl Into<String>,
        layers: Vec<LayerSpec>,
        num_classes: usize,
        input_elems: usize,
    ) -> Self {
        assert!(!layers.is_empty(), "a model needs at least one weighted layer");
        Self { name: name.into(), layers, num_classes, input_elems }
    }

    /// The CIFAR-style ResNet-56: stem conv + 3 stages × 9 basic blocks
    /// (2 convs each) + final FC = 56 weighted layers.
    pub fn resnet56() -> Self {
        Self::resnet_cifar(9, "resnet56")
    }

    /// The CIFAR-style ResNet-110 (18 blocks per stage, 110 weighted layers).
    pub fn resnet110() -> Self {
        Self::resnet_cifar(18, "resnet110")
    }

    /// The CIFAR-style ResNet-20 (3 blocks per stage), handy for fast tests.
    pub fn resnet20() -> Self {
        Self::resnet_cifar(3, "resnet20")
    }

    /// Generic CIFAR ResNet with `n` basic blocks per stage (depth `6n + 2`).
    ///
    /// Stage shapes follow He et al.: 16×32×32, 32×16×16, 64×8×8 on
    /// 32×32×3 inputs, with 10-way classification.
    pub fn resnet_cifar(n: usize, name: &str) -> Self {
        let mut layers = Vec::with_capacity(6 * n + 2);
        layers.push(LayerSpec::conv("stem", 3, 3, 16, 32, 32));
        let stages: [(usize, usize, usize); 3] = [(16, 32, 32), (32, 16, 16), (64, 8, 8)];
        let mut c_in = 16;
        for (s, &(c_out, h, w)) in stages.iter().enumerate() {
            for b in 0..n {
                // First conv of the first block in stages 2/3 downsamples.
                let cin_here = if b == 0 { c_in } else { c_out };
                layers.push(LayerSpec::conv(
                    format!("stage{}.block{}.conv1", s + 1, b + 1),
                    3,
                    cin_here,
                    c_out,
                    h,
                    w,
                ));
                layers.push(LayerSpec::conv(
                    format!("stage{}.block{}.conv2", s + 1, b + 1),
                    3,
                    c_out,
                    c_out,
                    h,
                    w,
                ));
            }
            c_in = c_out;
        }
        layers.push(LayerSpec::dense("fc", 64, 10));
        Self::new(name, layers, 10, 3 * 32 * 32)
    }

    /// A BERT-base-class transformer encoder (§V-A notes ComDML "can
    /// effectively support various models, from MLPs and CNNs to large
    /// language models (LLMs) like BERT").
    ///
    /// Each encoder block is modelled as one weighted layer aggregating its
    /// attention projections and feed-forward network; activations crossing
    /// a cut are the `[seq, hidden]` token states. Defaults: 12 layers,
    /// hidden 768, FFN 3072, sequence length 128.
    pub fn bert_base(seq_len: usize, num_classes: usize) -> Self {
        assert!(seq_len > 0, "sequence length must be positive");
        let (hidden, ffn, layers_n) = (768usize, 3072usize, 12usize);
        let mut layers = Vec::with_capacity(layers_n + 1);
        for i in 0..layers_n {
            // QKV + output projections: 4 * hidden^2 per token; attention
            // scores: 2 * seq * hidden per token; FFN: 2 * hidden * ffn.
            let per_token = 4.0 * (hidden * hidden) as f64
                + 2.0 * (seq_len * hidden) as f64
                + 2.0 * (hidden * ffn) as f64;
            let flops_fwd = 2.0 * per_token * seq_len as f64;
            let params = 4 * hidden * hidden + 2 * hidden * ffn + 4 * hidden;
            layers.push(LayerSpec {
                name: format!("encoder{}", i + 1),
                kind: crate::LayerKind::Dense,
                flops_fwd,
                params,
                out_elems: seq_len * hidden,
                out_channels: 0,
            });
        }
        layers.push(LayerSpec::dense("classifier", hidden, num_classes));
        Self::new("bert-base", layers, num_classes, seq_len * hidden)
    }

    /// A small MLP spec used by unit tests and the real-training examples.
    pub fn mlp(name: &str, dims: &[usize]) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| LayerSpec::dense(format!("fc{}", i + 1), w[0], w[1]))
            .collect();
        Self::new(name, layers, *dims.last().expect("nonempty"), dims[0])
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered weighted layers.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Number of weighted layers (56 for ResNet-56, 110 for ResNet-110).
    pub fn num_weighted_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Elements in one input sample.
    pub fn input_elems(&self) -> usize {
        self.input_elems
    }

    /// Forward FLOPs for one sample through the whole model.
    pub fn fwd_flops_per_sample(&self) -> f64 {
        self.layers.iter().map(|l| l.flops_fwd).sum()
    }

    /// Training (forward + backward) FLOPs for one sample.
    pub fn train_flops_per_sample(&self) -> f64 {
        self.layers.iter().map(LayerSpec::flops_train).sum()
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Model payload in bytes when exchanged as `f32`s — the `b` in the
    /// paper's AllReduce cost `2·(K−1)/K·b`.
    pub fn model_bytes(&self) -> usize {
        self.num_params() * std::mem::size_of::<f32>()
    }

    /// Training FLOPs of the first `prefix_len` layers for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > num_weighted_layers()`.
    pub fn prefix_train_flops(&self, prefix_len: usize) -> f64 {
        assert!(prefix_len <= self.layers.len(), "prefix longer than model");
        self.layers[..prefix_len].iter().map(LayerSpec::flops_train).sum()
    }

    /// Training FLOPs of the last `suffix_len` layers for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `suffix_len > num_weighted_layers()`.
    pub fn suffix_train_flops(&self, suffix_len: usize) -> f64 {
        assert!(suffix_len <= self.layers.len(), "suffix longer than model");
        self.layers[self.layers.len() - suffix_len..].iter().map(LayerSpec::flops_train).sum()
    }

    /// Parameter bytes held by the last `suffix_len` layers.
    ///
    /// # Panics
    ///
    /// Panics if `suffix_len > num_weighted_layers()`.
    pub fn suffix_param_bytes(&self, suffix_len: usize) -> usize {
        assert!(suffix_len <= self.layers.len(), "suffix longer than model");
        self.layers[self.layers.len() - suffix_len..].iter().map(LayerSpec::param_bytes).sum()
    }

    /// The activation produced at the cut when the last `offload` layers are
    /// offloaded, i.e. the output of layer `L - offload - 1`, in bytes per
    /// sample. An offload of zero transfers nothing.
    ///
    /// # Panics
    ///
    /// Panics if `offload >= num_weighted_layers()` — the slow agent always
    /// keeps at least one layer.
    pub fn cut_activation_bytes(&self, offload: usize) -> usize {
        assert!(offload < self.layers.len(), "the slow agent must keep at least one layer");
        if offload == 0 {
            0
        } else {
            self.layers[self.layers.len() - offload - 1].activation_bytes()
        }
    }

    /// Output channels at the cut (for sizing the auxiliary head).
    ///
    /// Returns the out-channels of the last kept layer, falling back to its
    /// element count for dense layers.
    ///
    /// # Panics
    ///
    /// Panics if `offload >= num_weighted_layers()`.
    pub fn cut_channels(&self, offload: usize) -> usize {
        assert!(offload < self.layers.len(), "the slow agent must keep at least one layer");
        let l = &self.layers[self.layers.len() - offload - 1];
        if l.out_channels > 0 {
            l.out_channels
        } else {
            l.out_elems
        }
    }

    /// The auxiliary network cost for a cut with the given channels: a global
    /// average pool (negligible FLOPs) followed by a fully connected layer to
    /// the class logits, as in §V-A "Model Architecture".
    pub fn aux_head_flops(&self, offload: usize) -> f64 {
        if offload == 0 {
            return 0.0;
        }
        let c = self.cut_channels(offload);
        LayerSpec::dense("aux_fc", c, self.num_classes).flops_train()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet56_has_56_weighted_layers() {
        let spec = ModelSpec::resnet56();
        assert_eq!(spec.num_weighted_layers(), 56);
        assert_eq!(spec.layers()[0].name, "stem");
        assert_eq!(spec.layers()[55].kind, LayerKind::Dense);
    }

    #[test]
    fn resnet110_has_110_weighted_layers() {
        assert_eq!(ModelSpec::resnet110().num_weighted_layers(), 110);
    }

    #[test]
    fn resnet56_flops_match_published_magnitude() {
        // The CIFAR ResNet-56 forward pass is ~125 M multiply-accumulates
        // per sample; at 2 FLOPs per MAC that is ~250 MFLOPs.
        let f = ModelSpec::resnet56().fwd_flops_per_sample();
        assert!((2.0e8..3.2e8).contains(&f), "forward flops {f}");
    }

    #[test]
    fn resnet56_params_match_published_magnitude() {
        // Published parameter count is ~0.85 M.
        let p = ModelSpec::resnet56().num_params();
        assert!((700_000..1_000_000).contains(&p), "params {p}");
    }

    #[test]
    fn prefix_plus_suffix_covers_everything() {
        let spec = ModelSpec::resnet56();
        for cut in [0, 1, 10, 28, 55, 56] {
            let total = spec.prefix_train_flops(cut) + spec.suffix_train_flops(56 - cut);
            assert!((total - spec.train_flops_per_sample()).abs() < 1.0);
        }
    }

    #[test]
    fn cut_activation_tracks_stage_shapes() {
        let spec = ModelSpec::resnet56();
        // Offloading 55 layers cuts after the stem: 16x32x32 activations.
        assert_eq!(spec.cut_activation_bytes(55), 16 * 32 * 32 * 4);
        // Offloading 1 layer cuts before the FC: 64x8x8 activations.
        assert_eq!(spec.cut_activation_bytes(1), 64 * 8 * 8 * 4);
        // No offload, no transfer.
        assert_eq!(spec.cut_activation_bytes(0), 0);
    }

    #[test]
    fn deeper_cuts_move_work_to_the_fast_side() {
        let spec = ModelSpec::resnet56();
        let mut prev = 0.0;
        for k in 0..56 {
            let suffix = spec.suffix_train_flops(k);
            assert!(suffix >= prev);
            prev = suffix;
        }
    }

    #[test]
    fn aux_head_sized_by_cut_channels() {
        let spec = ModelSpec::resnet56();
        assert_eq!(spec.aux_head_flops(0), 0.0);
        // Cut after stem: 16 channels -> aux fc is 16x10.
        assert_eq!(spec.aux_head_flops(55), LayerSpec::dense("a", 16, 10).flops_train());
        // Cut before fc: 64 channels.
        assert_eq!(spec.aux_head_flops(1), LayerSpec::dense("a", 64, 10).flops_train());
    }

    #[test]
    fn bert_base_matches_published_magnitudes() {
        let spec = ModelSpec::bert_base(128, 2);
        assert_eq!(spec.num_weighted_layers(), 13);
        // BERT-base encoder stack is ~85 M parameters (embeddings excluded).
        let p = spec.num_params();
        assert!((70_000_000..100_000_000).contains(&p), "params {p}");
        // ~11 GFLOPs forward at seq 128 (2 FLOPs/MAC convention, no embeds).
        let f = spec.fwd_flops_per_sample();
        assert!((5e9..4e10).contains(&f), "flops {f}");
        // Cutting anywhere in the stack ships [seq, hidden] activations.
        assert_eq!(spec.cut_activation_bytes(6), 128 * 768 * 4);
    }

    #[test]
    fn bert_split_profile_works() {
        let spec = ModelSpec::bert_base(128, 2);
        let profile = crate::SplitProfile::new(&spec, 8);
        assert_eq!(profile.len(), 13);
        // Encoder layers are homogeneous: slow share falls linearly.
        let e4 = profile.entry(4).unwrap();
        let e8 = profile.entry(8).unwrap();
        assert!(e8.t_slow_rel < e4.t_slow_rel);
    }

    #[test]
    fn mlp_builder() {
        let spec = ModelSpec::mlp("m", &[32, 64, 10]);
        assert_eq!(spec.num_weighted_layers(), 2);
        assert_eq!(spec.num_classes(), 10);
        assert_eq!(spec.input_elems(), 32);
    }

    #[test]
    fn model_bytes_is_4x_params() {
        let spec = ModelSpec::resnet20();
        assert_eq!(spec.model_bytes(), spec.num_params() * 4);
    }
}
