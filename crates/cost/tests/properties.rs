//! Property tests for the analytic cost models.

use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
use proptest::prelude::*;

proptest! {
    /// For any CIFAR ResNet depth, prefix + suffix FLOPs always cover the
    /// whole model at every cut.
    #[test]
    fn prefix_suffix_complementarity(n in 1usize..20, cut_frac in 0.0f64..=1.0) {
        let spec = ModelSpec::resnet_cifar(n, "t");
        let l = spec.num_weighted_layers();
        let cut = ((l as f64) * cut_frac) as usize;
        let total = spec.prefix_train_flops(cut) + spec.suffix_train_flops(l - cut);
        prop_assert!((total - spec.train_flops_per_sample()).abs() < 1.0);
    }

    /// Split profiles are internally consistent for any depth/batch size.
    #[test]
    fn split_profile_invariants(n in 1usize..12, batch in 1usize..256) {
        let spec = ModelSpec::resnet_cifar(n, "t");
        let profile = SplitProfile::new(&spec, batch);
        prop_assert_eq!(profile.len(), spec.num_weighted_layers());
        let mut prev_slow = f64::INFINITY;
        let mut prev_fast = -1.0;
        for e in profile.iter() {
            prop_assert!(e.t_slow_rel >= 0.0 && e.t_fast_rel >= 0.0);
            prop_assert!(e.t_slow_rel <= prev_slow + 1e-9, "slow share monotone");
            prop_assert!(e.t_fast_rel >= prev_fast - 1e-9, "fast share monotone");
            prev_slow = e.t_slow_rel;
            prev_fast = e.t_fast_rel;
            // Activation payload scales exactly with batch size.
            if e.offload > 0 {
                prop_assert_eq!(
                    e.nu_bytes_per_batch,
                    (spec.cut_activation_bytes(e.offload) * batch) as u64
                );
            }
        }
    }

    /// Suffix parameter bytes grow monotonically with the offload.
    #[test]
    fn suffix_params_monotone(n in 1usize..12) {
        let spec = ModelSpec::resnet_cifar(n, "t");
        let mut prev = 0;
        for m in 0..spec.num_weighted_layers() {
            let bytes = spec.suffix_param_bytes(m);
            prop_assert!(bytes >= prev);
            prev = bytes;
        }
    }

    /// Calibration arithmetic: doubling CPUs exactly halves batch time, and
    /// transfer time is inversely proportional to bandwidth.
    #[test]
    fn calibration_scaling(
        flops in 1e6f64..1e12,
        batch in 1usize..512,
        cpus in 0.05f64..8.0,
        mbps in 0.5f64..1000.0,
        bytes in 1u64..100_000_000,
    ) {
        let cal = CostCalibration { link_latency_s: 0.0, ..CostCalibration::default() };
        let t1 = cal.batch_time_s(flops, batch, cpus);
        let t2 = cal.batch_time_s(flops, batch, cpus * 2.0);
        prop_assert!((t1 / t2 - 2.0).abs() < 1e-9);
        let x1 = cal.transfer_time_s(bytes, mbps);
        let x2 = cal.transfer_time_s(bytes, mbps * 2.0);
        prop_assert!((x1 / x2 - 2.0).abs() < 1e-6);
    }
}
