//! Round-driven learning dynamics: accuracy as a state advanced by what
//! each simulated round *actually* delivered, not a post-hoc projection.
//!
//! The paper's headline metric is *time to reach a target accuracy*. The
//! sweep engine used to compute it as a closed-form projection —
//! `mean_round_s × rounds_to_target(curve, realized factor, sampling)` —
//! which throws away all round-to-round structure the simulator produces:
//! per-round staleness-weighted efficiency, participation sets, membership
//! disruptions. [`LearningModel`] replaces the projection: it consumes one
//! [`RoundProgress`] per simulated round and advances an accuracy state,
//! so time-to-target is read off the simulated clock the moment the state
//! crosses the target (enabling early stopping), and round-varying
//! efficiency, non-IID curve mixes and churn-coupled accuracy dips all
//! become expressible.
//!
//! **Equivalence anchor.** With constant per-round efficiency `f`, a fixed
//! sampling rate `s` and no churn coupling, the state after `n` rounds is
//! `n · f · s^0.35` effective rounds, so the first round reaching the
//! target is exactly `ceil(needed / (f · s^0.35))` — the old closed form.
//! The round-driven path therefore reproduces the projection bit-for-bit
//! in the static regime (pinned to 1e-9 in `crates/exp/tests/learning.rs`)
//! while diverging from it exactly when the simulation has structure the
//! projection could not see.
//!
//! # Example
//!
//! ```
//! use comdml_core::{LearningCurve, LearningModel, RoundProgress};
//!
//! let curve = LearningCurve::cifar10(true);
//! let mut model = LearningModel::new(curve, 0.80);
//! let mut rounds = 0;
//! while !model.reached() {
//!     model.observe(&RoundProgress::fresh(12.0, 1.0, 10));
//!     rounds += 1;
//! }
//! assert_eq!(rounds, curve.rounds_to(0.80, 1.0));
//! assert!(model.accuracy() >= 0.80);
//! ```

use serde::{Deserialize, Serialize};

use crate::LearningCurve;

/// The sub-linear participation-sampling penalty: when only a `rate`
/// fraction of agents contributes per round, the global model sees
/// proportionally less data, shrinking per-round progress — sub-linearly,
/// because overlapping updates still transfer. This is the single source
/// of truth for the exponent (`comdml_bench::rounds_with_sampling` and
/// [`LearningModel`] both use it).
pub fn sampling_penalty(rate: f64) -> f64 {
    rate.clamp(0.01, 1.0).powf(0.35)
}

/// What one simulated round contributed to learning — the
/// effective-progress inputs every [`crate::RoundEngine`] reports alongside
/// its round time, consumed by [`LearningModel::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundProgress {
    /// Simulated seconds the round took.
    pub round_s: f64,
    /// Staleness-weighted learning efficiency of the round in `[0, 1]`:
    /// 1 for a fully fresh synchronous barrier, less when updates arrive
    /// stale (semi-sync/async spill) or mix partially (gossip), 0 for a
    /// round that advanced nothing (extinct fleet).
    pub efficiency: f64,
    /// Agents that entered the round (after participation sampling).
    pub participants: usize,
    /// Agents whose update made the round's aggregation.
    pub cohort: usize,
    /// Mid-round membership disruptions (departures among participants) —
    /// what churn-coupled accuracy dips
    /// ([`LearningModel::with_churn_dip`]) charge for.
    pub disruptions: usize,
}

impl RoundProgress {
    /// An undisrupted round where every participant aggregated.
    pub fn fresh(round_s: f64, efficiency: f64, participants: usize) -> Self {
        Self { round_s, efficiency, participants, cohort: participants, disruptions: 0 }
    }

    /// An empty round (extinct fleet fast-forward): time may pass, but no
    /// learning happens.
    pub fn idle(round_s: f64) -> Self {
        Self { round_s, efficiency: 0.0, participants: 0, cohort: 0, disruptions: 0 }
    }

    /// Sets the disruption count.
    pub fn with_disruptions(mut self, n: usize) -> Self {
        self.disruptions = n;
        self
    }
}

/// First-class accuracy state advanced round by round. See the module docs
/// for the semantics and the equivalence anchor.
#[derive(Debug, Clone, PartialEq)]
pub struct LearningModel {
    curve: LearningCurve,
    target: f64,
    /// Effective rounds the curve demands for `target`.
    needed: f64,
    sampling_rate: f64,
    churn_dip: f64,
    /// Accumulated effective rounds (the curve's argument).
    effective: f64,
    rounds: usize,
}

impl LearningModel {
    /// Tolerance for the target-reached comparison: accumulating per-round
    /// gains instead of dividing once must not cost a spurious extra round
    /// to float noise (same guard as [`crate::ComDml::run`]).
    const EPS: f64 = 1e-9;

    /// A model tracking progress toward `target` on `curve`, with no
    /// sampling penalty and no churn coupling.
    ///
    /// # Panics
    ///
    /// Panics if `target` is at or above the curve's asymptote (the state
    /// could never reach it).
    pub fn new(curve: LearningCurve, target: f64) -> Self {
        assert!(target < curve.a_max, "target {target} is unreachable (asymptote {})", curve.a_max);
        let needed = -curve.tau * (1.0 - target / curve.a_max).ln();
        Self {
            curve,
            target,
            needed,
            sampling_rate: 1.0,
            churn_dip: 0.0,
            effective: 0.0,
            rounds: 0,
        }
    }

    /// Applies the participation-sampling penalty ([`sampling_penalty`]) to
    /// every observed round.
    pub fn with_sampling_rate(mut self, rate: f64) -> Self {
        self.sampling_rate = rate;
        self
    }

    /// Couples accuracy to membership churn: every mid-round disruption
    /// ([`RoundProgress::disruptions`]) forfeits `dip` effective rounds of
    /// progress (floored at zero total) — departing agents take their
    /// un-averaged contribution with them.
    ///
    /// # Panics
    ///
    /// Panics if `dip` is negative or not finite.
    pub fn with_churn_dip(mut self, dip: f64) -> Self {
        assert!(dip.is_finite() && dip >= 0.0, "churn dip must be finite and >= 0, got {dip}");
        self.churn_dip = dip;
        self
    }

    /// The curve being advanced.
    pub fn curve(&self) -> &LearningCurve {
        &self.curve
    }

    /// The target accuracy.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// Effective rounds the curve demands for the target.
    pub fn needed_effective_rounds(&self) -> f64 {
        self.needed
    }

    /// Effective rounds accumulated so far.
    pub fn effective_rounds(&self) -> f64 {
        self.effective
    }

    /// Rounds observed so far.
    pub fn rounds_observed(&self) -> usize {
        self.rounds
    }

    /// Current accuracy.
    pub fn accuracy(&self) -> f64 {
        self.curve.accuracy_at(self.effective)
    }

    /// Whether the accumulated state has reached the target.
    pub fn reached(&self) -> bool {
        self.effective + Self::EPS >= self.needed
    }

    /// Advances the state by one simulated round and returns the new
    /// accuracy. The round contributes `efficiency · sampling_penalty`
    /// effective rounds, minus `churn_dip` per disruption, floored so the
    /// state never goes negative.
    pub fn observe(&mut self, progress: &RoundProgress) -> f64 {
        let gain = progress.efficiency.clamp(0.0, 1.0) * sampling_penalty(self.sampling_rate);
        let dip = self.churn_dip * progress.disruptions as f64;
        self.effective = (self.effective + gain - dip).max(0.0);
        self.rounds += 1;
        self.accuracy()
    }

    /// Total rounds to target: the observed count when the target was
    /// reached, otherwise the observed count plus an extrapolation of the
    /// remaining effective rounds at the realized mean pace — exactly the
    /// old closed-form projection when per-round progress was constant.
    ///
    /// Returns at least 1 (the old `rounds_to` floor).
    pub fn projected_rounds_to_target(&self) -> usize {
        if self.reached() {
            return self.rounds.max(1);
        }
        let mean_gain = if self.rounds == 0 {
            sampling_penalty(self.sampling_rate)
        } else {
            self.effective / self.rounds as f64
        }
        .max(1e-6 * sampling_penalty(self.sampling_rate));
        let extra = ((self.needed - self.effective) / mean_gain).ceil().max(0.0) as usize;
        (self.rounds + extra).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_constant(model: &mut LearningModel, eff: f64, cap: usize) -> usize {
        let mut rounds = 0;
        while !model.reached() && rounds < cap {
            model.observe(&RoundProgress::fresh(10.0, eff, 8));
            rounds += 1;
        }
        rounds
    }

    #[test]
    fn constant_efficiency_reproduces_the_closed_form() {
        // The equivalence anchor: for a grid of (curve, target, efficiency,
        // sampling) combinations, accumulating per-round gains stops at
        // exactly the round the old projection predicted.
        for curve in [
            LearningCurve::cifar10(true),
            LearningCurve::cifar10(false),
            LearningCurve::cifar100(true),
            LearningCurve::cinic10(false),
        ] {
            for target in [0.5, 0.6, curve.a_max * 0.9] {
                for eff in [1.0, 0.8826, 0.55] {
                    for rate in [1.0, 0.5, 0.2] {
                        let mut model = LearningModel::new(curve, target).with_sampling_rate(rate);
                        let rounds = drive_constant(&mut model, eff, 10_000);
                        let expect = curve.rounds_to(target, eff * sampling_penalty(rate));
                        assert_eq!(
                            rounds, expect,
                            "curve {curve:?} target {target} eff {eff} rate {rate}"
                        );
                        assert!(model.accuracy() >= target - 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn projection_before_reaching_matches_closed_form() {
        let curve = LearningCurve::cifar10(true);
        for eff in [1.0, 0.7, 0.55] {
            let mut model = LearningModel::new(curve, 0.90);
            for _ in 0..8 {
                model.observe(&RoundProgress::fresh(10.0, eff, 8));
            }
            assert!(!model.reached());
            assert_eq!(model.projected_rounds_to_target(), curve.rounds_to(0.90, eff));
        }
    }

    #[test]
    fn trajectory_is_monotone_without_churn_coupling() {
        let mut model = LearningModel::new(LearningCurve::cifar100(false), 0.6);
        let mut prev = 0.0;
        for r in 0..100 {
            // Round-varying efficiency, still monotone.
            let eff = 0.3 + 0.7 * ((r % 7) as f64 / 6.0);
            let acc = model.observe(&RoundProgress::fresh(5.0, eff, 4));
            assert!(acc >= prev, "round {r}: {acc} < {prev}");
            prev = acc;
        }
    }

    #[test]
    fn trajectory_is_bounded_by_the_ideal_curve() {
        let curve = LearningCurve::cinic10(true);
        let mut model = LearningModel::new(curve, 0.75).with_sampling_rate(0.4).with_churn_dip(0.3);
        for r in 0..200 {
            let eff = if r % 5 == 0 { 0.0 } else { 0.9 };
            let disruptions = usize::from(r % 11 == 0);
            let acc =
                model.observe(&RoundProgress::fresh(5.0, eff, 4).with_disruptions(disruptions));
            assert!(
                acc <= curve.accuracy_at((r + 1) as f64) + 1e-12,
                "round {r}: realized {acc} above ideal"
            );
        }
    }

    #[test]
    fn churn_dips_cost_progress_but_never_go_negative() {
        let curve = LearningCurve::cifar10(true);
        let mut dipped = LearningModel::new(curve, 0.8).with_churn_dip(0.5);
        let mut clean = LearningModel::new(curve, 0.8);
        // A disruption storm at the very start cannot push accuracy below 0.
        dipped.observe(&RoundProgress::fresh(5.0, 0.1, 4).with_disruptions(10));
        assert_eq!(dipped.effective_rounds(), 0.0);
        for _ in 0..10 {
            dipped.observe(&RoundProgress::fresh(5.0, 1.0, 4).with_disruptions(1));
            clean.observe(&RoundProgress::fresh(5.0, 1.0, 4));
        }
        assert!(dipped.effective_rounds() < clean.effective_rounds());
        assert!(dipped.accuracy() < clean.accuracy());
    }

    #[test]
    fn accuracy_can_dip_under_churn_coupling() {
        let mut model = LearningModel::new(LearningCurve::cifar10(true), 0.8).with_churn_dip(2.0);
        for _ in 0..5 {
            model.observe(&RoundProgress::fresh(5.0, 1.0, 4));
        }
        let before = model.accuracy();
        let after = model.observe(&RoundProgress::fresh(5.0, 1.0, 4).with_disruptions(2));
        assert!(after < before, "a 2-departure round at dip 2.0 must cost accuracy");
    }

    #[test]
    fn idle_rounds_advance_nothing() {
        let mut model = LearningModel::new(LearningCurve::cifar10(true), 0.8);
        model.observe(&RoundProgress::idle(500.0));
        assert_eq!(model.effective_rounds(), 0.0);
        assert_eq!(model.rounds_observed(), 1);
    }

    #[test]
    fn sampling_penalty_matches_the_historic_formula() {
        for rate in [1.0, 0.75, 0.5, 0.2, 0.01, 0.001] {
            assert_eq!(sampling_penalty(rate), rate.clamp(0.01, 1.0).powf(0.35));
        }
        assert_eq!(sampling_penalty(1.0), 1.0);
    }

    #[test]
    fn zero_progress_projection_stays_finite() {
        let mut model = LearningModel::new(LearningCurve::cifar10(true), 0.9);
        for _ in 0..5 {
            model.observe(&RoundProgress::idle(1.0));
        }
        let projected = model.projected_rounds_to_target();
        assert!(projected >= 5, "projection includes observed rounds");
        assert!(projected < usize::MAX / 2, "clamped mean keeps it finite");
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn unreachable_target_panics() {
        let _ = LearningModel::new(LearningCurve::cifar10(true), 0.95);
    }

    #[test]
    #[should_panic(expected = "churn dip")]
    fn negative_dip_rejected() {
        let _ = LearningModel::new(LearningCurve::cifar10(true), 0.8).with_churn_dip(-0.1);
    }
}
