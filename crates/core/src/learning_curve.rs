use serde::{Deserialize, Serialize};

/// FedBuff-style polynomial staleness discount: the contribution weight of
/// an update that arrives `staleness` rounds after the aggregation it was
/// computed for, `w(s) = (1 + s)^(-decay)`.
///
/// `decay = 0` ignores staleness entirely (every late update counts fully);
/// larger decays discount late updates harder. The weight is 1 at zero
/// staleness and strictly decreasing in `staleness` for positive decay —
/// the monotonicity the aggregation-mode comparisons rely on (semi-sync
/// stragglers and async late finishers contribute less learning progress
/// per round than the synchronous barrier's always-fresh cohort).
///
/// # Example
///
/// ```
/// use comdml_core::staleness_weight;
///
/// assert_eq!(staleness_weight(0.0, 0.5), 1.0);
/// assert!(staleness_weight(1.0, 0.5) < 1.0);
/// assert!(staleness_weight(2.0, 0.5) < staleness_weight(1.0, 0.5));
/// ```
pub fn staleness_weight(staleness: f64, decay: f64) -> f64 {
    (1.0 + staleness.max(0.0)).powf(-decay.max(0.0))
}

/// A saturating-exponential accuracy model:
/// `acc(r) = a_max · (1 − exp(−r / τ))`.
///
/// The paper's tables measure *time to reach a target accuracy*. For the
/// synchronous model-averaging methods (FedAvg, BrainTorrent, AllReduce,
/// ComDML) the number of *rounds* to a target is nearly method-independent —
/// they all compute the same average of one-local-epoch updates — so the
/// methods differ through their per-round wall-clock time, which the
/// simulator provides. Gossip converges slower per round (partial mixing),
/// expressed as a rounds multiplier. Curve constants are calibrated per
/// dataset/IID-ness so round counts land in the paper's regime; see
/// EXPERIMENTS.md for the calibration table.
///
/// # Example
///
/// ```
/// use comdml_core::LearningCurve;
///
/// let curve = LearningCurve::cifar10(true);
/// let r90 = curve.rounds_to(0.90, 1.0);
/// let r80 = curve.rounds_to(0.80, 1.0);
/// assert!(r80 < r90);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearningCurve {
    /// Asymptotic accuracy of the model/dataset combination.
    pub a_max: f64,
    /// Round constant of the exponential.
    pub tau: f64,
}

impl LearningCurve {
    /// Creates a curve from its constants.
    ///
    /// # Panics
    ///
    /// Panics if `a_max` is outside `(0, 1]` or `tau` is not positive.
    pub fn new(a_max: f64, tau: f64) -> Self {
        assert!(a_max > 0.0 && a_max <= 1.0, "a_max must be in (0, 1], got {a_max}");
        assert!(tau > 0.0, "tau must be positive, got {tau}");
        Self { a_max, tau }
    }

    /// ResNet-56 on CIFAR-10 (IID or Dirichlet-0.5 non-IID).
    pub fn cifar10(iid: bool) -> Self {
        if iid {
            Self::new(0.93, 11.0)
        } else {
            Self::new(0.88, 13.0)
        }
    }

    /// ResNet-56 on CIFAR-100.
    pub fn cifar100(iid: bool) -> Self {
        if iid {
            Self::new(0.68, 9.0)
        } else {
            Self::new(0.635, 12.0)
        }
    }

    /// ResNet-56 on CINIC-10.
    pub fn cinic10(iid: bool) -> Self {
        if iid {
            Self::new(0.79, 8.0)
        } else {
            Self::new(0.70, 11.0)
        }
    }

    /// Curve lookup by dataset name ("cifar10", "cifar100", "cinic10").
    ///
    /// # Panics
    ///
    /// Panics on an unknown dataset name.
    pub fn for_dataset(name: &str, iid: bool) -> Self {
        match name {
            "cifar10" => Self::cifar10(iid),
            "cifar100" => Self::cifar100(iid),
            "cinic10" => Self::cinic10(iid),
            other => panic!("no learning curve calibrated for dataset {other:?}"),
        }
    }

    /// ResNet-110 variant: deeper model, slightly higher ceiling, slower
    /// early progress.
    pub fn deeper(self) -> Self {
        Self::new((self.a_max + 0.012).min(1.0), self.tau * 1.25)
    }

    /// Linear interpolation between two curves: `frac = 0` gives `self`,
    /// `frac = 1` gives `other`. Used for non-I.I.D. *mixes* — a fleet
    /// whose data skew sits between the calibrated I.I.D. and
    /// Dirichlet-0.5 endpoints gets a proportionally blended asymptote and
    /// round constant.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is outside `[0, 1]`.
    pub fn blend(self, other: Self, frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "blend fraction must be in [0, 1], got {frac}");
        Self::new(
            self.a_max + frac * (other.a_max - self.a_max),
            self.tau + frac * (other.tau - self.tau),
        )
    }

    /// Accuracy after `r` rounds.
    pub fn accuracy_at(&self, r: f64) -> f64 {
        self.a_max * (1.0 - (-r / self.tau).exp())
    }

    /// Fits a curve to observed `(round, accuracy)` points by grid search
    /// over `(a_max, tau)` minimizing squared error — used to calibrate the
    /// simulator's curves against real training runs (e.g. the accuracy
    /// trajectory of a [`crate::RealSplitFleet`]).
    ///
    /// Returns `None` for fewer than two points or degenerate accuracies.
    pub fn fit(points: &[(f64, f64)]) -> Option<Self> {
        if points.len() < 2 {
            return None;
        }
        let max_acc = points.iter().map(|&(_, a)| a).fold(0.0f64, f64::max);
        if !(0.0..=1.0).contains(&max_acc) || max_acc <= 0.0 {
            return None;
        }
        let mut best: Option<(f64, Self)> = None;
        // a_max must sit at or above the best observation.
        let mut a = (max_acc + 1e-3).min(1.0);
        while a <= 1.0 {
            let mut tau = 0.5;
            while tau <= 200.0 {
                let curve = Self::new(a, tau);
                let sse: f64 =
                    points.iter().map(|&(r, acc)| (curve.accuracy_at(r) - acc).powi(2)).sum();
                if best.as_ref().is_none_or(|(b, _)| sse < *b) {
                    best = Some((sse, curve));
                }
                tau *= 1.07;
            }
            a += 0.005;
        }
        best.map(|(_, c)| c)
    }

    /// Rounds needed to reach `target` accuracy, with a method-specific
    /// efficiency (1.0 = full synchronous averaging; gossip < 1).
    ///
    /// # Panics
    ///
    /// Panics if `target >= a_max` (the curve never reaches it) or
    /// `efficiency` is not positive.
    pub fn rounds_to(&self, target: f64, efficiency: f64) -> usize {
        assert!(target < self.a_max, "target {target} is unreachable (asymptote {})", self.a_max);
        assert!(efficiency > 0.0, "efficiency must be positive, got {efficiency}");
        let r = -self.tau * (1.0 - target / self.a_max).ln();
        (r / efficiency).ceil().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_is_monotone_and_saturating() {
        let c = LearningCurve::cifar10(true);
        let mut prev = 0.0;
        for r in 0..200 {
            let a = c.accuracy_at(r as f64);
            assert!(a >= prev);
            prev = a;
        }
        assert!(prev < c.a_max);
        assert!(c.accuracy_at(1e6) > 0.9999 * c.a_max);
    }

    #[test]
    fn rounds_to_inverts_accuracy_at() {
        let c = LearningCurve::cifar10(true);
        let r = c.rounds_to(0.90, 1.0);
        assert!(c.accuracy_at(r as f64) >= 0.90);
        assert!(c.accuracy_at((r - 1) as f64) < 0.90);
    }

    #[test]
    fn paper_targets_are_reachable() {
        // Table II's targets must be below each curve's asymptote.
        assert!(LearningCurve::cifar10(true).rounds_to(0.90, 1.0) > 0);
        assert!(LearningCurve::cifar10(false).rounds_to(0.85, 1.0) > 0);
        assert!(LearningCurve::cifar100(true).rounds_to(0.65, 1.0) > 0);
        assert!(LearningCurve::cifar100(false).rounds_to(0.60, 1.0) > 0);
        assert!(LearningCurve::cinic10(true).rounds_to(0.75, 1.0) > 0);
        assert!(LearningCurve::cinic10(false).rounds_to(0.65, 1.0) > 0);
    }

    #[test]
    fn round_counts_are_in_a_plausible_fl_regime() {
        // Tens of rounds, not thousands: matches the paper's time scales.
        let r = LearningCurve::cifar10(true).rounds_to(0.90, 1.0);
        assert!((20..120).contains(&r), "rounds {r}");
    }

    #[test]
    fn lower_efficiency_needs_more_rounds() {
        let c = LearningCurve::cifar10(true);
        assert!(c.rounds_to(0.80, 0.7) > c.rounds_to(0.80, 1.0));
    }

    #[test]
    fn non_iid_needs_more_rounds_than_iid() {
        let iid = LearningCurve::cifar10(true).rounds_to(0.80, 1.0);
        let non = LearningCurve::cifar10(false).rounds_to(0.80, 1.0);
        assert!(non > iid);
    }

    #[test]
    fn blend_interpolates_between_endpoints() {
        let iid = LearningCurve::cifar10(true);
        let non = LearningCurve::cifar10(false);
        assert_eq!(iid.blend(non, 0.0), iid);
        assert_eq!(iid.blend(non, 1.0), non);
        let mid = iid.blend(non, 0.5);
        assert!((mid.a_max - (iid.a_max + non.a_max) / 2.0).abs() < 1e-12);
        assert!((mid.tau - (iid.tau + non.tau) / 2.0).abs() < 1e-12);
        // A more skewed mix converges slower to a lower ceiling.
        assert!(iid.blend(non, 0.8).tau > iid.blend(non, 0.2).tau);
        assert!(iid.blend(non, 0.8).a_max < iid.blend(non, 0.2).a_max);
    }

    #[test]
    #[should_panic(expected = "blend fraction")]
    fn blend_rejects_out_of_range_fraction() {
        let _ = LearningCurve::cifar10(true).blend(LearningCurve::cifar10(false), 1.5);
    }

    #[test]
    fn deeper_model_raises_ceiling() {
        let base = LearningCurve::cifar10(true);
        let deep = base.deeper();
        assert!(deep.a_max > base.a_max);
        assert!(deep.tau > base.tau);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn unreachable_target_panics() {
        let _ = LearningCurve::cifar10(true).rounds_to(0.99, 1.0);
    }

    #[test]
    fn fit_recovers_a_known_curve() {
        let truth = LearningCurve::new(0.9, 12.0);
        let points: Vec<(f64, f64)> =
            (1..40).step_by(3).map(|r| (r as f64, truth.accuracy_at(r as f64))).collect();
        let fitted = LearningCurve::fit(&points).expect("fit succeeds");
        assert!((fitted.a_max - truth.a_max).abs() < 0.02, "a_max {}", fitted.a_max);
        assert!((fitted.tau - truth.tau).abs() / truth.tau < 0.15, "tau {}", fitted.tau);
    }

    #[test]
    fn fit_handles_noisy_observations() {
        let truth = LearningCurve::new(0.85, 8.0);
        let points: Vec<(f64, f64)> = (1..30)
            .map(|r| {
                let noise = if r % 2 == 0 { 0.01 } else { -0.01 };
                (r as f64, (truth.accuracy_at(r as f64) + noise).clamp(0.0, 1.0))
            })
            .collect();
        let fitted = LearningCurve::fit(&points).expect("fit succeeds");
        // Prediction error at unseen rounds stays small.
        for r in [35.0f64, 50.0] {
            assert!((fitted.accuracy_at(r) - truth.accuracy_at(r)).abs() < 0.04);
        }
    }

    #[test]
    fn staleness_weight_is_monotone_decreasing() {
        let mut prev = staleness_weight(0.0, 0.5);
        assert_eq!(prev, 1.0);
        for s in 1..50 {
            let w = staleness_weight(s as f64 * 0.25, 0.5);
            assert!(w < prev, "weight must strictly decrease: {w} vs {prev}");
            assert!(w > 0.0);
            prev = w;
        }
    }

    #[test]
    fn staleness_weight_decay_zero_ignores_staleness() {
        for s in [0.0, 1.0, 10.0, 1e6] {
            assert_eq!(staleness_weight(s, 0.0), 1.0);
        }
    }

    #[test]
    fn staleness_weight_larger_decay_discounts_harder() {
        assert!(staleness_weight(3.0, 1.0) < staleness_weight(3.0, 0.5));
        assert!(staleness_weight(3.0, 0.5) < staleness_weight(3.0, 0.1));
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(LearningCurve::fit(&[]).is_none());
        assert!(LearningCurve::fit(&[(1.0, 0.5)]).is_none());
        assert!(LearningCurve::fit(&[(1.0, 0.0), (2.0, 0.0)]).is_none());
    }
}
