use comdml_collective::AllReduceAlgorithm;
use comdml_cost::CostCalibration;
use comdml_simnet::{AgentId, World};

use crate::{Pairing, TrainingTimeEstimator};

/// Per-batch pipeline simulation of one paired round (Fig. 1's anatomy).
///
/// The slow side produces activation batches at its split-side rate; the
/// link serializes transfers; the fast agent first finishes its own local
/// task and then consumes guest batches as they arrive. This reproduces the
/// overlap structure that makes the communication column of Table I
/// non-monotone in the split point: transfers hidden behind compute cost
/// nothing on the critical path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairRoundSim {
    /// Number of guest (slow-agent) batches.
    pub n_slow_batches: usize,
    /// Number of the fast agent's own batches.
    pub n_fast_batches: usize,
    /// Seconds per slow-side batch on the slow agent (`T_s^m / p_i`).
    pub slow_batch_s: f64,
    /// Seconds per own full-model batch on the fast agent (`1 / p_j`).
    pub fast_own_batch_s: f64,
    /// Seconds per guest fast-side batch on the fast agent (`T_f^m / p_j`).
    pub fast_guest_batch_s: f64,
    /// Seconds to push one activation batch over the link (`ν_m / c_ij`).
    pub transfer_s: f64,
    /// Seconds to ship the trained suffix parameters back at round end.
    pub suffix_return_s: f64,
}

/// Timing breakdown of one simulated pair round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairTimes {
    /// When the joint task completes (both sides synchronized), seconds.
    pub pair_done_s: f64,
    /// Slow agent compute-busy seconds.
    pub slow_busy_s: f64,
    /// Fast agent compute-busy seconds (own task + guest suffix).
    pub fast_busy_s: f64,
    /// Communication seconds visible on the critical path (stalls + model
    /// return), not transfers hidden behind compute.
    pub comm_s: f64,
}

impl PairRoundSim {
    /// Completion time of the compute/transfer pipeline for a given
    /// per-batch transfer time (excluding the suffix-parameter return).
    pub(crate) fn completion(&self, transfer_s: f64) -> f64 {
        self.completion_from(transfer_s, 0.0, 0.0)
    }

    /// Like [`PairRoundSim::completion`] but with the two sides starting at
    /// `slow_start` / `fast_start` (carry-over from a previous round under
    /// semi-synchronous or asynchronous aggregation).
    pub(crate) fn completion_from(&self, transfer_s: f64, slow_start: f64, fast_start: f64) -> f64 {
        let n = self.n_slow_batches;
        let own_done = fast_start + self.n_fast_batches as f64 * self.fast_own_batch_s;
        if n == 0 {
            return own_done;
        }
        let mut send_done = 0.0f64;
        let mut guest_done = own_done;
        for b in 0..n {
            let produced = slow_start + (b + 1) as f64 * self.slow_batch_s;
            let send_start = produced.max(send_done);
            send_done = send_start + transfer_s;
            guest_done = send_done.max(guest_done) + self.fast_guest_batch_s;
        }
        guest_done
    }

    /// O(1) closed form of [`PairRoundSim::completion_from`].
    ///
    /// The per-batch recurrence is max-plus linear with constant service
    /// times, so the completion is the max over the pipeline's possible
    /// bottlenecks: the helper's own task, the first batch followed by
    /// guest-rate-bound training, production-bound arrival of the last
    /// batch, and link-bound arrival of the last batch. Each candidate uses
    /// the same products as the event engine's multiplicative anchoring, so
    /// the coarse event granularity matches the fine one to within normal
    /// floating-point summation error (≪ 1e-9 relative).
    pub(crate) fn completion_closed_form(
        &self,
        transfer_s: f64,
        slow_start: f64,
        fast_start: f64,
    ) -> f64 {
        let n = self.n_slow_batches;
        let own_done = fast_start + self.n_fast_batches as f64 * self.fast_own_batch_s;
        if n == 0 {
            return own_done;
        }
        let nf = n as f64;
        let a = self.slow_batch_s;
        let c = transfer_s;
        let g = self.fast_guest_batch_s;
        // guest_done(n) = max(own_done + n·g, max_b send_done(b) + (n−b+1)·g)
        // and send_done(b) = slow_start + max(a + b·c, b·a + c); the inner
        // expression is convex in b, so only b = 1 and b = n can win.
        (own_done + nf * g)
            .max(slow_start + a + c + nf * g)
            .max(slow_start + a + nf * c + g)
            .max(slow_start + nf * a + c + g)
    }

    /// Runs the pipeline and returns the timing breakdown.
    ///
    /// The communication column is *counterfactual*: the extra critical-path
    /// seconds the real link costs compared to an infinitely fast link (plus
    /// the suffix-parameter return). Transfers fully hidden behind compute
    /// therefore cost zero, which is what makes Table I's communication
    /// column non-monotone in the split point.
    pub fn run(&self) -> PairTimes {
        let n = self.n_slow_batches;
        let slow_busy = n as f64 * self.slow_batch_s;
        let own_done = self.n_fast_batches as f64 * self.fast_own_batch_s;
        let guest_total = n as f64 * self.fast_guest_batch_s;
        let done_real = self.completion(self.transfer_s);
        let done_ideal = self.completion(0.0);
        let comm = (done_real - done_ideal).max(0.0) + self.suffix_return_s;
        PairTimes {
            pair_done_s: done_real + self.suffix_return_s,
            slow_busy_s: slow_busy,
            fast_busy_s: own_done + guest_total,
            comm_s: comm,
        }
    }
}

/// Per-agent timing within one round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentRoundStats {
    /// The agent.
    pub id: AgentId,
    /// Compute-busy seconds.
    pub train_s: f64,
    /// Critical-path communication seconds attributed to this agent.
    pub comm_s: f64,
    /// Idle seconds (waiting within the pair plus waiting for the round's
    /// straggler before aggregation).
    pub idle_s: f64,
    /// When this agent's task finished (seconds from round start).
    pub finish_s: f64,
}

/// Outcome of one simulated training round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Per-agent breakdowns, in pairing order (slow agents before helpers).
    pub agent_stats: Vec<AgentRoundStats>,
    /// Compute/communication phase length (the slowest pairing), seconds.
    pub compute_s: f64,
    /// AllReduce aggregation seconds.
    pub allreduce_s: f64,
    /// Number of pairings that actually offloaded work.
    pub num_offloads: usize,
}

impl RoundOutcome {
    /// Total round time: compute phase plus aggregation.
    pub fn round_s(&self) -> f64 {
        self.compute_s + self.allreduce_s
    }

    /// Combined idle seconds across agents.
    pub fn total_idle_s(&self) -> f64 {
        self.agent_stats.iter().map(|a| a.idle_s).sum()
    }

    /// Combined communication seconds across agents.
    pub fn total_comm_s(&self) -> f64 {
        self.agent_stats.iter().map(|a| a.comm_s).sum()
    }

    /// Renders an ASCII timeline of the round (Fig. 1 style): one bar per
    /// agent, `#` for compute, `~` for critical-path communication, `.` for
    /// idle, scaled to `width` characters.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn render_timeline(&self, width: usize) -> String {
        assert!(width > 0, "timeline needs a positive width");
        let total = self.round_s().max(1e-9);
        let mut out = String::new();
        for s in &self.agent_stats {
            let cells = |v: f64| ((v / total) * width as f64).round() as usize;
            let train = cells(s.train_s);
            let comm = cells(s.comm_s);
            let idle = width.saturating_sub(train + comm);
            out.push_str(&format!(
                "{:>9} |{}{}{}|\n",
                s.id.to_string(),
                "#".repeat(train),
                "~".repeat(comm),
                ".".repeat(idle)
            ));
        }
        out.push_str(&format!(
            "{:>9}  (#{} compute  ~ comm  . idle; round {:.1}s = compute {:.1}s + allreduce {:.1}s)\n",
            "", "", self.round_s(), self.compute_s, self.allreduce_s
        ));
        out
    }
}

/// Simulates one full round: every pairing's pipeline, synchronization on
/// the slowest, and the AllReduce aggregation (§IV-B).
///
/// Agents with a dead link are excluded from aggregation (they "train
/// independently", §V-B.5) but still contribute compute time.
///
/// This is a thin synchronous wrapper over the discrete-event engine
/// ([`crate::EventRound`]): the per-pair pipelines run as `BatchProduced` /
/// `TransferComplete` / `SuffixReturn` events on a shared clock, and the
/// result matches the historical closed-form implementation to within 1e-9.
/// Callers needing semi-synchronous or asynchronous aggregation, failure
/// injection, or per-agent carry-over should use [`crate::EventRound`]
/// directly.
pub fn simulate_round(
    world: &World,
    pairings: &[Pairing],
    estimator: &TrainingTimeEstimator<'_>,
    cal: &CostCalibration,
    algorithm: AllReduceAlgorithm,
) -> RoundOutcome {
    crate::EventRound::new(world, pairings, estimator, cal, algorithm).run().outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PairingScheduler;
    use comdml_cost::{ModelSpec, SplitProfile};
    use comdml_simnet::{Adjacency, AgentProfile, AgentState, WorldConfig};

    fn fixtures() -> (ModelSpec, SplitProfile, CostCalibration) {
        let spec = ModelSpec::resnet56();
        let profile = SplitProfile::new(&spec, 100);
        (spec, profile, CostCalibration::default())
    }

    #[test]
    fn pipeline_with_instant_link_is_compute_bound() {
        let sim = PairRoundSim {
            n_slow_batches: 10,
            n_fast_batches: 0,
            slow_batch_s: 1.0,
            fast_own_batch_s: 1.0,
            fast_guest_batch_s: 0.5,
            transfer_s: 0.0,
            suffix_return_s: 0.0,
        };
        let t = sim.run();
        // Guest batches arrive as produced (1s apart) but take only 0.5s:
        // the fast agent is arrival-bound, finishing 0.5s after the last
        // batch is produced at t=10.
        assert!((t.pair_done_s - 10.5).abs() < 1e-9);
        assert!((t.slow_busy_s - 10.0).abs() < 1e-9);
    }

    #[test]
    fn slow_link_shifts_time_to_comm() {
        let base = PairRoundSim {
            n_slow_batches: 10,
            n_fast_batches: 0,
            slow_batch_s: 0.1,
            fast_own_batch_s: 1.0,
            fast_guest_batch_s: 0.1,
            transfer_s: 0.0,
            suffix_return_s: 0.0,
        };
        let fast_link = base.run();
        let slow_link = PairRoundSim { transfer_s: 2.0, ..base }.run();
        assert!(slow_link.pair_done_s > fast_link.pair_done_s);
        assert!(slow_link.comm_s > fast_link.comm_s);
    }

    #[test]
    fn busy_fast_agent_hides_transfers() {
        // The fast agent's own task takes 100s; transfers (10 * 1s) finish
        // long before, so comm stall is zero.
        let sim = PairRoundSim {
            n_slow_batches: 10,
            n_fast_batches: 100,
            slow_batch_s: 0.5,
            fast_own_batch_s: 1.0,
            fast_guest_batch_s: 0.2,
            transfer_s: 1.0,
            suffix_return_s: 0.0,
        };
        let t = sim.run();
        assert!(t.comm_s < 1e-9, "transfers fully hidden, got {}", t.comm_s);
        assert!((t.pair_done_s - 102.0).abs() < 1e-9);
    }

    #[test]
    fn zero_guest_batches_is_own_work_only() {
        let sim = PairRoundSim {
            n_slow_batches: 0,
            n_fast_batches: 5,
            slow_batch_s: 1.0,
            fast_own_batch_s: 2.0,
            fast_guest_batch_s: 1.0,
            transfer_s: 1.0,
            suffix_return_s: 0.0,
        };
        let t = sim.run();
        assert_eq!(t.pair_done_s, 10.0);
        assert_eq!(t.slow_busy_s, 0.0);
    }

    #[test]
    fn closed_form_matches_batch_loop() {
        // Sweep bottleneck regimes: production-bound, link-bound,
        // guest-rate-bound, own-task-bound, plus carry-over offsets.
        let mut checked = 0usize;
        for &n in &[1usize, 2, 7, 500] {
            for &a in &[0.01, 0.5, 2.0] {
                for &c in &[0.0, 0.05, 1.0, 3.0] {
                    for &g in &[0.02, 0.4, 2.5] {
                        for &(own, slow_start, fast_start) in
                            &[(0.0, 0.0, 0.0), (40.0, 0.0, 0.0), (3.0, 1.5, 0.25)]
                        {
                            let sim = PairRoundSim {
                                n_slow_batches: n,
                                n_fast_batches: 1,
                                slow_batch_s: a,
                                fast_own_batch_s: own,
                                fast_guest_batch_s: g,
                                transfer_s: c,
                                suffix_return_s: 0.1,
                            };
                            let loop_t = sim.completion_from(c, slow_start, fast_start);
                            let closed = sim.completion_closed_form(c, slow_start, fast_start);
                            assert!(
                                (loop_t - closed).abs() <= 1e-9 * loop_t.max(1.0),
                                "n={n} a={a} c={c} g={g} own={own}: {loop_t} vs {closed}"
                            );
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn closed_form_zero_guests_is_own_task() {
        let sim = PairRoundSim {
            n_slow_batches: 0,
            n_fast_batches: 4,
            slow_batch_s: 1.0,
            fast_own_batch_s: 2.0,
            fast_guest_batch_s: 1.0,
            transfer_s: 1.0,
            suffix_return_s: 0.0,
        };
        assert_eq!(sim.completion_closed_form(1.0, 0.0, 3.0), 11.0);
    }

    #[test]
    fn round_with_hetero_pair_beats_unbalanced() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let agents = vec![
            AgentState::new(AgentId(0), AgentProfile::new(0.25, 50.0), 5000, 100),
            AgentState::new(AgentId(1), AgentProfile::new(2.0, 50.0), 5000, 100),
        ];
        let adj = Adjacency::from_matrix(vec![vec![false, true], vec![true, false]]);
        let world = World::from_parts(agents, adj, 0);
        let pairings = PairingScheduler::new().pair(&world, &[AgentId(0), AgentId(1)], &est);
        let outcome =
            simulate_round(&world, &pairings, &est, &cal, AllReduceAlgorithm::HalvingDoubling);
        // Without balancing, the 0.25-CPU agent would run the full epoch.
        let solo_straggler = est.solo_time_s(world.agent(AgentId(0)));
        assert!(
            outcome.compute_s < solo_straggler * 0.7,
            "{} vs {solo_straggler}",
            outcome.compute_s
        );
        assert_eq!(outcome.num_offloads, 1);
        assert!(outcome.allreduce_s > 0.0);
    }

    #[test]
    fn round_accounts_every_agent() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(10, 5).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let pairings = PairingScheduler::new().pair(&world, &ids, &est);
        let outcome =
            simulate_round(&world, &pairings, &est, &cal, AllReduceAlgorithm::HalvingDoubling);
        assert_eq!(outcome.agent_stats.len(), 10);
        for s in &outcome.agent_stats {
            assert!(s.finish_s <= outcome.compute_s + 1e-9);
            assert!(s.train_s >= 0.0 && s.idle_s >= 0.0 && s.comm_s >= 0.0);
        }
    }

    #[test]
    fn timeline_renders_one_bar_per_agent() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(6, 1).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let pairings = PairingScheduler::new().pair(&world, &ids, &est);
        let outcome =
            simulate_round(&world, &pairings, &est, &cal, AllReduceAlgorithm::HalvingDoubling);
        let text = outcome.render_timeline(40);
        assert_eq!(text.lines().count(), 7, "6 bars + legend:\n{text}");
        assert!(text.contains('#'), "some compute must appear");
    }

    #[test]
    fn solo_agents_have_no_comm() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let agents = vec![
            AgentState::new(AgentId(0), AgentProfile::new(1.0, 50.0), 1000, 100),
            AgentState::new(AgentId(1), AgentProfile::new(1.0, 50.0), 1000, 100),
        ];
        let adj = Adjacency::from_matrix(vec![vec![false, true], vec![true, false]]);
        let world = World::from_parts(agents, adj, 0);
        let pairings = PairingScheduler::new().pair(&world, &[AgentId(0), AgentId(1)], &est);
        let outcome = simulate_round(&world, &pairings, &est, &cal, AllReduceAlgorithm::Ring);
        assert_eq!(outcome.num_offloads, 0);
        assert!(outcome.agent_stats.iter().all(|s| s.comm_s == 0.0));
    }
}
