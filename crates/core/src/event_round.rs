//! The discrete-event round engine.
//!
//! [`EventRound`] executes one training round by scheduling typed
//! [`SimEvent`]s against a shared simulated clock ([`SimDriver`]) instead of
//! evaluating closed-form per-pair formulas. Every pairing becomes a small
//! state machine — the slow side produces activation batches, the link
//! serializes transfers, the helper trains guest batches after its own task
//! — and all pairs interleave on one queue. That shared clock is what the
//! closed-form loop could never express:
//!
//! * **Aggregation modes** ([`AggregationMode`]): the classic synchronous
//!   barrier, a semi-synchronous quorum/staleness trigger where stragglers
//!   miss the round and carry their unfinished work forward, and a fully
//!   asynchronous mode with no barrier at all.
//! * **Mid-round disruptions** ([`Disruption`]): an agent can crash or leave
//!   while a transfer is in flight; the engine re-pairs the orphaned slow
//!   agent onto an idle helper (or falls back to local training) and the
//!   repair is visible in the report.
//! * **Per-agent carry-over**: rounds no longer assume everyone starts at
//!   zero — `ready_at` offsets let semi-sync/async schedules pipeline one
//!   round into the next.
//!
//! The synchronous wrapper [`crate::simulate_round`] now runs on this
//! engine and reproduces the legacy closed-form timings to within 1e-9
//! (covered by `tests/event_engine.rs`).
//!
//! # Example: asynchronous aggregation
//!
//! ```
//! use comdml_core::{AggregationMode, EventRound, PairingScheduler, TrainingTimeEstimator};
//! use comdml_collective::AllReduceAlgorithm;
//! use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
//! use comdml_simnet::WorldConfig;
//!
//! let spec = ModelSpec::resnet56();
//! let profile = SplitProfile::new(&spec, 100);
//! let cal = CostCalibration::default();
//! let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
//! let world = WorldConfig::heterogeneous(10, 42).build();
//! let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
//! let pairings = PairingScheduler::new().pair(&world, &ids, &est);
//!
//! // No barrier: the round advances at the fleet's mean completion and
//! // stragglers carry their unfinished tail into the next round.
//! let algo = AllReduceAlgorithm::HalvingDoubling;
//! let async_run = EventRound::new(&world, &pairings, &est, &cal, algo)
//!     .mode(AggregationMode::Asynchronous)
//!     .run();
//! let sync_run = EventRound::new(&world, &pairings, &est, &cal, algo).run();
//! assert!(async_run.outcome.round_s() <= sync_run.outcome.round_s() + 1e-9);
//! assert!(async_run.spill_s.iter().any(|&s| s > 0.0), "someone finishes after the mean");
//! ```

use std::collections::HashMap;

use comdml_collective::{AllReduceAlgorithm, CollectiveCost};
use comdml_cost::CostCalibration;
use comdml_simnet::{AgentId, SimDriver, SimEvent, World};

use crate::{
    AgentRoundStats, PairRoundSim, Pairing, RoundOutcome, RoundProgress, TrainingTimeEstimator,
};

/// When a round aggregates relative to its participants' task completions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AggregationMode {
    /// Global barrier: aggregation starts once every participant finished
    /// (the paper's §IV-B schedule).
    #[default]
    Synchronous,
    /// Aggregation starts once `quorum` of the participants finished, or
    /// `staleness_s` seconds after the first finisher — whichever comes
    /// first. Stragglers miss the aggregation and carry their unfinished
    /// work into the next round.
    SemiSynchronous {
        /// Fraction of participants that triggers aggregation, in (0, 1].
        quorum: f64,
        /// Upper bound on how long the first finisher waits, seconds.
        staleness_s: f64,
    },
    /// No barrier: each agent proceeds the moment its own task completes and
    /// exchanges models opportunistically over its own link. The round
    /// advances at the fleet's mean completion time.
    Asynchronous,
}

/// How finely the round engine discretizes each pairing's pipeline.
///
/// The fine granularity schedules one `BatchProduced`/`TransferComplete`
/// pair of events per activation batch — necessary when a disruption can
/// strike mid-pipeline, but O(batches) heap traffic per pairing. The coarse
/// granularity collapses an *undisrupted* pairing into a single
/// [`SimEvent::PairDone`] scheduled from the max-plus closed form of the
/// pipeline (helper-task, first-batch, production and link bottlenecks),
/// falling back to fine-grained events only for pairings whose members are
/// targeted by an injected failure or leave. With no disruptions the two
/// granularities agree to within 1e-9 (covered by `tests/fleet_churn.rs`);
/// coarse is what makes 10k agents × hundreds of batches per agent
/// tractable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventGranularity {
    /// One event per activation batch (exact event-by-event pipeline).
    #[default]
    Fine,
    /// One closed-form `PairDone` event per undisrupted pairing; disrupted
    /// pairings still run fine-grained.
    Coarse,
}

/// A scripted fleet-membership disruption injected into the round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Disruption {
    /// `agent` crash-stops at `at_s`: in-flight guest work is lost and its
    /// pair re-pairs or falls back to local training.
    Fail {
        /// The failing agent.
        agent: AgentId,
        /// Failure instant, simulated seconds.
        at_s: f64,
    },
    /// `agent` leaves gracefully at `at_s`: same re-pairing path as a crash
    /// but the agent is not marked failed in the timeline.
    Leave {
        /// The leaving agent.
        agent: AgentId,
        /// Departure instant, simulated seconds.
        at_s: f64,
    },
    /// `agent` joins the fleet at `at_s` and becomes eligible as a
    /// replacement helper for re-pairing from that instant.
    Join {
        /// The joining agent (must exist in the world).
        agent: AgentId,
        /// Join instant, simulated seconds.
        at_s: f64,
    },
}

/// Everything one event-driven round produced.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRoundReport {
    /// The classic per-round outcome (timings, per-agent stats).
    pub outcome: RoundOutcome,
    /// Agents included in this round's aggregation, sorted.
    pub cohort: Vec<AgentId>,
    /// Per-agent carry-over into the next round, indexed by agent id:
    /// seconds of work still running when the round ended.
    pub spill_s: Vec<f64>,
    /// Number of successful helper re-pairings after failures/leaves.
    pub repairs: usize,
    /// Number of slow agents that fell back to finishing locally after
    /// losing their helper with no replacement available.
    pub local_fallbacks: usize,
    /// When the round ended (aggregation done), simulated seconds.
    pub round_end_s: f64,
    /// Whether each agent (indexed by id) was a participant that finished
    /// its task this round; false for agents that failed, left mid-task, or
    /// never participated.
    pub finished: Vec<bool>,
    /// Events the driver executed for this round — the cost metric the
    /// coarse granularity shrinks and the benchmark JSON reports.
    pub events_processed: u64,
}

impl EventRoundReport {
    /// Learning efficiency of this round in effective rounds per round,
    /// under a FedBuff-style staleness discount ([`crate::staleness_weight`]).
    ///
    /// Each participant contributes weight 1 when its update arrived fresh
    /// (no spill past the aggregation), `(1 + s)^(-decay)` when it arrived
    /// `s` rounds stale (spill normalized by this round's duration), and 0
    /// when it never finished (failed or left mid-task). The mean over
    /// participants is the factor by which this round advances the learning
    /// curve: a synchronous barrier yields exactly 1; semi-synchronous
    /// quorums and asynchronous rounds yield less, which is what makes the
    /// accuracy-vs-time trade-off of the aggregation modes diverge. A round
    /// with no participants advanced nothing and yields 0.
    pub fn efficiency(&self, staleness_decay: f64) -> f64 {
        let n = self.outcome.agent_stats.len();
        if n == 0 {
            return 0.0;
        }
        let dur = self.round_end_s.max(1e-12);
        let sum: f64 = self
            .outcome
            .agent_stats
            .iter()
            .map(|s| {
                if !self.finished.get(s.id.0).copied().unwrap_or(false) {
                    return 0.0;
                }
                let spill = self.spill_s.get(s.id.0).copied().unwrap_or(0.0);
                crate::staleness_weight(spill / dur, staleness_decay)
            })
            .sum();
        sum / n as f64
    }

    /// The round's effective-progress inputs for [`crate::LearningModel`]:
    /// realized duration, staleness-weighted efficiency, participant and
    /// cohort counts, and the number of departures that actually disrupted
    /// training (orphaned pairs, whether re-paired or fallen back to local
    /// training).
    pub fn progress(&self, staleness_decay: f64) -> RoundProgress {
        RoundProgress {
            round_s: self.round_end_s.max(0.0),
            efficiency: self.efficiency(staleness_decay),
            participants: self.outcome.agent_stats.len(),
            cohort: self.cohort.len(),
            disruptions: self.repairs + self.local_fallbacks,
        }
    }
}

/// Executes a barrier round for engines without pairing on the shared event
/// clock: one [`SimEvent::AgentDone`] per participant at its task time, an
/// [`SimEvent::AggregateStart`] once the last finisher arrives, and the
/// matching [`SimEvent::AggregateDone`] `aggregation_s` later. Returns the
/// round's total simulated seconds.
///
/// Every baseline `RoundEngine` (FedAvg, AllReduce-DML, BrainTorrent, …)
/// routes its synchronized phases through here, so ComDML and the baselines
/// share one simulation substrate.
pub fn barrier_round_s(times: &[(AgentId, f64)], aggregation_s: f64) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    let k = times.iter().map(|&(id, _)| id.0).max().expect("non-empty") + 1;
    let mut driver = SimDriver::new(k);
    for &(id, t) in times {
        driver.record_busy(id, t);
        driver.schedule_at(t, SimEvent::AgentDone { agent: id });
    }
    let mut remaining = times.len();
    while let Some((now, event)) = driver.next() {
        match event {
            SimEvent::AgentDone { agent } => {
                driver.mark_done(agent, now);
                remaining -= 1;
                if remaining == 0 {
                    driver.schedule_at(now, SimEvent::AggregateStart);
                }
            }
            SimEvent::AggregateStart => {
                driver.schedule_at(now + aggregation_s, SimEvent::AggregateDone)
            }
            _ => {}
        }
    }
    driver.now()
}

/// Executes a barrier-free round on the event clock and returns the mean
/// completion time — the round cost of gossip-style engines where every
/// agent proceeds at its own pace.
pub fn mean_round_s(times: &[(AgentId, f64)]) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    let k = times.iter().map(|&(id, _)| id.0).max().expect("non-empty") + 1;
    let mut driver = SimDriver::new(k);
    for &(id, t) in times {
        driver.record_busy(id, t);
        driver.schedule_at(t, SimEvent::AgentDone { agent: id });
    }
    let mut total = 0.0;
    while let Some((now, event)) = driver.next() {
        if let SimEvent::AgentDone { agent } = event {
            driver.mark_done(agent, now);
            total += now;
        }
    }
    total / times.len() as f64
}

/// Sentinel for "agent belongs to no pairing" in the dense pair index.
const NO_PAIR: usize = usize::MAX;

/// Per-pair runtime state of the event pipeline.
#[derive(Debug, Clone)]
struct PairState {
    slow: AgentId,
    fast: Option<AgentId>,
    offload: usize,
    sim: PairRoundSim,
    /// When each side may start (carry-over offsets).
    slow_start: f64,
    fast_start: f64,
    /// Batches produced by the slow side so far.
    produced: usize,
    /// Next batch index to put on the link.
    next_transfer: usize,
    /// Whether a transfer is currently occupying the link, and when it lands.
    transfer_in_flight: bool,
    inflight_due: f64,
    /// Guest batches fully trained by the helper, with completion times.
    guest_done_times: Vec<f64>,
    /// Helper availability horizon (own task, then guest batches serially).
    helper_free: f64,
    /// Set when the pair's work is fully done (suffix returned or solo end).
    done: bool,
    /// The slow side crashed/left: stop producing.
    slow_gone: bool,
}

impl PairState {
    fn is_offloading(&self) -> bool {
        self.fast.is_some() && self.offload > 0
    }
}

/// The initial event a prepared pair schedules, computed (possibly on a
/// worker thread) before any driver state is touched. Applying these in
/// pairing-index order reproduces the sequential schedule exactly — same
/// busy accounting, same event sequence numbers — which is why the batch
/// preparation can fan out across threads without moving a single event.
#[derive(Debug, Clone, Copy)]
enum InitialEvent {
    /// Degenerate offloading pair with no prefix batches: only the suffix
    /// return is left.
    Suffix { at: f64 },
    /// Undisrupted coarse pair: one closed-form `PairDone`, with the guest
    /// work pre-accounted to the helper.
    PairDone { at: f64, guest_busy: f64 },
    /// Fine-grained pair: the first `BatchProduced`.
    FirstBatch { at: f64 },
    /// Solo task: `AgentDone` at its local completion.
    Solo { at: f64 },
}

/// Builder/driver for one event-driven round. See the module docs for an
/// example.
#[derive(Debug)]
pub struct EventRound<'a> {
    world: &'a World,
    pairings: &'a [Pairing],
    estimator: &'a TrainingTimeEstimator<'a>,
    cal: &'a CostCalibration,
    algorithm: AllReduceAlgorithm,
    mode: AggregationMode,
    granularity: EventGranularity,
    disruptions: Vec<Disruption>,
    ready_at: HashMap<AgentId, f64>,
    threads: usize,
}

impl<'a> EventRound<'a> {
    /// Starts building a round over `pairings` (synchronous barrier, no
    /// disruptions, everyone ready at t=0).
    pub fn new(
        world: &'a World,
        pairings: &'a [Pairing],
        estimator: &'a TrainingTimeEstimator<'a>,
        cal: &'a CostCalibration,
        algorithm: AllReduceAlgorithm,
    ) -> Self {
        Self {
            world,
            pairings,
            estimator,
            cal,
            algorithm,
            mode: AggregationMode::Synchronous,
            granularity: EventGranularity::Fine,
            disruptions: Vec::new(),
            ready_at: HashMap::new(),
            threads: 1,
        }
    }

    /// Selects the aggregation mode.
    pub fn mode(mut self, mode: AggregationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the event granularity (see [`EventGranularity`]).
    pub fn granularity(mut self, granularity: EventGranularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Injects scripted failures/leaves/joins.
    pub fn disruptions(mut self, disruptions: Vec<Disruption>) -> Self {
        self.disruptions = disruptions;
        self
    }

    /// Per-agent start offsets carried over from the previous round.
    pub fn ready_at(mut self, ready: HashMap<AgentId, f64>) -> Self {
        self.ready_at = ready;
        self
    }

    /// Number of threads used to *prepare* pair pipelines (closed forms,
    /// split lookups, busy accounting) before the event loop runs. The
    /// prepared batches are applied to the driver sequentially in pairing
    /// order, so every event sequence number — and therefore every report
    /// and digest — is identical for any thread count. Values ≤ 1 prepare
    /// inline.
    pub fn pair_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    fn ready(&self, id: AgentId) -> f64 {
        self.ready_at.get(&id).copied().unwrap_or(0.0)
    }

    /// Prepares every pair's pipeline state and initial event. The numeric
    /// work (split lookups, closed forms) fans out across `threads` in
    /// contiguous index chunks; chunk results are concatenated back in
    /// pairing order, so the caller applies exactly the sequence a
    /// single-threaded pass would produce.
    fn prepare_pairs(&self, disrupted: &[bool]) -> Vec<(PairState, InitialEvent)> {
        // Below this many pairs per worker, spawning costs more than the
        // preparation itself.
        const MIN_CHUNK: usize = 64;
        let n = self.pairings.len();
        if self.threads <= 1 || n < 2 * MIN_CHUNK {
            return self.pairings.iter().map(|p| self.prepare_pair(p, disrupted)).collect();
        }
        let chunk = n.div_ceil(self.threads).max(MIN_CHUNK);
        let mut out = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .pairings
                .chunks(chunk)
                .map(|c| {
                    s.spawn(move || {
                        c.iter().map(|p| self.prepare_pair(p, disrupted)).collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("pair preparation panicked"));
            }
        });
        out
    }

    /// Builds one pair's pipeline state mirroring the closed-form
    /// [`PairRoundSim`] parameters exactly, plus the initial event it will
    /// schedule.
    fn prepare_pair(&self, p: &Pairing, disrupted: &[bool]) -> (PairState, InitialEvent) {
        let state = {
            let slow = self.world.agent(p.slow);
            let (fast, sim) = match p.fast {
                Some(fast_id) if p.offload > 0 => {
                    let fast = self.world.agent(fast_id);
                    let entry = self
                        .estimator
                        .profile()
                        .entry(p.offload)
                        .expect("scheduler only emits profiled offloads");
                    let p_i = self.estimator.batches_per_s(slow);
                    let p_j = self.estimator.batches_per_s(fast);
                    let link = self.world.link_mbps(p.slow, fast_id);
                    let sim = PairRoundSim {
                        n_slow_batches: slow.num_batches(),
                        n_fast_batches: fast.num_batches(),
                        slow_batch_s: entry.t_slow_rel / p_i,
                        fast_own_batch_s: 1.0 / p_j,
                        fast_guest_batch_s: entry.t_fast_rel / p_j,
                        transfer_s: self.cal.transfer_time_s(entry.nu_bytes_per_batch, link),
                        suffix_return_s: self.cal.transfer_time_s(entry.suffix_param_bytes, link),
                    };
                    (Some(fast_id), sim)
                }
                _ => {
                    // Solo task: a degenerate pipeline with no guest
                    // batches whose "own task" is the whole local epoch.
                    let solo = self.estimator.solo_time_s(slow);
                    let sim = PairRoundSim {
                        n_slow_batches: 0,
                        n_fast_batches: 1,
                        slow_batch_s: 0.0,
                        fast_own_batch_s: solo,
                        fast_guest_batch_s: 0.0,
                        transfer_s: 0.0,
                        suffix_return_s: 0.0,
                    };
                    (None, sim)
                }
            };
            let slow_start = self.ready(p.slow);
            let fast_start = fast.map(|f| self.ready(f)).unwrap_or(slow_start);
            PairState {
                slow: p.slow,
                fast,
                offload: p.offload,
                slow_start,
                fast_start,
                helper_free: fast_start + sim.n_fast_batches as f64 * sim.fast_own_batch_s,
                sim,
                produced: 0,
                next_transfer: 0,
                transfer_in_flight: false,
                inflight_due: 0.0,
                guest_done_times: Vec::new(),
                done: false,
                slow_gone: false,
            }
        };
        let init = match state.fast {
            Some(fast_id) => {
                let coarse = self.granularity == EventGranularity::Coarse
                    && !disrupted[state.slow.0]
                    && !disrupted[fast_id.0];
                if state.sim.n_slow_batches == 0 {
                    InitialEvent::Suffix { at: state.helper_free + state.sim.suffix_return_s }
                } else if coarse {
                    let done = state.sim.completion_closed_form(
                        state.sim.transfer_s,
                        state.slow_start,
                        state.fast_start,
                    ) + state.sim.suffix_return_s;
                    InitialEvent::PairDone {
                        at: done,
                        guest_busy: state.sim.n_slow_batches as f64 * state.sim.fast_guest_batch_s,
                    }
                } else {
                    InitialEvent::FirstBatch { at: state.slow_start + state.sim.slow_batch_s }
                }
            }
            None => InitialEvent::Solo { at: state.helper_free },
        };
        (state, init)
    }

    /// Runs the round to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics if a pairing references an agent outside the world.
    pub fn run(self) -> EventRoundReport {
        let setup_timer = comdml_obs::phase("round.setup");
        let k = self.world.num_agents();
        let mut driver = SimDriver::new(k);

        // Agents targeted by a failure/leave: their pairings must run
        // fine-grained so the disruption can strike mid-pipeline.
        let mut disrupted = vec![false; k];
        for d in &self.disruptions {
            if let Disruption::Fail { agent, .. } | Disruption::Leave { agent, .. } = *d {
                if agent.0 < k {
                    disrupted[agent.0] = true;
                }
            }
        }

        // Prepare every pair's pipeline (the per-pair numeric work, fanned
        // out across `pair_threads`), then apply the batches sequentially
        // in pairing order so the event schedule is thread-count invariant.
        let prepare_timer = comdml_obs::phase("round.parallel_pairs");
        let prepared = self.prepare_pairs(&disrupted);
        drop(prepare_timer);
        let mut pairs: Vec<PairState> = Vec::with_capacity(prepared.len());
        let mut inits: Vec<InitialEvent> = Vec::with_capacity(prepared.len());
        for (state, init) in prepared {
            pairs.push(state);
            inits.push(init);
        }

        let mut pair_of: Vec<usize> = vec![NO_PAIR; k];
        let mut participant = vec![false; k];
        // The participant id list mirrors the `participant` flags so
        // cohort assembly stays O(participants), not O(world).
        let mut participant_ids: Vec<AgentId> = Vec::with_capacity(2 * pairs.len());
        for (idx, p) in pairs.iter().enumerate() {
            pair_of[p.slow.0] = idx;
            if !participant[p.slow.0] {
                participant_ids.push(p.slow);
            }
            participant[p.slow.0] = true;
            if let Some(f) = p.fast {
                pair_of[f.0] = idx;
                if !participant[f.0] {
                    participant_ids.push(f);
                }
                participant[f.0] = true;
            }
        }
        let expected_agents: usize = participant_ids.len();
        let mut remaining_tasks = expected_agents;
        let mut done_participants = 0usize;

        // Apply the prepared batches: busy accounting mirrors the closed
        // form (the slow side computes all prefix batches, the helper its
        // own task plus guest work — per event on the fine path, up front
        // on the coarse path), and each pair schedules its initial event.
        for (idx, (p, init)) in pairs.iter().zip(&inits).enumerate() {
            match *init {
                InitialEvent::Solo { at } => {
                    driver.record_busy(p.slow, p.sim.fast_own_batch_s);
                    driver.schedule_at(at, SimEvent::AgentDone { agent: p.slow });
                }
                offloading => {
                    let fast_id = p.fast.expect("offloading init implies a helper");
                    driver.record_busy(p.slow, p.sim.n_slow_batches as f64 * p.sim.slow_batch_s);
                    driver
                        .record_busy(fast_id, p.sim.n_fast_batches as f64 * p.sim.fast_own_batch_s);
                    match offloading {
                        InitialEvent::Suffix { at } => {
                            driver.schedule_at(at, SimEvent::SuffixReturn { pair: idx });
                        }
                        InitialEvent::PairDone { at, guest_busy } => {
                            driver.record_busy(fast_id, guest_busy);
                            driver.schedule_at(at, SimEvent::PairDone { pair: idx });
                        }
                        InitialEvent::FirstBatch { at } => {
                            driver.schedule_at(at, SimEvent::BatchProduced { pair: idx, batch: 0 });
                        }
                        InitialEvent::Solo { .. } => unreachable!("matched above"),
                    }
                }
            }
        }
        for d in &self.disruptions {
            match *d {
                Disruption::Fail { agent, at_s } | Disruption::Leave { agent, at_s } => {
                    driver.schedule_at(at_s, SimEvent::AgentFail { agent });
                }
                Disruption::Join { agent, at_s } => {
                    driver.schedule_at(at_s, SimEvent::AgentJoin { agent });
                }
            }
        }
        // Crash vs graceful departure, for timeline bookkeeping.
        let crashes: HashMap<AgentId, bool> = self
            .disruptions
            .iter()
            .filter_map(|d| match *d {
                Disruption::Fail { agent, .. } => Some((agent, true)),
                Disruption::Leave { agent, .. } => Some((agent, false)),
                Disruption::Join { .. } => None,
            })
            .collect();

        let mut gone = vec![false; k];
        let mut joined_pool: Vec<AgentId> = Vec::new();
        // Participants that reached done, in finish order (re-tasked agents
        // can appear twice) — the repair path's candidate pool, so helper
        // replacement never scans the whole world.
        let mut finished_pool: Vec<AgentId> = Vec::new();
        let mut repairs = 0usize;
        let mut local_fallbacks = 0usize;
        let mut aggregate_scheduled = false;
        let mut aggregate_started = false;
        let mut trigger_time: Option<f64> = None;
        let mut cohort: Vec<AgentId> = Vec::new();
        let mut allreduce_s = 0.0f64;
        let mut round_end: Option<f64> = None;
        let quorum_needed = match self.mode {
            AggregationMode::SemiSynchronous { quorum, .. } => {
                ((quorum.clamp(0.0, 1.0) * expected_agents as f64).ceil() as usize).max(1)
            }
            _ => expected_agents,
        };

        // Wall-clock the event loop only when observability is on: with it
        // off, no `Instant::now` runs on this hot path (the zero-overhead
        // contract `scalability_10k` pins).
        drop(setup_timer);
        let loop_start =
            if comdml_obs::metrics_enabled() { Some(std::time::Instant::now()) } else { None };

        while let Some((now, event)) = driver.next() {
            match event {
                SimEvent::BatchProduced { pair, batch } => {
                    let p = &mut pairs[pair];
                    if p.done || p.slow_gone {
                        continue;
                    }
                    p.produced = batch + 1;
                    if batch + 1 < p.sim.n_slow_batches {
                        // Production times are anchored multiplicatively so
                        // event timing matches the closed form bit-for-bit.
                        driver.schedule_at(
                            p.slow_start + (batch + 2) as f64 * p.sim.slow_batch_s,
                            SimEvent::BatchProduced { pair, batch: batch + 1 },
                        );
                    }
                    Self::start_transfer_if_idle(&mut driver, p, pair);
                }
                SimEvent::TransferComplete { pair, batch } => {
                    let p = &mut pairs[pair];
                    // Stale events (scheduled before a repair rewired the
                    // pair) are ignored.
                    if p.done
                        || !p.transfer_in_flight
                        || batch + 1 != p.next_transfer
                        || now != p.inflight_due
                    {
                        continue;
                    }
                    p.transfer_in_flight = false;
                    let Some(fast_id) = p.fast else { continue };
                    if gone[fast_id.0] {
                        continue; // the helper died with this batch in flight
                    }
                    // Helper trains guest batches serially after its own task.
                    let guest_start = now.max(p.helper_free);
                    p.helper_free = guest_start + p.sim.fast_guest_batch_s;
                    driver.record_busy(fast_id, p.sim.fast_guest_batch_s);
                    p.guest_done_times.push(p.helper_free);
                    if p.guest_done_times.len() == p.sim.n_slow_batches {
                        driver.schedule_at(
                            p.helper_free + p.sim.suffix_return_s,
                            SimEvent::SuffixReturn { pair },
                        );
                    } else {
                        Self::start_transfer_if_idle(&mut driver, p, pair);
                    }
                }
                SimEvent::PairDone { pair } => {
                    // Coarse-granularity completion: the closed form already
                    // collapsed the whole pipeline, so this mirrors the tail
                    // of the SuffixReturn arm. Coarse pairs are never
                    // disrupted by construction; the `gone` guards only
                    // protect against exotic hand-scheduled combinations.
                    let p = &mut pairs[pair];
                    if p.done {
                        continue;
                    }
                    p.done = true;
                    let fast_id = p.fast.expect("coarse events only on offloading pairs");
                    let ideal = p.sim.completion_closed_form(0.0, p.slow_start, p.fast_start);
                    let real = now - p.sim.suffix_return_s;
                    driver.record_comm(fast_id, (real - ideal).max(0.0) + p.sim.suffix_return_s);
                    if !gone[p.slow.0] {
                        driver.schedule_at(now, SimEvent::AgentDone { agent: p.slow });
                    }
                    if !gone[fast_id.0] {
                        driver.schedule_at(now, SimEvent::AgentDone { agent: fast_id });
                    }
                }
                SimEvent::SuffixReturn { pair } => {
                    let p = &mut pairs[pair];
                    if p.done {
                        continue;
                    }
                    p.done = true;
                    let fast_id = p.fast.expect("suffix returns only on offloading pairs");
                    // Communication accounting matches the closed form: the
                    // counterfactual stall vs an infinitely fast link, plus
                    // the suffix return, attributed to the helper.
                    let ideal = p.sim.completion_from(0.0, p.slow_start, p.fast_start);
                    let real = now - p.sim.suffix_return_s;
                    driver.record_comm(fast_id, (real - ideal).max(0.0) + p.sim.suffix_return_s);
                    if !gone[p.slow.0] {
                        driver.schedule_at(now, SimEvent::AgentDone { agent: p.slow });
                    }
                    if !gone[fast_id.0] {
                        driver.schedule_at(now, SimEvent::AgentDone { agent: fast_id });
                    }
                }
                SimEvent::AgentDone { agent } => {
                    if gone[agent.0] || driver.timeline(agent).done {
                        continue;
                    }
                    let idx = pair_of[agent.0];
                    if idx != NO_PAIR {
                        // A solo task is complete the moment its agent is.
                        if pairs[idx].fast.is_none() {
                            pairs[idx].done = true;
                        }
                    }
                    driver.mark_done(agent, now);
                    finished_pool.push(agent);
                    remaining_tasks = remaining_tasks.saturating_sub(1);
                    done_participants += 1;
                    match self.mode {
                        AggregationMode::Synchronous => {
                            if remaining_tasks == 0 && !aggregate_scheduled {
                                aggregate_scheduled = true;
                                driver.schedule_at(now, SimEvent::AggregateStart);
                            }
                        }
                        AggregationMode::SemiSynchronous { staleness_s, .. } => {
                            if !aggregate_started {
                                if done_participants == 1 {
                                    // The first finisher arms the staleness
                                    // deadline.
                                    driver.schedule_at(
                                        now + staleness_s.max(0.0),
                                        SimEvent::AggregateStart,
                                    );
                                }
                                if done_participants >= quorum_needed || remaining_tasks == 0 {
                                    driver.schedule_at(now, SimEvent::AggregateStart);
                                }
                            }
                        }
                        AggregationMode::Asynchronous => {}
                    }
                }
                SimEvent::AggregateStart => {
                    if aggregate_started {
                        continue; // quorum and deadline may both fire
                    }
                    aggregate_started = true;
                    trigger_time = Some(now);
                    // Ascending-id cohort, exactly the old 0..k sweep's
                    // output: participant ids are unique, so sorting them
                    // and filtering matches the full-world scan bit for
                    // bit at O(participants) cost.
                    cohort = {
                        let mut ids = participant_ids.clone();
                        ids.sort_unstable();
                        ids.retain(|&id| {
                            driver.timeline(id).done
                                && !gone[id.0]
                                && self.world.agent(id).profile.is_connected()
                        });
                        ids
                    };
                    allreduce_s = if cohort.len() > 1 {
                        // Collectives ride the *effective* uplink so a
                        // diurnal bandwidth trough slows the allreduce too.
                        let min_link = cohort
                            .iter()
                            .map(|&id| self.world.uplink_mbps(id))
                            .fold(f64::INFINITY, f64::min);
                        let cost = CollectiveCost::new(
                            self.algorithm,
                            cohort.len(),
                            self.estimator.profile().model_bytes(),
                        );
                        cost.time_s(self.cal.bytes_per_s(min_link), self.cal.link_latency_s)
                    } else {
                        0.0
                    };
                    driver.schedule_at(now + allreduce_s, SimEvent::AggregateDone);
                }
                SimEvent::AggregateDone => {
                    round_end = Some(now);
                    // Stragglers keep draining; the loop continues so their
                    // finish times (and spill) are recorded.
                }
                SimEvent::AgentFail { agent } => {
                    if gone[agent.0] {
                        continue;
                    }
                    gone[agent.0] = true;
                    if crashes.get(&agent).copied().unwrap_or(true) {
                        driver.mark_failed(agent);
                    }
                    let idx = pair_of[agent.0];
                    if idx == NO_PAIR {
                        continue;
                    }
                    if !driver.timeline(agent).done {
                        remaining_tasks = remaining_tasks.saturating_sub(1);
                    }
                    if !pairs[idx].done {
                        if pairs[idx].fast == Some(agent) {
                            let (repaired, fell_back) = Self::handle_helper_loss(
                                &mut driver,
                                self.world,
                                self.estimator,
                                self.cal,
                                &mut pairs,
                                idx,
                                now,
                                &gone,
                                &joined_pool,
                                &finished_pool,
                                &mut pair_of,
                                &mut participant,
                                &mut participant_ids,
                                &mut remaining_tasks,
                                &mut done_participants,
                            );
                            repairs += repaired as usize;
                            local_fallbacks += fell_back as usize;
                        } else if pairs[idx].slow == agent {
                            let p = &mut pairs[idx];
                            p.slow_gone = true;
                            p.done = true;
                            if let Some(fast_id) = p.fast.filter(|f| !gone[f.0]) {
                                // The helper keeps its own task; guest work
                                // already trained is simply discarded.
                                let own_end = p.fast_start
                                    + p.sim.n_fast_batches as f64 * p.sim.fast_own_batch_s;
                                let finish = own_end
                                    .max(p.guest_done_times.last().copied().unwrap_or(0.0))
                                    .max(now);
                                driver.schedule_at(finish, SimEvent::AgentDone { agent: fast_id });
                            }
                        }
                    }
                    if remaining_tasks == 0
                        && !aggregate_scheduled
                        && !aggregate_started
                        && matches!(self.mode, AggregationMode::Synchronous)
                    {
                        aggregate_scheduled = true;
                        driver.schedule_at(now, SimEvent::AggregateStart);
                    }
                }
                SimEvent::AgentJoin { agent } => {
                    // Joiners idle until a re-pair claims them; they are not
                    // participants and never enter the aggregation cohort on
                    // their own.
                    joined_pool.push(agent);
                    driver.mark_done(agent, now);
                }
                SimEvent::AgentLeave { agent } => {
                    // Disruption scheduling routes leaves through AgentFail;
                    // a directly injected Leave behaves identically.
                    driver.schedule_at(now, SimEvent::AgentFail { agent });
                }
            }
        }

        if let Some(start) = loop_start {
            let ms = start.elapsed().as_secs_f64() * 1e3;
            comdml_obs::observe_ms("round.events", ms);
            if ms > 0.0 {
                comdml_obs::gauge_set(
                    "simnet.events_per_s",
                    driver.events_processed() as f64 / (ms / 1e3),
                );
            }
        }
        driver.publish_metrics();

        let report_timer = comdml_obs::phase("round.report");
        let report = self.finish(
            driver,
            pairs,
            &participant,
            cohort,
            allreduce_s,
            trigger_time,
            round_end,
            repairs,
            local_fallbacks,
        );
        drop(report_timer);
        report
    }

    /// If the pair's link is idle and a produced batch is waiting, put it on
    /// the wire.
    fn start_transfer_if_idle(driver: &mut SimDriver, p: &mut PairState, idx: usize) {
        if p.transfer_in_flight || p.next_transfer >= p.produced || p.done {
            return;
        }
        let batch = p.next_transfer;
        p.next_transfer += 1;
        p.transfer_in_flight = true;
        p.inflight_due = driver.now() + p.sim.transfer_s;
        driver.schedule_at(p.inflight_due, SimEvent::TransferComplete { pair: idx, batch });
    }

    /// The helper of pair `idx` vanished: try to re-pair onto an idle agent,
    /// otherwise let the slow side finish the suffix locally.
    ///
    /// Returns `(repaired, local_fallback)`.
    #[allow(clippy::too_many_arguments)]
    fn handle_helper_loss(
        driver: &mut SimDriver,
        world: &World,
        estimator: &TrainingTimeEstimator<'_>,
        cal: &CostCalibration,
        pairs: &mut [PairState],
        idx: usize,
        now: f64,
        gone: &[bool],
        joined_pool: &[AgentId],
        finished_pool: &[AgentId],
        pair_of: &mut [usize],
        participant: &mut [bool],
        participant_ids: &mut Vec<AgentId>,
        remaining_tasks: &mut usize,
        done_participants: &mut usize,
    ) -> (bool, bool) {
        let trained = pairs[idx].guest_done_times.iter().filter(|&&t| t <= now).count();
        let slow_id = pairs[idx].slow;
        // Idle candidates: agents whose whole pair already finished, plus
        // mid-round joiners — alive and reachable from the slow agent.
        // The repair only ever takes the fastest candidate (ties to the
        // lower id), so a single argmax pass over the finished pool picks
        // exactly the head of the sorted candidate list this used to
        // build from a full-world sweep — O(finished), not O(world).
        let mut best: Option<(f64, AgentId)> = None;
        let consider = |id: AgentId, best: &mut Option<(f64, AgentId)>| {
            let speed = estimator.batches_per_s(world.agent(id));
            let better = match *best {
                None => true,
                Some((top, top_id)) => speed > top || (speed == top && id < top_id),
            };
            if better {
                *best = Some((speed, id));
            }
        };
        for &id in finished_pool {
            if id != slow_id
                && !gone[id.0]
                && driver.timeline(id).done
                && world.link_mbps(slow_id, id) > 0.0
                && (pair_of[id.0] == NO_PAIR || pairs[pair_of[id.0]].done)
            {
                consider(id, &mut best);
            }
        }
        for &id in joined_pool {
            if !gone[id.0] && world.link_mbps(slow_id, id) > 0.0 {
                consider(id, &mut best);
            }
        }

        let p = &mut pairs[idx];
        let remaining = p.sim.n_slow_batches - trained;
        if remaining == 0 {
            // Everything was already trained; only the suffix return was
            // lost. The slow agent proceeds as if it arrived now.
            p.done = true;
            driver.schedule_at(now, SimEvent::AgentDone { agent: slow_id });
            return (false, false);
        }
        let entry = estimator.profile().entry(p.offload).expect("pair kept its profiled offload");

        if let Some((_, replacement)) = best {
            // Re-pair: the replacement hosts the remaining batches over its
            // own link; transferred-but-untrained batches are re-sent.
            let link = world.link_mbps(slow_id, replacement);
            let p_j = estimator.batches_per_s(world.agent(replacement));
            p.fast = Some(replacement);
            p.sim.fast_guest_batch_s = entry.t_fast_rel / p_j;
            p.sim.transfer_s = cal.transfer_time_s(entry.nu_bytes_per_batch, link);
            p.sim.suffix_return_s = cal.transfer_time_s(entry.suffix_param_bytes, link);
            p.guest_done_times.truncate(trained);
            p.next_transfer = trained;
            p.transfer_in_flight = false;
            p.helper_free = now.max(driver.timeline(replacement).finish_s);
            // A previously finished participant goes back to work: it must
            // not keep counting toward a semi-synchronous quorum until it
            // finishes again.
            if participant[replacement.0] && driver.timeline(replacement).done {
                *done_participants = done_participants.saturating_sub(1);
            }
            pair_of[replacement.0] = idx;
            if !participant[replacement.0] {
                participant_ids.push(replacement);
            }
            participant[replacement.0] = true;
            // The replacement picks up a fresh task: it must finish again.
            driver.mark_active(replacement);
            *remaining_tasks += 1;
            Self::start_transfer_if_idle(driver, p, idx);
            (true, false)
        } else {
            // No helper available: the slow agent trains the remaining
            // suffix batches itself at its own (slower) suffix rate, after
            // it finishes producing the prefix batches.
            let p_i = estimator.batches_per_s(world.agent(slow_id));
            let local_batch_s = entry.t_fast_rel / p_i;
            let production_end = p.slow_start + p.sim.n_slow_batches as f64 * p.sim.slow_batch_s;
            let finish = now.max(production_end) + remaining as f64 * local_batch_s;
            driver.record_busy(slow_id, remaining as f64 * local_batch_s);
            p.done = true;
            p.fast = None;
            driver.schedule_at(finish, SimEvent::AgentDone { agent: slow_id });
            (false, true)
        }
    }

    /// Converts driver timelines into the classic [`RoundOutcome`] plus the
    /// event-only extras.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        self,
        driver: SimDriver,
        pairs: Vec<PairState>,
        participant: &[bool],
        cohort: Vec<AgentId>,
        allreduce_s: f64,
        trigger_time: Option<f64>,
        round_end: Option<f64>,
        repairs: usize,
        local_fallbacks: usize,
    ) -> EventRoundReport {
        let timelines = driver.timelines();
        let live_finishes: Vec<f64> = timelines
            .iter()
            .enumerate()
            .filter(|&(i, t)| participant[i] && t.done)
            .map(|(_, t)| t.finish_s)
            .collect();
        let makespan = live_finishes.iter().fold(0.0f64, |a, &b| a.max(b));

        let (compute_s, allreduce_s, cohort, round_end_s) = match self.mode {
            AggregationMode::Synchronous | AggregationMode::SemiSynchronous { .. } => {
                let compute = trigger_time.unwrap_or(makespan);
                let end = round_end.unwrap_or(compute + allreduce_s);
                (compute, allreduce_s, cohort, end)
            }
            AggregationMode::Asynchronous => {
                // No barrier: throughput is governed by the mean completion,
                // and each agent pays a cheap pairwise exchange on its own
                // link instead of a global collective.
                let n = live_finishes.len().max(1);
                let mean = live_finishes.iter().sum::<f64>() / n as f64;
                let bytes = self.estimator.profile().model_bytes();
                let mut exchange_total = 0.0;
                let mut async_cohort: Vec<AgentId> = Vec::new();
                for (i, t) in timelines.iter().enumerate() {
                    let id = AgentId(i);
                    let a = self.world.agent(id);
                    if participant[i] && t.done && a.profile.is_connected() {
                        let cost = CollectiveCost::new(self.algorithm, 2, bytes);
                        exchange_total += cost.time_s(
                            self.cal.bytes_per_s(self.world.uplink_mbps(id)),
                            self.cal.link_latency_s,
                        );
                        async_cohort.push(id);
                    }
                }
                let exchange_mean = exchange_total / async_cohort.len().max(1) as f64;
                let end = mean + exchange_mean;
                (mean, exchange_mean, async_cohort, end)
            }
        };

        // Per-agent stats in pairing order, exactly as the closed-form
        // simulator reported them. A repaired pairing can name an agent a
        // second time (its own pair plus the one it rescued); the timeline
        // already aggregates both roles, so each agent is reported once.
        let mut stats = Vec::new();
        let mut listed = vec![false; timelines.len()];
        let mut num_offloads = 0usize;
        for p in &pairs {
            if p.is_offloading() {
                num_offloads += 1;
            }
            let mut push = |id: AgentId, listed: &mut Vec<bool>| {
                if listed[id.0] {
                    return;
                }
                listed[id.0] = true;
                let t = &timelines[id.0];
                let finish = if t.done { t.finish_s } else { compute_s };
                stats.push(AgentRoundStats {
                    id,
                    train_s: t.busy_s,
                    comm_s: t.comm_s,
                    idle_s: (compute_s - t.busy_s - t.comm_s).max(0.0),
                    finish_s: finish,
                });
            };
            push(p.slow, &mut listed);
            if let Some(f) = p.fast {
                push(f, &mut listed);
            }
        }

        let spill_s: Vec<f64> =
            timelines
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    if participant[i] && t.done {
                        (t.finish_s - round_end_s).max(0.0)
                    } else {
                        0.0
                    }
                })
                .collect();
        let finished: Vec<bool> =
            timelines.iter().enumerate().map(|(i, t)| participant[i] && t.done).collect();

        EventRoundReport {
            outcome: RoundOutcome { agent_stats: stats, compute_s, allreduce_s, num_offloads },
            cohort,
            spill_s,
            repairs,
            local_fallbacks,
            round_end_s,
            finished,
            events_processed: driver.events_processed(),
        }
    }
}
