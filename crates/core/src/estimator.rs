use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml_simnet::AgentState;

/// The outcome of evaluating all candidate splits for one (slow, fast) pair:
/// the best estimated round time and the split that achieves it.
///
/// `offload == 0` means pairing does not help — the slow agent should train
/// alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitDecision {
    /// Estimated training time of the pair under the best split (seconds).
    pub est_time_s: f64,
    /// Number of layers to offload (`m*`).
    pub offload: usize,
}

/// Algorithm 1's `AgentTrainingTime` function.
///
/// For every candidate split `m` the estimator converts full-model
/// processing speeds into split speeds via the profile's relative times
/// (`pᵐ = p / Tᵐ`, lines 16–17) and evaluates
///
/// ```text
/// τ̂ᵢⱼᵐ = max( Ñᵢ / pᵢᵐ ,  τ̂ⱼ + Ñᵢ·νₘ / cᵢⱼ + Ñᵢ / pⱼᵐ )   (line 18)
/// ```
///
/// — the slow side computes its prefix in parallel (left arm) while the
/// fast side first finishes its own task `τ̂ⱼ`, receives `Ñᵢ` activations of
/// `νₘ` bytes over the `cᵢⱼ` link, and trains the offloaded suffix (right
/// arm). The returned decision minimizes over `m` (lines 20–21).
///
/// # Example
///
/// ```
/// use comdml_core::TrainingTimeEstimator;
/// use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
/// use comdml_simnet::{AgentId, AgentProfile, AgentState};
///
/// let spec = ModelSpec::resnet56();
/// let profile = SplitProfile::new(&spec, 100);
/// let cal = CostCalibration::default();
/// let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
///
/// let slow = AgentState::new(AgentId(0), AgentProfile::new(0.25, 50.0), 5000, 100);
/// let fast = AgentState::new(AgentId(1), AgentProfile::new(2.0, 50.0), 5000, 100);
/// let solo = est.solo_time_s(&slow);
/// let d = est.estimate(&slow, &fast, est.solo_time_s(&fast), 50.0);
/// assert!(d.est_time_s < solo); // offloading helps a 8x-slower agent
/// assert!(d.offload > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TrainingTimeEstimator<'a> {
    spec: &'a ModelSpec,
    profile: &'a SplitProfile,
    cal: &'a CostCalibration,
}

impl<'a> TrainingTimeEstimator<'a> {
    /// Creates an estimator over a model spec, its split profile and a cost
    /// calibration.
    pub fn new(spec: &'a ModelSpec, profile: &'a SplitProfile, cal: &'a CostCalibration) -> Self {
        Self { spec, profile, cal }
    }

    /// The model spec being scheduled.
    pub fn spec(&self) -> &ModelSpec {
        self.spec
    }

    /// The split profile in use.
    pub fn profile(&self) -> &SplitProfile {
        self.profile
    }

    /// Full-model processing speed of an agent in batches per second
    /// (the paper's `p`).
    pub fn batches_per_s(&self, agent: &AgentState) -> f64 {
        self.cal.batches_per_s(
            self.spec.train_flops_per_sample(),
            agent.batch_size,
            agent.profile.cpus,
        )
    }

    /// Solo training time `τ̂ = Ñ / p`: one local epoch without offloading.
    pub fn solo_time_s(&self, agent: &AgentState) -> f64 {
        agent.num_batches() as f64 / self.batches_per_s(agent)
    }

    /// Evaluates all splits for slow agent `i` offloading to fast agent `j`
    /// whose own task takes `fast_solo_s`, over a `link_mbps` link.
    ///
    /// Returns the best decision; with a dead link (0 Mbps) or when no split
    /// beats training alone, the decision has `offload == 0` and the solo
    /// time.
    pub fn estimate(
        &self,
        slow: &AgentState,
        fast: &AgentState,
        fast_solo_s: f64,
        link_mbps: f64,
    ) -> SplitDecision {
        let n_i = slow.num_batches() as f64;
        let p_i = self.batches_per_s(slow);
        let p_j = self.batches_per_s(fast);
        let link_bytes_s = self.cal.bytes_per_s(link_mbps);
        let solo = n_i / p_i;

        let mut best = SplitDecision { est_time_s: solo, offload: 0 };
        if link_bytes_s <= 0.0 {
            return best;
        }
        for e in self.profile.iter() {
            if e.offload == 0 {
                continue;
            }
            // Lines 16-17: convert full-model speeds into split-side speeds.
            let slow_arm = if e.t_slow_rel > 0.0 { n_i * e.t_slow_rel / p_i } else { 0.0 };
            let comm = n_i * e.nu_bytes_per_batch as f64 / link_bytes_s;
            let fast_arm = fast_solo_s + comm + n_i * e.t_fast_rel / p_j;
            // Line 18: parallel arms.
            let t = slow_arm.max(fast_arm);
            if t < best.est_time_s {
                best = SplitDecision { est_time_s: t, offload: e.offload };
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comdml_simnet::{AgentId, AgentProfile};

    fn fixtures() -> (ModelSpec, SplitProfile, CostCalibration) {
        let spec = ModelSpec::resnet56();
        let profile = SplitProfile::new(&spec, 100);
        (spec, profile, CostCalibration::default())
    }

    fn agent(id: usize, cpus: f64, link: f64, samples: usize) -> AgentState {
        AgentState::new(AgentId(id), AgentProfile::new(cpus, link), samples, 100)
    }

    #[test]
    fn solo_time_scales_with_batches_and_speed() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let a = agent(0, 1.0, 50.0, 5000);
        let b = agent(1, 2.0, 50.0, 5000);
        assert!((est.solo_time_s(&a) / est.solo_time_s(&b) - 2.0).abs() < 1e-9);
        let c = agent(2, 1.0, 50.0, 10_000);
        assert!((est.solo_time_s(&c) / est.solo_time_s(&a) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slow_agent_offloads_to_fast_idle_agent() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let slow = agent(0, 0.2, 100.0, 5000);
        let fast = agent(1, 4.0, 100.0, 5000);
        let d = est.estimate(&slow, &fast, est.solo_time_s(&fast), 100.0);
        assert!(d.offload > 0, "should offload, got {d:?}");
        assert!(d.est_time_s < est.solo_time_s(&slow) * 0.5, "should cut time at least in half");
    }

    #[test]
    fn equal_agents_gain_little() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let a = agent(0, 1.0, 50.0, 5000);
        let b = agent(1, 1.0, 50.0, 5000);
        let d = est.estimate(&a, &b, est.solo_time_s(&b), 50.0);
        // The partner is equally busy: any offload mostly queues behind the
        // partner's own task.
        assert!(d.est_time_s >= est.solo_time_s(&a) * 0.8);
    }

    #[test]
    fn dead_link_forces_solo_training() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let slow = agent(0, 0.2, 0.0, 5000);
        let fast = agent(1, 4.0, 100.0, 5000);
        let d = est.estimate(&slow, &fast, est.solo_time_s(&fast), 0.0);
        assert_eq!(d.offload, 0);
        assert!((d.est_time_s - est.solo_time_s(&slow)).abs() < 1e-9);
    }

    #[test]
    fn faster_link_never_hurts() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let slow = agent(0, 0.5, 100.0, 5000);
        let fast = agent(1, 4.0, 100.0, 5000);
        let solo_fast = est.solo_time_s(&fast);
        let mut prev = f64::INFINITY;
        for mbps in [10.0, 20.0, 50.0, 100.0] {
            let d = est.estimate(&slow, &fast, solo_fast, mbps);
            assert!(d.est_time_s <= prev + 1e-9, "time should not increase with bandwidth");
            prev = d.est_time_s;
        }
    }

    #[test]
    fn busier_partner_reduces_offload_benefit() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let slow = agent(0, 0.2, 100.0, 5000);
        let fast = agent(1, 4.0, 100.0, 5000);
        let d_idle = est.estimate(&slow, &fast, 0.0, 100.0);
        let d_busy = est.estimate(&slow, &fast, 10_000.0, 100.0);
        assert!(d_idle.est_time_s < d_busy.est_time_s);
    }

    #[test]
    fn restricting_splits_still_finds_a_decision() {
        let (spec, profile, cal) = fixtures();
        let restricted = profile.restrict_to(&[10, 28, 46]);
        let est = TrainingTimeEstimator::new(&spec, &restricted, &cal);
        let slow = agent(0, 0.2, 100.0, 5000);
        let fast = agent(1, 4.0, 100.0, 5000);
        let d = est.estimate(&slow, &fast, est.solo_time_s(&fast), 100.0);
        assert!([0, 10, 28, 46].contains(&d.offload));
    }
}
