use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml_simnet::AgentState;

/// The outcome of evaluating all candidate splits for one (slow, fast) pair:
/// the best estimated round time and the split that achieves it.
///
/// `offload == 0` means pairing does not help — the slow agent should train
/// alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitDecision {
    /// Estimated training time of the pair under the best split (seconds).
    pub est_time_s: f64,
    /// Number of layers to offload (`m*`).
    pub offload: usize,
}

/// Algorithm 1's `AgentTrainingTime` function.
///
/// For every candidate split `m` the estimator converts full-model
/// processing speeds into split speeds via the profile's relative times
/// (`pᵐ = p / Tᵐ`, lines 16–17) and evaluates
///
/// ```text
/// τ̂ᵢⱼᵐ = max( Ñᵢ / pᵢᵐ ,  τ̂ⱼ + Ñᵢ·νₘ / cᵢⱼ + Ñᵢ / pⱼᵐ )   (line 18)
/// ```
///
/// — the slow side computes its prefix in parallel (left arm) while the
/// fast side first finishes its own task `τ̂ⱼ`, receives `Ñᵢ` activations of
/// `νₘ` bytes over the `cᵢⱼ` link, and trains the offloaded suffix (right
/// arm). The returned decision minimizes over `m` (lines 20–21).
///
/// # Example
///
/// ```
/// use comdml_core::TrainingTimeEstimator;
/// use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
/// use comdml_simnet::{AgentId, AgentProfile, AgentState};
///
/// let spec = ModelSpec::resnet56();
/// let profile = SplitProfile::new(&spec, 100);
/// let cal = CostCalibration::default();
/// let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
///
/// let slow = AgentState::new(AgentId(0), AgentProfile::new(0.25, 50.0), 5000, 100);
/// let fast = AgentState::new(AgentId(1), AgentProfile::new(2.0, 50.0), 5000, 100);
/// let solo = est.solo_time_s(&slow);
/// let d = est.estimate(&slow, &fast, est.solo_time_s(&fast), 50.0);
/// assert!(d.est_time_s < solo); // offloading helps a 8x-slower agent
/// assert!(d.offload > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TrainingTimeEstimator<'a> {
    spec: &'a ModelSpec,
    profile: &'a SplitProfile,
    cal: &'a CostCalibration,
}

impl<'a> TrainingTimeEstimator<'a> {
    /// Creates an estimator over a model spec, its split profile and a cost
    /// calibration.
    pub fn new(spec: &'a ModelSpec, profile: &'a SplitProfile, cal: &'a CostCalibration) -> Self {
        Self { spec, profile, cal }
    }

    /// The model spec being scheduled.
    pub fn spec(&self) -> &ModelSpec {
        self.spec
    }

    /// The split profile in use.
    pub fn profile(&self) -> &SplitProfile {
        self.profile
    }

    /// Full-model processing speed of an agent in batches per second
    /// (the paper's `p`).
    pub fn batches_per_s(&self, agent: &AgentState) -> f64 {
        self.cal.batches_per_s(
            self.spec.train_flops_per_sample(),
            agent.batch_size,
            agent.profile.cpus,
        )
    }

    /// Solo training time `τ̂ = Ñ / p`: one local epoch without offloading.
    pub fn solo_time_s(&self, agent: &AgentState) -> f64 {
        agent.num_batches() as f64 / self.batches_per_s(agent)
    }

    /// Evaluates all splits for slow agent `i` offloading to fast agent `j`
    /// whose own task takes `fast_solo_s`, over a `link_mbps` link.
    ///
    /// Returns the best decision; with a dead link (0 Mbps) or when no split
    /// beats training alone, the decision has `offload == 0` and the solo
    /// time.
    pub fn estimate(
        &self,
        slow: &AgentState,
        fast: &AgentState,
        fast_solo_s: f64,
        link_mbps: f64,
    ) -> SplitDecision {
        let n_i = slow.num_batches() as f64;
        let p_i = self.batches_per_s(slow);
        let p_j = self.batches_per_s(fast);
        let link_bytes_s = self.cal.bytes_per_s(link_mbps);
        let solo = n_i / p_i;

        let mut best = SplitDecision { est_time_s: solo, offload: 0 };
        if link_bytes_s <= 0.0 {
            return best;
        }
        for e in self.profile.iter() {
            if e.offload == 0 {
                continue;
            }
            // Lines 16-17: convert full-model speeds into split-side speeds.
            let slow_arm = if e.t_slow_rel > 0.0 { n_i * e.t_slow_rel / p_i } else { 0.0 };
            let comm = n_i * e.nu_bytes_per_batch as f64 / link_bytes_s;
            let fast_arm = fast_solo_s + comm + n_i * e.t_fast_rel / p_j;
            // Line 18: parallel arms.
            let t = slow_arm.max(fast_arm);
            if t < best.est_time_s {
                best = SplitDecision { est_time_s: t, offload: e.offload };
            }
        }
        best
    }
}

/// Fowler–Noll–Vo hasher for the memo keys below: the keys are short
/// tuples of raw bit patterns, where FNV beats SipHash by a wide margin and
/// the DoS resistance SipHash buys is irrelevant.
#[derive(Default)]
pub struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`FnvHasher`]-keyed maps.
pub type FnvBuildHasher = std::hash::BuildHasherDefault<FnvHasher>;

type SoloKey = (u64, usize, usize);
type EstimateKey = (SoloKey, u64, usize, u64, u64);

/// Memoizes [`TrainingTimeEstimator`] evaluations on their *exact* input
/// bit patterns.
///
/// A fleet draws profiles from small grids (5 CPU classes × 5 link classes)
/// and dataset shares from a handful of sizes, so a million-agent pairing
/// round asks the estimator the same few thousand questions millions of
/// times. Keying on the raw bits (`f64::to_bits`) makes a memo hit return
/// the identical `SplitDecision` the direct call would compute — results
/// are bit-for-bit unchanged, only cheaper.
///
/// The memo is scoped by its owner (the scheduler builds one per pairing
/// round), so profile churn between rounds can never serve stale entries
/// with matching keys — a key *is* the full input.
#[derive(Debug, Default)]
pub struct EstimateMemo {
    solo: std::collections::HashMap<SoloKey, f64, FnvBuildHasher>,
    estimate: std::collections::HashMap<EstimateKey, SplitDecision, FnvBuildHasher>,
}

impl EstimateMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    fn solo_key(agent: &AgentState) -> SoloKey {
        (agent.profile.cpus.to_bits(), agent.batch_size, agent.num_batches())
    }

    /// Memoized [`TrainingTimeEstimator::solo_time_s`].
    pub fn solo_time_s(&mut self, est: &TrainingTimeEstimator<'_>, agent: &AgentState) -> f64 {
        *self.solo.entry(Self::solo_key(agent)).or_insert_with(|| est.solo_time_s(agent))
    }

    /// Memoized [`TrainingTimeEstimator::estimate`].
    pub fn estimate(
        &mut self,
        est: &TrainingTimeEstimator<'_>,
        slow: &AgentState,
        fast: &AgentState,
        fast_solo_s: f64,
        link_mbps: f64,
    ) -> SplitDecision {
        let key = (
            Self::solo_key(slow),
            fast.profile.cpus.to_bits(),
            fast.batch_size,
            fast_solo_s.to_bits(),
            link_mbps.to_bits(),
        );
        *self
            .estimate
            .entry(key)
            .or_insert_with(|| est.estimate(slow, fast, fast_solo_s, link_mbps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comdml_simnet::{AgentId, AgentProfile};

    fn fixtures() -> (ModelSpec, SplitProfile, CostCalibration) {
        let spec = ModelSpec::resnet56();
        let profile = SplitProfile::new(&spec, 100);
        (spec, profile, CostCalibration::default())
    }

    fn agent(id: usize, cpus: f64, link: f64, samples: usize) -> AgentState {
        AgentState::new(AgentId(id), AgentProfile::new(cpus, link), samples, 100)
    }

    #[test]
    fn solo_time_scales_with_batches_and_speed() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let a = agent(0, 1.0, 50.0, 5000);
        let b = agent(1, 2.0, 50.0, 5000);
        assert!((est.solo_time_s(&a) / est.solo_time_s(&b) - 2.0).abs() < 1e-9);
        let c = agent(2, 1.0, 50.0, 10_000);
        assert!((est.solo_time_s(&c) / est.solo_time_s(&a) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slow_agent_offloads_to_fast_idle_agent() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let slow = agent(0, 0.2, 100.0, 5000);
        let fast = agent(1, 4.0, 100.0, 5000);
        let d = est.estimate(&slow, &fast, est.solo_time_s(&fast), 100.0);
        assert!(d.offload > 0, "should offload, got {d:?}");
        assert!(d.est_time_s < est.solo_time_s(&slow) * 0.5, "should cut time at least in half");
    }

    #[test]
    fn equal_agents_gain_little() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let a = agent(0, 1.0, 50.0, 5000);
        let b = agent(1, 1.0, 50.0, 5000);
        let d = est.estimate(&a, &b, est.solo_time_s(&b), 50.0);
        // The partner is equally busy: any offload mostly queues behind the
        // partner's own task.
        assert!(d.est_time_s >= est.solo_time_s(&a) * 0.8);
    }

    #[test]
    fn dead_link_forces_solo_training() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let slow = agent(0, 0.2, 0.0, 5000);
        let fast = agent(1, 4.0, 100.0, 5000);
        let d = est.estimate(&slow, &fast, est.solo_time_s(&fast), 0.0);
        assert_eq!(d.offload, 0);
        assert!((d.est_time_s - est.solo_time_s(&slow)).abs() < 1e-9);
    }

    #[test]
    fn faster_link_never_hurts() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let slow = agent(0, 0.5, 100.0, 5000);
        let fast = agent(1, 4.0, 100.0, 5000);
        let solo_fast = est.solo_time_s(&fast);
        let mut prev = f64::INFINITY;
        for mbps in [10.0, 20.0, 50.0, 100.0] {
            let d = est.estimate(&slow, &fast, solo_fast, mbps);
            assert!(d.est_time_s <= prev + 1e-9, "time should not increase with bandwidth");
            prev = d.est_time_s;
        }
    }

    #[test]
    fn busier_partner_reduces_offload_benefit() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let slow = agent(0, 0.2, 100.0, 5000);
        let fast = agent(1, 4.0, 100.0, 5000);
        let d_idle = est.estimate(&slow, &fast, 0.0, 100.0);
        let d_busy = est.estimate(&slow, &fast, 10_000.0, 100.0);
        assert!(d_idle.est_time_s < d_busy.est_time_s);
    }

    #[test]
    fn memo_returns_bit_identical_decisions() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let mut memo = EstimateMemo::new();
        let agents: Vec<AgentState> = (0..8)
            .map(|i| agent(i, [0.2, 0.5, 1.0, 4.0][i % 4], 50.0, 4000 + 500 * (i % 3)))
            .collect();
        for s in &agents {
            assert_eq!(memo.solo_time_s(&est, s).to_bits(), est.solo_time_s(s).to_bits());
            for f in &agents {
                for link in [10.0, 50.0] {
                    let solo_f = est.solo_time_s(f);
                    // Ask twice: the second answer comes from the memo.
                    let direct = est.estimate(s, f, solo_f, link);
                    for _ in 0..2 {
                        let memoed = memo.estimate(&est, s, f, solo_f, link);
                        assert_eq!(memoed.offload, direct.offload);
                        assert_eq!(memoed.est_time_s.to_bits(), direct.est_time_s.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn restricting_splits_still_finds_a_decision() {
        let (spec, profile, cal) = fixtures();
        let restricted = profile.restrict_to(&[10, 28, 46]);
        let est = TrainingTimeEstimator::new(&spec, &restricted, &cal);
        let slow = agent(0, 0.2, 100.0, 5000);
        let fast = agent(1, 4.0, 100.0, 5000);
        let d = est.estimate(&slow, &fast, est.solo_time_s(&fast), 100.0);
        assert!([0, 10, 28, 46].contains(&d.offload));
    }
}
