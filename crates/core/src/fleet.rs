//! Multi-round ComDML over an elastic fleet.
//!
//! [`FleetSim`] marries the membership process of
//! [`comdml_simnet::FleetDriver`] to the discrete-event round engine
//! ([`crate::EventRound`]): every round it asks the driver for the current
//! membership and the arrivals/departures expected inside a planning
//! horizon, runs pairing + the event round with those changes injected as
//! mid-round join/leave disruptions, then reports the realized round
//! duration back so the fleet clock (and with it the churn process)
//! advances exactly as fast as the simulation does.
//!
//! Per-agent carry-over (`ready_at` head starts from semi-sync/async
//! spill) survives membership changes: it is kept for agents that remain
//! active and dropped the moment an agent departs, so no round ever
//! schedules work for a ghost (the proptests in `tests/fleet_churn.rs`
//! hold this invariant under arbitrary churn).
//!
//! # Example
//!
//! ```
//! use comdml_core::{ComDmlConfig, EventGranularity, FleetSim};
//! use comdml_simnet::{ArrivalProcess, FleetConfig, SessionLifetime};
//!
//! let fleet = FleetConfig::new(12, 7)
//!     .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.001 })
//!     .lifetime(SessionLifetime::Exponential { mean_s: 20_000.0 });
//! let config = ComDmlConfig {
//!     churn: None,
//!     granularity: EventGranularity::Coarse,
//!     ..ComDmlConfig::default()
//! };
//! let mut sim = FleetSim::new(fleet, config);
//! let report = sim.run(5);
//! assert_eq!(report.rounds, 5);
//! assert!(report.total_sim_s > 0.0);
//! ```

use std::collections::HashMap;

use comdml_cost::SplitProfile;
use comdml_simnet::{AgentId, FleetConfig, FleetDriver, MembershipChange};
use serde::{Deserialize, Serialize};

use crate::{
    ComDmlConfig, Disruption, EventRound, PairingScheduler, RoundProgress, TrainingTimeEstimator,
};

/// What one elastic-fleet round produced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetRoundSummary {
    /// Zero-based round index.
    pub round: usize,
    /// Active members at the round start.
    pub participants: usize,
    /// Members the participation sampler admitted to the round (equals
    /// `participants` at `sampling_rate = 1.0`).
    pub sampled: usize,
    /// Agents whose update made the aggregation cohort.
    pub cohort: usize,
    /// Mid-round joins handed to the round.
    pub joins: usize,
    /// Mid-round leaves handed to the round.
    pub leaves: usize,
    /// Of the handed leaves, the participant departures that actually
    /// landed inside the realized round (`at_s <= round_s`). The planning
    /// horizon forecasts further ahead than most rounds run, so a later
    /// leave stays active and re-appears next round — this count is what
    /// churn-coupled accuracy may charge without double-counting.
    pub leaves_committed: usize,
    /// Successful helper re-pairings after departures.
    pub repairs: usize,
    /// Simulated seconds this round took.
    pub round_s: f64,
    /// Staleness-weighted learning efficiency of the round (1 = a fully
    /// fresh synchronous round).
    pub efficiency: f64,
    /// Events the round engine executed.
    pub events_processed: u64,
}

impl From<&FleetRoundSummary> for RoundProgress {
    /// The elastic-fleet round as effective-progress inputs for a
    /// [`crate::LearningModel`]: the sampled participants entered the
    /// round, the cohort aggregated, and the leaves that landed inside the
    /// realized round are the disruptions churn-coupled accuracy charges
    /// for (forecast-only leaves are charged the round they commit).
    fn from(s: &FleetRoundSummary) -> Self {
        Self {
            round_s: s.round_s,
            efficiency: s.efficiency,
            participants: s.sampled,
            cohort: s.cohort,
            disruptions: s.leaves_committed,
        }
    }
}

/// Aggregate report of a [`FleetSim::run`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Rounds executed.
    pub rounds: usize,
    /// Total simulated seconds.
    pub total_sim_s: f64,
    /// Sum of per-round efficiencies — the learning-curve progress the run
    /// achieved, in equivalent fresh synchronous rounds.
    pub effective_rounds: f64,
    /// Mean per-round efficiency (the run's realized rounds factor).
    pub rounds_factor: f64,
    /// Total events the round engines executed.
    pub events_processed: u64,
    /// Largest concurrent active membership observed.
    pub peak_agents: usize,
    /// Arrivals activated over the run.
    pub arrivals: usize,
    /// Departures committed over the run.
    pub departures: usize,
    /// Active members when the run ended.
    pub final_active: usize,
}

/// ComDML driven across rounds on an elastic fleet. See the module docs.
#[derive(Debug, Clone)]
pub struct FleetSim {
    fleet: FleetDriver,
    config: ComDmlConfig,
    profile: SplitProfile,
    scheduler: PairingScheduler,
    ready_at: HashMap<AgentId, f64>,
    last_round_s: f64,
    rounds_run: usize,
    total_sim_s: f64,
    effective_rounds: f64,
    events_processed: u64,
}

impl FleetSim {
    /// Horizon multiplier over the previous round's duration: generous
    /// enough that most membership events become mid-round disruptions
    /// rather than boundary commits, tight enough that far-future events
    /// are not dragged into the current round.
    const HORIZON_FACTOR: f64 = 2.0;

    /// Builds the simulation: profiles candidate splits up front (like
    /// [`crate::ComDml::new`]) and materializes the fleet.
    pub fn new(fleet: FleetConfig, config: ComDmlConfig) -> Self {
        let full = SplitProfile::new(&config.model, config.batch_size);
        let profile = match &config.candidate_offloads {
            Some(c) => full.restrict_to(c),
            None => full,
        };
        // Byzantine liar sets are salted by the fleet seed so a sweep over
        // seeds also re-rolls *which* agents lie, not just their profiles.
        let scheduler = match config.byzantine {
            Some(b) => PairingScheduler::with_misreport(b, fleet.seed()),
            None => PairingScheduler::new(),
        };
        Self {
            fleet: fleet.build(),
            config,
            profile,
            scheduler,
            ready_at: HashMap::new(),
            last_round_s: 0.0,
            rounds_run: 0,
            total_sim_s: 0.0,
            effective_rounds: 0.0,
            events_processed: 0,
        }
    }

    /// The underlying fleet driver (membership state, clock, counters).
    pub fn fleet(&self) -> &FleetDriver {
        &self.fleet
    }

    /// Per-agent head starts carried into the next round — only ever for
    /// agents that are still active members.
    pub fn carry_over(&self) -> &HashMap<AgentId, f64> {
        &self.ready_at
    }

    /// Executes one round and returns its summary.
    pub fn step(&mut self) -> FleetRoundSummary {
        // Hostile-world shaping is a pure function of the fleet clock,
        // evaluated once at each round start: diurnal bandwidth scaling and
        // rotating regional partitions hold for the whole round. With both
        // knobs off the world is never touched, so existing runs (and the
        // pinned digests below) stay bit-identical.
        let now = self.fleet.clock_s();
        if let Some(d) = self.config.diurnal {
            self.fleet.world_mut().set_link_scale(d.factor_at(now));
        }
        if let Some(p) = self.config.partition {
            match p.cut_at(now) {
                Some(isolated) => self.fleet.world_mut().set_partition(p.groups, isolated),
                None => self.fleet.world_mut().clear_partition(),
            }
        }
        // The paper's dynamic-environment profile churn applies between
        // rounds, exactly as in `ComDml::run_round`.
        let round = self.fleet.round();
        if let Some(churn) = self.config.churn {
            if churn.interval > 0 && round > 0 && round.is_multiple_of(churn.interval) {
                self.fleet.world_mut().churn_profiles(churn.fraction);
            }
        }
        let horizon = if self.last_round_s > 0.0 {
            self.last_round_s * Self::HORIZON_FACTOR
        } else {
            // First round: bound the window by the slowest possible solo
            // task so departures cannot land past the round's event drain.
            let estimator = TrainingTimeEstimator::new(
                &self.config.model,
                &self.profile,
                &self.config.calibration,
            );
            self.fleet
                .world()
                .agents()
                .iter()
                .map(|a| estimator.solo_time_s(a))
                .fold(0.0f64, f64::max)
        };
        let plan = self.fleet.begin_round(horizon);
        // Carry-over hygiene: drop head starts of agents that departed.
        self.ready_at.retain(|id, _| plan.participants.binary_search(id).is_ok());

        // Table III-style per-round participation sampling composed on top
        // of elastic membership: the round runs over a sampled subset of
        // the *active* members. At rate 1.0 the participation stream is
        // never touched, so enabling the knob cannot perturb existing runs.
        let participants: Vec<AgentId> = if self.config.sampling_rate < 1.0 {
            self.fleet
                .world_mut()
                .sample_participants_among(&plan.participants, self.config.sampling_rate)
        } else {
            plan.participants.clone()
        };
        // Carry-over of active-but-unsampled agents is *held*, not lost:
        // they re-enter a later round with their head start intact.
        let mut round_carry = std::mem::take(&mut self.ready_at);
        let held: HashMap<AgentId, f64> = if participants.len() < plan.participants.len() {
            let (held, kept) = round_carry
                .into_iter()
                .partition(|(id, _)| participants.binary_search(id).is_err());
            round_carry = kept;
            held
        } else {
            HashMap::new()
        };

        let estimator =
            TrainingTimeEstimator::new(&self.config.model, &self.profile, &self.config.calibration);
        let pairing_timer = comdml_obs::phase("fleet.pairing");
        let pairings = self.scheduler.pair(self.fleet.world(), &participants, &estimator);
        drop(pairing_timer);
        let disruptions: Vec<Disruption> = plan
            .events
            .iter()
            .filter_map(|e| match e.kind {
                // Joiners are not cohort members — the round engine only
                // considers them as replacement helpers for repairs — so
                // participation sampling (which gates who *trains and
                // aggregates*) deliberately does not apply to them.
                MembershipChange::Join => Some(Disruption::Join { agent: e.agent, at_s: e.at_s }),
                // A departure only disrupts the round if the departing
                // agent is actually in it; unsampled members leave the
                // fleet without touching the round.
                MembershipChange::Leave => participants
                    .binary_search(&e.agent)
                    .is_ok()
                    .then_some(Disruption::Leave { agent: e.agent, at_s: e.at_s }),
            })
            .collect();
        let joins = plan.events.iter().filter(|e| e.kind == MembershipChange::Join).count();
        let leaves = disruptions.len() - joins;

        let round_timer = comdml_obs::phase("fleet.round");
        let report = EventRound::new(
            self.fleet.world(),
            &pairings,
            &estimator,
            &self.config.calibration,
            self.config.algorithm,
        )
        .mode(self.config.aggregation)
        .granularity(self.config.granularity)
        .pair_threads(self.config.threads)
        .disruptions(disruptions)
        .ready_at(round_carry)
        .run();
        drop(round_timer);

        let mut round_s = report.round_end_s.max(0.0);
        let efficiency = report.efficiency(self.config.staleness_decay);
        if round_s <= 0.0 {
            // An extinct (or instantaneous) round must still advance the
            // fleet clock, or pending arrivals could never activate and the
            // simulation would livelock on zero-second rounds. Fast-forward
            // to the next membership event instead.
            round_s = self.fleet.seconds_to_next_event().unwrap_or(0.0);
        }
        self.fleet.end_round(round_s);
        // New carry-over: spill of agents that are still active members,
        // plus the held head starts of active-but-unsampled agents.
        self.ready_at = report
            .spill_s
            .iter()
            .enumerate()
            .filter(|&(i, &s)| s > 0.0 && self.fleet.is_active(AgentId(i)))
            .map(|(i, &s)| (AgentId(i), s))
            .collect();
        for (id, s) in held {
            if self.fleet.is_active(id) {
                self.ready_at.insert(id, s);
            }
        }

        // Of the leaves handed to the round, only those landing inside the
        // realized duration actually disrupted it; later forecast events
        // stay active and are reported the round they commit.
        let leaves_committed = plan.committed_leaves_among(&participants, round_s);

        // An empty round's duration is a fast-forward jump, not a round
        // time; don't let it inflate the next planning horizon.
        self.last_round_s = if plan.participants.is_empty() { 0.0 } else { round_s };
        self.rounds_run += 1;
        self.total_sim_s += round_s;
        self.effective_rounds += efficiency;
        self.events_processed += report.events_processed;
        comdml_obs::counter_add("fleet.repairs", report.repairs as u64);
        if comdml_obs::trace_enabled() {
            comdml_obs::trace_event(
                "round",
                vec![
                    ("round", comdml_obs::Value::Num(round as f64)),
                    ("participants", comdml_obs::Value::Num(participants.len() as f64)),
                    ("round_s", comdml_obs::Value::Num(round_s)),
                    ("efficiency", comdml_obs::Value::Num(efficiency)),
                    ("repairs", comdml_obs::Value::Num(report.repairs as f64)),
                    ("events", comdml_obs::Value::Num(report.events_processed as f64)),
                ],
            );
        }
        FleetRoundSummary {
            round,
            participants: plan.participants.len(),
            sampled: participants.len(),
            cohort: report.cohort.len(),
            joins,
            leaves,
            leaves_committed,
            repairs: report.repairs,
            round_s,
            efficiency,
            events_processed: report.events_processed,
        }
    }

    /// Runs `rounds` rounds and reports aggregates.
    pub fn run(&mut self, rounds: usize) -> FleetReport {
        for _ in 0..rounds {
            self.step();
        }
        self.report()
    }

    /// Aggregates over everything run so far.
    pub fn report(&self) -> FleetReport {
        FleetReport {
            rounds: self.rounds_run,
            total_sim_s: self.total_sim_s,
            effective_rounds: self.effective_rounds,
            rounds_factor: if self.rounds_run == 0 {
                1.0
            } else {
                self.effective_rounds / self.rounds_run as f64
            },
            events_processed: self.events_processed,
            peak_agents: self.fleet.peak_active(),
            arrivals: self.fleet.arrivals_total(),
            departures: self.fleet.departures_total(),
            final_active: self.fleet.active_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggregationMode, EventGranularity};
    use comdml_simnet::{ArrivalProcess, SessionLifetime};

    fn churny_fleet(seed: u64) -> FleetConfig {
        FleetConfig::new(16, seed)
            .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.002 })
            .lifetime(SessionLifetime::Exponential { mean_s: 5_000.0 })
            .samples_per_agent(500)
    }

    fn quick_config() -> ComDmlConfig {
        ComDmlConfig {
            churn: None,
            candidate_offloads: Some(vec![8, 16, 24, 32, 40, 48]),
            granularity: EventGranularity::Coarse,
            ..ComDmlConfig::default()
        }
    }

    #[test]
    fn fleet_sim_runs_under_churn() {
        let mut sim = FleetSim::new(churny_fleet(5), quick_config());
        let report = sim.run(30);
        assert_eq!(report.rounds, 30);
        assert!(report.total_sim_s > 0.0);
        assert!(report.events_processed > 0);
        assert!(
            report.arrivals + report.departures > 0,
            "5k-second sessions over 30 rounds should churn"
        );
        assert!(report.final_active > 0);
    }

    #[test]
    fn synchronous_rounds_are_fully_efficient() {
        let mut sim = FleetSim::new(FleetConfig::new(10, 3), quick_config());
        let report = sim.run(5);
        assert!((report.rounds_factor - 1.0).abs() < 1e-12, "static sync fleet stays fresh");
        assert_eq!(report.arrivals, 0);
    }

    #[test]
    fn semi_sync_fleet_degrades_rounds_factor() {
        let cfg = ComDmlConfig {
            aggregation: AggregationMode::SemiSynchronous { quorum: 0.5, staleness_s: f64::MAX },
            ..quick_config()
        };
        let mut sim = FleetSim::new(FleetConfig::new(16, 3), cfg);
        let report = sim.run(10);
        assert!(
            report.rounds_factor < 1.0,
            "stragglers past the quorum must cost efficiency, got {}",
            report.rounds_factor
        );
        assert!(report.rounds_factor > 0.0);
    }

    #[test]
    fn extinct_fleet_recovers_via_arrivals() {
        // Everyone departs early; a much later trace arrival must still
        // activate (the empty rounds fast-forward the clock instead of
        // livelocking at zero-second rounds), and the dead stretch must not
        // be credited with learning progress.
        let fleet = FleetConfig::new(4, 1)
            .lifetime(SessionLifetime::Fixed { duration_s: 1.0 })
            .arrivals(ArrivalProcess::Trace(vec![50_000.0, 50_001.0]));
        let mut sim = FleetSim::new(fleet, quick_config());
        let report = sim.run(6);
        assert!(report.departures >= 4, "fixed 1s sessions all end in round 0");
        assert_eq!(report.arrivals, 2, "the trace arrivals must activate");
        // The newcomers inherit the 1 s fixed lifetime and depart again;
        // what matters is that the clock crossed the 50 000 s dead stretch.
        assert!(sim.fleet().clock_s() > 50_000.0, "clock {}", sim.fleet().clock_s());
        assert!(
            report.effective_rounds < report.rounds as f64 - 1.0,
            "empty rounds must not count as learning progress: {} of {}",
            report.effective_rounds,
            report.rounds
        );
    }

    /// Order-sensitive digest over everything a fleet run produces, using
    /// only fields that existed before participation sampling landed (so
    /// the constants below, captured from the pre-sampling HEAD, stay
    /// comparable).
    fn digest(fleet: FleetConfig, config: ComDmlConfig, rounds: usize) -> u64 {
        let mut sim = FleetSim::new(fleet, config);
        let mut d = 0xcbf2_9ce4_8422_2325u64;
        for _ in 0..rounds {
            let s = sim.step();
            for v in [
                s.round_s.to_bits(),
                s.efficiency.to_bits(),
                s.participants as u64,
                s.cohort as u64,
                s.joins as u64,
                s.leaves as u64,
                s.repairs as u64,
                s.events_processed,
            ] {
                d = (d ^ v).wrapping_mul(0x1000_0000_01b3);
            }
        }
        let r = sim.report();
        for v in [r.total_sim_s.to_bits(), r.effective_rounds.to_bits(), r.events_processed] {
            d = (d ^ v).wrapping_mul(0x1000_0000_01b3);
        }
        d
    }

    #[test]
    fn sampling_rate_one_reproduces_presampling_digests() {
        // Captured from the commit *before* `FleetSim` honored
        // `sampling_rate` (25 churny rounds, coarse granularity): a run at
        // the default rate of 1.0 must reproduce the old behavior bit for
        // bit — the sampler must not touch any RNG stream or code path
        // unless the rate actually bites.
        let semi = AggregationMode::SemiSynchronous { quorum: 0.6, staleness_s: f64::MAX };
        for (seed, mode, expect) in [
            (5u64, AggregationMode::Synchronous, 0x6d09_9d62_a159_60ea_u64),
            (5, semi, 0x7567_8acc_555a_d961),
            (11, AggregationMode::Synchronous, 0xee3f_df63_7cfb_356c),
            (11, semi, 0x0d58_f41d_f6c9_b150),
        ] {
            let cfg = ComDmlConfig { aggregation: mode, ..quick_config() };
            assert_eq!(
                digest(churny_fleet(seed), cfg, 25),
                expect,
                "sampling_rate = 1.0 must reproduce the pre-sampling digest \
                 (seed {seed}, {mode:?})"
            );
        }
    }

    #[test]
    fn pair_thread_count_never_moves_a_digest() {
        // The parallel pair batches only fan out the *preparation* of pair
        // pipelines; the prepared schedule is applied in pairing order, so
        // every digest — including the pinned pre-sampling constants above
        // — must be bit-for-bit identical at 1, 2, and 8 threads, on both
        // granularities and all aggregation modes.
        // Big enough that the threaded path actually spawns (the engine
        // prepares inline below ~128 pairs).
        let fleet = || {
            FleetConfig::new(400, 7)
                .arrivals(ArrivalProcess::Poisson { rate_per_s: 0.002 })
                .lifetime(SessionLifetime::Exponential { mean_s: 5_000.0 })
                .samples_per_agent(500)
        };
        let semi = AggregationMode::SemiSynchronous { quorum: 0.6, staleness_s: f64::MAX };
        for mode in [AggregationMode::Synchronous, semi, AggregationMode::Asynchronous] {
            for granularity in [EventGranularity::Coarse, EventGranularity::Fine] {
                let cfg = |threads| ComDmlConfig {
                    aggregation: mode,
                    granularity,
                    threads,
                    ..quick_config()
                };
                let baseline = digest(fleet(), cfg(1), 8);
                for threads in [2, 8] {
                    assert_eq!(
                        digest(fleet(), cfg(threads), 8),
                        baseline,
                        "digest moved at {threads} threads ({mode:?}, {granularity:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn hostile_knobs_have_pinned_digests() {
        // The hostile-world knobs behind the `@diurnal` / `@partition` /
        // `@byzantine` presets, run with the exact parameters those presets
        // use (25 churny rounds, seed 5). Each digest is pinned per
        // granularity and must be bit-identical at 1, 2, and 8 pair
        // threads: hostile shaping is a pure function of the fleet clock
        // and agent identity, so thread count can never move it. The
        // constants differing from the honest pins above proves each knob
        // actually bites.
        use crate::EventGranularity::{Coarse, Fine};
        use comdml_simnet::{ByzantineConfig, DiurnalCycle, PartitionSchedule};
        let cases: [(&str, ComDmlConfig, u64, u64); 3] = [
            (
                "diurnal",
                ComDmlConfig {
                    diurnal: Some(DiurnalCycle { period_s: 7_200.0, min_factor: 0.25 }),
                    ..quick_config()
                },
                0x4336_9b59_2988_5b55,
                0xf081_e5a1_649a_0629,
            ),
            (
                "partition",
                ComDmlConfig {
                    partition: Some(PartitionSchedule {
                        groups: 4,
                        period_s: 3_600.0,
                        outage_s: 900.0,
                    }),
                    ..quick_config()
                },
                0xcee8_93f5_b3f1_f953,
                0xdfd4_31bc_1214_56b7,
            ),
            (
                "byzantine",
                ComDmlConfig {
                    byzantine: Some(ByzantineConfig { fraction: 0.2, speed_factor: 4.0 }),
                    ..quick_config()
                },
                0x6858_dd9f_809f_6589,
                0x3f2d_9564_fe34_8a7d,
            ),
        ];
        let honest = 0x6d09_9d62_a159_60ea_u64; // seed-5 sync pin above
        for (name, cfg, coarse_pin, fine_pin) in cases {
            for (granularity, expect) in [(Coarse, coarse_pin), (Fine, fine_pin)] {
                assert_ne!(expect, honest, "{name} must not reproduce the honest digest");
                for threads in [1usize, 2, 8] {
                    let cfg = ComDmlConfig { granularity, threads, ..cfg.clone() };
                    assert_eq!(
                        digest(churny_fleet(5), cfg, 25),
                        expect,
                        "{name} digest moved ({granularity:?}, {threads} threads)"
                    );
                }
            }
        }
    }

    #[test]
    fn sampling_thins_rounds_and_stays_deterministic() {
        let cfg = ComDmlConfig { sampling_rate: 0.25, ..quick_config() };
        let run = |cfg: ComDmlConfig| {
            let mut sim = FleetSim::new(FleetConfig::new(16, 3), cfg);
            let mut sampled = Vec::new();
            for _ in 0..10 {
                let s = sim.step();
                assert_eq!(s.participants, 16, "membership is not thinned");
                sampled.push(s.sampled);
            }
            (sampled, sim.report())
        };
        let (sampled_a, report_a) = run(cfg.clone());
        let (sampled_b, report_b) = run(cfg);
        assert_eq!(sampled_a, sampled_b, "sampling is deterministic per seed");
        assert_eq!(report_a, report_b);
        assert!(sampled_a.iter().all(|&s| s == 4), "16 agents at 0.25 -> 4 per round");
        // Thinner rounds do strictly less event work than full rounds.
        let full = FleetSim::new(FleetConfig::new(16, 3), quick_config()).run(10);
        assert!(report_a.events_processed < full.events_processed);
    }

    #[test]
    fn sampling_holds_carry_over_for_unsampled_agents() {
        // Semi-sync spill of an agent that is not sampled next round must
        // survive until the agent participates again, and must never name
        // a departed agent.
        let cfg = ComDmlConfig {
            aggregation: AggregationMode::SemiSynchronous { quorum: 0.5, staleness_s: f64::MAX },
            sampling_rate: 0.3,
            ..quick_config()
        };
        let mut sim = FleetSim::new(churny_fleet(13), cfg);
        let mut ever_held = false;
        let mut prev: HashMap<AgentId, f64> = HashMap::new();
        for _ in 0..25 {
            let _ = sim.step();
            for id in sim.carry_over().keys() {
                assert!(sim.fleet().is_active(*id), "carry-over for departed {id}");
            }
            // A spilled agent that is re-sampled has its head start
            // consumed and recomputed; a bit-identical value surviving a
            // round means the agent sat out and its spill was held.
            for (id, s) in sim.carry_over() {
                if prev.get(id).is_some_and(|p| p.to_bits() == s.to_bits()) {
                    ever_held = true;
                }
            }
            prev = sim.carry_over().clone();
        }
        assert!(ever_held, "some unsampled agent should have held spill over 25 rounds");
    }

    #[test]
    fn round_progress_mirrors_the_summary() {
        let mut sim = FleetSim::new(churny_fleet(5), quick_config());
        let mut saw_leave = false;
        let mut total_committed = 0usize;
        for _ in 0..25 {
            let s = sim.step();
            let p = RoundProgress::from(&s);
            assert_eq!(p.round_s.to_bits(), s.round_s.to_bits());
            assert_eq!(p.efficiency.to_bits(), s.efficiency.to_bits());
            assert_eq!(p.participants, s.sampled);
            assert_eq!(p.cohort, s.cohort);
            assert_eq!(p.disruptions, s.leaves_committed);
            assert!(
                s.leaves_committed <= s.leaves,
                "committed leaves are a subset of the handed leaves"
            );
            saw_leave |= s.leaves > 0;
            total_committed += s.leaves_committed;
        }
        assert!(saw_leave, "5k-second sessions over 25 rounds should produce leave disruptions");
        // The total charged over the run cannot exceed actual departures —
        // the invariant the horizon-forecast double-count would break.
        assert!(
            total_committed <= sim.fleet().departures_total(),
            "committed leave charges ({total_committed}) exceed real departures ({})",
            sim.fleet().departures_total()
        );
    }

    #[test]
    fn carry_over_only_names_active_agents() {
        let cfg = ComDmlConfig {
            aggregation: AggregationMode::SemiSynchronous { quorum: 0.6, staleness_s: f64::MAX },
            ..quick_config()
        };
        let mut sim = FleetSim::new(churny_fleet(11), cfg);
        for _ in 0..25 {
            sim.step();
            for id in sim.carry_over().keys() {
                assert!(sim.fleet().is_active(*id), "carry-over for departed {id}");
            }
        }
    }
}
