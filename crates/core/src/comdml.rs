use std::collections::HashMap;

use comdml_collective::AllReduceAlgorithm;
use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml_simnet::{AgentId, ByzantineConfig, DiurnalCycle, PartitionSchedule, World};
use serde::{Deserialize, Serialize};

use crate::{
    AggregationMode, EventGranularity, EventRound, EventRoundReport, LearningCurve, LearningModel,
    PairingScheduler, RoundOutcome, RoundProgress, TrainingTimeEstimator,
};

/// Dynamic-environment policy: re-roll a fraction of agent profiles every
/// `interval` rounds ("we randomly changed the profile of 20% of the agents
/// after 100 rounds", §V-B.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnPolicy {
    /// Rounds between churn events.
    pub interval: usize,
    /// Fraction of agents re-rolled per event.
    pub fraction: f64,
}

impl Default for ChurnPolicy {
    fn default() -> Self {
        Self { interval: 100, fraction: 0.2 }
    }
}

/// Configuration of a ComDML run.
#[derive(Debug, Clone)]
pub struct ComDmlConfig {
    /// The model being trained (cost model).
    pub model: ModelSpec,
    /// Resource-to-seconds calibration.
    pub calibration: CostCalibration,
    /// AllReduce algorithm for aggregation (§IV-B picks halving/doubling).
    pub algorithm: AllReduceAlgorithm,
    /// Fraction of agents participating each round (Table III uses 0.2).
    pub sampling_rate: f64,
    /// Profile churn policy (`None` = static environment).
    pub churn: Option<ChurnPolicy>,
    /// Candidate offloads to profile (`None` = every layer boundary).
    pub candidate_offloads: Option<Vec<usize>>,
    /// Learning curve for rounds-to-accuracy conversion.
    pub curve: LearningCurve,
    /// Mini-batch size used for profiling (the paper uses 100).
    pub batch_size: usize,
    /// How rounds aggregate: the classic barrier, a quorum/staleness
    /// semi-synchronous trigger, or fully asynchronous (no barrier). The
    /// non-synchronous modes carry stragglers' unfinished work into the
    /// next round instead of waiting for them.
    pub aggregation: AggregationMode,
    /// FedBuff-style staleness decay exponent: updates arriving `s` rounds
    /// after their aggregation contribute `(1 + s)^(-staleness_decay)`
    /// learning progress ([`crate::staleness_weight`]). Zero ignores
    /// staleness; the default 0.5 is the literature's common square-root
    /// discount. Only the non-synchronous modes produce stale updates.
    pub staleness_decay: f64,
    /// Event granularity of the round engine: exact per-batch events, or
    /// closed-form coarse events for undisrupted pairings (the fleet-scale
    /// default; see [`EventGranularity`]).
    pub granularity: EventGranularity,
    /// Threads used to prepare pair pipelines each round
    /// ([`EventRound::pair_threads`]). Results are bit-for-bit identical
    /// for any value; 1 (the default) prepares inline.
    pub threads: usize,
    /// Diurnal time-varying bandwidth (`None` = stationary links). Applied
    /// by the clock-owning harness ([`crate::FleetSim`] and the sweep
    /// runner) as a link scale on the world at each round start.
    pub diurnal: Option<DiurnalCycle>,
    /// Rotating correlated regional outages (`None` = never partitioned).
    /// Applied by the clock-owning harness like [`ComDmlConfig::diurnal`].
    pub partition: Option<PartitionSchedule>,
    /// Byzantine agents misreporting speed to the pairing broadcast
    /// (`None` = everyone honest). The liar set is salted by the scenario
    /// seed where one is available (the fleet harness), else 0.
    pub byzantine: Option<ByzantineConfig>,
}

impl Default for ComDmlConfig {
    fn default() -> Self {
        Self {
            model: ModelSpec::resnet56(),
            calibration: CostCalibration::default(),
            algorithm: AllReduceAlgorithm::HalvingDoubling,
            sampling_rate: 1.0,
            churn: Some(ChurnPolicy::default()),
            candidate_offloads: None,
            curve: LearningCurve::cifar10(true),
            batch_size: 100,
            aggregation: AggregationMode::Synchronous,
            staleness_decay: 0.5,
            granularity: EventGranularity::Fine,
            threads: 1,
            diurnal: None,
            partition: None,
            byzantine: None,
        }
    }
}

/// A method that can simulate the wall-clock cost of one training round —
/// the interface shared by ComDML and all baselines so the experiment
/// harness treats them uniformly.
pub trait RoundEngine {
    /// Method name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Rounds-to-accuracy efficiency relative to full synchronous averaging
    /// (1.0 for FedAvg-style methods; below 1 for partial-mixing gossip).
    fn rounds_factor(&self) -> f64 {
        1.0
    }

    /// Simulated seconds consumed by round `round` (mutating `world` for
    /// churn/sampling effects).
    fn round_time_s(&mut self, world: &mut World, round: usize) -> f64;

    /// Simulated seconds for round `round` over an *externally chosen*
    /// participant set: the uniform entry point the elastic-fleet and sweep
    /// harnesses drive every method through. The harness owns membership,
    /// profile churn and participation sampling, so engines must price
    /// exactly the given participants and must not re-apply their own
    /// policies here.
    fn round_time_for(&mut self, world: &World, round: usize, participants: &[AgentId]) -> f64;

    /// Simulates round `round` over `participants` and reports the round
    /// time *paired with* the realized effective-progress inputs a
    /// [`LearningModel`] accumulates — the round-driven replacement for
    /// projecting accuracy from [`RoundEngine::rounds_factor`] after the
    /// fact.
    ///
    /// The default pairs [`RoundEngine::round_time_for`] with the engine's
    /// analytic factor (exact for every closed-form baseline, whose
    /// efficiency is round-invariant) and reports an idle round when the
    /// participant set is empty — time may pass, but nothing is learned.
    /// Engines whose efficiency varies round to round (ComDML's event
    /// rounds under semi-sync/async staleness) override this.
    fn round_progress_for(
        &mut self,
        world: &World,
        round: usize,
        participants: &[AgentId],
    ) -> RoundProgress {
        let round_s = self.round_time_for(world, round, participants);
        if participants.is_empty() {
            return RoundProgress::idle(round_s);
        }
        RoundProgress::fresh(round_s, self.rounds_factor(), participants.len())
    }
}

/// Result of driving a [`RoundEngine`] to a target accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeToAccuracy {
    /// Method name.
    pub method: String,
    /// Rounds executed.
    pub rounds: usize,
    /// Total simulated seconds.
    pub total_time_s: f64,
    /// Mean seconds per round.
    pub mean_round_s: f64,
}

/// Drives `engine` on a clone of `world` until `curve` says `target`
/// accuracy is reached, accumulating simulated time.
///
/// # Panics
///
/// Panics if `target` exceeds the curve's asymptote.
pub fn time_to_accuracy(
    engine: &mut dyn RoundEngine,
    world: &World,
    curve: &LearningCurve,
    target: f64,
) -> TimeToAccuracy {
    let rounds = curve.rounds_to(target, engine.rounds_factor());
    let mut world = world.clone();
    let mut total = 0.0;
    for r in 0..rounds {
        total += engine.round_time_s(&mut world, r);
    }
    TimeToAccuracy {
        method: engine.name().to_string(),
        rounds,
        total_time_s: total,
        mean_round_s: total / rounds as f64,
    }
}

/// Report of one end-to-end ComDML run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComDmlReport {
    /// Rounds executed.
    pub rounds: usize,
    /// Total simulated seconds.
    pub total_time_s: f64,
    /// Mean seconds per round.
    pub mean_round_s: f64,
    /// Mean offloading pairs per round.
    pub mean_offloads: f64,
    /// Combined idle seconds over the whole run.
    pub total_idle_s: f64,
    /// Combined critical-path communication seconds over the whole run.
    pub total_comm_s: f64,
}

/// The ComDML method: decentralized pairing + local-loss split training +
/// AllReduce aggregation, simulated round by round.
#[derive(Debug, Clone)]
pub struct ComDml {
    config: ComDmlConfig,
    profile: SplitProfile,
    scheduler: PairingScheduler,
    last_outcome: Option<RoundOutcome>,
    last_report: Option<EventRoundReport>,
    /// Per-agent head starts carried between rounds by the semi-sync and
    /// async aggregation modes (empty under the synchronous barrier).
    ready_at: HashMap<AgentId, f64>,
    /// Sum of per-round staleness-weighted efficiencies (see
    /// [`EventRoundReport::efficiency`]) over `rounds_seen` rounds.
    efficiency_sum: f64,
    rounds_seen: usize,
}

impl ComDml {
    /// Builds the method, profiling all candidate splits up front (the
    /// paper's "prior to the training process" profiling step).
    pub fn new(config: ComDmlConfig) -> Self {
        let full = SplitProfile::new(&config.model, config.batch_size);
        let profile = match &config.candidate_offloads {
            Some(c) => full.restrict_to(c),
            None => full,
        };
        let scheduler = match config.byzantine {
            Some(b) => PairingScheduler::with_misreport(b, 0),
            None => PairingScheduler::new(),
        };
        Self {
            config,
            profile,
            scheduler,
            last_outcome: None,
            last_report: None,
            ready_at: HashMap::new(),
            efficiency_sum: 0.0,
            rounds_seen: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ComDmlConfig {
        &self.config
    }

    /// The split profile in use.
    pub fn profile(&self) -> &SplitProfile {
        &self.profile
    }

    /// The outcome of the most recent simulated round, if any.
    pub fn last_outcome(&self) -> Option<&RoundOutcome> {
        self.last_outcome.as_ref()
    }

    /// The full event-engine report of the most recent round (aggregation
    /// cohort, spill-over, repairs), if any.
    pub fn last_report(&self) -> Option<&EventRoundReport> {
        self.last_report.as_ref()
    }

    /// Simulates one round on `world` (applying churn and sampling) and
    /// returns its outcome.
    ///
    /// The round executes on the discrete-event engine under the configured
    /// [`AggregationMode`]; semi-synchronous and asynchronous modes carry
    /// stragglers' unfinished work into the next call as per-agent head
    /// starts.
    pub fn run_round(&mut self, world: &mut World, round: usize) -> RoundOutcome {
        if let Some(churn) = self.config.churn {
            if churn.interval > 0 && round > 0 && round.is_multiple_of(churn.interval) {
                world.churn_profiles(churn.fraction);
            }
        }
        let participants: Vec<AgentId> = if self.config.sampling_rate < 1.0 {
            world.sample_participants(self.config.sampling_rate)
        } else {
            world.agents().iter().map(|a| a.id).collect()
        };
        self.run_round_with(world, &participants)
    }

    /// Simulates one round over an externally chosen participant set —
    /// churn and sampling are the caller's business (the elastic-fleet and
    /// sweep harnesses pick membership themselves; [`ComDml::run_round`]
    /// applies this config's policies and delegates here).
    pub fn run_round_with(&mut self, world: &World, participants: &[AgentId]) -> RoundOutcome {
        let estimator =
            TrainingTimeEstimator::new(&self.config.model, &self.profile, &self.config.calibration);
        let pairing_timer = comdml_obs::phase("comdml.pairing");
        let pairings = self.scheduler.pair(world, participants, &estimator);
        drop(pairing_timer);
        let round_timer = comdml_obs::phase("comdml.round");
        let report = EventRound::new(
            world,
            &pairings,
            &estimator,
            &self.config.calibration,
            self.config.algorithm,
        )
        .mode(self.config.aggregation)
        .granularity(self.config.granularity)
        .pair_threads(self.config.threads)
        .ready_at(std::mem::take(&mut self.ready_at))
        .run();
        drop(round_timer);
        self.ready_at = report
            .spill_s
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s > 0.0)
            .map(|(i, &s)| (AgentId(i), s))
            .collect();
        self.efficiency_sum += report.efficiency(self.config.staleness_decay);
        self.rounds_seen += 1;
        let outcome = report.outcome.clone();
        self.last_report = Some(report);
        self.last_outcome = Some(outcome.clone());
        outcome
    }

    /// Runs to `target` accuracy on a clone of `world` and reports totals.
    ///
    /// Rounds advance a [`LearningModel`] with their staleness-weighted
    /// *effective* progress ([`EventRoundReport::progress`]): under the
    /// synchronous barrier every round counts fully and the round count
    /// matches the curve's prediction exactly; semi-synchronous and
    /// asynchronous runs need more wall rounds because stale updates
    /// advance the curve less. A safety cap of 20× the nominal round count
    /// bounds pathological configs.
    ///
    /// # Panics
    ///
    /// Panics if `target` exceeds the configured curve's asymptote.
    pub fn run(&mut self, world: &World, target: f64) -> ComDmlReport {
        let mut model = LearningModel::new(self.config.curve, target);
        let cap = (model.needed_effective_rounds() * 20.0).ceil() as usize;
        let mut world = world.clone();
        let mut total = 0.0;
        let mut idle = 0.0;
        let mut comm = 0.0;
        let mut offloads = 0usize;
        let mut rounds = 0usize;
        while !model.reached() && rounds < cap {
            let outcome = self.run_round(&mut world, rounds);
            let report = self.last_report.as_ref().expect("round just ran");
            model.observe(&report.progress(self.config.staleness_decay));
            total += outcome.round_s();
            idle += outcome.total_idle_s();
            comm += outcome.total_comm_s();
            offloads += outcome.num_offloads;
            rounds += 1;
        }
        ComDmlReport {
            rounds,
            total_time_s: total,
            mean_round_s: total / rounds.max(1) as f64,
            mean_offloads: offloads as f64 / rounds.max(1) as f64,
            total_idle_s: idle,
            total_comm_s: comm,
        }
    }
}

impl RoundEngine for ComDml {
    fn name(&self) -> &'static str {
        "ComDML"
    }

    /// Running mean of the staleness-weighted per-round efficiency: 1.0
    /// before any round ran (and always, under the synchronous barrier);
    /// below 1.0 once semi-sync or async rounds produced stale updates.
    fn rounds_factor(&self) -> f64 {
        if self.rounds_seen == 0 {
            1.0
        } else {
            self.efficiency_sum / self.rounds_seen as f64
        }
    }

    fn round_time_s(&mut self, world: &mut World, round: usize) -> f64 {
        self.run_round(world, round).round_s()
    }

    fn round_time_for(&mut self, world: &World, _round: usize, participants: &[AgentId]) -> f64 {
        self.run_round_with(world, participants).round_s()
    }

    /// One event round's *realized* progress: unlike the closed-form
    /// baselines, ComDML's efficiency varies round to round with the
    /// staleness distribution of the aggregation cohort.
    fn round_progress_for(
        &mut self,
        world: &World,
        _round: usize,
        participants: &[AgentId],
    ) -> RoundProgress {
        let _ = self.run_round_with(world, participants);
        let report = self.last_report.as_ref().expect("round just ran");
        report.progress(self.config.staleness_decay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comdml_simnet::WorldConfig;

    #[test]
    fn run_produces_positive_times() {
        let world = WorldConfig::heterogeneous(10, 1).build();
        let report = ComDml::new(ComDmlConfig::default()).run(&world, 0.80);
        assert!(report.total_time_s > 0.0);
        assert!(report.rounds > 0);
        assert!(report.mean_offloads > 0.0, "heterogeneous world should offload");
    }

    #[test]
    fn comdml_beats_no_balancing_on_heterogeneous_world() {
        let world = WorldConfig::heterogeneous(10, 2).build();
        let mut comdml = ComDml::new(ComDmlConfig { churn: None, ..ComDmlConfig::default() });
        let report = comdml.run(&world, 0.80);

        // "No balancing": every agent trains alone; round time is the
        // straggler's solo time.
        let cfg = ComDmlConfig::default();
        let profile = SplitProfile::new(&cfg.model, cfg.batch_size);
        let est = TrainingTimeEstimator::new(&cfg.model, &profile, &cfg.calibration);
        let straggler = world.agents().iter().map(|a| est.solo_time_s(a)).fold(0.0, f64::max);
        assert!(
            report.mean_round_s < straggler * 0.8,
            "balanced round {} vs straggler {straggler}",
            report.mean_round_s
        );
    }

    #[test]
    fn sampling_reduces_participants() {
        let world = WorldConfig::heterogeneous(50, 3).build();
        let mut comdml = ComDml::new(ComDmlConfig {
            sampling_rate: 0.2,
            churn: None,
            ..ComDmlConfig::default()
        });
        let mut w = world.clone();
        let outcome = comdml.run_round(&mut w, 0);
        assert_eq!(outcome.agent_stats.len(), 10);
    }

    #[test]
    fn churn_triggers_on_interval() {
        let world = WorldConfig::heterogeneous(20, 4).build();
        let mut comdml = ComDml::new(ComDmlConfig {
            churn: Some(ChurnPolicy { interval: 5, fraction: 0.5 }),
            ..ComDmlConfig::default()
        });
        let mut w = world.clone();
        let before: Vec<_> = w.agents().iter().map(|a| a.profile).collect();
        for r in 0..6 {
            comdml.run_round(&mut w, r);
        }
        let after: Vec<_> = w.agents().iter().map(|a| a.profile).collect();
        assert_ne!(before, after, "churn at round 5 should change profiles");
    }

    #[test]
    fn time_to_accuracy_harness_runs_engines() {
        let world = WorldConfig::heterogeneous(10, 5).build();
        let mut engine = ComDml::new(ComDmlConfig { churn: None, ..ComDmlConfig::default() });
        let t = time_to_accuracy(&mut engine, &world, &LearningCurve::cifar10(true), 0.80);
        assert_eq!(t.method, "ComDML");
        assert!(t.total_time_s > 0.0);
        assert!((t.mean_round_s * t.rounds as f64 - t.total_time_s).abs() < 1e-6);
    }

    #[test]
    fn round_progress_reports_realized_efficiency() {
        let world = WorldConfig::heterogeneous(12, 7).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let mut engine = ComDml::new(ComDmlConfig { churn: None, ..ComDmlConfig::default() });
        let p = engine.round_progress_for(&world, 0, &ids);
        assert!((p.efficiency - 1.0).abs() < 1e-12, "sync barrier is fully fresh");
        assert_eq!(p.participants, 12);
        assert_eq!(p.cohort, 12);
        assert_eq!(p.disruptions, 0);
        assert!(p.round_s > 0.0);

        let mut semi = ComDml::new(ComDmlConfig {
            churn: None,
            aggregation: AggregationMode::SemiSynchronous { quorum: 0.5, staleness_s: f64::MAX },
            ..ComDmlConfig::default()
        });
        let sp = semi.round_progress_for(&world, 0, &ids);
        assert!(
            sp.efficiency < 1.0,
            "stragglers past the quorum spill and discount efficiency, got {}",
            sp.efficiency
        );
        assert!(sp.cohort < sp.participants, "quorum cohort excludes stragglers");
    }

    #[test]
    fn restricted_candidates_are_respected() {
        let world = WorldConfig::heterogeneous(10, 6).build();
        let mut comdml = ComDml::new(ComDmlConfig {
            candidate_offloads: Some(vec![10, 28, 46]),
            churn: None,
            ..ComDmlConfig::default()
        });
        let mut w = world.clone();
        comdml.run_round(&mut w, 0);
        assert_eq!(comdml.profile().len(), 4); // 0 plus the three candidates
    }
}
