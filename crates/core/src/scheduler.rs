use comdml_simnet::{AgentId, World};

use crate::{SplitDecision, TrainingTimeEstimator};

/// One scheduling decision: a slow agent, its chosen helper (if any), the
/// split, and the estimated completion time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pairing {
    /// The agent whose task is being scheduled.
    pub slow: AgentId,
    /// The helper the suffix is offloaded to (`None` = trains alone).
    pub fast: Option<AgentId>,
    /// Number of offloaded layers (0 when training alone).
    pub offload: usize,
    /// Estimated completion time in seconds (Algorithm 1's `τ̂`).
    pub est_time_s: f64,
}

impl Pairing {
    /// Whether this decision offloads work.
    pub fn is_offloading(&self) -> bool {
        self.fast.is_some() && self.offload > 0
    }
}

/// The dynamic decentralized pairing scheduler (§IV-A, Algorithm 1).
///
/// Every round, agents broadcast their processing speed and estimated solo
/// training time; the scheduler walks the agents in descending order of solo
/// time ("prioritizing the slowest agent first") and lets each still-unpaired
/// agent pick the unpaired, reachable neighbour and split that minimize its
/// estimated time. An agent pairs only when the best option beats training
/// alone; otherwise it trains independently.
///
/// The implementation is deliberately a pure function of shared, local
/// information (speeds, solo times, link speeds) — exactly what each agent
/// could compute for itself in the decentralized protocol.
///
/// # Example
///
/// ```
/// use comdml_core::{PairingScheduler, TrainingTimeEstimator};
/// use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
/// use comdml_simnet::WorldConfig;
///
/// let spec = ModelSpec::resnet56();
/// let profile = SplitProfile::new(&spec, 100);
/// let cal = CostCalibration::default();
/// let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
/// let world = WorldConfig::heterogeneous(10, 1).build();
/// let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
/// let pairings = PairingScheduler::new().pair(&world, &ids, &est);
/// assert_eq!(pairings.iter().map(|p| 1 + p.fast.is_some() as usize).sum::<usize>(), 10);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PairingScheduler {
    _private: (),
}

impl PairingScheduler {
    /// Creates a scheduler.
    pub fn new() -> Self {
        Self { _private: () }
    }

    /// Runs one round of pairing over `participants`.
    ///
    /// Returns one [`Pairing`] per *slow* agent; agents that act as helpers
    /// appear only in the `fast` field of their partner's pairing. Every
    /// participant appears exactly once across the result.
    pub fn pair(
        &self,
        world: &World,
        participants: &[AgentId],
        estimator: &TrainingTimeEstimator<'_>,
    ) -> Vec<Pairing> {
        // Step 1 (line 2): agents broadcast p and τ̂ — here, compute solo
        // times for everyone.
        let mut order: Vec<(AgentId, f64)> = participants
            .iter()
            .map(|&id| (id, estimator.solo_time_s(world.agent(id))))
            .collect();
        // Descending order of task completion time (list A).
        order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

        let mut paired: Vec<AgentId> = Vec::new();
        let mut out = Vec::new();
        for &(i, solo_i) in &order {
            if paired.contains(&i) {
                continue;
            }
            // Line 10: all unpaired connected j.
            let slow_state = world.agent(i);
            let mut best: Option<(AgentId, SplitDecision)> = None;
            for &(j, solo_j) in &order {
                if j == i || paired.contains(&j) {
                    continue;
                }
                let link = world.link_mbps(i, j);
                if link <= 0.0 {
                    continue;
                }
                let d = estimator.estimate(slow_state, world.agent(j), solo_j, link);
                if d.offload == 0 {
                    continue;
                }
                let better = match &best {
                    Some((_, cur)) => d.est_time_s < cur.est_time_s,
                    None => true,
                };
                if better {
                    best = Some((j, d));
                }
            }
            match best {
                // Lines 13-14: pair with j* when offloading wins.
                Some((j, d)) if d.est_time_s < solo_i => {
                    paired.push(i);
                    paired.push(j);
                    out.push(Pairing {
                        slow: i,
                        fast: Some(j),
                        offload: d.offload,
                        est_time_s: d.est_time_s,
                    });
                }
                _ => {
                    paired.push(i);
                    out.push(Pairing { slow: i, fast: None, offload: 0, est_time_s: solo_i });
                }
            }
        }
        out
    }
}

/// Alternative pairing orders used by the ablation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairingOrder {
    /// The paper's slowest-first order.
    SlowestFirst,
    /// Agents pair in id order (what a naive static scheme does).
    ByAgentId,
}

impl PairingScheduler {
    /// Like [`PairingScheduler::pair`] but with a configurable visit order —
    /// used by the ablation study to quantify the value of slowest-first.
    pub fn pair_with_order(
        &self,
        world: &World,
        participants: &[AgentId],
        estimator: &TrainingTimeEstimator<'_>,
        order_kind: PairingOrder,
    ) -> Vec<Pairing> {
        match order_kind {
            PairingOrder::SlowestFirst => self.pair(world, participants, estimator),
            PairingOrder::ByAgentId => {
                let mut sorted = participants.to_vec();
                sorted.sort();
                // Re-use the core loop by temporarily constructing an order
                // by id: emulate by calling pair on a world where solo times
                // are ignored. Simplest correct approach: replicate the loop.
                let mut paired: Vec<AgentId> = Vec::new();
                let mut out = Vec::new();
                let solo: Vec<(AgentId, f64)> = sorted
                    .iter()
                    .map(|&id| (id, estimator.solo_time_s(world.agent(id))))
                    .collect();
                for &(i, solo_i) in &solo {
                    if paired.contains(&i) {
                        continue;
                    }
                    let mut best: Option<(AgentId, SplitDecision)> = None;
                    for &(j, solo_j) in &solo {
                        if j == i || paired.contains(&j) {
                            continue;
                        }
                        let link = world.link_mbps(i, j);
                        if link <= 0.0 {
                            continue;
                        }
                        let d = estimator.estimate(world.agent(i), world.agent(j), solo_j, link);
                        if d.offload == 0 {
                            continue;
                        }
                        if best.map_or(true, |(_, cur)| d.est_time_s < cur.est_time_s) {
                            best = Some((j, d));
                        }
                    }
                    match best {
                        Some((j, d)) if d.est_time_s < solo_i => {
                            paired.push(i);
                            paired.push(j);
                            out.push(Pairing {
                                slow: i,
                                fast: Some(j),
                                offload: d.offload,
                                est_time_s: d.est_time_s,
                            });
                        }
                        _ => {
                            paired.push(i);
                            out.push(Pairing {
                                slow: i,
                                fast: None,
                                offload: 0,
                                est_time_s: solo_i,
                            });
                        }
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
    use comdml_simnet::{Adjacency, AgentProfile, AgentState, WorldConfig};

    fn fixtures() -> (ModelSpec, SplitProfile, CostCalibration) {
        let spec = ModelSpec::resnet56();
        let profile = SplitProfile::new(&spec, 100);
        (spec, profile, CostCalibration::default())
    }

    fn two_agent_world(cpu_a: f64, cpu_b: f64, link: f64) -> World {
        let agents = vec![
            AgentState::new(AgentId(0), AgentProfile::new(cpu_a, link), 5000, 100),
            AgentState::new(AgentId(1), AgentProfile::new(cpu_b, link), 5000, 100),
        ];
        let adj = Adjacency::from_matrix(vec![vec![false, true], vec![true, false]]);
        World::from_parts(agents, adj, 0)
    }

    #[test]
    fn every_participant_appears_exactly_once() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(20, 3).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let pairings = PairingScheduler::new().pair(&world, &ids, &est);
        let mut seen = Vec::new();
        for p in &pairings {
            assert!(!seen.contains(&p.slow));
            seen.push(p.slow);
            if let Some(f) = p.fast {
                assert!(!seen.contains(&f));
                seen.push(f);
            }
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn heterogeneous_pair_offloads() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = two_agent_world(0.2, 4.0, 100.0);
        let pairings = PairingScheduler::new().pair(
            &world,
            &[AgentId(0), AgentId(1)],
            &est,
        );
        assert_eq!(pairings.len(), 1);
        let p = pairings[0];
        assert_eq!(p.slow, AgentId(0));
        assert_eq!(p.fast, Some(AgentId(1)));
        assert!(p.offload > 0);
    }

    #[test]
    fn homogeneous_agents_train_alone() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = two_agent_world(1.0, 1.0, 100.0);
        let pairings = PairingScheduler::new().pair(&world, &[AgentId(0), AgentId(1)], &est);
        assert_eq!(pairings.len(), 2);
        assert!(pairings.iter().all(|p| p.fast.is_none()));
    }

    #[test]
    fn disconnected_agents_cannot_pair() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let agents = vec![
            AgentState::new(AgentId(0), AgentProfile::new(0.2, 100.0), 5000, 100),
            AgentState::new(AgentId(1), AgentProfile::new(4.0, 100.0), 5000, 100),
        ];
        // No topology edge between them.
        let adj = Adjacency::from_matrix(vec![vec![false, false], vec![false, false]]);
        let world = World::from_parts(agents, adj, 0);
        let pairings = PairingScheduler::new().pair(&world, &[AgentId(0), AgentId(1)], &est);
        assert!(pairings.iter().all(|p| p.fast.is_none()));
    }

    #[test]
    fn slowest_agent_gets_first_pick() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        // One very fast helper, two slow agents; the slowest must claim it.
        let agents = vec![
            AgentState::new(AgentId(0), AgentProfile::new(0.5, 100.0), 5000, 100),
            AgentState::new(AgentId(1), AgentProfile::new(0.2, 100.0), 5000, 100),
            AgentState::new(AgentId(2), AgentProfile::new(4.0, 100.0), 2000, 100),
        ];
        let adj = Adjacency::from_matrix(vec![
            vec![false, true, true],
            vec![true, false, true],
            vec![true, true, false],
        ]);
        let world = World::from_parts(agents, adj, 0);
        let pairings =
            PairingScheduler::new().pair(&world, &[AgentId(0), AgentId(1), AgentId(2)], &est);
        let offloader = pairings.iter().find(|p| p.fast.is_some()).expect("one pair forms");
        assert_eq!(offloader.slow, AgentId(1), "the 0.2-CPU agent pairs first");
        assert_eq!(offloader.fast, Some(AgentId(2)));
    }

    #[test]
    fn pairing_reduces_estimated_makespan() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(10, 7).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let pairings = PairingScheduler::new().pair(&world, &ids, &est);
        let max_est = pairings.iter().map(|p| p.est_time_s).fold(0.0, f64::max);
        let max_solo = ids
            .iter()
            .map(|&id| est.solo_time_s(world.agent(id)))
            .fold(0.0, f64::max);
        assert!(
            max_est < max_solo,
            "balancing should shrink the straggler: {max_est} vs {max_solo}"
        );
    }

    #[test]
    fn id_order_is_no_better_than_slowest_first() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(20, 9).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let sched = PairingScheduler::new();
        let slowest =
            sched.pair_with_order(&world, &ids, &est, PairingOrder::SlowestFirst);
        let by_id = sched.pair_with_order(&world, &ids, &est, PairingOrder::ByAgentId);
        let makespan =
            |ps: &[Pairing]| ps.iter().map(|p| p.est_time_s).fold(0.0, f64::max);
        assert!(makespan(&slowest) <= makespan(&by_id) + 1e-9);
    }
}
