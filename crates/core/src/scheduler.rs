use std::collections::HashMap;

use comdml_simnet::{AgentId, AgentState, ByzantineConfig, World};

use crate::{EstimateMemo, FnvBuildHasher, SplitDecision, TrainingTimeEstimator};

/// One scheduling decision: a slow agent, its chosen helper (if any), the
/// split, and the estimated completion time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pairing {
    /// The agent whose task is being scheduled.
    pub slow: AgentId,
    /// The helper the suffix is offloaded to (`None` = trains alone).
    pub fast: Option<AgentId>,
    /// Number of offloaded layers (0 when training alone).
    pub offload: usize,
    /// Estimated completion time in seconds (Algorithm 1's `τ̂`).
    pub est_time_s: f64,
}

impl Pairing {
    /// Whether this decision offloads work.
    pub fn is_offloading(&self) -> bool {
        self.fast.is_some() && self.offload > 0
    }
}

/// Alternative pairing orders used by the ablation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairingOrder {
    /// The paper's slowest-first order.
    SlowestFirst,
    /// Agents pair in id order (what a naive static scheme does).
    ByAgentId,
}

/// The dynamic decentralized pairing scheduler (§IV-A, Algorithm 1).
///
/// Every round, agents broadcast their processing speed and estimated solo
/// training time; the scheduler walks the agents in descending order of solo
/// time ("prioritizing the slowest agent first") and lets each still-unpaired
/// agent pick the unpaired, reachable neighbour and split that minimize its
/// estimated time. An agent pairs only when the best option beats training
/// alone; otherwise it trains independently.
///
/// The implementation is deliberately a pure function of shared, local
/// information (speeds, solo times, link speeds) — exactly what each agent
/// could compute for itself in the decentralized protocol.
///
/// # Byzantine misreports
///
/// Because the scheduler trusts the broadcast, it is exactly where lying
/// pays off: [`PairingScheduler::with_misreport`] substitutes a deterministic
/// fraction of agents' *advertised* speeds (and hence their broadcast `τ̂`)
/// with `speed_factor ×` the truth. Every scheduling input — visit order,
/// helper choice, split selection, estimated times — then sees the lie,
/// while round *execution* always runs on the true profiles, so misreports
/// degrade realized round times without touching the physics.
///
/// # Scaling
///
/// Paired-membership checks use O(1) indexed flags, and candidate search is
/// driven by sorted candidate lists with two exact prunes:
///
/// * a candidate whose own task `τ̂ⱼ` already exceeds the best estimate so
///   far can never win (the fast arm of line 18 is bounded below by `τ̂ⱼ`);
/// * on a full mesh, within a `(CPU, link, batch size)` profile class the
///   unpaired candidate with the smallest `τ̂ⱼ` dominates every other
///   member, so at most one estimator call per class is needed.
///
/// Together these take one pairing round from the seed's O(n³)-flavoured
/// scan to roughly O(n·(C + log n)) for C profile classes — the 10,000-agent
/// scalability benchmark (`cargo run --release --bin scalability_10k`) runs
/// entire 100-round simulations on this path.
///
/// # Example
///
/// ```
/// use comdml_core::{PairingScheduler, TrainingTimeEstimator};
/// use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
/// use comdml_simnet::WorldConfig;
///
/// let spec = ModelSpec::resnet56();
/// let profile = SplitProfile::new(&spec, 100);
/// let cal = CostCalibration::default();
/// let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
/// let world = WorldConfig::heterogeneous(10, 1).build();
/// let ids: Vec<_> = world.agents().iter().map(|a| a.id).collect();
/// let pairings = PairingScheduler::new().pair(&world, &ids, &est);
/// assert_eq!(pairings.iter().map(|p| 1 + p.fast.is_some() as usize).sum::<usize>(), 10);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PairingScheduler {
    /// Byzantine speed misreporting applied to the broadcast, as
    /// `(config, salt)`; `None` = everyone is honest.
    misreport: Option<(ByzantineConfig, u64)>,
}

/// The pairing broadcast as the scheduler sees it: true agent states with
/// each liar's advertised state substituted. With no misreport configured
/// the spoof table is empty and every lookup returns the world's state
/// directly, so honest rounds are bit-for-bit unchanged.
struct Broadcast<'w> {
    world: &'w World,
    spoofed: HashMap<usize, AgentState, FnvBuildHasher>,
}

impl<'w> Broadcast<'w> {
    fn new(
        world: &'w World,
        misreport: Option<(ByzantineConfig, u64)>,
        participants: &[AgentId],
    ) -> Self {
        let mut spoofed: HashMap<usize, AgentState, FnvBuildHasher> = HashMap::default();
        if let Some((b, salt)) = misreport {
            if b.fraction > 0.0 && b.speed_factor != 1.0 {
                for &id in participants {
                    if b.is_liar(id.0, salt) {
                        let mut a = world.agent(id).clone();
                        a.profile.cpus *= b.speed_factor;
                        spoofed.insert(id.0, a);
                    }
                }
            }
        }
        Self { world, spoofed }
    }

    /// The state agent `id` broadcast — advertised for liars, true otherwise.
    fn agent(&self, id: AgentId) -> &AgentState {
        if self.spoofed.is_empty() {
            return self.world.agent(id);
        }
        self.spoofed.get(&id.0).unwrap_or_else(|| self.world.agent(id))
    }
}

/// Sorted per-class candidate list with a lazily advancing cursor.
struct ClassList {
    /// `(solo_time, id)` ascending by solo time, ties by id.
    members: Vec<(f64, AgentId)>,
    cursor: usize,
}

impl ClassList {
    /// First unpaired member other than `skip`, without consuming unpaired
    /// entries (the cursor only advances past permanently paired agents).
    fn peek(&mut self, paired: &[bool], skip: AgentId) -> Option<(f64, AgentId)> {
        while self.cursor < self.members.len() && paired[self.members[self.cursor].1 .0] {
            self.cursor += 1;
        }
        let mut i = self.cursor;
        while i < self.members.len() {
            let (solo, id) = self.members[i];
            if !paired[id.0] && id != skip {
                return Some((solo, id));
            }
            i += 1;
        }
        None
    }
}

impl PairingScheduler {
    /// Creates a scheduler that trusts every broadcast.
    pub fn new() -> Self {
        Self { misreport: None }
    }

    /// Returns a scheduler whose broadcast is poisoned by Byzantine speed
    /// misreports: the deterministic liar set (`config.is_liar(id, salt)`)
    /// advertises `speed_factor ×` its true CPU speed. The salt is
    /// typically the scenario seed, so the liar set varies across seeds but
    /// is identical across threads and replays.
    pub fn with_misreport(config: ByzantineConfig, salt: u64) -> Self {
        Self { misreport: Some((config, salt)) }
    }

    /// Runs one round of pairing over `participants`, slowest first.
    ///
    /// Returns one [`Pairing`] per *slow* agent; agents that act as helpers
    /// appear only in the `fast` field of their partner's pairing. Every
    /// participant appears exactly once across the result.
    pub fn pair(
        &self,
        world: &World,
        participants: &[AgentId],
        estimator: &TrainingTimeEstimator<'_>,
    ) -> Vec<Pairing> {
        let mut memo = EstimateMemo::new();
        let bcast = Broadcast::new(world, self.misreport, participants);
        // Step 1 (line 2): agents broadcast p and τ̂ — compute solo times
        // from the *advertised* states (a liar's τ̂ reflects its lie).
        // Profiles come from small grids and dataset shares from a handful
        // of sizes, so the solo times take few distinct values: grouping by
        // exact value and sorting the distinct keys replaces the
        // O(n log n) comparison sort with O(n + d log d) for d values.
        let mut groups: HashMap<u64, Vec<AgentId>, FnvBuildHasher> = HashMap::default();
        for &id in participants {
            let solo = memo.solo_time_s(estimator, bcast.agent(id));
            groups.entry(solo.to_bits()).or_default().push(id);
        }
        let mut keys: Vec<u64> = groups.keys().copied().collect();
        // Descending order of task completion time (list A); solo times are
        // non-negative, never NaN, and distinct bit patterns are distinct
        // values, so this reproduces the old comparison sort exactly.
        keys.sort_unstable_by(|&a, &b| {
            f64::from_bits(b).partial_cmp(&f64::from_bits(a)).expect("solo times are never NaN")
        });
        let mut order: Vec<(AgentId, f64)> = Vec::with_capacity(participants.len());
        for key in keys {
            let mut ids = groups.remove(&key).expect("key came from the map");
            ids.sort_unstable(); // equal solo times tie-break on ascending id
            let solo = f64::from_bits(key);
            order.extend(ids.into_iter().map(|id| (id, solo)));
        }
        self.pair_ordered(&bcast, &order, estimator, &mut memo)
    }

    /// Like [`PairingScheduler::pair`] but with a configurable visit order —
    /// used by the ablation study to quantify the value of slowest-first.
    pub fn pair_with_order(
        &self,
        world: &World,
        participants: &[AgentId],
        estimator: &TrainingTimeEstimator<'_>,
        order_kind: PairingOrder,
    ) -> Vec<Pairing> {
        match order_kind {
            PairingOrder::SlowestFirst => self.pair(world, participants, estimator),
            PairingOrder::ByAgentId => {
                let mut memo = EstimateMemo::new();
                let bcast = Broadcast::new(world, self.misreport, participants);
                let mut sorted = participants.to_vec();
                sorted.sort();
                let order: Vec<(AgentId, f64)> = sorted
                    .into_iter()
                    .map(|id| (id, memo.solo_time_s(estimator, bcast.agent(id))))
                    .collect();
                self.pair_ordered(&bcast, &order, estimator, &mut memo)
            }
        }
    }

    /// The shared pairing loop: visits agents in the given order, finding
    /// each unpaired one its best unpaired partner.
    fn pair_ordered(
        &self,
        bcast: &Broadcast<'_>,
        order: &[(AgentId, f64)],
        estimator: &TrainingTimeEstimator<'_>,
        memo: &mut EstimateMemo,
    ) -> Vec<Pairing> {
        let world = bcast.world;
        let k = world.num_agents();
        let mut paired = vec![true; k];
        for &(id, _) in order {
            paired[id.0] = false; // participants start unpaired
        }
        let full_mesh = world.adjacency().is_full_mesh();

        // Full-mesh fast path: group candidates by (CPU, link) profile
        // class; within a class only the smallest-τ̂ⱼ unpaired member can
        // be optimal, so each class is one peek + at most one estimate.
        let mut classes: Vec<ClassList> = Vec::new();
        if full_mesh {
            let mut index: HashMap<(u64, u64, usize), usize> = HashMap::new();
            for &(id, solo) in order {
                let agent = bcast.agent(id);
                let prof = agent.profile;
                // batch_size feeds batches_per_s, so it is part of the class
                // identity: within a class the helper speed p_j is constant
                // and the smallest-τ̂ⱼ member dominates.
                let key = (prof.cpus.to_bits(), prof.link_mbps.to_bits(), agent.batch_size);
                let slot = *index.entry(key).or_insert_with(|| {
                    classes.push(ClassList { members: Vec::new(), cursor: 0 });
                    classes.len() - 1
                });
                classes[slot].members.push((solo, id));
            }
            for c in &mut classes {
                c.members.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
                });
            }
        }
        // Sparse fallback: solo times by id for neighbour scans.
        let mut solo_of: Vec<f64> = vec![f64::INFINITY; k];
        for &(id, solo) in order {
            solo_of[id.0] = solo;
        }

        let mut out = Vec::with_capacity(order.len());
        for &(i, solo_i) in order {
            if paired[i.0] {
                continue;
            }
            let slow_state = bcast.agent(i);
            let mut best: Option<(AgentId, SplitDecision)> = None;
            let mut best_time = solo_i;

            if full_mesh {
                // Ties in estimated time are broken by (τ̂ⱼ, id), matching
                // the ascending-scan order of the sparse path below.
                let mut best_key = (f64::INFINITY, f64::INFINITY, usize::MAX);
                for class in &mut classes {
                    let Some((solo_j, j)) = class.peek(&paired, i) else { continue };
                    // Exact prune: the fast arm strictly exceeds τ̂ⱼ, so a
                    // candidate this busy can never beat the current best.
                    if solo_j >= best_time {
                        continue;
                    }
                    let link = world.link_mbps(i, j);
                    if link <= 0.0 {
                        continue;
                    }
                    let d = memo.estimate(estimator, slow_state, bcast.agent(j), solo_j, link);
                    if d.offload == 0 || d.est_time_s >= solo_i {
                        continue;
                    }
                    let key = (d.est_time_s, solo_j, j.0);
                    if key < best_key {
                        best_key = key;
                        best_time = best_time.min(d.est_time_s);
                        best = Some((j, d));
                    }
                }
            } else {
                // Neighbour scan in ascending τ̂ⱼ with the same prune; once
                // τ̂ⱼ crosses the best estimate the rest cannot win.
                let mut neighbors: Vec<(f64, AgentId)> = world
                    .adjacency()
                    .neighbors_iter(i.0)
                    .map(AgentId)
                    .filter(|&j| !paired[j.0] && solo_of[j.0].is_finite())
                    .map(|j| (solo_of[j.0], j))
                    .collect();
                neighbors.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
                });
                for (solo_j, j) in neighbors {
                    if solo_j >= best_time {
                        break;
                    }
                    let link = world.link_mbps(i, j);
                    if link <= 0.0 {
                        continue;
                    }
                    let d = memo.estimate(estimator, slow_state, bcast.agent(j), solo_j, link);
                    if d.offload == 0 {
                        continue;
                    }
                    if d.est_time_s < best_time {
                        best_time = d.est_time_s;
                        best = Some((j, d));
                    }
                }
            }

            match best {
                // Lines 13-14: pair with j* when offloading wins.
                Some((j, d)) => {
                    paired[i.0] = true;
                    paired[j.0] = true;
                    out.push(Pairing {
                        slow: i,
                        fast: Some(j),
                        offload: d.offload,
                        est_time_s: d.est_time_s,
                    });
                }
                None => {
                    paired[i.0] = true;
                    out.push(Pairing { slow: i, fast: None, offload: 0, est_time_s: solo_i });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
    use comdml_simnet::{Adjacency, AgentProfile, AgentState, Topology, WorldConfig};

    fn fixtures() -> (ModelSpec, SplitProfile, CostCalibration) {
        let spec = ModelSpec::resnet56();
        let profile = SplitProfile::new(&spec, 100);
        (spec, profile, CostCalibration::default())
    }

    fn two_agent_world(cpu_a: f64, cpu_b: f64, link: f64) -> World {
        let agents = vec![
            AgentState::new(AgentId(0), AgentProfile::new(cpu_a, link), 5000, 100),
            AgentState::new(AgentId(1), AgentProfile::new(cpu_b, link), 5000, 100),
        ];
        let adj = Adjacency::from_matrix(vec![vec![false, true], vec![true, false]]);
        World::from_parts(agents, adj, 0)
    }

    #[test]
    fn every_participant_appears_exactly_once() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(20, 3).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let pairings = PairingScheduler::new().pair(&world, &ids, &est);
        let mut seen = Vec::new();
        for p in &pairings {
            assert!(!seen.contains(&p.slow));
            seen.push(p.slow);
            if let Some(f) = p.fast {
                assert!(!seen.contains(&f));
                seen.push(f);
            }
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn heterogeneous_pair_offloads() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = two_agent_world(0.2, 4.0, 100.0);
        let pairings = PairingScheduler::new().pair(&world, &[AgentId(0), AgentId(1)], &est);
        assert_eq!(pairings.len(), 1);
        let p = pairings[0];
        assert_eq!(p.slow, AgentId(0));
        assert_eq!(p.fast, Some(AgentId(1)));
        assert!(p.offload > 0);
    }

    #[test]
    fn homogeneous_agents_train_alone() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = two_agent_world(1.0, 1.0, 100.0);
        let pairings = PairingScheduler::new().pair(&world, &[AgentId(0), AgentId(1)], &est);
        assert_eq!(pairings.len(), 2);
        assert!(pairings.iter().all(|p| p.fast.is_none()));
    }

    #[test]
    fn disconnected_agents_cannot_pair() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let agents = vec![
            AgentState::new(AgentId(0), AgentProfile::new(0.2, 100.0), 5000, 100),
            AgentState::new(AgentId(1), AgentProfile::new(4.0, 100.0), 5000, 100),
        ];
        // No topology edge between them.
        let adj = Adjacency::from_matrix(vec![vec![false, false], vec![false, false]]);
        let world = World::from_parts(agents, adj, 0);
        let pairings = PairingScheduler::new().pair(&world, &[AgentId(0), AgentId(1)], &est);
        assert!(pairings.iter().all(|p| p.fast.is_none()));
    }

    #[test]
    fn slowest_agent_gets_first_pick() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        // One very fast helper, two slow agents; the slowest must claim it.
        let agents = vec![
            AgentState::new(AgentId(0), AgentProfile::new(0.5, 100.0), 5000, 100),
            AgentState::new(AgentId(1), AgentProfile::new(0.2, 100.0), 5000, 100),
            AgentState::new(AgentId(2), AgentProfile::new(4.0, 100.0), 2000, 100),
        ];
        let adj = Adjacency::from_matrix(vec![
            vec![false, true, true],
            vec![true, false, true],
            vec![true, true, false],
        ]);
        let world = World::from_parts(agents, adj, 0);
        let pairings =
            PairingScheduler::new().pair(&world, &[AgentId(0), AgentId(1), AgentId(2)], &est);
        let offloader = pairings.iter().find(|p| p.fast.is_some()).expect("one pair forms");
        assert_eq!(offloader.slow, AgentId(1), "the 0.2-CPU agent pairs first");
        assert_eq!(offloader.fast, Some(AgentId(2)));
    }

    #[test]
    fn pairing_reduces_estimated_makespan() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(10, 7).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let pairings = PairingScheduler::new().pair(&world, &ids, &est);
        let max_est = pairings.iter().map(|p| p.est_time_s).fold(0.0, f64::max);
        let max_solo = ids.iter().map(|&id| est.solo_time_s(world.agent(id))).fold(0.0, f64::max);
        assert!(
            max_est < max_solo,
            "balancing should shrink the straggler: {max_est} vs {max_solo}"
        );
    }

    #[test]
    fn id_order_is_no_better_than_slowest_first() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(20, 9).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let sched = PairingScheduler::new();
        let slowest = sched.pair_with_order(&world, &ids, &est, PairingOrder::SlowestFirst);
        let by_id = sched.pair_with_order(&world, &ids, &est, PairingOrder::ByAgentId);
        let makespan = |ps: &[Pairing]| ps.iter().map(|p| p.est_time_s).fold(0.0, f64::max);
        assert!(makespan(&slowest) <= makespan(&by_id) + 1e-9);
    }

    #[test]
    fn full_mesh_and_matrix_mesh_agree() {
        // The class-pruned fast path must pick the same matching as the
        // generic neighbour scan on an explicit all-ones matrix.
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        for seed in 0..10 {
            let implicit = WorldConfig::heterogeneous(24, seed).build();
            assert!(implicit.adjacency().is_full_mesh());
            let k = implicit.num_agents();
            let matrix: Vec<Vec<bool>> = (0..k).map(|i| (0..k).map(|j| i != j).collect()).collect();
            let explicit =
                World::from_parts(implicit.agents().to_vec(), Adjacency::from_matrix(matrix), seed);
            let ids: Vec<AgentId> = implicit.agents().iter().map(|a| a.id).collect();
            let sched = PairingScheduler::new();
            let a = sched.pair(&implicit, &ids, &est);
            let b = sched.pair(&explicit, &ids, &est);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn mixed_batch_sizes_keep_fast_path_exact() {
        // batches_per_s depends on batch_size, so it is part of the class
        // identity; agents sharing (CPU, link) but not batch size must not
        // shadow each other in the full-mesh fast path.
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let mut agents = Vec::new();
        for i in 0..12 {
            let cpus = [0.2, 0.5, 4.0][i % 3];
            let batch = [50, 100][i % 2];
            agents.push(AgentState::new(AgentId(i), AgentProfile::new(cpus, 100.0), 5000, batch));
        }
        let k = agents.len();
        let implicit = World::from_parts(agents.clone(), Adjacency::full(k), 1);
        let matrix: Vec<Vec<bool>> = (0..k).map(|i| (0..k).map(|j| i != j).collect()).collect();
        let explicit = World::from_parts(agents, Adjacency::from_matrix(matrix), 1);
        let ids: Vec<AgentId> = (0..k).map(AgentId).collect();
        let sched = PairingScheduler::new();
        assert_eq!(sched.pair(&implicit, &ids, &est), sched.pair(&explicit, &ids, &est));
    }

    #[test]
    fn zero_fraction_misreport_is_bit_identical_to_honest() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(20, 3).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let honest = PairingScheduler::new().pair(&world, &ids, &est);
        let zero = PairingScheduler::with_misreport(
            ByzantineConfig { fraction: 0.0, speed_factor: 4.0 },
            7,
        )
        .pair(&world, &ids, &est);
        let unit = PairingScheduler::with_misreport(
            ByzantineConfig { fraction: 0.5, speed_factor: 1.0 },
            7,
        )
        .pair(&world, &ids, &est);
        assert_eq!(honest, zero);
        assert_eq!(honest, unit, "speed_factor 1.0 is not a lie");
    }

    #[test]
    fn liar_advertising_speed_attracts_an_offload() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        // Agent 1 is truly as slow as agent 0 (no pairing wins honestly),
        // but a lying agent 1 advertising 20× speed looks like a great
        // helper — the scheduler falls for it.
        let world = two_agent_world(0.2, 0.2, 100.0);
        let honest = PairingScheduler::new().pair(&world, &[AgentId(0), AgentId(1)], &est);
        assert!(honest.iter().all(|p| p.fast.is_none()), "equals never pair honestly");
        // Find a salt whose liar set is exactly {agent 1}.
        let b = ByzantineConfig { fraction: 0.5, speed_factor: 20.0 };
        let salt = (0..200u64)
            .find(|&s| !b.is_liar(0, s) && b.is_liar(1, s))
            .expect("some salt selects only agent 1");
        let fooled =
            PairingScheduler::with_misreport(b, salt).pair(&world, &[AgentId(0), AgentId(1)], &est);
        let p = fooled.iter().find(|p| p.fast.is_some()).expect("the lie attracts an offload");
        assert_eq!(p.slow, AgentId(0));
        assert_eq!(p.fast, Some(AgentId(1)));
        assert!(p.offload > 0);
        assert!(
            p.est_time_s < honest[0].est_time_s,
            "the advertised estimate looks better than honest reality"
        );
    }

    #[test]
    fn misreported_pairings_are_deterministic_and_well_formed() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(30, 11).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let sched = PairingScheduler::with_misreport(
            ByzantineConfig { fraction: 0.3, speed_factor: 8.0 },
            11,
        );
        let a = sched.pair(&world, &ids, &est);
        let b = sched.pair(&world, &ids, &est);
        assert_eq!(a, b);
        let mut seen = Vec::new();
        for p in &a {
            seen.push(p.slow);
            seen.extend(p.fast);
        }
        seen.sort();
        let mut expect = ids.clone();
        expect.sort();
        assert_eq!(seen, expect, "every participant appears exactly once");
        assert_ne!(
            a,
            PairingScheduler::new().pair(&world, &ids, &est),
            "a 30%-liar fleet must change some pairing decision"
        );
    }

    #[test]
    fn partial_participation_only_pairs_participants() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(30, 5).topology(Topology::Full).build();
        let participants: Vec<AgentId> = (0..30).step_by(3).map(AgentId).collect();
        let pairings = PairingScheduler::new().pair(&world, &participants, &est);
        let mut seen: Vec<AgentId> = Vec::new();
        for p in &pairings {
            seen.push(p.slow);
            seen.extend(p.fast);
        }
        seen.sort();
        assert_eq!(seen, participants, "non-participants must never be drafted");
    }
}
