//! ComDML — the paper's primary contribution.
//!
//! This crate implements Algorithm 1 of *"Communication-Efficient Training
//! Workload Balancing for Decentralized Multi-Agent Learning"* (ICDCS 2024):
//!
//! 1. **Split-model profiling** — each agent knows, for every candidate
//!    split `m`, the relative slow/fast-side training times and the
//!    intermediate data size (delegated to `comdml-cost`).
//! 2. **Training-time estimation** ([`TrainingTimeEstimator`]) — the
//!    `AgentTrainingTime` function: `τ̂ᵢⱼᵐ = max(Ñᵢ/pᵢᵐ, τ̂ⱼ + Ñᵢνₘ/cᵢⱼ +
//!    Ñᵢ/pⱼᵐ)`, minimized over `m`.
//! 3. **Decentralized pairing** ([`PairingScheduler`]) — agents pair
//!    greedily in descending order of solo training time, each slow agent
//!    choosing the partner and split that minimize its estimated time.
//! 4. **Round execution** ([`simulate_round`]) — a per-batch pipeline
//!    simulation of paired local-loss split training, plus AllReduce
//!    aggregation cost.
//! 5. **End-to-end runs** ([`ComDml`]) — time-to-target-accuracy under the
//!    paper's learning-curve and churn regime, shared with the baselines
//!    through the [`RoundEngine`] trait.
//!
//! The crate also hosts [`RealSplitFleet`], which runs the same protocol
//! with *real* gradient descent (miniature models from `comdml-nn`) to
//! demonstrate the convergence claims of Theorem 1.
//!
//! # Example
//!
//! ```
//! use comdml_core::{ComDml, ComDmlConfig};
//! use comdml_simnet::WorldConfig;
//!
//! let world = WorldConfig::heterogeneous(10, 42).build();
//! let report = ComDml::new(ComDmlConfig::default()).run(&world, 0.80);
//! assert!(report.total_time_s > 0.0);
//! assert!(report.rounds > 0);
//! ```
//!
//! Part of the `comdml-rs` workspace — the crate map in the repository
//! README shows how this crate fits the whole.

mod comdml;
mod estimator;
mod event_round;
mod fleet;
mod learning_curve;
mod learning_model;
mod multi;
mod real_fleet;
mod round;
mod scheduler;
mod theory;

pub use comdml::{
    time_to_accuracy, ChurnPolicy, ComDml, ComDmlConfig, ComDmlReport, RoundEngine, TimeToAccuracy,
};
pub use estimator::{
    EstimateMemo, FnvBuildHasher, FnvHasher, SplitDecision, TrainingTimeEstimator,
};
pub use event_round::{
    barrier_round_s, mean_round_s, AggregationMode, Disruption, EventGranularity, EventRound,
    EventRoundReport,
};
pub use fleet::{FleetReport, FleetRoundSummary, FleetSim};
pub use learning_curve::{staleness_weight, LearningCurve};
pub use learning_model::{sampling_penalty, LearningModel, RoundProgress};
pub use multi::{helper_completion_s, pair_with_capacity, MultiPairing};
pub use real_fleet::{InputHook, ParamHook, RealFleetConfig, RealFleetReport, RealSplitFleet};
pub use round::{simulate_round, AgentRoundStats, PairRoundSim, RoundOutcome};
pub use scheduler::{Pairing, PairingOrder, PairingScheduler};
pub use theory::ConvergenceConstants;
