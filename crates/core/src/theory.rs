//! Theorem 1's convergence-rate bounds, computable.
//!
//! The paper proves that under Assumptions 1–6 both the slow agent-side and
//! fast agent-side models converge, with explicit rates whose constants
//! (`H₁`, `H₂`, `D`, `C₁`, `C₂`, `A_m`) are defined in the Appendix. This
//! module implements those formulas so the bounds can be *evaluated* — the
//! convergence experiments plot measured loss decay against the predicted
//! envelope, and the tests check the bounds' qualitative structure
//! (monotone in rounds, improved by more agents per split, fast side no
//! tighter than slow side).

use serde::{Deserialize, Serialize};

/// Problem constants of Assumptions 1–6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceConstants {
    /// Smoothness constant `L` (Assumption 1).
    pub l_smooth: f64,
    /// Strong-convexity modulus `μ` (Assumption 2; 0 for non-convex).
    pub mu: f64,
    /// Gradient-norm bound `G₁` (Assumption 3).
    pub g1: f64,
    /// Dissimilarity bound `G₂` (Assumption 5).
    pub g2: f64,
    /// Dissimilarity slope `B ≥ 1` (Assumption 5).
    pub b: f64,
    /// Stochastic-gradient variance `σ²` (Assumption 4).
    pub sigma_sq: f64,
    /// Total number of agents `K`.
    pub k: usize,
    /// Minimum number of agents sharing split `m` per round (`A_m`).
    pub a_m: usize,
    /// Initial suboptimality `F⁰ = f(w⁰) − f⋆`.
    pub f0: f64,
    /// Initial distance `D = ‖w⁰ − w⋆‖`.
    pub d0: f64,
    /// Total drift of the slow-side output distribution `Σ_r c^{a_m,r}`
    /// (finite by Assumption 6).
    pub total_drift: f64,
}

impl ConvergenceConstants {
    /// Plausible defaults for a well-conditioned experiment (used by the
    /// convergence demos; override per study).
    pub fn defaults(k: usize, a_m: usize) -> Self {
        Self {
            l_smooth: 10.0,
            mu: 0.1,
            g1: 5.0,
            g2: 2.0,
            b: 1.5,
            sigma_sq: 1.0,
            k,
            a_m: a_m.max(1),
            f0: 2.0,
            d0: 3.0,
            total_drift: 5.0,
        }
    }

    /// The largest step size Theorem 1 admits: `η ≤ 1 / (8L(1 + B²))`.
    pub fn max_step_size(&self) -> f64 {
        1.0 / (8.0 * self.l_smooth * (1.0 + self.b * self.b))
    }

    /// `H₁² = σ² + (1 − A_m/K)·G₂²` — the slow-side noise constant.
    pub fn h1_sq(&self) -> f64 {
        self.sigma_sq + (1.0 - self.a_m as f64 / self.k as f64) * self.g2 * self.g2
    }

    /// `H₂² = L³(B² + 1)·F⁰ + (1 − A_m/K)·L²·G₂²` — the fast-side constant.
    pub fn h2_sq(&self) -> f64 {
        let b2p1 = self.b * self.b + 1.0;
        self.l_smooth.powi(3) * b2p1 * self.f0
            + (1.0 - self.a_m as f64 / self.k as f64) * self.l_smooth.powi(2) * self.g2 * self.g2
    }

    /// `C₁ = G₁·√(G₂² + 2LB²F⁰)·Σ_r c^r` — the convex fast-side drift term.
    pub fn c1(&self) -> f64 {
        self.g1
            * (self.g2 * self.g2 + 2.0 * self.l_smooth * self.b * self.b * self.f0).sqrt()
            * self.total_drift
    }

    /// `C₂ = G₁·√(G₂² + B²G₁²)·Σ_r c^r` — the non-convex fast-side drift term.
    pub fn c2(&self) -> f64 {
        self.g1
            * (self.g2 * self.g2 + self.b * self.b * self.g1 * self.g1).sqrt()
            * self.total_drift
    }

    /// Convex slow-side bound after `r` rounds:
    /// `O(ηH₁²/(μ·R·A_m) + μD²·exp(−μR / (L(1+B²))))`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero or the instance is not strongly convex.
    pub fn convex_slow_bound(&self, r: usize) -> f64 {
        assert!(r > 0, "need at least one round");
        assert!(self.mu > 0.0, "convex bound needs mu > 0");
        let eta = self.max_step_size();
        let ram = (r * self.a_m) as f64;
        eta * self.h1_sq() / (self.mu * ram)
            + self.mu
                * self.d0
                * self.d0
                * (-self.mu * r as f64 / (self.l_smooth * (1.0 + self.b * self.b))).exp()
    }

    /// Non-convex slow-side bound (squared-gradient-norm scale):
    /// `O(L·H₁·√F⁰/√(R·A_m) + B²·L·F⁰/R)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn nonconvex_slow_bound(&self, r: usize) -> f64 {
        assert!(r > 0, "need at least one round");
        let ram = (r * self.a_m) as f64;
        self.l_smooth * self.h1_sq().sqrt() * self.f0.sqrt() / ram.sqrt()
            + self.b * self.b * self.l_smooth * self.f0 / r as f64
    }

    /// Convex fast-side bound:
    /// `O(H₂√F⁰/√(R·A_m) + (C₁ + F⁰)/R)` — the extra `C₁/R` term carries the
    /// dependence on the slow side's convergence.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn convex_fast_bound(&self, r: usize) -> f64 {
        assert!(r > 0, "need at least one round");
        let ram = (r * self.a_m) as f64;
        self.h2_sq().sqrt() * self.f0.sqrt() / ram.sqrt() + (self.c1() + self.f0) / r as f64
    }

    /// Non-convex fast-side bound:
    /// `O(H₂√F⁰/√(R·A_m) + (C₂ + F⁰)/R)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn nonconvex_fast_bound(&self, r: usize) -> f64 {
        assert!(r > 0, "need at least one round");
        let ram = (r * self.a_m) as f64;
        self.h2_sq().sqrt() * self.f0.sqrt() / ram.sqrt() + (self.c2() + self.f0) / r as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> ConvergenceConstants {
        ConvergenceConstants::defaults(10, 2)
    }

    #[test]
    fn all_bounds_decrease_with_rounds() {
        let c = c();
        for bound in [
            ConvergenceConstants::convex_slow_bound as fn(&ConvergenceConstants, usize) -> f64,
            ConvergenceConstants::nonconvex_slow_bound,
            ConvergenceConstants::convex_fast_bound,
            ConvergenceConstants::nonconvex_fast_bound,
        ] {
            let mut prev = f64::INFINITY;
            for r in [1usize, 10, 100, 1000, 10_000] {
                let v = bound(&c, r);
                assert!(v < prev, "bound must shrink: {v} !< {prev} at r = {r}");
                assert!(v.is_finite() && v > 0.0);
                prev = v;
            }
        }
    }

    #[test]
    fn bounds_vanish_asymptotically() {
        let c = c();
        assert!(c.nonconvex_slow_bound(100_000_000) < 1e-2);
        assert!(c.convex_fast_bound(100_000_000) < 1e-2);
    }

    #[test]
    fn more_agents_per_split_tightens_the_bound() {
        let few = ConvergenceConstants::defaults(10, 1);
        let many = ConvergenceConstants::defaults(10, 8);
        assert!(many.nonconvex_slow_bound(100) < few.nonconvex_slow_bound(100));
        // More agents per split also shrinks the sampling-noise constant.
        assert!(many.h1_sq() < few.h1_sq());
    }

    #[test]
    fn fast_side_is_looser_than_slow_side() {
        // "The fast agent-side bound has an extra term due to its dependence
        // on the slow agent-side model convergence, leading to a looser
        // bound."
        let c = c();
        for r in [10usize, 100, 1000] {
            assert!(c.nonconvex_fast_bound(r) > c.nonconvex_slow_bound(r));
        }
    }

    #[test]
    fn drift_only_affects_fast_side() {
        let calm = ConvergenceConstants { total_drift: 0.0, ..c() };
        let wild = ConvergenceConstants { total_drift: 50.0, ..c() };
        assert_eq!(calm.nonconvex_slow_bound(100), wild.nonconvex_slow_bound(100));
        assert!(wild.nonconvex_fast_bound(100) > calm.nonconvex_fast_bound(100));
    }

    #[test]
    fn step_size_condition_matches_theorem() {
        let c = c();
        let eta = c.max_step_size();
        assert!((eta * 8.0 * c.l_smooth * (1.0 + c.b * c.b) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mu > 0")]
    fn convex_bound_requires_strong_convexity() {
        let mut cc = c();
        cc.mu = 0.0;
        let _ = cc.convex_slow_bound(10);
    }
}
