//! Multi-guest offloading — an extension the paper's formulation permits.
//!
//! Equation (4) sums helper-side costs over *all* slow agents `j` with
//! `γ_ji = 1`, i.e. a fast agent may host several guests, but Algorithm 1's
//! greedy pairing assigns at most one. This module generalizes the scheduler
//! and round simulation to helpers with a configurable guest capacity; the
//! ablation study quantifies when the extra capacity pays off (many slow
//! agents per fast agent) and when it backfires (the helper serializes its
//! guests).

use comdml_simnet::{AgentId, World};

use crate::{PairRoundSim, Pairing, TrainingTimeEstimator};

/// A helper assignment produced by [`pair_with_capacity`]: one slow agent,
/// its helper, and the split — identical to [`Pairing`] but helpers may
/// repeat across entries.
pub type MultiPairing = Pairing;

/// Greedy multi-guest pairing: like Algorithm 1 but a fast agent stays in
/// the candidate pool until it hosts `capacity` guests. Each additional
/// guest sees the helper's *loaded* completion time (its own task plus all
/// previously accepted guest work), so late guests naturally prefer other
/// helpers.
///
/// `capacity = 1` reproduces [`crate::PairingScheduler::pair`]'s matching
/// semantics.
///
/// # Scaling
///
/// Candidates live in an ordered set keyed by their current *loaded* solo
/// time (re-keyed when a helper accepts a guest), scanned ascending with
/// the same exact prune as [`crate::PairingScheduler`]: the fast arm of the
/// estimate is bounded below by the candidate's loaded solo time `τ̂ⱼ`, so
/// the scan stops the moment `τ̂ⱼ` reaches the best estimate found — the
/// seed's O(n²) full scan with O(n) `contains` checks becomes an
/// O(log n) set walk that typically inspects a handful of candidates.
/// Ties break on `(est, τ̂ⱼ, id)` exactly like the single-guest scheduler.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn pair_with_capacity(
    world: &World,
    participants: &[AgentId],
    estimator: &TrainingTimeEstimator<'_>,
    capacity: usize,
) -> Vec<MultiPairing> {
    assert!(capacity > 0, "helper capacity must be positive");
    let mut order: Vec<(AgentId, f64)> =
        participants.iter().map(|&id| (id, estimator.solo_time_s(world.agent(id)))).collect();
    order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    let k = world.num_agents();
    // Indexed per-agent state instead of linear Vec scans.
    let mut consumed = vec![false; k];
    let mut guest_count = vec![0usize; k];
    let mut loaded_solo = vec![f64::INFINITY; k];
    for &(id, solo) in &order {
        loaded_solo[id.0] = solo;
    }
    // Candidate pool ordered by (loaded solo, id). Positive finite f64s
    // order identically to their IEEE-754 bit patterns, so the set key is
    // the raw bits — no wrapper type needed.
    let key = |solo: f64, id: AgentId| (solo.to_bits(), id);
    let mut candidates: std::collections::BTreeSet<(u64, AgentId)> =
        order.iter().map(|&(id, solo)| key(solo, id)).collect();
    let mut out = Vec::with_capacity(order.len());

    for &(i, solo_i) in &order {
        if consumed[i.0] {
            continue;
        }
        let slow_state = world.agent(i);
        let mut best: Option<(AgentId, crate::SplitDecision)> = None;
        let mut best_key = (solo_i, f64::INFINITY, usize::MAX);
        for &(bits, j) in candidates.iter() {
            let solo_j = f64::from_bits(bits);
            // Exact prune: the estimate's fast arm strictly exceeds the
            // helper's loaded solo time, so once that crosses the best
            // estimate no later candidate can win.
            if solo_j >= best_key.0 {
                break;
            }
            if j == i {
                continue;
            }
            let link = world.link_mbps(i, j);
            if link <= 0.0 {
                continue;
            }
            let d = estimator.estimate(slow_state, world.agent(j), solo_j, link);
            if d.offload == 0 || d.est_time_s >= solo_i {
                continue;
            }
            let cand_key = (d.est_time_s, solo_j, j.0);
            if cand_key < best_key {
                best_key = cand_key;
                best = Some((j, d));
            }
        }
        match best {
            // `best` already satisfies est < solo_i via the initial key.
            Some((j, d)) => {
                consumed[i.0] = true;
                candidates.remove(&key(loaded_solo[i.0], i));
                // The helper is "busy until" the pair's estimated
                // completion; re-key it so later guests queue behind.
                candidates.remove(&key(loaded_solo[j.0], j));
                loaded_solo[j.0] = d.est_time_s;
                guest_count[j.0] += 1;
                if guest_count[j.0] >= capacity {
                    // A helper at capacity can no longer host guests or
                    // train a solo entry of its own.
                    consumed[j.0] = true;
                } else {
                    candidates.insert(key(loaded_solo[j.0], j));
                }
                out.push(Pairing {
                    slow: i,
                    fast: Some(j),
                    offload: d.offload,
                    est_time_s: d.est_time_s,
                });
            }
            None => {
                consumed[i.0] = true;
                candidates.remove(&key(loaded_solo[i.0], i));
                out.push(Pairing { slow: i, fast: None, offload: 0, est_time_s: solo_i });
            }
        }
    }
    out
}

/// Completion time of one helper and all its guests, processed in
/// assignment order: the helper finishes its own task first, then serves
/// each guest's pipeline back to back.
pub fn helper_completion_s(
    world: &World,
    helper: AgentId,
    guests: &[(AgentId, usize)],
    estimator: &TrainingTimeEstimator<'_>,
    cal: &comdml_cost::CostCalibration,
) -> f64 {
    let fast = world.agent(helper);
    let p_j = estimator.batches_per_s(fast);
    let mut available = fast.num_batches() as f64 / p_j;
    for &(slow_id, offload) in guests {
        let slow = world.agent(slow_id);
        let entry = estimator.profile().entry(offload).expect("profiled offload");
        let p_i = estimator.batches_per_s(slow);
        let link = world.link_mbps(slow_id, helper);
        let sim = PairRoundSim {
            n_slow_batches: slow.num_batches(),
            // Model the helper's prior commitments as "own work".
            n_fast_batches: 0,
            slow_batch_s: entry.t_slow_rel / p_i,
            fast_own_batch_s: 0.0,
            fast_guest_batch_s: entry.t_fast_rel / p_j,
            transfer_s: cal.transfer_time_s(entry.nu_bytes_per_batch, link),
            suffix_return_s: cal.transfer_time_s(entry.suffix_param_bytes, link),
        };
        // Guests pipeline against the helper's availability: start no
        // earlier than `available`.
        let t = sim.run();
        available = available.max(t.pair_done_s).max(available + t.fast_busy_s);
    }
    available
}

#[cfg(test)]
mod tests {
    use super::*;
    use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
    use comdml_simnet::{Adjacency, AgentProfile, AgentState, WorldConfig};

    fn fixtures() -> (ModelSpec, SplitProfile, CostCalibration) {
        let spec = ModelSpec::resnet56();
        let profile = SplitProfile::new(&spec, 100);
        (spec, profile, CostCalibration::default())
    }

    #[test]
    fn capacity_one_is_a_matching() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(10, 3).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let pairings = pair_with_capacity(&world, &ids, &est, 1);
        let mut helpers: Vec<AgentId> = pairings.iter().filter_map(|p| p.fast).collect();
        let before = helpers.len();
        helpers.dedup();
        helpers.sort();
        helpers.dedup();
        assert_eq!(before, helpers.len(), "no helper repeats at capacity 1");
    }

    #[test]
    fn one_strong_helper_hosts_two_stragglers() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        // Two 0.2-CPU stragglers, one idle 4-CPU helper with a tiny own task.
        let agents = vec![
            AgentState::new(AgentId(0), AgentProfile::new(0.2, 100.0), 5000, 100),
            AgentState::new(AgentId(1), AgentProfile::new(0.2, 100.0), 5000, 100),
            AgentState::new(AgentId(2), AgentProfile::new(4.0, 100.0), 500, 100),
        ];
        let adj = Adjacency::from_matrix(vec![
            vec![false, true, true],
            vec![true, false, true],
            vec![true, true, false],
        ]);
        let world = World::from_parts(agents, adj, 0);
        let ids = [AgentId(0), AgentId(1), AgentId(2)];
        let single = pair_with_capacity(&world, &ids, &est, 1);
        let multi = pair_with_capacity(&world, &ids, &est, 2);
        let offloads = |ps: &[Pairing]| ps.iter().filter(|p| p.fast.is_some()).count();
        assert_eq!(offloads(&single), 1, "capacity 1: only one straggler helped");
        assert_eq!(offloads(&multi), 2, "capacity 2: both stragglers helped");
        // The second straggler's makespan improves.
        let makespan = |ps: &[Pairing]| ps.iter().map(|p| p.est_time_s).fold(0.0, f64::max);
        assert!(makespan(&multi) < makespan(&single));
    }

    #[test]
    fn later_guests_see_loaded_helpers() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(15, 9).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let pairings = pair_with_capacity(&world, &ids, &est, 3);
        // Entries that share a helper must have non-decreasing estimates in
        // assignment order (each guest queues behind the previous).
        for (a_idx, a) in pairings.iter().enumerate() {
            for b in pairings.iter().skip(a_idx + 1) {
                if a.fast.is_some() && a.fast == b.fast {
                    assert!(b.est_time_s >= a.est_time_s - 1e-9);
                }
            }
        }
    }

    #[test]
    fn helper_completion_grows_with_guests() {
        let (spec, profile, cal) = fixtures();
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let world = WorldConfig::heterogeneous(6, 2).build();
        let helper = world.agents()[0].id;
        let g1 = vec![(world.agents()[1].id, 28usize)];
        let g2 = vec![(world.agents()[1].id, 28usize), (world.agents()[2].id, 28usize)];
        let t1 = helper_completion_s(&world, helper, &g1, &est, &cal);
        let t2 = helper_completion_s(&world, helper, &g2, &est, &cal);
        assert!(t2 > t1, "more guests take longer: {t2} vs {t1}");
    }
}
