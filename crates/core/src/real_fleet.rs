use comdml_collective::halving_doubling_allreduce;
use comdml_data::{
    iid_partition, Batcher, DatasetSpec, DirichletPartitioner, SyntheticImageDataset,
};
use comdml_nn::{accuracy, models, LocalLossSplit, Sequential, SgdPair, Trainer};
use comdml_tensor::ParamVec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of a real (gradient-descent) ComDML fleet.
#[derive(Debug, Clone)]
pub struct RealFleetConfig {
    /// Number of agents (must be even so pairs form cleanly).
    pub num_agents: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum (0.9 in the paper).
    pub momentum: f32,
    /// Layers offloaded by each slow agent (0 = no split training anywhere).
    pub offload: usize,
    /// RNG seed for data, models and pairing.
    pub seed: u64,
    /// IID split if true, Dirichlet(alpha) label skew otherwise.
    pub iid: bool,
    /// Dirichlet concentration for the non-IID split.
    pub alpha: f64,
    /// Gaussian noise std added to activations crossing each cut (a privacy
    /// protection for slow agents, §IV-C; 0 disables it).
    pub activation_noise_std: f32,
}

impl Default for RealFleetConfig {
    fn default() -> Self {
        Self {
            num_agents: 4,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            offload: 3,
            seed: 7,
            iid: true,
            alpha: 0.5,
            activation_noise_std: 0.0,
        }
    }
}

/// Transform applied to every input batch before training (e.g. patch
/// shuffling).
pub type InputHook = Box<dyn FnMut(&comdml_tensor::Tensor) -> comdml_tensor::Tensor + Send>;

/// Transform applied to every agent's flattened parameters before they are
/// released into aggregation (e.g. differential-privacy noise).
pub type ParamHook = Box<dyn FnMut(&mut [f32]) + Send>;

/// Report of a real-fleet run: accuracy trajectory plus the per-side losses
/// that the convergence claims of Theorem 1 are about.
#[derive(Debug, Clone, PartialEq)]
pub struct RealFleetReport {
    /// Global-model accuracy after each round.
    pub round_accuracies: Vec<f32>,
    /// Mean slow-side auxiliary loss per round.
    pub slow_losses: Vec<f32>,
    /// Mean fast-side loss per round.
    pub fast_losses: Vec<f32>,
}

impl RealFleetReport {
    /// Accuracy after the final round.
    pub fn final_accuracy(&self) -> f32 {
        self.round_accuracies.last().copied().unwrap_or(0.0)
    }
}

enum AgentModel {
    Plain(Trainer),
    Split(Box<LocalLossSplit>, SgdPair),
}

/// A fleet of agents running the ComDML protocol with *real* gradient
/// descent on the miniature synthetic dataset.
///
/// Odd-indexed agents act as slow agents offloading `config.offload` layers
/// to their even-indexed partner's hardware; numerically the split model's
/// parameters live together, which is exactly what the converged system
/// computes. After every round, all agents AllReduce-average their
/// global-model parameters (§IV-B) using the same halving/doubling
/// implementation the simulator accounts for.
///
/// # Example
///
/// ```
/// use comdml_core::{RealFleetConfig, RealSplitFleet};
///
/// let mut fleet = RealSplitFleet::new(RealFleetConfig {
///     num_agents: 2,
///     ..RealFleetConfig::default()
/// });
/// let report = fleet.run(2);
/// assert_eq!(report.round_accuracies.len(), 2);
/// ```
pub struct RealSplitFleet {
    agents: Vec<AgentModel>,
    batchers: Vec<Batcher>,
    dataset: SyntheticImageDataset,
    eval_model: Sequential,
    eval_set: SyntheticImageDataset,
    input_hook: Option<InputHook>,
    param_hook: Option<ParamHook>,
}

impl std::fmt::Debug for RealSplitFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealSplitFleet")
            .field("num_agents", &self.agents.len())
            .field("train_samples", &self.dataset.len())
            .finish()
    }
}

impl RealSplitFleet {
    /// Builds the fleet: synthetic data, partition, identical initial models
    /// (all agents start from the same weights, as after a first broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `num_agents` is zero.
    pub fn new(config: RealFleetConfig) -> Self {
        assert!(config.num_agents > 0, "need at least one agent");
        let spec = DatasetSpec::miniature();
        let dataset = SyntheticImageDataset::generate(&spec, config.seed);
        let eval_set = SyntheticImageDataset::generate(&spec, config.seed ^ 0xdead_beef);

        let parts = if config.iid {
            iid_partition(dataset.len(), config.num_agents, config.seed)
        } else {
            DirichletPartitioner::new(config.alpha, config.seed)
                .partition(dataset.labels(), config.num_agents)
        };
        let batchers: Vec<Batcher> = parts
            .into_iter()
            .enumerate()
            .map(|(i, p)| Batcher::new(p, config.batch_size, config.seed.wrapping_add(i as u64)))
            .collect();

        // All agents share the same initial weights: build from one seed.
        let arch = |rng: &mut StdRng| models::tiny_cnn(spec.channels, spec.num_classes, rng);
        let mut agents = Vec::with_capacity(config.num_agents);
        for i in 0..config.num_agents {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed);
            let model = arch(&mut rng);
            let is_slow = i % 2 == 1 && config.offload > 0 && config.offload < model.len();
            if is_slow {
                let mut split = LocalLossSplit::from_sequential(
                    model,
                    config.offload,
                    spec.num_classes,
                    &mut rng,
                )
                .expect("offload validated above");
                if config.activation_noise_std > 0.0 {
                    split.set_activation_noise(
                        config.activation_noise_std,
                        config.seed.wrapping_add(i as u64),
                    );
                }
                agents.push(AgentModel::Split(
                    Box::new(split),
                    SgdPair::new(config.lr, config.momentum),
                ));
            } else {
                agents.push(AgentModel::Plain(Trainer::new(model, config.lr, config.momentum)));
            }
        }
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed);
        let eval_model = arch(&mut rng);

        Self { agents, batchers, dataset, eval_model, eval_set, input_hook: None, param_hook: None }
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }

    /// Installs an input transform applied to every training batch (e.g.
    /// [`patch shuffling`](https://doi.org/10.1109/ICDM54844.2022.00074)).
    pub fn set_input_hook(&mut self, hook: InputHook) {
        self.input_hook = Some(hook);
    }

    /// Installs a parameter transform applied to every agent's released
    /// model before aggregation (e.g. differential-privacy noise).
    pub fn set_param_hook(&mut self, hook: ParamHook) {
        self.param_hook = Some(hook);
    }

    /// Distance-correlation probe: the slow-side activation that a paired
    /// fast agent would observe for `n` evaluation samples, alongside the
    /// raw inputs — feed both to `comdml_privacy::distance_correlation`.
    ///
    /// Returns `None` if the fleet has no split (slow) agent.
    pub fn leakage_probe(
        &mut self,
        n: usize,
    ) -> Option<(comdml_tensor::Tensor, comdml_tensor::Tensor)> {
        let idx: Vec<usize> = (0..self.eval_set.len().min(n)).collect();
        let (x, _) = self.eval_set.batch(&idx);
        for agent in self.agents.iter_mut() {
            if let AgentModel::Split(split, _) = agent {
                let z = split.slow_activation(&x).expect("consistent shapes");
                return Some((x, z));
            }
        }
        None
    }

    /// Runs `rounds` rounds of local training + AllReduce aggregation.
    pub fn run(&mut self, rounds: usize) -> RealFleetReport {
        let mut report = RealFleetReport {
            round_accuracies: Vec::with_capacity(rounds),
            slow_losses: Vec::with_capacity(rounds),
            fast_losses: Vec::with_capacity(rounds),
        };
        for _ in 0..rounds {
            let (slow_loss, fast_loss) = self.train_round();
            self.aggregate();
            report.slow_losses.push(slow_loss);
            report.fast_losses.push(fast_loss);
            report.round_accuracies.push(self.evaluate());
        }
        report
    }

    fn train_round(&mut self) -> (f32, f32) {
        let mut slow_sum = 0.0f32;
        let mut slow_n = 0usize;
        let mut fast_sum = 0.0f32;
        let mut fast_n = 0usize;
        for (agent, batcher) in self.agents.iter_mut().zip(self.batchers.iter_mut()) {
            for batch in batcher.epoch() {
                let (mut x, y) = self.dataset.batch(&batch);
                if let Some(hook) = self.input_hook.as_mut() {
                    x = hook(&x);
                }
                match agent {
                    AgentModel::Plain(trainer) => {
                        let loss = trainer.step(&x, &y).expect("shapes are consistent");
                        fast_sum += loss;
                        fast_n += 1;
                    }
                    AgentModel::Split(split, opts) => {
                        let losses = split.train_step(&x, &y, opts).expect("shapes are consistent");
                        slow_sum += losses.slow_loss;
                        slow_n += 1;
                        fast_sum += losses.fast_loss;
                        fast_n += 1;
                    }
                }
            }
        }
        (
            if slow_n > 0 { slow_sum / slow_n as f32 } else { 0.0 },
            if fast_n > 0 { fast_sum / fast_n as f32 } else { 0.0 },
        )
    }

    fn aggregate(&mut self) {
        let mut bufs: Vec<Vec<f32>> = self
            .agents
            .iter()
            .map(|a| match a {
                AgentModel::Plain(t) => {
                    ParamVec::flatten(&t.model().parameters()).values().to_vec()
                }
                AgentModel::Split(s, _) => {
                    ParamVec::flatten(&s.full_parameters()).values().to_vec()
                }
            })
            .collect();
        if let Some(hook) = self.param_hook.as_mut() {
            for buf in &mut bufs {
                hook(buf);
            }
        }
        halving_doubling_allreduce(&mut bufs).expect("equal-length parameter buffers");
        let shapes: Vec<Vec<usize>> = match &self.agents[0] {
            AgentModel::Plain(t) => {
                t.model().parameters().iter().map(|p| p.shape().to_vec()).collect()
            }
            AgentModel::Split(s, _) => {
                s.full_parameters().iter().map(|p| p.shape().to_vec()).collect()
            }
        };
        for (agent, buf) in self.agents.iter_mut().zip(bufs) {
            let pv = ParamVec::from_parts(buf, shapes.clone()).expect("allreduce preserves length");
            let params = pv.unflatten().expect("shapes recorded at flatten time");
            match agent {
                AgentModel::Plain(t) => {
                    t.model_mut().set_parameters(&params).expect("same architecture")
                }
                AgentModel::Split(s, _) => {
                    s.set_full_parameters(&params).expect("same architecture")
                }
            }
        }
    }

    /// Global-model accuracy on the held-out evaluation set.
    pub fn evaluate(&mut self) -> f32 {
        // After aggregation every agent holds the same global model; read it
        // from agent 0 into the evaluation architecture.
        let params = match &self.agents[0] {
            AgentModel::Plain(t) => t.model().parameters(),
            AgentModel::Split(s, _) => s.full_parameters(),
        };
        self.eval_model.set_parameters(&params).expect("same architecture");
        let idx: Vec<usize> = (0..self.eval_set.len().min(256)).collect();
        let (x, y) = self.eval_set.batch(&idx);
        accuracy(&mut self.eval_model, &x, &y).expect("consistent shapes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_converges_with_split_training() {
        let mut fleet = RealSplitFleet::new(RealFleetConfig::default());
        let report = fleet.run(8);
        let final_acc = report.final_accuracy();
        assert!(final_acc > 0.6, "4-class task should exceed 60%, got {final_acc}");
        // Both sides' losses should decrease.
        assert!(report.slow_losses.last().unwrap() < &report.slow_losses[0]);
        assert!(report.fast_losses.last().unwrap() < &report.fast_losses[0]);
    }

    #[test]
    fn split_and_plain_fleets_reach_similar_accuracy() {
        let mut with_split = RealSplitFleet::new(RealFleetConfig::default());
        let mut no_split =
            RealSplitFleet::new(RealFleetConfig { offload: 0, ..RealFleetConfig::default() });
        let a = with_split.run(8).final_accuracy();
        let b = no_split.run(8).final_accuracy();
        assert!((a - b).abs() < 0.15, "split training should match plain accuracy: {a} vs {b}");
    }

    #[test]
    fn aggregation_synchronizes_models() {
        let mut fleet = RealSplitFleet::new(RealFleetConfig::default());
        fleet.run(1);
        // After a round every agent holds identical global parameters.
        let reference = match &fleet.agents[0] {
            AgentModel::Plain(t) => ParamVec::flatten(&t.model().parameters()),
            AgentModel::Split(s, _) => ParamVec::flatten(&s.full_parameters()),
        };
        for a in &fleet.agents[1..] {
            let pv = match a {
                AgentModel::Plain(t) => ParamVec::flatten(&t.model().parameters()),
                AgentModel::Split(s, _) => ParamVec::flatten(&s.full_parameters()),
            };
            for (x, y) in pv.values().iter().zip(reference.values().iter()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn non_iid_fleet_still_trains() {
        let mut fleet = RealSplitFleet::new(RealFleetConfig {
            iid: false,
            alpha: 0.5,
            ..RealFleetConfig::default()
        });
        let report = fleet.run(8);
        assert!(report.final_accuracy() > 0.5, "got {}", report.final_accuracy());
    }
}
