use crate::{FramedStream, Message, NetError};

/// Ring AllReduce executed over real TCP connections.
///
/// Every rank holds a stream to its successor (`next`) and from its
/// predecessor (`prev`) in the ring. The schedule matches
/// `comdml_collective::ring_allreduce`: `K−1` reduce-scatter steps followed
/// by `K−1` all-gather steps. Each step's send runs on a scoped helper
/// thread while the receive blocks on the calling thread, so the ring never
/// deadlocks regardless of socket buffer sizes.
///
/// # Errors
///
/// Returns a [`NetError`] on socket failure or protocol violation (a peer
/// sending a chunk for the wrong step).
pub fn ring_allreduce_tcp(
    rank: usize,
    k: usize,
    mut values: Vec<f32>,
    next: &mut FramedStream,
    prev: &mut FramedStream,
) -> Result<Vec<f32>, NetError> {
    if k <= 1 {
        return Ok(values);
    }
    let n = values.len();
    let bounds: Vec<usize> = (0..=k).map(|c| c * n / k).collect();
    let chunk_range = |c: usize| bounds[c % k]..bounds[c % k + 1];

    // One ring step: concurrently push `outgoing` to the successor and pull
    // the predecessor's chunk.
    fn exchange(
        next: &mut FramedStream,
        prev: &mut FramedStream,
        outgoing: &Message,
    ) -> Result<Message, NetError> {
        std::thread::scope(|scope| {
            let sender = scope.spawn(|| next.send(outgoing));
            let received = prev.expect("ModelChunk");
            let sent = sender.join().expect("send thread must not panic");
            sent?;
            received
        })
    }

    // Reduce-scatter: after K-1 steps, this rank holds the full sum of
    // chunk (rank + 1) mod K.
    for s in 0..k - 1 {
        let send_c = (rank + k - s) % k;
        let recv_c = (rank + k - s - 1) % k;
        let payload = values[chunk_range(send_c)].to_vec();
        let outgoing = Message::ModelChunk { step: s as u32, data: payload };
        let received = exchange(next, prev, &outgoing)?;
        let Message::ModelChunk { step, data } = received else { unreachable!("expect checked") };
        if step != s as u32 {
            return Err(NetError::Unexpected {
                expected: "chunk for current step",
                got: format!("step {step} during step {s}"),
            });
        }
        let range = chunk_range(recv_c);
        if data.len() != range.len() {
            return Err(NetError::BadFrame(format!(
                "chunk {recv_c} should have {} floats, got {}",
                range.len(),
                data.len()
            )));
        }
        for (acc, v) in values[range].iter_mut().zip(data) {
            *acc += v;
        }
    }

    // All-gather: circulate the fully reduced chunks.
    for s in 0..k - 1 {
        let send_c = (rank + 1 + k - s) % k;
        let recv_c = (rank + k - s) % k;
        let payload = values[chunk_range(send_c)].to_vec();
        let outgoing = Message::ModelChunk { step: (k - 1 + s) as u32, data: payload };
        let received = exchange(next, prev, &outgoing)?;
        let Message::ModelChunk { data, .. } = received else { unreachable!("expect checked") };
        let range = chunk_range(recv_c);
        if data.len() != range.len() {
            return Err(NetError::BadFrame(format!(
                "gather chunk {recv_c} should have {} floats, got {}",
                range.len(),
                data.len()
            )));
        }
        values[range].copy_from_slice(&data);
    }

    let inv = 1.0 / k as f32;
    for v in &mut values {
        *v *= inv;
    }
    Ok(values)
}
