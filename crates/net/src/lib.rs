//! Peer-to-peer transport for running the ComDML protocol over real
//! sockets.
//!
//! The simulator in `comdml-core` accounts for time; this crate demonstrates
//! the *protocol* itself on a real substrate (blocking `std::net` TCP, one
//! thread per peer):
//!
//! * [`Message`] / [`FramedStream`] — a compact, **versioned**
//!   length-prefixed binary wire format ([`frame`]) for profile broadcasts,
//!   pairing handshakes, activation streaming, model exchange and the sweep
//!   farm's coordinator/worker/client request–response vocabulary. Peers
//!   agree on a revision with [`FramedStream::handshake`]
//!   ([`PROTOCOL_VERSION`]), and frames of unknown kind are skipped with a
//!   warning instead of erroring, so adjacent builds interoperate.
//! * [`serve`] / [`ServerHandle`] — a threaded accept loop handing each
//!   connection to a session handler, with a shared stop flag for polite
//!   drains (the farm coordinator's substrate).
//! * [`ring_allreduce_tcp`] — the ring AllReduce executed across real
//!   connections (reduce-scatter + all-gather, `2(K−1)` steps), matching the
//!   in-memory implementation in `comdml-collective`. Each step's send runs
//!   on a scoped thread so the ring never deadlocks.
//! * [`Node`] and [`spawn_ring`] — helpers to stand up an in-process cluster
//!   of peers on localhost.
//! * [`pairing_handshake`] — the slow→fast agent request/accept exchange of
//!   Algorithm 1's pairing step.
//!
//! # Example
//!
//! ```no_run
//! use comdml_net::spawn_ring;
//!
//! let cluster = spawn_ring(4).unwrap();
//! // Every node contributes rank-dependent parameters from its own thread…
//! let handles: Vec<_> = cluster
//!     .into_iter()
//!     .map(|mut node| std::thread::spawn(move || {
//!         let params = vec![node.rank() as f32; 8];
//!         node.allreduce(params).unwrap()
//!     }))
//!     .collect();
//! for h in handles {
//!     let avg = h.join().unwrap();
//!     assert!((avg[0] - 1.5).abs() < 1e-6); // mean of 0,1,2,3
//! }
//! ```
//!
//! Part of the `comdml-rs` workspace — the crate map in the repository
//! README shows how this crate fits the whole.

mod allreduce;
mod codec;
pub mod frame;
mod node;
mod protocol;
mod server;

pub use allreduce::ring_allreduce_tcp;
pub use codec::{FramedStream, Message, WorkerRow};
pub use frame::{NetError, PROTOCOL_VERSION};
pub use node::{pairing_handshake, spawn_ring, Node, PairOutcome};
pub use protocol::{FastSideSession, ProtocolError, SlowSideSession};
pub use server::{serve, ServerHandle};
