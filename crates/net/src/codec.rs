use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

/// Errors produced by the wire protocol.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket failure.
    Io(std::io::Error),
    /// The peer sent a frame that does not decode.
    BadFrame(String),
    /// A frame exceeded the sanity limit (corrupted length prefix).
    FrameTooLarge(usize),
    /// The protocol state machine received an unexpected message.
    Unexpected {
        /// What the caller was waiting for.
        expected: &'static str,
        /// What actually arrived.
        got: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::BadFrame(why) => write!(f, "undecodable frame: {why}"),
            NetError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            NetError::Unexpected { expected, got } => {
                write!(f, "expected {expected}, got {got}")
            }
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Maximum accepted frame size (a full ResNet-110 model is ~7 MB; leave
/// generous headroom).
const MAX_FRAME: usize = 256 * 1024 * 1024;

/// Protocol messages exchanged between ComDML peers.
///
/// The encoding is a 1-byte tag followed by little-endian fields; float
/// vectors are length-prefixed. Everything round-trips through
/// [`Message::encode`] / [`Message::decode`].
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Initial identification after connecting.
    Hello {
        /// Sender's agent id.
        agent_id: u32,
    },
    /// Capability broadcast (Algorithm 1 line 2).
    Profile {
        /// Sender's agent id.
        agent_id: u32,
        /// Full-model processing speed in batches per second.
        batches_per_s: f64,
        /// Estimated solo training time in seconds.
        solo_time_s: f64,
    },
    /// Slow agent asks a fast agent to host `offload` layers.
    PairRequest {
        /// Requesting (slow) agent.
        slow_id: u32,
        /// Number of layers to offload.
        offload: u32,
    },
    /// Fast agent accepts the pairing.
    PairAccept {
        /// Accepting (fast) agent.
        fast_id: u32,
    },
    /// Fast agent declines (already paired).
    PairReject {
        /// Declining agent.
        fast_id: u32,
    },
    /// One batch of intermediate activations (slow → fast, §III-B), with
    /// the batch's labels so the fast side can evaluate its local loss
    /// (eq. 3 trains on `(z_n, y_n)` pairs).
    Activations {
        /// Batch index within the round.
        batch_idx: u32,
        /// Flattened activation values.
        data: Vec<f32>,
        /// Class labels of the batch (may be empty for inference traffic).
        labels: Vec<u32>,
    },
    /// Trained suffix parameters returned at the end of a round.
    SuffixParams {
        /// Flattened parameter values.
        data: Vec<f32>,
    },
    /// A model (or model chunk) exchanged during aggregation.
    ModelChunk {
        /// AllReduce step this chunk belongs to.
        step: u32,
        /// Chunk values.
        data: Vec<f32>,
    },
    /// End-of-round marker.
    Done,
}

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::Profile { .. } => 1,
            Message::PairRequest { .. } => 2,
            Message::PairAccept { .. } => 3,
            Message::PairReject { .. } => 4,
            Message::Activations { .. } => 5,
            Message::SuffixParams { .. } => 6,
            Message::ModelChunk { .. } => 7,
            Message::Done => 8,
        }
    }

    /// A short human-readable name (for error messages).
    pub fn name(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "Hello",
            Message::Profile { .. } => "Profile",
            Message::PairRequest { .. } => "PairRequest",
            Message::PairAccept { .. } => "PairAccept",
            Message::PairReject { .. } => "PairReject",
            Message::Activations { .. } => "Activations",
            Message::SuffixParams { .. } => "SuffixParams",
            Message::ModelChunk { .. } => "ModelChunk",
            Message::Done => "Done",
        }
    }

    /// Serializes the message body (without the length prefix).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(self.tag());
        match self {
            Message::Hello { agent_id } => buf.put_u32_le(*agent_id),
            Message::Profile { agent_id, batches_per_s, solo_time_s } => {
                buf.put_u32_le(*agent_id);
                buf.put_f64_le(*batches_per_s);
                buf.put_f64_le(*solo_time_s);
            }
            Message::PairRequest { slow_id, offload } => {
                buf.put_u32_le(*slow_id);
                buf.put_u32_le(*offload);
            }
            Message::PairAccept { fast_id } | Message::PairReject { fast_id } => {
                buf.put_u32_le(*fast_id)
            }
            Message::Activations { batch_idx, data, labels } => {
                buf.put_u32_le(*batch_idx);
                put_f32s(&mut buf, data);
                buf.put_u32_le(labels.len() as u32);
                for &y in labels {
                    buf.put_u32_le(y);
                }
            }
            Message::SuffixParams { data } => put_f32s(&mut buf, data),
            Message::ModelChunk { step, data } => {
                buf.put_u32_le(*step);
                put_f32s(&mut buf, data);
            }
            Message::Done => {}
        }
        buf.freeze()
    }

    /// Decodes a message body produced by [`Message::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFrame`] on any structural problem.
    pub fn decode(mut buf: Bytes) -> Result<Self, NetError> {
        if buf.is_empty() {
            return Err(NetError::BadFrame("empty frame".into()));
        }
        let tag = buf.get_u8();
        let need = |buf: &Bytes, n: usize, what: &str| -> Result<(), NetError> {
            if buf.remaining() < n {
                Err(NetError::BadFrame(format!("truncated {what}")))
            } else {
                Ok(())
            }
        };
        let msg = match tag {
            0 => {
                need(&buf, 4, "Hello")?;
                Message::Hello { agent_id: buf.get_u32_le() }
            }
            1 => {
                need(&buf, 20, "Profile")?;
                Message::Profile {
                    agent_id: buf.get_u32_le(),
                    batches_per_s: buf.get_f64_le(),
                    solo_time_s: buf.get_f64_le(),
                }
            }
            2 => {
                need(&buf, 8, "PairRequest")?;
                Message::PairRequest { slow_id: buf.get_u32_le(), offload: buf.get_u32_le() }
            }
            3 => {
                need(&buf, 4, "PairAccept")?;
                Message::PairAccept { fast_id: buf.get_u32_le() }
            }
            4 => {
                need(&buf, 4, "PairReject")?;
                Message::PairReject { fast_id: buf.get_u32_le() }
            }
            5 => {
                need(&buf, 4, "Activations")?;
                let batch_idx = buf.get_u32_le();
                let data = get_f32s(&mut buf)?;
                need(&buf, 4, "Activations labels")?;
                let n = buf.get_u32_le() as usize;
                need(&buf, n * 4, "Activations labels")?;
                let labels = (0..n).map(|_| buf.get_u32_le()).collect();
                Message::Activations { batch_idx, data, labels }
            }
            6 => Message::SuffixParams { data: get_f32s(&mut buf)? },
            7 => {
                need(&buf, 4, "ModelChunk")?;
                let step = buf.get_u32_le();
                Message::ModelChunk { step, data: get_f32s(&mut buf)? }
            }
            8 => Message::Done,
            other => return Err(NetError::BadFrame(format!("unknown tag {other}"))),
        };
        Ok(msg)
    }
}

fn put_f32s(buf: &mut BytesMut, data: &[f32]) {
    buf.put_u32_le(data.len() as u32);
    buf.reserve(data.len() * 4);
    for &v in data {
        buf.put_f32_le(v);
    }
}

fn get_f32s(buf: &mut Bytes) -> Result<Vec<f32>, NetError> {
    if buf.remaining() < 4 {
        return Err(NetError::BadFrame("truncated vector length".into()));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 4 {
        return Err(NetError::BadFrame(format!(
            "vector claims {n} floats but only {} bytes remain",
            buf.remaining()
        )));
    }
    Ok((0..n).map(|_| buf.get_f32_le()).collect())
}

/// A TCP stream with length-prefixed [`Message`] framing.
#[derive(Debug)]
pub struct FramedStream {
    stream: TcpStream,
}

impl FramedStream {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        Self { stream }
    }

    /// Sends one message (u32-LE length prefix + encoded body).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failure.
    pub async fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        let body = msg.encode();
        self.stream.write_u32_le(body.len() as u32).await?;
        self.stream.write_all(&body).await?;
        self.stream.flush().await?;
        Ok(())
    }

    /// Receives one message.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failure,
    /// [`NetError::FrameTooLarge`] on a corrupt length prefix, or
    /// [`NetError::BadFrame`] if the body does not decode.
    pub async fn recv(&mut self) -> Result<Message, NetError> {
        let len = self.stream.read_u32_le().await? as usize;
        if len > MAX_FRAME {
            return Err(NetError::FrameTooLarge(len));
        }
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body).await?;
        Message::decode(Bytes::from(body))
    }

    /// Receives a message, erroring unless it matches `expected_name`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Unexpected`] on a protocol violation, or any
    /// receive error.
    pub async fn expect(&mut self, expected_name: &'static str) -> Result<Message, NetError> {
        let msg = self.recv().await?;
        if msg.name() != expected_name {
            return Err(NetError::Unexpected { expected: expected_name, got: msg.name().into() });
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let decoded = Message::decode(msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(Message::Hello { agent_id: 7 });
        round_trip(Message::Profile { agent_id: 1, batches_per_s: 0.25, solo_time_s: 812.5 });
        round_trip(Message::PairRequest { slow_id: 3, offload: 37 });
        round_trip(Message::PairAccept { fast_id: 4 });
        round_trip(Message::PairReject { fast_id: 4 });
        round_trip(Message::Activations { batch_idx: 12, data: vec![1.5, -2.0, 0.0], labels: vec![0, 2, 1] });
        round_trip(Message::SuffixParams { data: vec![0.125; 33] });
        round_trip(Message::ModelChunk { step: 2, data: vec![] });
        round_trip(Message::Done);
    }

    #[test]
    fn truncated_frames_error() {
        let full = Message::Profile { agent_id: 1, batches_per_s: 1.0, solo_time_s: 2.0 }.encode();
        for cut in 1..full.len() {
            let sliced = full.slice(0..cut);
            assert!(Message::decode(sliced).is_err() || cut == full.len());
        }
    }

    #[test]
    fn unknown_tag_errors() {
        let buf = Bytes::from_static(&[99u8, 0, 0, 0]);
        assert!(matches!(Message::decode(buf), Err(NetError::BadFrame(_))));
    }

    #[test]
    fn lying_vector_length_errors() {
        let mut raw = BytesMut::new();
        raw.put_u8(6); // SuffixParams
        raw.put_u32_le(1000); // claims 1000 floats
        raw.put_f32_le(1.0); // provides one
        assert!(Message::decode(raw.freeze()).is_err());
    }

    #[tokio::test]
    async fn framed_stream_round_trips_over_tcp() {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let client = tokio::spawn(async move {
            let mut s = FramedStream::new(TcpStream::connect(addr).await.unwrap());
            s.send(&Message::Hello { agent_id: 42 }).await.unwrap();
            s.send(&Message::Activations { batch_idx: 0, data: vec![1.0; 1024], labels: vec![7; 16] }).await.unwrap();
            s.expect("Done").await.unwrap();
        });
        let (sock, _) = listener.accept().await.unwrap();
        let mut s = FramedStream::new(sock);
        assert_eq!(s.recv().await.unwrap(), Message::Hello { agent_id: 42 });
        match s.recv().await.unwrap() {
            Message::Activations { data, .. } => assert_eq!(data.len(), 1024),
            other => panic!("unexpected {other:?}"),
        }
        s.send(&Message::Done).await.unwrap();
        client.await.unwrap();
    }
}
