use std::error::Error;
use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Errors produced by the wire protocol.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket failure.
    Io(std::io::Error),
    /// The peer sent a frame that does not decode.
    BadFrame(String),
    /// A frame exceeded the sanity limit (corrupted length prefix).
    FrameTooLarge(usize),
    /// The protocol state machine received an unexpected message.
    Unexpected {
        /// What the caller was waiting for.
        expected: &'static str,
        /// What actually arrived.
        got: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::BadFrame(why) => write!(f, "undecodable frame: {why}"),
            NetError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            NetError::Unexpected { expected, got } => {
                write!(f, "expected {expected}, got {got}")
            }
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Maximum accepted frame size (a full ResNet-110 model is ~7 MB; leave
/// generous headroom).
const MAX_FRAME: usize = 256 * 1024 * 1024;

/// Little-endian cursor over a received frame body.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], NetError> {
        if self.buf.len() < n {
            return Err(NetError::BadFrame(format!("truncated {what}")));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn get_u8(&mut self, what: &str) -> Result<u8, NetError> {
        Ok(self.take(1, what)?[0])
    }

    fn get_u32_le(&mut self, what: &str) -> Result<u32, NetError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_f64_le(&mut self, what: &str) -> Result<f64, NetError> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn get_f32_le(&mut self, what: &str) -> Result<f32, NetError> {
        let b = self.take(4, what)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Protocol messages exchanged between ComDML peers.
///
/// The encoding is a 1-byte tag followed by little-endian fields; float
/// vectors are length-prefixed. Everything round-trips through
/// [`Message::encode`] / [`Message::decode`].
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Initial identification after connecting.
    Hello {
        /// Sender's agent id.
        agent_id: u32,
    },
    /// Capability broadcast (Algorithm 1 line 2).
    Profile {
        /// Sender's agent id.
        agent_id: u32,
        /// Full-model processing speed in batches per second.
        batches_per_s: f64,
        /// Estimated solo training time in seconds.
        solo_time_s: f64,
    },
    /// Slow agent asks a fast agent to host `offload` layers.
    PairRequest {
        /// Requesting (slow) agent.
        slow_id: u32,
        /// Number of layers to offload.
        offload: u32,
    },
    /// Fast agent accepts the pairing.
    PairAccept {
        /// Accepting (fast) agent.
        fast_id: u32,
    },
    /// Fast agent declines (already paired).
    PairReject {
        /// Declining agent.
        fast_id: u32,
    },
    /// One batch of intermediate activations (slow → fast, §III-B), with
    /// the batch's labels so the fast side can evaluate its local loss
    /// (eq. 3 trains on `(z_n, y_n)` pairs).
    Activations {
        /// Batch index within the round.
        batch_idx: u32,
        /// Flattened activation values.
        data: Vec<f32>,
        /// Class labels of the batch (may be empty for inference traffic).
        labels: Vec<u32>,
    },
    /// Trained suffix parameters returned at the end of a round.
    SuffixParams {
        /// Flattened parameter values.
        data: Vec<f32>,
    },
    /// A model (or model chunk) exchanged during aggregation.
    ModelChunk {
        /// AllReduce step this chunk belongs to.
        step: u32,
        /// Chunk values.
        data: Vec<f32>,
    },
    /// End-of-round marker.
    Done,
}

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::Profile { .. } => 1,
            Message::PairRequest { .. } => 2,
            Message::PairAccept { .. } => 3,
            Message::PairReject { .. } => 4,
            Message::Activations { .. } => 5,
            Message::SuffixParams { .. } => 6,
            Message::ModelChunk { .. } => 7,
            Message::Done => 8,
        }
    }

    /// A short human-readable name (for error messages).
    pub fn name(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "Hello",
            Message::Profile { .. } => "Profile",
            Message::PairRequest { .. } => "PairRequest",
            Message::PairAccept { .. } => "PairAccept",
            Message::PairReject { .. } => "PairReject",
            Message::Activations { .. } => "Activations",
            Message::SuffixParams { .. } => "SuffixParams",
            Message::ModelChunk { .. } => "ModelChunk",
            Message::Done => "Done",
        }
    }

    /// Serializes the message body (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        buf.push(self.tag());
        let put_u32 = |buf: &mut Vec<u8>, v: u32| buf.extend_from_slice(&v.to_le_bytes());
        match self {
            Message::Hello { agent_id } => put_u32(&mut buf, *agent_id),
            Message::Profile { agent_id, batches_per_s, solo_time_s } => {
                put_u32(&mut buf, *agent_id);
                buf.extend_from_slice(&batches_per_s.to_le_bytes());
                buf.extend_from_slice(&solo_time_s.to_le_bytes());
            }
            Message::PairRequest { slow_id, offload } => {
                put_u32(&mut buf, *slow_id);
                put_u32(&mut buf, *offload);
            }
            Message::PairAccept { fast_id } | Message::PairReject { fast_id } => {
                put_u32(&mut buf, *fast_id)
            }
            Message::Activations { batch_idx, data, labels } => {
                put_u32(&mut buf, *batch_idx);
                put_f32s(&mut buf, data);
                put_u32(&mut buf, labels.len() as u32);
                for &y in labels {
                    put_u32(&mut buf, y);
                }
            }
            Message::SuffixParams { data } => put_f32s(&mut buf, data),
            Message::ModelChunk { step, data } => {
                put_u32(&mut buf, *step);
                put_f32s(&mut buf, data);
            }
            Message::Done => {}
        }
        buf
    }

    /// Decodes a message body produced by [`Message::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFrame`] on any structural problem.
    pub fn decode(buf: &[u8]) -> Result<Self, NetError> {
        let mut r = Reader::new(buf);
        if r.remaining() == 0 {
            return Err(NetError::BadFrame("empty frame".into()));
        }
        let tag = r.get_u8("tag")?;
        let msg = match tag {
            0 => Message::Hello { agent_id: r.get_u32_le("Hello")? },
            1 => Message::Profile {
                agent_id: r.get_u32_le("Profile")?,
                batches_per_s: r.get_f64_le("Profile")?,
                solo_time_s: r.get_f64_le("Profile")?,
            },
            2 => Message::PairRequest {
                slow_id: r.get_u32_le("PairRequest")?,
                offload: r.get_u32_le("PairRequest")?,
            },
            3 => Message::PairAccept { fast_id: r.get_u32_le("PairAccept")? },
            4 => Message::PairReject { fast_id: r.get_u32_le("PairReject")? },
            5 => {
                let batch_idx = r.get_u32_le("Activations")?;
                let data = get_f32s(&mut r)?;
                let n = r.get_u32_le("Activations labels")? as usize;
                let raw = r.take(n * 4, "Activations labels")?;
                let labels = raw
                    .chunks_exact(4)
                    .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                    .collect();
                Message::Activations { batch_idx, data, labels }
            }
            6 => Message::SuffixParams { data: get_f32s(&mut r)? },
            7 => {
                let step = r.get_u32_le("ModelChunk")?;
                Message::ModelChunk { step, data: get_f32s(&mut r)? }
            }
            8 => Message::Done,
            other => return Err(NetError::BadFrame(format!("unknown tag {other}"))),
        };
        Ok(msg)
    }
}

fn put_f32s(buf: &mut Vec<u8>, data: &[f32]) {
    buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
    buf.reserve(data.len() * 4);
    for &v in data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_f32s(r: &mut Reader<'_>) -> Result<Vec<f32>, NetError> {
    let n = r.get_u32_le("vector length")? as usize;
    if r.remaining() < n * 4 {
        return Err(NetError::BadFrame(format!(
            "vector claims {n} floats but only {} bytes remain",
            r.remaining()
        )));
    }
    (0..n).map(|_| r.get_f32_le("vector")).collect()
}

/// A TCP stream with length-prefixed [`Message`] framing.
///
/// Blocking: `send` and `recv` run on the calling thread. Peers that must
/// send and receive concurrently (e.g. ring AllReduce steps) do so from
/// separate threads — see [`crate::ring_allreduce_tcp`].
#[derive(Debug)]
pub struct FramedStream {
    stream: TcpStream,
}

impl FramedStream {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        Self { stream }
    }

    /// Sends one message (u32-LE length prefix + encoded body).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failure.
    pub fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        let body = msg.encode();
        self.stream.write_all(&(body.len() as u32).to_le_bytes())?;
        self.stream.write_all(&body)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Receives one message.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failure,
    /// [`NetError::FrameTooLarge`] on a corrupt length prefix, or
    /// [`NetError::BadFrame`] if the body does not decode.
    pub fn recv(&mut self) -> Result<Message, NetError> {
        let mut prefix = [0u8; 4];
        self.stream.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME {
            return Err(NetError::FrameTooLarge(len));
        }
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body)?;
        Message::decode(&body)
    }

    /// Receives a message, erroring unless it matches `expected_name`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Unexpected`] on a protocol violation, or any
    /// receive error.
    pub fn expect(&mut self, expected_name: &'static str) -> Result<Message, NetError> {
        let msg = self.recv()?;
        if msg.name() != expected_name {
            return Err(NetError::Unexpected { expected: expected_name, got: msg.name().into() });
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let decoded = Message::decode(&msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(Message::Hello { agent_id: 7 });
        round_trip(Message::Profile { agent_id: 1, batches_per_s: 0.25, solo_time_s: 812.5 });
        round_trip(Message::PairRequest { slow_id: 3, offload: 37 });
        round_trip(Message::PairAccept { fast_id: 4 });
        round_trip(Message::PairReject { fast_id: 4 });
        round_trip(Message::Activations {
            batch_idx: 12,
            data: vec![1.5, -2.0, 0.0],
            labels: vec![0, 2, 1],
        });
        round_trip(Message::SuffixParams { data: vec![0.125; 33] });
        round_trip(Message::ModelChunk { step: 2, data: vec![] });
        round_trip(Message::Done);
    }

    #[test]
    fn truncated_frames_error() {
        let full = Message::Profile { agent_id: 1, batches_per_s: 1.0, solo_time_s: 2.0 }.encode();
        for cut in 1..full.len() {
            assert!(Message::decode(&full[..cut]).is_err());
        }
    }

    #[test]
    fn unknown_tag_errors() {
        assert!(matches!(Message::decode(&[99u8, 0, 0, 0]), Err(NetError::BadFrame(_))));
    }

    #[test]
    fn lying_vector_length_errors() {
        let mut raw = vec![6u8]; // SuffixParams
        raw.extend_from_slice(&1000u32.to_le_bytes()); // claims 1000 floats
        raw.extend_from_slice(&1.0f32.to_le_bytes()); // provides one
        assert!(Message::decode(&raw).is_err());
    }

    #[test]
    fn framed_stream_round_trips_over_tcp() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = FramedStream::new(TcpStream::connect(addr).unwrap());
            s.send(&Message::Hello { agent_id: 42 }).unwrap();
            s.send(&Message::Activations {
                batch_idx: 0,
                data: vec![1.0; 1024],
                labels: vec![7; 16],
            })
            .unwrap();
            s.expect("Done").unwrap();
        });
        let (sock, _) = listener.accept().unwrap();
        let mut s = FramedStream::new(sock);
        assert_eq!(s.recv().unwrap(), Message::Hello { agent_id: 42 });
        match s.recv().unwrap() {
            Message::Activations { data, .. } => assert_eq!(data.len(), 1024),
            other => panic!("unexpected {other:?}"),
        }
        s.send(&Message::Done).unwrap();
        client.join().unwrap();
    }
}
